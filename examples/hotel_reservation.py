#!/usr/bin/env python3
"""The DeathStarBench hotel-reservation benchmark (paper Fig. 9).

Deploys the 17-service hotel-reservation application (8 microservices plus
their caches and MongoDB instances) across three clusters, drives it with
a wrk2-style constant-throughput client at 200 RPS from cluster-1, and
compares round-robin, the C3 adaptation, and L3 on end-to-end latency.

Run with::

    python examples/hotel_reservation.py [rps] [duration_seconds]
"""

import sys

from repro import run_hotel_benchmark
from repro.analysis.stats import latency_timeline
from repro.bench.results import ComparisonTable


def main() -> None:
    rps = float(sys.argv[1]) if len(sys.argv) > 1 else 200.0
    duration_s = float(sys.argv[2]) if len(sys.argv) > 2 else 180.0

    table = ComparisonTable(
        f"hotel-reservation at {rps:.0f} RPS, {duration_s:.0f}s measured",
        baseline="round-robin")
    results = {}
    for algorithm in ("round-robin", "c3", "l3"):
        print(f"running {algorithm} ...")
        result = run_hotel_benchmark(
            algorithm, rps=rps, duration_s=duration_s, seed=7)
        results[algorithm] = result
        table.add(algorithm,
                  p50_ms=result.p50_ms,
                  p90_ms=result.p90_ms,
                  p99_ms=result.p99_ms)

    print()
    print(table.render())

    # Show where L3's gain comes from: the per-10s P50 timeline. L3 keeps
    # most service-to-service hops cluster-local, removing WAN round trips
    # from the common path.
    print("\nP50 over time (ms), first six 10-second buckets:")
    for algorithm, result in results.items():
        series = latency_timeline(result.records, bucket_s=10.0,
                                  percentiles=(0.50,))["all"]
        head = "  ".join(
            f"{point['p50'] * 1000.0:6.1f}" for _t, point in series[:6])
        print(f"  {algorithm:<12} {head}")

    print("\npaper Fig. 9 reports P99: round-robin 93.0, C3 88.3, L3 68.8 ms"
          "\n(absolute values differ in simulation; the ordering is the"
          " reproduced shape).")


if __name__ == "__main__":
    main()
