#!/usr/bin/env python3
"""Live testbed demo: the real L3 control loop over real sockets.

Boots three "clusters" as asyncio HTTP servers on localhost — one of
them with its latency degraded 5x — routes an open-loop load through the
live weighted proxy, scrapes real Prometheus text ``/metrics`` pages
over HTTP, and lets the **unmodified** L3 controller react. Prints the
weight trajectory as it shifts traffic away from the slow backend, then
the final latency spectrum.

Everything runs on 127.0.0.1 and wall-clock time: this is the same
controller code the simulator drives, demonstrated against real network
I/O, real scheduling jitter, and real sleeps.

Run with::

    python examples/live_demo.py [duration_seconds] [port_base]
"""

import sys

from repro.analysis.report import render_spectrum
from repro.live import LiveConfig, LiveHarness, weight_points
from repro.workloads.profiles import BackendProfile, constant_series
from repro.workloads.scenarios import Scenario

DEGRADED = "cluster-2"


def latency_profile(median_s: float) -> BackendProfile:
    return BackendProfile(
        median_latency_s=constant_series(median_s),
        p99_latency_s=constant_series(median_s * 3.0),
        failure_prob=constant_series(0.0))


def build_scenario(duration_s: float) -> Scenario:
    profiles = {
        "cluster-1": latency_profile(0.040),
        DEGRADED: latency_profile(0.200),  # 5x the healthy clusters
        "cluster-3": latency_profile(0.040),
    }
    return Scenario("live-demo", duration_s, profiles,
                    constant_series(80.0),
                    "three live clusters, one 5x degraded")


def main() -> None:
    duration_s = float(sys.argv[1]) if len(sys.argv) > 1 else 20.0
    port_base = int(sys.argv[2]) if len(sys.argv) > 2 else 18080

    config = LiveConfig(
        algorithm="l3", duration_s=duration_s, port_base=port_base,
        rps=80.0, scrape_interval_s=1.0, reconcile_interval_s=1.0)
    harness = LiveHarness(build_scenario(duration_s), config)

    print(f"live run: 3 clusters on 127.0.0.1:{port_base}+, "
          f"{DEGRADED} degraded 5x, {duration_s:.0f}s of L3 control")
    result = harness.run()

    print()
    print(f"weight trajectory ({DEGRADED} share of 100, uniform start "
          f"at 33.3):")
    for when, weights in harness.weight_history:
        share = weight_points(weights)[f"api/{DEGRADED}"]
        bar = "#" * round(share)
        print(f"  t={when:5.1f}s  {share:5.1f}  {bar}")

    points = weight_points(result.controller_weights)
    print()
    print(f"final weights: {result.controller_weights}")
    print(f"final {DEGRADED} share: {points[f'api/{DEGRADED}']:.1f} "
          f"weight points")
    print()
    print(render_spectrum(result.records, title="client latency spectrum"))
    print(f"requests: {result.request_count}, "
          f"success rate {result.success_rate * 100.0:.2f} %, "
          f"clean shutdown: {harness.clean_shutdown}")


if __name__ == "__main__":
    main()
