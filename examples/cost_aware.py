#!/usr/bin/env python3
"""Cost-aware weighting (paper §6/§7 extension).

Cloud providers charge for cross-cluster egress while local traffic is
free. The cost extension divides each backend's weight by
``1 + cost_weight * egress_cost``, trading latency for money. This example
sweeps the cost weight on a topology where the *remote* cluster is
actually the fastest — so the trade-off is real — and reports both the
latency and the fraction of traffic that stayed local (a proxy for the
bill).

Run with::

    python examples/cost_aware.py
"""

from collections import Counter

from repro import CostConfig, L3Config, run_scenario_benchmark
from repro.bench.coordinator import ScenarioBenchConfig
from repro.workloads.profiles import BackendProfile, constant_series
from repro.workloads.scenarios import Scenario


def fast_remote_scenario() -> Scenario:
    """cluster-1 (local) is mediocre; cluster-2 is fast but remote."""
    profiles = {
        "cluster-1": BackendProfile(
            median_latency_s=constant_series(0.060),
            p99_latency_s=constant_series(0.180),
            failure_prob=constant_series(0.0)),
        "cluster-2": BackendProfile(
            median_latency_s=constant_series(0.020),
            p99_latency_s=constant_series(0.060),
            failure_prob=constant_series(0.0)),
        "cluster-3": BackendProfile(
            median_latency_s=constant_series(0.060),
            p99_latency_s=constant_series(0.180),
            failure_prob=constant_series(0.0)),
    }
    return Scenario("fast-remote", 600.0, profiles, constant_series(150.0))


def main() -> None:
    env = ScenarioBenchConfig(warmup_s=20.0, drain_s=15.0)
    print(f"{'cost_weight':>11}  {'P50 ms':>7}  {'P99 ms':>7}  "
          f"{'local traffic':>13}")
    for cost_weight in (0.0, 0.5, 2.0, 8.0):
        cost = CostConfig(source_cluster="cluster-1",
                          cost_weight=cost_weight)
        result = run_scenario_benchmark(
            fast_remote_scenario(), "l3", duration_s=120.0, seed=7,
            env=env, l3_config=L3Config(cost=cost))
        counts = Counter(r.backend for r in result.records)
        local_share = counts["api/cluster-1"] / result.request_count
        print(f"{cost_weight:>11.1f}  {result.p50_ms:>7.1f}  "
              f"{result.p99_ms:>7.1f}  {local_share:>12.1%}")
    print("\ncost_weight 0 reproduces the paper's L3 (latency only);"
          "\nraising it pulls traffic home at a measurable latency price.")


if __name__ == "__main__":
    main()
