#!/usr/bin/env python3
"""The social-network application: deeper call chains, write fan-out.

The paper evaluates on DeathStarBench's hotel-reservation app; this
example runs the suite's larger socialNetwork graph (22 services including
the Redis/Memcached/MongoDB stateful tiers) to show the balancers on a
write-heavy workload with deeper chains — compose-post fans out to four
services, then post-storage, then both timelines.

Run with::

    python examples/social_network.py [rps] [duration_seconds]
"""

import sys

from repro.analysis.report import render_comparison
from repro.bench.coordinator import run_social_benchmark
from repro.bench.results import ComparisonTable


def main() -> None:
    rps = float(sys.argv[1]) if len(sys.argv) > 1 else 150.0
    duration_s = float(sys.argv[2]) if len(sys.argv) > 2 else 120.0

    table = ComparisonTable(
        f"social-network at {rps:.0f} RPS, {duration_s:.0f}s measured",
        baseline="round-robin")
    captured = {}
    for algorithm in ("round-robin", "c3", "l3", "p2c"):
        print(f"running {algorithm} ...")
        result = run_social_benchmark(
            algorithm, rps=rps, duration_s=duration_s, seed=7)
        captured[algorithm] = result.records
        table.add(algorithm, p50_ms=result.p50_ms, p99_ms=result.p99_ms)

    print()
    print(table.render())
    print()
    print(render_comparison(captured, title="full latency spectra"))


if __name__ == "__main__":
    main()
