"""A one-minute mini-tournament: race four balancers, print the leaderboard.

Races the paper's headline pair (L3, round-robin) against two of the
retrieved-work zoo (KnapsackLB, the distributed gradient split) on one
trace scenario and the degraded-backend perturbation cell, then prints
the scored grid and the leaderboard reduction.

Usage::

    python examples/tournament_demo.py              # 60 s per cell
    python examples/tournament_demo.py 15           # quicker look
"""

import sys

from repro.tournament import (
    build_leaderboard,
    render_grid,
    render_leaderboard,
    run_tournament,
)

ALGORITHMS = ("round-robin", "l3", "knapsack", "gradient")
SCENARIOS = ("scenario-2", "degraded-backend")


def main() -> int:
    duration_s = float(sys.argv[1]) if len(sys.argv) > 1 else 60.0
    print(f"mini-tournament: {', '.join(ALGORITHMS)} on "
          f"{', '.join(SCENARIOS)} ({duration_s:g}s per cell)\n")
    result = run_tournament(
        algorithms=ALGORITHMS, scenarios=SCENARIOS,
        duration_s=duration_s, jobs=1)
    print(render_grid(result))
    print()
    print(render_leaderboard(build_leaderboard(result)))
    winner = build_leaderboard(result)["ranking"][0]
    print(f"\noverall winner on this grid: {winner}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
