#!/usr/bin/env python3
"""Quickstart: L3 vs round-robin on a TIER-like scenario.

Runs the paper's scenario-1 trace (three clusters, ~300 RPS, fluctuating
per-cluster latency) under round-robin and under L3, then prints the
latency comparison — the Fig. 10a experiment in miniature.

Run with::

    python examples/quickstart.py [duration_seconds]
"""

import sys

from repro import run_scenario_benchmark
from repro.bench.results import ComparisonTable


def main() -> None:
    duration_s = float(sys.argv[1]) if len(sys.argv) > 1 else 120.0
    table = ComparisonTable(
        f"scenario-1, {duration_s:.0f}s measured, seed 7",
        baseline="round-robin")

    for algorithm in ("round-robin", "c3", "l3"):
        print(f"running {algorithm} ...")
        result = run_scenario_benchmark(
            scenario="scenario-1", algorithm=algorithm,
            duration_s=duration_s, seed=7)
        table.add(algorithm,
                  p50_ms=result.p50_ms,
                  p99_ms=result.p99_ms,
                  requests=result.request_count)
        if result.controller_weights:
            print(f"  final TrafficSplit weights: "
                  f"{result.controller_weights}")

    print()
    print(table.render())
    print()
    print("L3 cuts the P99 by steering traffic toward whichever cluster is"
          " currently fast,\nwhile round-robin keeps spraying one third"
          " everywhere.")


if __name__ == "__main__":
    main()
