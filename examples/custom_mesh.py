#!/usr/bin/env python3
"""Building a custom multi-cluster topology from the low-level API.

Shows the full construction path the benchmark coordinator otherwise hides:
simulator → mesh → service deployment → telemetry pipeline → L3 balancer →
open-loop client. The topology is deliberately asymmetric (a transatlantic
cluster with 80 ms links and a degraded local cluster) to show L3
weighting both network distance and service health.

Run with::

    python examples/custom_mesh.py
"""

from repro.balancers.l3 import L3Balancer
from repro.core.config import L3Config
from repro.mesh.mesh import ServiceMesh
from repro.mesh.network import WanLink
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.telemetry.query import PromMetricsSource
from repro.telemetry.scraper import Scraper
from repro.telemetry.timeseries import TimeSeriesStore
from repro.workloads.loadgen import OpenLoopLoadGenerator
from repro.workloads.profiles import (
    BackendProfile,
    PiecewiseSeries,
    constant_series,
)
from repro.analysis.percentiles import percentile_summary


def main() -> None:
    sim = Simulator()
    rng = RngRegistry(seed=42)

    # Three clusters; eu pairs are 10 ms apart, us-east is 40 ms away.
    mesh = ServiceMesh(sim, rng,
                       clusters=["eu-central", "eu-west", "us-east"],
                       wan_link=WanLink(base_delay_s=0.010))
    far_link = WanLink(base_delay_s=0.040)
    mesh.network.set_link("eu-central", "us-east", far_link)
    mesh.network.set_link("eu-west", "us-east", far_link)

    # The eu-west deployment degrades badly between t=60s and t=120s.
    degraded = BackendProfile(
        median_latency_s=PiecewiseSeries(
            [(0.0, 0.030), (60.0, 0.030), (65.0, 0.300), (120.0, 0.300),
             (125.0, 0.030), (300.0, 0.030)]),
        p99_latency_s=PiecewiseSeries(
            [(0.0, 0.090), (60.0, 0.090), (65.0, 1.000), (120.0, 1.000),
             (125.0, 0.090), (300.0, 0.090)]),
        failure_prob=constant_series(0.0),
    )
    healthy = BackendProfile(
        median_latency_s=constant_series(0.030),
        p99_latency_s=constant_series(0.090),
        failure_prob=constant_series(0.0),
    )
    mesh.deploy_service("api", profiles={
        "eu-central": healthy,
        "eu-west": degraded,
        "us-east": healthy,
    }, replicas=3)

    # Telemetry: Prometheus-like store scraped every 5 s, queried from the
    # eu-central vantage point (where our client and L3 instance live).
    store = TimeSeriesStore()
    scraper = Scraper(store, interval_s=5.0)
    source = PromMetricsSource(store, scope="eu-central")

    deployment = mesh.deployment("api")
    balancer = L3Balancer(sim, "api", deployment.backend_names(), source,
                          config=L3Config())
    proxy = mesh.client_proxy("eu-central", "api", balancer)
    mesh.register_all_telemetry(scraper)

    sim.spawn(scraper.run(sim), name="scraper")
    balancer.start(sim)

    records = []
    loadgen = OpenLoopLoadGenerator(proxy, 150.0, rng.stream("load"), records)
    sim.spawn(loadgen.run(sim, 300.0), name="loadgen")

    # Observe the weights around the degradation episode.
    checkpoints = {}
    for when in (55.0, 100.0, 200.0):
        sim.call_at(when, lambda w=when: checkpoints.update(
            {w: dict(balancer.split.weights)}))
    sim.run(until=330.0)
    balancer.stop()
    sim.run(until=340.0)

    print(f"completed {len(records)} requests")
    latencies = [r.latency_s * 1000.0 for r in records]
    for name, value in percentile_summary(latencies).items():
        print(f"  {name}: {value:.1f} ms")

    print("\nTrafficSplit weights over time:")
    for when, weights in sorted(checkpoints.items()):
        phase = ("before degradation" if when < 60
                 else "during eu-west degradation" if when < 125
                 else "after recovery")
        print(f"  t={when:5.0f}s ({phase}): {weights}")


if __name__ == "__main__":
    main()
