#!/usr/bin/env python3
"""Rate control meets autoscaling (paper §3.2's motivating interplay).

A demand surge quadruples the offered load in one step. L3's rate
controller spreads the surge across all backends (Algorithm 2 pulls
weights toward the mean for positive relative change), buying time for the
HPA-style autoscaler to add replicas; once capacity catches up and the RPS
trend flattens, the weighting algorithm re-concentrates traffic on the
fast backends.

Run with::

    python examples/autoscaling.py
"""

from repro.balancers.l3 import L3Balancer
from repro.core.config import L3Config
from repro.mesh.autoscaler import Autoscaler, AutoscalerConfig
from repro.mesh.mesh import ServiceMesh
from repro.mesh.network import WanLink
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.telemetry.query import PromMetricsSource
from repro.telemetry.scraper import Scraper
from repro.telemetry.timeseries import TimeSeriesStore
from repro.workloads.loadgen import OpenLoopLoadGenerator
from repro.workloads.profiles import (
    PiecewiseSeries,
    constant_backend_profile,
)
from repro.analysis.percentiles import exact_percentile

CLUSTERS = ["cluster-1", "cluster-2", "cluster-3"]


def main() -> None:
    sim = Simulator()
    rng = RngRegistry(seed=11)
    mesh = ServiceMesh(sim, rng, clusters=CLUSTERS,
                       wan_link=WanLink(base_delay_s=0.010))
    # Tight capacity: 2 replicas x 8 concurrent per cluster. At 40 ms
    # mean service time each cluster absorbs ~400 RPS before queueing.
    mesh.deploy_service("api", profiles={
        cluster: constant_backend_profile(0.040, 0.120)
        for cluster in CLUSTERS
    }, replicas=2, replica_capacity=8)

    store = TimeSeriesStore()
    scraper = Scraper(store, interval_s=5.0)
    source = PromMetricsSource(store, scope="cluster-1")
    deployment = mesh.deployment("api")
    balancer = L3Balancer(sim, "api", deployment.backend_names(), source,
                          config=L3Config())
    proxy = mesh.client_proxy("cluster-1", "api", balancer)
    mesh.register_all_telemetry(scraper)

    autoscalers = []
    for cluster in CLUSTERS:
        autoscaler = Autoscaler(
            deployment.backend_in(cluster),
            AutoscalerConfig(target_utilization=0.5, interval_s=10.0,
                             scale_up_delay_s=20.0, max_replicas=8))
        autoscalers.append(autoscaler)
        sim.spawn(autoscaler.run(sim), name=f"hpa/{cluster}")

    sim.spawn(scraper.run(sim), name="scraper")
    balancer.start(sim)

    # 200 RPS for a minute, then a step to 800 RPS.
    rps = PiecewiseSeries(
        [(0.0, 200.0), (60.0, 200.0), (61.0, 800.0), (240.0, 800.0)])
    records = []
    loadgen = OpenLoopLoadGenerator(proxy, rps, rng.stream("load"), records)
    sim.spawn(loadgen.run(sim, 240.0), name="loadgen")
    sim.run(until=270.0)
    balancer.stop()
    sim.run(until=280.0)

    def window_p99(start, end):
        values = [r.latency_s * 1000.0 for r in records
                  if start <= r.intended_start_s < end]
        return exact_percentile(values, 0.99) if values else float("nan")

    print(f"completed {len(records)} requests")
    print(f"P99 before surge   (t 20-60s):   {window_p99(20, 60):7.1f} ms")
    print(f"P99 during surge   (t 61-100s):  {window_p99(61, 100):7.1f} ms")
    print(f"P99 after scale-up (t 150-240s): {window_p99(150, 240):7.1f} ms")
    for autoscaler in autoscalers:
        ups = sum(1 for _t, d in autoscaler.scale_events if d > 0)
        print(f"{autoscaler.backend.name}: scaled up {ups} times, now "
              f"{autoscaler.replica_count} replicas")


if __name__ == "__main__":
    main()
