#!/usr/bin/env python3
"""Failure injection: success-rate-aware balancing (paper Figs. 11-12).

Runs the failure-1 scenario (average success ~91 %, with per-cluster
outages dropping success to 30-60 %) under the three algorithms and shows
how L3's success-rate term (Eq. 3's retry penalty) steers traffic away
from failing clusters — something neither round-robin nor the C3
adaptation does.

Also demonstrates the §5.2.1 penalty-factor trade-off and the §7
dynamic-penalty extension.

Run with::

    python examples/failure_injection.py [duration_seconds]
"""

import sys

from repro import L3Config, WeightingConfig, run_scenario_benchmark
from repro.bench.results import ComparisonTable


def main() -> None:
    duration_s = float(sys.argv[1]) if len(sys.argv) > 1 else 180.0

    table = ComparisonTable(
        f"failure-1, {duration_s:.0f}s measured", baseline="round-robin")
    for algorithm in ("round-robin", "c3", "l3"):
        print(f"running {algorithm} ...")
        result = run_scenario_benchmark(
            "failure-1", algorithm, duration_s=duration_s, seed=7)
        table.add(algorithm,
                  p99_ms=result.p99_ms,
                  success_pct=result.success_rate * 100.0)
    print()
    print(table.render())

    print("\npenalty factor sweep (failure-1): larger P trades latency for"
          " success rate")
    sweep = ComparisonTable("penalty sweep", baseline=None)
    for penalty_s in (0.1, 0.6, 1.5):
        config = L3Config(weighting=WeightingConfig(penalty_s=penalty_s))
        result = run_scenario_benchmark(
            "failure-1", "l3", duration_s=duration_s, seed=7,
            l3_config=config)
        sweep.add(f"P={penalty_s:g}s",
                  p99_ms=result.p99_ms,
                  success_pct=result.success_rate * 100.0)
    print()
    print(sweep.render())

    print("\ndynamic penalty (paper future work): P tracked per backend"
          " from observed failure latency")
    result = run_scenario_benchmark(
        "failure-1", "l3", duration_s=duration_s, seed=7,
        l3_config=L3Config(dynamic_penalty=True))
    print(f"  dynamic-P L3: p99={result.p99_ms:.1f} ms  "
          f"success={result.success_rate * 100.0:.2f} %")


if __name__ == "__main__":
    main()
