#!/usr/bin/env python3
"""Failure injection: success-rate-aware balancing (paper Figs. 11-12).

Runs the failure-1 scenario (average success ~91 %, with per-cluster
outages dropping success to 30-60 %) under the three algorithms and shows
how L3's success-rate term (Eq. 3's retry penalty) steers traffic away
from failing clusters — something neither round-robin nor the C3
adaptation does.

Also demonstrates the §5.2.1 penalty-factor trade-off, the §7
dynamic-penalty extension, and the fault-injection API
(:mod:`repro.faults`): a whole cluster blackholes mid-run, L3 detects the
dead backend through its success-rate EWMA and reroutes, and traffic
rebalances after the cluster restarts.

Run with::

    python examples/failure_injection.py [duration_seconds]
"""

import sys

from repro import L3Config, ScenarioBenchConfig, WeightingConfig, \
    run_scenario_benchmark
from repro.bench.fault_matrix import faulted_share, steady_scenario
from repro.bench.results import ComparisonTable
from repro.faults import ClusterOutage


def fault_api_demo() -> None:
    """Crash → detect → reroute → restart → re-balance, on a flat scenario.

    The scenario is steady (identical constant profiles), so any traffic
    shift is L3's doing. cluster-2 blackholes from t=40 s to t=80 s; the
    client's 1-second deadline turns the silence into failed attempts the
    success-rate EWMA can see.
    """
    print("\nfault injection API: cluster-2 blackhole, 40-80 s")
    duration_s = 120.0
    outage = ClusterOutage("cluster-2", at_s=40.0, duration_s=40.0,
                           mode="blackhole")
    env = ScenarioBenchConfig(request_timeout_s=1.0)
    result = run_scenario_benchmark(
        steady_scenario(duration_s), "l3", duration_s=duration_s, seed=7,
        env=env, faults=[outage])

    for when, description in result.fault_log:
        print(f"  t={when - env.warmup_s:6.1f}s  {description}")

    warm = env.warmup_s
    windows = {
        "before the outage (0-40 s)": (0.0, 40.0),
        "during, after detection (55-80 s)": (55.0, 80.0),
        "after restart + re-balance (95-120 s)": (95.0, duration_s),
    }
    shares = {}
    for label, (start, end) in windows.items():
        shares[label] = faulted_share(
            result.records, warm + start, warm + end, cluster="cluster-2")
        print(f"  cluster-2 traffic share {label}: "
              f"{shares[label] * 100.0:5.1f} %")
    rerouted = shares["during, after detection (55-80 s)"]
    rebalanced = shares["after restart + re-balance (95-120 s)"]
    print(f"  L3 rerouted around the outage (share {rerouted * 100.0:.1f} % "
          f"< 10 %) and rebalanced after restart "
          f"(share back to {rebalanced * 100.0:.1f} %)")
    assert rerouted < 0.10, "L3 failed to shed the blackholed cluster"
    assert rebalanced > 0.15, "traffic did not return after the restart"


def main() -> None:
    duration_s = float(sys.argv[1]) if len(sys.argv) > 1 else 180.0

    table = ComparisonTable(
        f"failure-1, {duration_s:.0f}s measured", baseline="round-robin")
    for algorithm in ("round-robin", "c3", "l3"):
        print(f"running {algorithm} ...")
        result = run_scenario_benchmark(
            "failure-1", algorithm, duration_s=duration_s, seed=7)
        table.add(algorithm,
                  p99_ms=result.p99_ms,
                  success_pct=result.success_rate * 100.0)
    print()
    print(table.render())

    print("\npenalty factor sweep (failure-1): larger P trades latency for"
          " success rate")
    sweep = ComparisonTable("penalty sweep", baseline=None)
    for penalty_s in (0.1, 0.6, 1.5):
        config = L3Config(weighting=WeightingConfig(penalty_s=penalty_s))
        result = run_scenario_benchmark(
            "failure-1", "l3", duration_s=duration_s, seed=7,
            l3_config=config)
        sweep.add(f"P={penalty_s:g}s",
                  p99_ms=result.p99_ms,
                  success_pct=result.success_rate * 100.0)
    print()
    print(sweep.render())

    print("\ndynamic penalty (paper future work): P tracked per backend"
          " from observed failure latency")
    result = run_scenario_benchmark(
        "failure-1", "l3", duration_s=duration_s, seed=7,
        l3_config=L3Config(dynamic_penalty=True))
    print(f"  dynamic-P L3: p99={result.p99_ms:.1f} ms  "
          f"success={result.success_rate * 100.0:.2f} %")

    fault_api_demo()


if __name__ == "__main__":
    main()
