"""Exporter formats and the OTLP → workload-span conversion."""

import json

import pytest

from repro.errors import ConfigError
from repro.tracing import (
    MeshTracer,
    export_trace,
    load_otlp,
    to_chrome,
    to_otlp,
    workload_spans,
)
from repro.tracing import model
from repro.workloads.spans import NETWORK as WL_NETWORK
from repro.workloads.spans import SERVER as WL_SERVER


def _tracer_with_one_request() -> MeshTracer:
    """A hand-built trace: request → attempt → (wan.send, exec, wan.recv)."""
    tracer = MeshTracer()
    ctx = tracer.trace()
    root = ctx.start(model.REQUEST, model.CLIENT, 10.0,
                     attributes={"request_id": 1, "service": "api"})
    actx = ctx.child(root)
    attempt = actx.start(model.ATTEMPT, model.CLIENT, 10.0,
                         attributes={"backend": "api/cluster-2",
                                     "attempt": 1})
    wctx = actx.child(attempt)
    send = wctx.start(model.WAN_SEND, model.NETWORK, 10.0,
                      attributes={"src": "cluster-1", "dst": "cluster-2",
                                  "link": "cluster-1->cluster-2"})
    wctx.end(send, 10.025)
    execute = wctx.start(model.SERVER_EXEC, model.SERVER, 10.025)
    wctx.end(execute, 10.125)
    recv = wctx.start(model.WAN_RECV, model.NETWORK, 10.125,
                      attributes={"src": "cluster-2", "dst": "cluster-1",
                                  "link": "cluster-2->cluster-1"})
    wctx.end(recv, 10.150)
    actx.end(attempt, 10.150)
    ctx.end(root, 10.150)
    return tracer


class TestOtlp:
    def test_shape_and_ids(self):
        document = to_otlp(_tracer_with_one_request().recorder)
        spans = document["resourceSpans"][0]["scopeSpans"][0]["spans"]
        assert len(spans) == 5
        root = next(s for s in spans if s["name"] == model.REQUEST)
        attempt = next(s for s in spans if s["name"] == model.ATTEMPT)
        assert "parentSpanId" not in root
        assert attempt["parentSpanId"] == root["spanId"]
        assert len(attempt["traceId"]) == 32
        assert len(attempt["spanId"]) == 16
        assert attempt["startTimeUnixNano"] == str(int(10.0 * 1e9))

    def test_status_and_kind_attributes_preserved(self):
        tracer = MeshTracer()
        ctx = tracer.trace()
        span = ctx.start(model.WAN_SEND, model.NETWORK, 0.0)
        ctx.end(span, 1.0, status=model.TIMEOUT)
        encoded = to_otlp(tracer.recorder)[
            "resourceSpans"][0]["scopeSpans"][0]["spans"][0]
        attrs = {a["key"]: a["value"] for a in encoded["attributes"]}
        assert attrs["repro.kind"] == {"stringValue": model.NETWORK}
        assert attrs["repro.status"] == {"stringValue": model.TIMEOUT}
        assert encoded["status"] == {"code": 2}

    def test_open_spans_skipped(self):
        tracer = MeshTracer()
        ctx = tracer.trace()
        ctx.start(model.REQUEST, model.CLIENT, 0.0)  # never closed
        document = to_otlp(tracer.recorder)
        assert document["resourceSpans"][0]["scopeSpans"][0]["spans"] == []


class TestChrome:
    def test_duration_and_instant_events(self):
        tracer = _tracer_with_one_request()
        audit_ctx = tracer.decision_trace()
        span = audit_ctx.start(model.RECONCILE, model.INTERNAL, 15.0,
                               attributes={"decision_id": 1})
        audit_ctx.end(span, 15.0)
        document = to_chrome(tracer.recorder)
        events = document["traceEvents"]
        durations = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert len(durations) == 5
        assert len(instants) == 1
        assert instants[0]["name"] == model.RECONCILE
        assert instants[0]["pid"] == 2
        # All data-plane spans of one trace share a track (tid).
        assert len({e["tid"] for e in durations}) == 1


class TestExportFile:
    def test_round_trips_through_disk(self, tmp_path):
        tracer = _tracer_with_one_request()
        path = tmp_path / "trace.json"
        export_trace(tracer.recorder, path, "otlp")
        assert load_otlp(path) == to_otlp(tracer.recorder)

    def test_rejects_unknown_format(self, tmp_path):
        with pytest.raises(ConfigError):
            export_trace(_tracer_with_one_request().recorder,
                         tmp_path / "x.json", "jaeger")

    def test_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ConfigError):
            load_otlp(path)

    def test_export_is_byte_deterministic(self, tmp_path):
        blobs = []
        for run in range(2):
            path = tmp_path / f"run{run}.json"
            export_trace(_tracer_with_one_request().recorder, path)
            blobs.append(path.read_bytes())
        assert blobs[0] == blobs[1]


class TestWorkloadSpans:
    def test_attempt_becomes_server_span_with_network_children(self):
        data = to_otlp(_tracer_with_one_request().recorder)
        spans = workload_spans(data)
        servers = [s for s in spans if s.kind == WL_SERVER]
        networks = [s for s in spans if s.kind == WL_NETWORK]
        assert len(servers) == 1
        assert len(networks) == 2
        server = servers[0]
        assert (server.service, server.cluster) == ("api", "cluster-2")
        # Rebased: the earliest attempt starts at 0.
        assert server.start_s == 0.0
        assert server.duration_s == pytest.approx(0.150)
        for leg in networks:
            assert leg.parent_id == server.span_id
        # §5.1 network exclusion leaves exec (+overhead) time.
        from repro.workloads.spans import execution_latencies

        (_svc, _clu, _start, execution), = execution_latencies(spans)
        assert execution == pytest.approx(0.100)

    def test_no_attempts_yields_nothing(self):
        assert workload_spans({"resourceSpans": []}) == []

    def test_rebase_disabled_keeps_absolute_times(self):
        data = to_otlp(_tracer_with_one_request().recorder)
        spans = workload_spans(data, rebase=False)
        server = next(s for s in spans if s.kind == WL_SERVER)
        assert server.start_s == pytest.approx(10.0)

    def test_json_serialisable(self):
        json.dumps(to_otlp(_tracer_with_one_request().recorder))
