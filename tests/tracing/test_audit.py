"""The controller decision audit log, alone and attached to a controller."""

import pytest

from repro.core.config import L3Config
from repro.core.controller import L3Controller, MetricSample
from repro.tracing import DecisionAuditLog, MeshTracer
from repro.tracing import model


class _StaticSource:
    def __init__(self, samples):
        self.samples = samples

    def collect(self, backend_names, now, window_s, percentile):
        return {name: self.samples.get(name) for name in backend_names}


class _FailingSource:
    def collect(self, backend_names, now, window_s, percentile):
        raise RuntimeError("prometheus down")


class _Sink:
    def __init__(self):
        self.pushed = []

    def set_weights(self, weights, now):
        self.pushed.append((now, dict(weights)))


def _samples():
    return {
        "api/cluster-1": MetricSample(
            latency_s=0.020, success_rate=1.0, rps=100.0, inflight=2.0),
        "api/cluster-2": MetricSample(
            latency_s=0.080, success_rate=0.95, rps=50.0, inflight=4.0),
    }


def _controller(source) -> L3Controller:
    return L3Controller(
        ["api/cluster-1", "api/cluster-2"], source, _Sink(), L3Config())


class TestDecisionRecords:
    def test_reconcile_appends_full_decision(self):
        controller = _controller(_StaticSource(_samples()))
        log = DecisionAuditLog()
        controller.audit = log
        weights = controller.reconcile(10.0)
        assert log.last_decision_id == 1
        decision = log.decisions[0]
        assert decision.time_s == 10.0
        assert decision.weights == weights
        assert decision.total_rps == pytest.approx(150.0)
        assert decision.error is None
        row = decision.backends["api/cluster-1"]
        assert row["sample_latency_s"] == pytest.approx(0.020)
        assert row["ewma_latency_s"] > 0
        assert set(decision.raw_weights) == set(weights)

    def test_missing_sample_omits_sample_keys(self):
        samples = _samples()
        samples["api/cluster-2"] = None
        controller = _controller(_StaticSource(samples))
        controller.audit = DecisionAuditLog()
        controller.reconcile(10.0)
        row = controller.audit.decisions[0].backends["api/cluster-2"]
        assert "sample_latency_s" not in row
        assert "ewma_latency_s" in row

    def test_degraded_reconcile_records_error(self):
        controller = _controller(_FailingSource())
        log = DecisionAuditLog()
        controller.audit = log
        controller.reconcile(10.0)
        decision = log.decisions[0]
        assert decision.error is not None
        assert "prometheus down" in decision.error
        assert decision.weights == {}

    def test_decision_ids_are_sequential(self):
        controller = _controller(_StaticSource(_samples()))
        log = DecisionAuditLog()
        controller.audit = log
        for tick in range(1, 4):
            controller.reconcile(float(tick * 10))
        assert [d.decision_id for d in log.decisions] == [1, 2, 3]
        assert log.last_decision_id == 3


class TestAuditSpans:
    def test_emits_reconcile_span_with_inputs_and_outputs(self):
        tracer = MeshTracer()
        controller = _controller(_StaticSource(_samples()))
        controller.audit = DecisionAuditLog(tracer, prefix="l3")
        controller.reconcile(10.0)
        (span,) = tracer.recorder.finished_spans()
        assert span.name == model.RECONCILE
        assert span.kind == model.INTERNAL
        assert span.start_s == span.end_s == 10.0
        assert span.attributes["controller"] == "l3"
        assert span.attributes["decision_id"] == 1
        assert span.attributes["api/cluster-1.sample_rps"] == 100.0
        assert span.attributes["api/cluster-1.weight"] >= 1
        assert span.attributes["api/cluster-1.raw_weight"] > 0

    def test_degraded_span_has_error_status(self):
        tracer = MeshTracer()
        controller = _controller(_FailingSource())
        controller.audit = DecisionAuditLog(tracer)
        controller.reconcile(10.0)
        (span,) = tracer.recorder.finished_spans()
        assert span.status == model.ERROR
        assert "prometheus down" in span.attributes["error"]

    def test_without_tracer_no_spans_just_records(self):
        controller = _controller(_StaticSource(_samples()))
        controller.audit = DecisionAuditLog()
        controller.reconcile(10.0)
        assert len(controller.audit.decisions) == 1
