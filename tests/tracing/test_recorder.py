"""SpanRecorder, sampling and context semantics."""

import pytest

from repro.errors import ConfigError
from repro.tracing import MeshTracer, SpanRecorder, TracingConfig, sample_decision
from repro.tracing import model


class TestSampleDecision:
    def test_edge_rates(self):
        assert sample_decision(1, 1.0)
        assert not sample_decision(1, 0.0)

    def test_deterministic(self):
        picks = [sample_decision(i, 0.3) for i in range(1, 2000)]
        assert picks == [sample_decision(i, 0.3) for i in range(1, 2000)]

    def test_rate_roughly_respected(self):
        n = 20_000
        hits = sum(sample_decision(i, 0.1) for i in range(1, n + 1))
        assert 0.07 * n < hits < 0.13 * n

    def test_lower_rate_records_subset_of_higher(self):
        ids = range(1, 5000)
        low = {i for i in ids if sample_decision(i, 0.05)}
        high = {i for i in ids if sample_decision(i, 0.5)}
        assert low <= high


class TestTracingConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            TracingConfig(sample_rate=1.5)
        with pytest.raises(ConfigError):
            TracingConfig(sample_rate=-0.1)
        with pytest.raises(ConfigError):
            TracingConfig(max_spans=0)


class TestSpanRecorder:
    def test_bound_drops_whole_new_traces(self):
        recorder = SpanRecorder(max_spans=2)
        assert recorder.admit(1)
        recorder.add(model.TraceSpan(1, 1, None, model.REQUEST,
                                     model.CLIENT, 0.0))
        recorder.add(model.TraceSpan(1, 2, 1, model.ATTEMPT,
                                     model.CLIENT, 0.0))
        # At capacity: a new trace is rejected and counted...
        assert not recorder.admit(2)
        assert recorder.dropped_traces == 1
        # ...but the admitted trace may still finish recording.
        recorder.add(model.TraceSpan(1, 3, 2, model.SERVER_EXEC,
                                     model.SERVER, 0.0))
        assert len(recorder) == 3

    def test_finished_spans_skips_open_ones(self):
        recorder = SpanRecorder()
        recorder.admit(1)
        open_span = recorder.add(model.TraceSpan(
            1, 1, None, model.REQUEST, model.CLIENT, 0.0))
        closed = recorder.add(model.TraceSpan(
            1, 2, 1, model.ATTEMPT, model.CLIENT, 0.0, end_s=0.5))
        assert recorder.finished_spans() == [closed]
        assert list(recorder.traces()) == [1]
        with pytest.raises(ValueError):
            open_span.duration_s


class TestMeshTracer:
    def test_trace_ids_consumed_even_when_unsampled(self):
        # Rate 0.1 must pick exactly the trace ids a rate-1.0 run would
        # assign — ids advance on every dispatch regardless of sampling.
        tracer = MeshTracer(TracingConfig(sample_rate=0.0))
        assert tracer.trace() is None
        assert tracer.trace() is None
        sampled = MeshTracer(TracingConfig(sample_rate=1.0))
        sampled.trace()
        sampled.trace()
        third = sampled.trace()
        assert third.trace_id == 3

    def test_context_parenting(self):
        tracer = MeshTracer()
        ctx = tracer.trace()
        root = ctx.start(model.REQUEST, model.CLIENT, 0.0)
        assert root.parent_id is None
        child_ctx = ctx.child(root)
        attempt = child_ctx.start(model.ATTEMPT, model.CLIENT, 0.1)
        assert attempt.parent_id == root.span_id
        explicit = ctx.start(model.WAN_SEND, model.NETWORK, 0.2,
                             parent=attempt)
        assert explicit.parent_id == attempt.span_id
        ctx.end(root, 1.0)
        assert root.duration_s == 1.0

    def test_decision_trace_bypasses_sampling(self):
        tracer = MeshTracer(TracingConfig(sample_rate=0.0))
        ctx = tracer.decision_trace()
        span = ctx.start(model.RECONCILE, model.INTERNAL, 5.0)
        ctx.end(span, 5.0)
        assert tracer.recorder.finished_spans() == [span]
