"""The public API surface: exports exist, are documented, and cohere."""

import inspect

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_all_exports_documented(self):
        for name in repro.__all__:
            if name == "__version__":
                continue
            item = getattr(repro, name)
            doc = inspect.getdoc(item)
            assert doc and doc.strip(), f"{name} lacks a docstring"

    def test_version_is_semver(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)

    def test_scenario_and_balancer_registries_agree_with_docs(self):
        assert len(repro.SCENARIO_NAMES) == 9
        assert "l3" in repro.BALANCER_NAMES
        assert "round-robin" in repro.BALANCER_NAMES
        assert "c3" in repro.BALANCER_NAMES


class TestSubpackages:
    def test_every_subpackage_has_all(self):
        import repro.analysis
        import repro.autoscale
        import repro.balancers
        import repro.core
        import repro.mesh
        import repro.sim
        import repro.telemetry
        import repro.tournament
        import repro.tracing
        import repro.workloads

        for pkg in (repro.analysis, repro.autoscale, repro.balancers,
                    repro.core, repro.mesh, repro.sim, repro.telemetry,
                    repro.tournament, repro.tracing, repro.workloads):
            assert pkg.__all__, pkg.__name__
            for name in pkg.__all__:
                assert hasattr(pkg, name), f"{pkg.__name__}.{name}"

    def test_module_docstrings_everywhere(self):
        import pathlib
        import ast

        root = pathlib.Path(repro.__file__).parent
        for path in root.rglob("*.py"):
            tree = ast.parse(path.read_text(encoding="utf-8"))
            assert ast.get_docstring(tree), f"{path} lacks a module docstring"
