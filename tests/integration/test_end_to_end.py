"""Integration tests: the whole pipeline, small but realistic runs.

These reproduce the paper's qualitative claims on scaled-down runs — they
are the "does the system actually do what the paper says" tests, distinct
from the full-length benchmark suite.
"""

import pytest

from repro.bench.coordinator import (
    ScenarioBenchConfig,
    run_hotel_benchmark,
    run_scenario_benchmark,
)
from repro.core.config import L3Config
from repro.workloads.profiles import (
    BackendProfile,
    constant_series,
    PiecewiseSeries,
)
from repro.workloads.scenarios import Scenario

ENV = ScenarioBenchConfig(warmup_s=20.0, drain_s=15.0)


def asymmetric_scenario(slow_cluster="cluster-2", name="asymmetric"):
    """One cluster is 10x slower — the clearest possible signal."""
    profiles = {}
    for cluster in ("cluster-1", "cluster-2", "cluster-3"):
        slow = cluster == slow_cluster
        profiles[cluster] = BackendProfile(
            median_latency_s=constant_series(0.400 if slow else 0.040),
            p99_latency_s=constant_series(1.200 if slow else 0.120),
            failure_prob=constant_series(0.0),
        )
    return Scenario(name, 600.0, profiles, constant_series(150.0))


class TestLatencyAwareSteering:
    def test_l3_avoids_the_slow_cluster(self):
        result = run_scenario_benchmark(
            asymmetric_scenario(), "l3", duration_s=90.0, seed=3, env=ENV)
        from collections import Counter

        counts = Counter(r.backend for r in result.records)
        slow_share = counts["api/cluster-2"] / result.request_count
        assert slow_share < 0.15, f"slow cluster got {slow_share:.1%}"

    def test_l3_beats_round_robin_on_asymmetric_load(self):
        l3 = run_scenario_benchmark(
            asymmetric_scenario(), "l3", duration_s=90.0, seed=3, env=ENV)
        rr = run_scenario_benchmark(
            asymmetric_scenario(), "round-robin", duration_s=90.0, seed=3,
            env=ENV)
        assert l3.p99_ms < rr.p99_ms * 0.8
        assert l3.p50_ms < rr.p50_ms

    def test_weights_reflect_latency_order(self):
        result = run_scenario_benchmark(
            asymmetric_scenario(), "l3", duration_s=90.0, seed=3, env=ENV)
        weights = result.controller_weights
        assert weights["api/cluster-1"] > weights["api/cluster-2"]
        assert weights["api/cluster-3"] > weights["api/cluster-2"]


class TestSuccessRateSteering:
    def failing_scenario(self):
        profiles = {}
        for cluster in ("cluster-1", "cluster-2", "cluster-3"):
            failing = cluster == "cluster-3"
            profiles[cluster] = BackendProfile(
                median_latency_s=constant_series(0.050),
                p99_latency_s=constant_series(0.150),
                failure_prob=constant_series(0.35 if failing else 0.0),
            )
        return Scenario("one-failing", 600.0, profiles,
                        constant_series(150.0))

    def test_l3_improves_success_rate_over_round_robin(self):
        l3 = run_scenario_benchmark(
            self.failing_scenario(), "l3", duration_s=90.0, seed=3, env=ENV)
        rr = run_scenario_benchmark(
            self.failing_scenario(), "round-robin", duration_s=90.0, seed=3,
            env=ENV)
        # Round-robin sends 1/3 of traffic into the 35 % failure zone.
        assert rr.success_rate < 0.92
        assert l3.success_rate > rr.success_rate + 0.03

    def test_larger_penalty_factor_raises_success_rate(self):
        from repro.core.weighting import WeightingConfig

        small = run_scenario_benchmark(
            self.failing_scenario(), "l3", duration_s=90.0, seed=3, env=ENV,
            l3_config=L3Config(weighting=WeightingConfig(penalty_s=0.05)))
        large = run_scenario_benchmark(
            self.failing_scenario(), "l3", duration_s=90.0, seed=3, env=ENV,
            l3_config=L3Config(weighting=WeightingConfig(penalty_s=2.0)))
        assert large.success_rate >= small.success_rate


class TestRateControlBehaviour:
    def surge_scenario(self):
        profiles = {
            cluster: BackendProfile(
                median_latency_s=constant_series(0.030),
                p99_latency_s=constant_series(0.090),
                failure_prob=constant_series(0.0),
            )
            for cluster in ("cluster-1", "cluster-2", "cluster-3")
        }
        rps = PiecewiseSeries(
            [(0.0, 50.0), (60.0, 50.0), (61.0, 400.0), (120.0, 400.0)])
        return Scenario("surge", 600.0, profiles, rps)

    def test_surge_survives_with_rate_control(self):
        result = run_scenario_benchmark(
            self.surge_scenario(), "l3", duration_s=100.0, seed=3, env=ENV)
        assert result.success_rate == 1.0
        assert result.request_count > 5000


class TestHotelIntegration:
    @pytest.mark.parametrize("algorithm", ["round-robin", "c3", "l3", "p2c"])
    def test_all_algorithms_complete(self, algorithm):
        result = run_hotel_benchmark(
            algorithm, rps=50.0, duration_s=40.0, seed=2, env=ENV)
        assert result.request_count > 1000
        assert result.success_rate == 1.0

    def test_latency_aware_beats_round_robin_median(self):
        rr = run_hotel_benchmark(
            "round-robin", rps=50.0, duration_s=60.0, seed=2, env=ENV)
        l3 = run_hotel_benchmark(
            "l3", rps=50.0, duration_s=60.0, seed=2, env=ENV)
        assert l3.p50_ms < rr.p50_ms
