"""Fidelity integration tests: measured behaviour tracks the model inputs.

These close the loop between the scenario *definitions* and what the mesh
actually *measures* — the reproduction is only meaningful if the simulated
data plane faithfully expresses the trace profiles the scenarios encode.
"""

import pytest

from repro.analysis.stats import latency_timeline, rps_timeline
from repro.bench.coordinator import ScenarioBenchConfig, run_scenario_benchmark
from repro.workloads.scenarios import build_scenario

ENV = ScenarioBenchConfig(warmup_s=10.0, drain_s=15.0)


@pytest.fixture(scope="module")
def observation():
    """One round-robin observation run over scenario-1's first 2 minutes."""
    result = run_scenario_benchmark(
        "scenario-1", "round-robin", duration_s=120.0, seed=5, env=ENV)
    scenario = build_scenario("scenario-1")
    return result, scenario


class TestMeasuredLatencyTracksProfiles:
    def test_per_backend_median_near_profile_median(self, observation):
        result, scenario = observation
        timelines = latency_timeline(
            result.records, bucket_s=30.0, percentiles=(0.50,),
            key=lambda r: r.backend)
        for backend, series in timelines.items():
            cluster = backend.split("/")[-1]
            profile = scenario.cluster_profiles[cluster]
            for bucket_start, point in series:
                measured = point["p50"]
                modelled = profile.median_latency_s.value_at(
                    bucket_start + 15.0)
                # Measured = service time + WAN RTT (0 or ~20 ms) + noise;
                # it must sit within a factor of ~2 of the model.
                assert modelled * 0.5 < measured < modelled * 2.0 + 0.05, (
                    backend, bucket_start)

    def test_measured_rps_tracks_offered_load(self, observation):
        result, scenario = observation
        series = rps_timeline(result.records, bucket_s=20.0)
        # The first and last buckets are partially covered (measurement
        # starts after warm-up and ends mid-bucket) — skip the edges.
        for bucket_start, measured in series[1:-1]:
            offered = scenario.rps.value_at(bucket_start + 10.0)
            assert offered * 0.85 < measured < offered * 1.15

    def test_round_robin_backend_shares_equal(self, observation):
        result, _scenario = observation
        from collections import Counter

        counts = Counter(r.backend for r in result.records)
        shares = [count / result.request_count for count in counts.values()]
        assert all(abs(share - 1 / 3) < 0.01 for share in shares)


class TestCrossAlgorithmInvariants:
    @pytest.fixture(scope="class")
    def runs(self):
        return {
            algorithm: run_scenario_benchmark(
                "scenario-2", algorithm, duration_s=60.0, seed=5, env=ENV)
            for algorithm in ("round-robin", "c3", "l3", "p2c")
        }

    def test_same_offered_load_same_request_count(self, runs):
        counts = {r.request_count for r in runs.values()}
        assert len(counts) == 1  # open loop: identical schedules

    def test_all_requests_served(self, runs):
        for result in runs.values():
            assert result.success_rate == 1.0

    def test_records_are_complete_and_ordered(self, runs):
        for result in runs.values():
            for record in result.records:
                assert record.end_s >= record.start_s >= 0
                assert record.start_s >= record.intended_start_s - 1e-9
                assert record.attempts == 1

    def test_latency_aware_algorithms_not_worse_than_rr(self, runs):
        rr = runs["round-robin"].p99_ms
        for name in ("c3", "l3", "p2c"):
            assert runs[name].p99_ms < rr * 1.10, name


class TestWeightDynamics:
    def test_weights_move_with_the_trace(self):
        """L3's weights at the end of two different windows differ —
        the controller is genuinely tracking the moving trace."""
        early = run_scenario_benchmark(
            "scenario-1", "l3", duration_s=60.0, seed=5, env=ENV)
        late = run_scenario_benchmark(
            "scenario-1", "l3", duration_s=240.0, seed=5, env=ENV)
        assert early.controller_weights != late.controller_weights

    def test_split_update_count_matches_reconciles(self):
        result = run_scenario_benchmark(
            "scenario-1", "l3", duration_s=60.0, seed=5, env=ENV)
        # 70 s of run time at one reconcile per 5 s: within the window
        # (exact count depends on propagation-delay cutoff at run end).
        assert result.request_count > 0
