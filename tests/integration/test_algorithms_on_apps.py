"""Every algorithm on every application — wiring completeness matrix."""

import pytest

from repro.bench.coordinator import (
    ScenarioBenchConfig,
    run_hotel_benchmark,
    run_scenario_benchmark,
    run_social_benchmark,
)
from repro.balancers.factory import BALANCER_NAMES

ENV = ScenarioBenchConfig(warmup_s=10.0, drain_s=10.0)


class TestAlgorithmMatrix:
    @pytest.mark.parametrize("algorithm", BALANCER_NAMES)
    def test_scenario_runs_under_every_algorithm(self, algorithm):
        result = run_scenario_benchmark(
            "scenario-5", algorithm, duration_s=20.0, seed=4, env=ENV)
        assert result.request_count > 100
        assert result.p99_ms > 0

    @pytest.mark.parametrize("algorithm", ["failover", "p2c"])
    def test_hotel_runs_under_extension_algorithms(self, algorithm):
        result = run_hotel_benchmark(
            algorithm, rps=40.0, duration_s=25.0, seed=4, env=ENV)
        assert result.request_count > 500
        assert result.success_rate == 1.0

    def test_social_runs_under_c3(self):
        result = run_social_benchmark(
            "c3", rps=40.0, duration_s=25.0, seed=4, env=ENV)
        assert result.request_count > 500


class TestFailoverBehaviour:
    def test_failover_keeps_everything_local_when_healthy(self):
        result = run_scenario_benchmark(
            "scenario-5", "failover", duration_s=20.0, seed=4, env=ENV)
        assert {r.backend for r in result.records} == {"api/cluster-1"}

    def test_failover_moves_off_a_broken_local_cluster(self):
        from repro.workloads.profiles import (
            BackendProfile,
            constant_series,
        )
        from repro.workloads.scenarios import Scenario

        profiles = {}
        for cluster in ("cluster-1", "cluster-2", "cluster-3"):
            broken = cluster == "cluster-1"  # the client's own cluster
            profiles[cluster] = BackendProfile(
                median_latency_s=constant_series(0.030),
                p99_latency_s=constant_series(0.090),
                failure_prob=constant_series(0.9 if broken else 0.0),
            )
        scenario = Scenario("local-broken", 600.0, profiles,
                            constant_series(100.0))
        result = run_scenario_benchmark(
            scenario, "failover", duration_s=60.0, seed=4, env=ENV)
        remote = sum(
            1 for r in result.records if r.backend != "api/cluster-1")
        assert remote / result.request_count > 0.8
        assert result.success_rate > 0.85
