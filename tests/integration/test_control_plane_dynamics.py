"""Control-plane dynamics: propagation delay, staleness decay, recovery.

These pin down the §4 behaviours that only show up when the whole loop
(proxy → scraper → controller → TrafficSplit → proxy) runs together.
"""

import pytest

from repro.balancers.l3 import L3Balancer
from repro.core.config import L3Config
from repro.mesh.mesh import ServiceMesh
from repro.mesh.network import WanLink
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.telemetry.query import PromMetricsSource
from repro.telemetry.scraper import Scraper
from repro.telemetry.timeseries import TimeSeriesStore
from repro.workloads.loadgen import OpenLoopLoadGenerator
from repro.workloads.profiles import constant_backend_profile

CLUSTERS = ["cluster-1", "cluster-2", "cluster-3"]


def build_world(seed=3, propagation_delay_s=0.5, profiles=None):
    sim = Simulator()
    rng = RngRegistry(seed)
    mesh = ServiceMesh(
        sim, rng, clusters=CLUSTERS,
        wan_link=WanLink(base_delay_s=0.010, jitter_p99_ratio=1.0,
                         drift_amplitude=0.0, spike_prob=0.0))
    profiles = profiles or {
        "cluster-1": constant_backend_profile(0.020, 0.060),
        "cluster-2": constant_backend_profile(0.200, 0.600),
        "cluster-3": constant_backend_profile(0.020, 0.060),
    }
    mesh.deploy_service("api", profiles=profiles)
    store = TimeSeriesStore()
    scraper = Scraper(store, interval_s=5.0)
    source = PromMetricsSource(store, scope="cluster-1")
    balancer = L3Balancer(
        sim, "api", mesh.deployment("api").backend_names(), source,
        config=L3Config(), propagation_delay_s=propagation_delay_s)
    proxy = mesh.client_proxy("cluster-1", "api", balancer)
    mesh.register_all_telemetry(scraper)
    sim.spawn(scraper.run(sim))
    balancer.start(sim)
    return sim, rng, mesh, balancer, proxy


class TestPropagationDelay:
    def test_weights_lag_the_controller_by_the_push_delay(self):
        sim, rng, mesh, balancer, proxy = build_world(
            propagation_delay_s=2.0)
        records = []
        loadgen = OpenLoopLoadGenerator(
            proxy, 100.0, rng.stream("load"), records)
        sim.spawn(loadgen.run(sim, 60.0))

        observed = {}

        def snapshot(label):
            observed[label] = dict(balancer.split.weights)

        # First reconcile fires at t=5; its weights land at t=7.
        sim.call_at(6.0, snapshot, "before-propagation")
        sim.call_at(7.5, snapshot, "after-propagation")
        sim.run(until=61.0)
        balancer.stop()
        sim.run(until=70.0)
        assert observed["before-propagation"] == {
            name: 1 for name in balancer.split.backend_names()}
        assert observed["after-propagation"] != observed["before-propagation"]


class TestStalenessDecay:
    def test_quiet_backend_weight_recovers_toward_default(self):
        """§4: without traffic, EWMAs converge back to their defaults.

        The slow backend's weight collapses while traffic flows; once the
        load stops entirely (no metrics for anyone), its filtered latency
        decays back toward the 5 s default — the same value as everyone
        else's — so the weights re-converge.
        """
        sim, rng, mesh, balancer, proxy = build_world()
        records = []
        loadgen = OpenLoopLoadGenerator(
            proxy, 150.0, rng.stream("load"), records)
        sim.spawn(loadgen.run(sim, 60.0))
        sim.run(until=61.0)

        weights_loaded = dict(balancer.controller.last_weights)
        ratio_loaded = (weights_loaded["api/cluster-1"]
                        / weights_loaded["api/cluster-2"])
        assert ratio_loaded > 2.0  # slow cluster-2 was penalised

        # Silence: the controller keeps reconciling on stale metrics.
        sim.run(until=300.0)
        balancer.stop()
        sim.run(until=310.0)
        weights_quiet = dict(balancer.controller.last_weights)
        ratio_quiet = (weights_quiet["api/cluster-1"]
                       / weights_quiet["api/cluster-2"])
        assert ratio_quiet < ratio_loaded / 2.0
        assert ratio_quiet == pytest.approx(1.0, rel=0.25)


class TestRecoveryAfterDegradation:
    def test_weights_follow_a_backend_through_degradation_and_back(self):
        from repro.workloads.profiles import (
            BackendProfile,
            PiecewiseSeries,
            constant_series,
        )

        degraded = BackendProfile(
            median_latency_s=PiecewiseSeries(
                [(0.0, 0.020), (60.0, 0.020), (61.0, 0.400),
                 (120.0, 0.400), (121.0, 0.020), (240.0, 0.020)]),
            p99_latency_s=PiecewiseSeries(
                [(0.0, 0.060), (60.0, 0.060), (61.0, 1.200),
                 (120.0, 1.200), (121.0, 0.060), (240.0, 0.060)]),
            failure_prob=constant_series(0.0),
        )
        profiles = {
            "cluster-1": constant_backend_profile(0.020, 0.060),
            "cluster-2": degraded,
            "cluster-3": constant_backend_profile(0.020, 0.060),
        }
        sim, rng, mesh, balancer, proxy = build_world(profiles=profiles)
        records = []
        loadgen = OpenLoopLoadGenerator(
            proxy, 150.0, rng.stream("load"), records)
        sim.spawn(loadgen.run(sim, 240.0))

        shares = {}

        def record_share(label):
            weights = balancer.split.weights
            total = sum(weights.values())
            shares[label] = weights["api/cluster-2"] / total

        sim.call_at(55.0, record_share, "healthy")
        sim.call_at(110.0, record_share, "degraded")
        sim.call_at(235.0, record_share, "recovered")
        sim.run(until=241.0)
        balancer.stop()
        sim.run(until=250.0)

        assert shares["degraded"] < shares["healthy"] / 3.0
        assert shares["recovered"] > shares["degraded"] * 2.0
