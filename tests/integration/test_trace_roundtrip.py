"""The §5.1 loop: simulate → trace → rebuild scenario → re-simulate.

The paper built its scenarios from production distributed-tracing data by
excluding network-delay spans and extracting execution latency. These
tests close that loop inside the repo: a traced benchmark run's OTLP
export must rebuild into a runnable scenario whose derived rate and
latency series agree with the original run's telemetry.
"""

import statistics

import pytest

from repro.analysis import critical_path
from repro.bench.coordinator import ScenarioBenchConfig, run_scenario_benchmark
from repro.tracing import (
    MeshTracer,
    TracingConfig,
    scenario_from_otlp,
    to_otlp,
    workload_spans,
)
from repro.tracing import model
from repro.workloads.spans import execution_latencies

DURATION_S = 40.0
SEED = 11


@pytest.fixture(scope="module")
def traced_run():
    """One fully-traced run of failure-1 with retries enabled.

    failure-1's failure injection plus two client retries exercises the
    multi-attempt path, so the RequestRecord.attempts signal is
    non-trivial in the assertions below.
    """
    tracer = MeshTracer(TracingConfig(sample_rate=1.0))
    env = ScenarioBenchConfig(warmup_s=10.0, drain_s=10.0,
                              max_retries=2, retry_backoff_s=0.005)
    result = run_scenario_benchmark(
        "failure-1", "round-robin", duration_s=DURATION_S, seed=SEED,
        env=env, tracer=tracer)
    return result, tracer, to_otlp(tracer.recorder)


def _root_spans(tracer):
    return {
        span.attributes["request_id"]: span
        for span in tracer.recorder.finished_spans()
        if span.name == model.REQUEST
    }


class TestTraceMatchesTelemetry:
    def test_every_measured_record_has_a_trace(self, traced_run):
        result, tracer, _data = traced_run
        roots = _root_spans(tracer)
        assert result.records
        for record in result.records:
            assert record.request_id in roots

    def test_span_latency_equals_record_latency(self, traced_run):
        result, tracer, _data = traced_run
        roots = _root_spans(tracer)
        for record in result.records:
            root = roots[record.request_id]
            assert root.start_s == pytest.approx(record.intended_start_s)
            assert root.duration_s == pytest.approx(record.latency_s)

    def test_record_attempts_match_span_attempt_counts(self, traced_run):
        """The surfaced RequestRecord.attempts signal is span-accurate."""
        result, tracer, _data = traced_run
        roots = _root_spans(tracer)
        attempts_by_trace = {}
        for span in tracer.recorder.finished_spans():
            if span.name == model.ATTEMPT:
                attempts_by_trace[span.trace_id] = (
                    attempts_by_trace.get(span.trace_id, 0) + 1)
        retried = 0
        for record in result.records:
            root = roots[record.request_id]
            assert root.attributes["attempts"] == record.attempts
            assert attempts_by_trace[root.trace_id] == record.attempts
            retried += record.attempts > 1
        # failure-1 with max_retries=2 must actually retry something.
        assert retried > 0

    def test_critical_path_attempt_totals_match_records(self, traced_run):
        result, tracer, _data = traced_run
        breakdown = critical_path(tracer.recorder)
        # Traces cover warm-up and drain too, so compare >=, per backend.
        recorded = {}
        for record in result.records:
            recorded[record.backend] = (
                recorded.get(record.backend, 0) + record.attempts)
        for backend, total in recorded.items():
            assert breakdown[backend].attempts >= total


class TestScenarioRoundTrip:
    def test_rebuilt_rate_series_matches_observed_rate(self, traced_run):
        _result, tracer, data = traced_run
        spans = workload_spans(data)
        servers = [s for s in spans if s.kind == "server"]
        window = max(s.end_s for s in servers)
        rebuilt = scenario_from_otlp(data, "api", window)
        observed_rps = len(servers) / window
        sampled = [rebuilt.rps.value_at(t)
                   for t in range(int(window))]
        assert statistics.fmean(sampled) == pytest.approx(
            observed_rps, rel=0.2)

    def test_rebuilt_latency_profile_matches_span_latencies(self, traced_run):
        _result, _tracer, data = traced_run
        spans = workload_spans(data)
        window = max(s.end_s for s in spans if s.kind == "server")
        rebuilt = scenario_from_otlp(data, "api", window)
        per_cluster = {}
        for _svc, cluster, _start, execution in execution_latencies(spans):
            per_cluster.setdefault(cluster, []).append(execution)
        assert set(rebuilt.cluster_profiles) == set(per_cluster)
        for cluster, values in per_cluster.items():
            profile = rebuilt.cluster_profiles[cluster]
            exact = statistics.median(values)
            sampled = statistics.fmean(
                profile.median_latency_s.value_at(t)
                for t in range(int(window)))
            # Bucketed per-window medians vs the global median: the same
            # data, so they agree well within 2x even under drift.
            assert exact * 0.5 <= sampled <= exact * 2.0

    def test_rebuilt_scenario_is_runnable(self, traced_run):
        _result, _tracer, data = traced_run
        rebuilt = scenario_from_otlp(data, "api", 30.0, name="rebuilt")
        again = run_scenario_benchmark(
            rebuilt, "round-robin", duration_s=20.0, seed=SEED,
            env=ScenarioBenchConfig(warmup_s=5.0, drain_s=5.0))
        assert again.request_count > 0
        assert again.success_rate > 0.5
