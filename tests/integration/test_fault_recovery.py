"""End-to-end fault recovery (the robustness acceptance bar).

One deterministic fixed-seed run per property: cluster-2 blackholes on a
steady scenario while the client has a 1-second deadline, and

* no request hangs the load generator — failures land within the deadline,
* L3 sheds >= 90 % of the dead cluster's traffic within 3 reconcile
  intervals,
* traffic rebalances onto the cluster after it restarts,
* a raising metrics source never kills the reconcile loop.
"""

import pytest

from repro.bench.coordinator import ScenarioBenchConfig, run_scenario_benchmark
from repro.bench.fault_matrix import (
    faulted_share,
    recovery_intervals,
    steady_scenario,
)
from repro.faults import ClusterOutage, ScrapeOutage

SEED = 1
DURATION_S = 120.0
# The outage: cluster-2 is dead silent from t=40 to t=80 of the measured
# period, then every replica restarts.
OUTAGE = ClusterOutage("cluster-2", at_s=40.0, duration_s=40.0,
                       mode="blackhole")
ENV = ScenarioBenchConfig(request_timeout_s=1.0)
RECONCILE_INTERVAL_S = 5.0


@pytest.fixture(scope="module")
def blackhole_run():
    return run_scenario_benchmark(
        steady_scenario(DURATION_S), "l3", duration_s=DURATION_S,
        seed=SEED, env=ENV, faults=[OUTAGE])


def shifted(offset_s):
    """Measured-period time -> absolute simulation time."""
    return ENV.warmup_s + offset_s


class TestBlackholeOutage:
    def test_fault_applied_and_reverted(self, blackhole_run):
        assert [d.split("(")[0] for _t, d in blackhole_run.fault_log] == [
            "apply ClusterOutage", "revert ClusterOutage"]
        times = [t for t, _d in blackhole_run.fault_log]
        assert times == [shifted(40.0), shifted(80.0)]

    def test_no_request_hangs_past_the_deadline(self, blackhole_run):
        # Every scheduled request completed (none parked forever), and
        # every failure resolved within the 1 s deadline (plus the small
        # client-side pre-deadline overhead).
        records = blackhole_run.records
        assert len(records) > 10_000  # ~150 rps * 120 s, nothing lost
        failed = [r for r in records if not r.success]
        assert failed, "a blackhole with timeouts must produce failures"
        assert max(r.end_s - r.start_s for r in failed) <= 1.0 + 1e-6

    def test_l3_sheds_faulted_cluster_within_three_reconciles(
            self, blackhole_run):
        # After 3 reconcile intervals, <= 10 % of traffic still reaches
        # the dead cluster (acceptance: >= 90 % shifted off).
        after_reaction = faulted_share(
            blackhole_run.records,
            shifted(40.0 + 3 * RECONCILE_INTERVAL_S), shifted(80.0))
        assert after_reaction < 0.10

    def test_success_rate_recovers_during_the_outage(self, blackhole_run):
        window = [r for r in blackhole_run.records
                  if shifted(60.0) <= r.intended_start_s < shifted(80.0)]
        ok = sum(1 for r in window if r.success) / len(window)
        assert ok > 0.90  # only the shed remainder still fails

    def test_traffic_rebalances_after_restart(self, blackhole_run):
        during = faulted_share(
            blackhole_run.records, shifted(55.0), shifted(80.0))
        after = faulted_share(
            blackhole_run.records, shifted(95.0), shifted(DURATION_S))
        assert after > during
        assert after > 0.15  # back toward its ~1/3 steady-state share

    def test_tail_latency_recovers_after_restart(self, blackhole_run):
        pre = [r for r in blackhole_run.records
               if r.intended_start_s < shifted(40.0)]
        pre_p99_s = sorted(r.latency_s for r in pre)[int(0.99 * len(pre))]
        assert recovery_intervals(
            blackhole_run.records, shifted(80.0), pre_p99_s) is not None

    def test_run_is_deterministic(self, blackhole_run):
        repeat = run_scenario_benchmark(
            steady_scenario(DURATION_S), "l3", duration_s=DURATION_S,
            seed=SEED, env=ENV, faults=[OUTAGE])
        assert repeat.request_count == blackhole_run.request_count
        assert repeat.controller_weights == blackhole_run.controller_weights
        sample = {r.request_id: (r.backend, r.end_s, r.success)
                  for r in repeat.records[:500]}
        baseline = {r.request_id: (r.backend, r.end_s, r.success)
                    for r in blackhole_run.records[:500]}
        assert sample == baseline


class TestScrapeOutageEndToEnd:
    def test_controller_survives_a_scrape_outage(self):
        # The scraper pauses for 30 s: queries come back empty, the decay
        # path runs, and the benchmark completes with healthy traffic.
        result = run_scenario_benchmark(
            steady_scenario(90.0), "l3", duration_s=90.0, seed=SEED,
            env=ENV, faults=[ScrapeOutage(at_s=20.0, duration_s=30.0)])
        assert result.success_rate > 0.99
        assert len(result.fault_log) == 2
