"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def rng_registry() -> RngRegistry:
    return RngRegistry(seed=1234)


@pytest.fixture
def rng(rng_registry):
    return rng_registry.stream("test")
