"""Tests for the telemetry-driven elasticity subsystem."""
