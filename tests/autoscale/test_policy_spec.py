"""AutoscalePolicy validation and the --autoscale spec grammar."""

import pytest

from repro.autoscale import (
    AutoscalePolicy,
    describe_policies,
    parse_autoscale_spec,
    resolve_autoscale_policies,
)
from repro.errors import AutoscaleSpecError, ConfigError

CLUSTERS = ("cluster-1", "cluster-2", "cluster-3")


class TestPolicyValidation:
    def test_defaults_are_valid(self):
        policy = AutoscalePolicy()
        assert policy.metric == "inflight"
        assert policy.query_window_s == policy.interval_s

    def test_window_overrides_query_window(self):
        assert AutoscalePolicy(window_s=7.0).query_window_s == 7.0

    @pytest.mark.parametrize("kwargs", [
        {"metric": "cpu"},
        {"target": 0.0},
        {"metric": "inflight", "target": 1.5},
        {"min_replicas": 0},
        {"min_replicas": 5, "max_replicas": 2},
        {"interval_s": 0.0},
        {"provisioning_lag_s": -1.0},
        {"warmup_s": -1.0},
        {"cold_start_factor": 0.5},
        {"scale_up_stabilization_s": -1.0},
        {"scale_down_stabilization_s": -1.0},
        {"window_s": 0.0},
    ])
    def test_bad_fields_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            AutoscalePolicy(**kwargs)

    def test_rps_target_may_exceed_one(self):
        # The utilization ceiling applies to the inflight metric only.
        assert AutoscalePolicy(metric="rps", target=40.0).target == 40.0


class TestSpecGrammar:
    def test_wildcard_covers_every_cluster(self):
        policies = parse_autoscale_spec("*:target=0.4:max=8", CLUSTERS)
        assert sorted(policies) == sorted(CLUSTERS)
        assert all(p.target == 0.4 and p.max_replicas == 8
                   for p in policies.values())

    def test_named_entry_overrides_wildcard_fieldwise(self):
        policies = parse_autoscale_spec(
            "*:target=0.4:max=8 ; cluster-2:max=2", CLUSTERS)
        assert policies["cluster-2"].max_replicas == 2
        assert policies["cluster-2"].target == 0.4  # inherited
        assert policies["cluster-1"].max_replicas == 8

    def test_named_only_spec_covers_named_clusters(self):
        policies = parse_autoscale_spec(
            "cluster-1:metric=rps:target=40:min=2:max=6", CLUSTERS)
        assert list(policies) == ["cluster-1"]
        assert policies["cluster-1"].metric == "rps"
        assert policies["cluster-1"].min_replicas == 2

    def test_every_documented_key_parses(self):
        spec = ("*:metric=p99:target=0.3:min=2:max=5:interval=10:lag=25"
                ":warmup=12:cold=1.5:up-window=5:down-window=90:window=20")
        policy = parse_autoscale_spec(spec, CLUSTERS)["cluster-1"]
        assert policy.metric == "p99"
        assert policy.provisioning_lag_s == 25.0
        assert policy.cold_start_factor == 1.5
        assert policy.scale_up_stabilization_s == 5.0
        assert policy.scale_down_stabilization_s == 90.0
        assert policy.window_s == 20.0

    @pytest.mark.parametrize("spec", [
        "",
        ";;",
        ":target=0.5",
        "*:target",
        "*:bogus=1",
        "*:target=abc",
        "*:metric=cpu",
        "*:target=0.5:target=0.6",
        "* ; *",
        "cluster-1 ; cluster-1",
        "cluster-9:target=0.5",
        "*:min=4:max=2",
        "*:target=2.0",  # inflight utilization ceiling
    ])
    def test_bad_specs_rejected_at_parse_time(self, spec):
        with pytest.raises(AutoscaleSpecError):
            parse_autoscale_spec(spec, CLUSTERS)

    def test_spec_error_is_a_config_error(self):
        with pytest.raises(ConfigError):
            parse_autoscale_spec("*:bogus=1", CLUSTERS)


class TestResolve:
    def test_single_policy_applies_everywhere(self):
        policy = AutoscalePolicy(max_replicas=4)
        resolved = resolve_autoscale_policies(policy, CLUSTERS)
        assert sorted(resolved) == sorted(CLUSTERS)
        assert all(p is policy for p in resolved.values())

    def test_mapping_passes_through(self):
        policy = AutoscalePolicy()
        resolved = resolve_autoscale_policies({"cluster-2": policy}, CLUSTERS)
        assert resolved == {"cluster-2": policy}

    def test_string_is_parsed(self):
        resolved = resolve_autoscale_policies("*:max=4", CLUSTERS)
        assert resolved["cluster-3"].max_replicas == 4

    @pytest.mark.parametrize("bad", [
        {"cluster-9": AutoscalePolicy()},
        {"cluster-1": 0.5},
        42,
    ])
    def test_bad_arguments_rejected(self, bad):
        with pytest.raises(AutoscaleSpecError):
            resolve_autoscale_policies(bad, CLUSTERS)


class TestDescribe:
    def test_mentions_clusters_and_non_default_fields(self):
        text = describe_policies(
            parse_autoscale_spec("*:target=0.4 ; cluster-2:max=2", CLUSTERS))
        assert "cluster-1" in text and "cluster-2" in text
        assert "max_replicas=2" in text
        assert "target=0.4" in text

    def test_default_policy_reads_as_defaults(self):
        assert "defaults" in describe_policies({"c": AutoscalePolicy()})
