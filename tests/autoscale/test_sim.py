"""Autoscaling wired through the benchmark coordinator: determinism,
engine guards, and the elasticity study cells on a short surge."""

import dataclasses

import pytest

from repro.autoscale.study import (
    count_replica_flaps,
    count_weight_flaps,
    run_elasticity_cell,
)
from repro.bench.coordinator import run_scenario_benchmark
from repro.bench.parallel import Cell, run_cells
from repro.errors import ConfigError
from repro.sim.shard import run_sharded_benchmark
from repro.workloads.scenarios import build_scenario

SHORT = 90.0


class TestSurgeRun:
    @pytest.fixture(scope="class")
    def cell(self):
        return run_elasticity_cell(scenario="elastic-surge",
                                   mode="autoscale", duration_s=SHORT,
                                   seed=3)

    def test_scaler_fires_and_stays_in_bounds(self, cell):
        assert cell["scale_events"] > 0
        policies = build_scenario("elastic-surge", SHORT).autoscale
        bounds = {f"api/{c}": p for c, p in policies.items()}
        assert set(cell["final_replicas"]) == set(bounds)
        for backend, count in cell["final_replicas"].items():
            policy = bounds[backend]
            assert policy.min_replicas <= count <= policy.max_replicas

    def test_cost_integral_is_populated(self, cell):
        # 6 replicas exist at minimum across the whole accounted span.
        assert cell["replica_seconds"] > 0
        assert cell["requests"] > 0
        assert 0.0 < cell["success_rate"] <= 1.0

    def test_result_carries_event_log_and_weight_samples(self):
        scenario = build_scenario("elastic-surge", SHORT)
        result = run_scenario_benchmark(scenario, "l3", duration_s=SHORT,
                                        seed=3)
        assert result.autoscale_events
        for when, backend, delta, after in result.autoscale_events:
            assert delta in (-1, +1)
            assert after >= 1
            assert backend in result.replica_seconds
        assert result.autoscale_events == sorted(result.autoscale_events)
        assert result.weight_samples
        assert result.total_replica_seconds == pytest.approx(
            sum(result.replica_seconds.values()))

    def test_autoscale_off_leaves_result_fields_empty(self):
        scenario = dataclasses.replace(
            build_scenario("elastic-surge", 30.0), autoscale=None)
        result = run_scenario_benchmark(scenario, "round-robin",
                                        duration_s=30.0, seed=3)
        assert result.autoscale_events == []
        assert result.replica_seconds == {}
        assert result.weight_samples == []
        assert result.final_replicas == {}


class TestJobsDeterminism:
    def test_outcomes_identical_across_worker_counts(self):
        cells = [Cell(id=mode, fn=run_elasticity_cell,
                      kwargs={"scenario": "elastic-surge", "mode": mode,
                              "duration_s": 60.0, "seed": 3})
                 for mode in ("autoscale", "fixed-min")]
        serial = run_cells(cells, jobs=1)
        forked = run_cells(cells, jobs=2)
        assert {k: v.unwrap() for k, v in serial.items()} \
            == {k: v.unwrap() for k, v in forked.items()}


class TestEngineGuards:
    def test_shard_engine_rejects_autoscaling_scenarios(self):
        scenario = build_scenario("elastic-surge", 60.0)
        with pytest.raises(ConfigError, match="fixed replica sets"):
            run_sharded_benchmark(scenario, "l3", duration_s=60.0)

    def test_seed_autoscaler_import_path_still_works(self):
        from repro.autoscale import hpa
        from repro.mesh import autoscaler
        assert autoscaler.Autoscaler is hpa.Autoscaler
        assert autoscaler.AutoscalerConfig is hpa.AutoscalerConfig


class TestInteractionMetrics:
    def test_replica_flaps_count_direction_reversals(self):
        events = [(10.0, "a", +1, 2), (20.0, "a", +1, 3),
                  (50.0, "a", -1, 2), (60.0, "b", -1, 1),
                  (70.0, "a", +1, 3)]
        # a: up->down->up = 2 reversals; b: single move = 0.
        assert count_replica_flaps(events) == 2
        assert count_replica_flaps([]) == 0

    def test_weight_flaps_ignore_jitter_inside_dead_band(self):
        steady = [(t, {"a": 0.50 + 0.001 * (t % 2)}) for t in range(10)]
        assert count_weight_flaps(steady) == 0
        flappy = [(0.0, {"a": 0.50}), (1.0, {"a": 0.80}),
                  (2.0, {"a": 0.40}), (3.0, {"a": 0.70})]
        assert count_weight_flaps(flappy) == 2
