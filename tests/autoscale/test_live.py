"""Live-substrate autoscaling: FakeClock-driven scaling of a real
ReplicaServer's capacity semaphore — zero real sleeps, zero sockets."""

import asyncio
import random

import pytest

from repro.autoscale import AutoscalePolicy, BackendAutoscaler
from repro.autoscale.live import LiveAutoscaler, LiveCapacityTarget
from repro.errors import ConfigError
from repro.live.clock import FakeClock
from repro.live.server import ReplicaServer
from repro.telemetry import names
from repro.workloads.profiles import constant_backend_profile


def make_server(capacity=8):
    return ReplicaServer("api/cluster-1", constant_backend_profile(0.0, 0.0),
                         random.Random(0), FakeClock(), capacity=capacity)


class FakeSource:
    def __init__(self, inflight=None):
        self.inflight = inflight

    def server_gauge(self, name, metric, now, window_s):
        return self.inflight


class TestLiveCapacityTarget:
    def test_capacity_moves_in_replica_quanta(self):
        server = make_server(capacity=8)
        target = LiveCapacityTarget(server, unit_capacity=4)
        assert target.replica_count == 2
        assert server.replica_units == 2
        target.add_replica(0.0)
        assert server.capacity == 12 and server.replica_units == 3
        target.remove_replica(1.0)
        assert server.capacity == 8 and server.replica_units == 2

    def test_unit_must_divide_capacity(self):
        with pytest.raises(ConfigError):
            LiveCapacityTarget(make_server(capacity=8), unit_capacity=3)

    def test_unit_must_be_positive(self):
        with pytest.raises(ConfigError):
            LiveCapacityTarget(make_server(capacity=8), unit_capacity=0)

    def test_metrics_page_reports_replica_units(self):
        from repro.live.exposition import parse_exposition
        server = make_server(capacity=8)
        LiveCapacityTarget(server, unit_capacity=4)
        parsed = parse_exposition(server.render_metrics())
        gauges = parsed["server|api/cluster-1"]
        assert gauges[names.REPLICA_COUNT] == 2.0
        assert names.SERVER_QUEUE in gauges


class TestSetCapacityDraining:
    def test_shrink_takes_effect_as_requests_finish(self):
        async def scenario():
            server = make_server(capacity=2)
            # Occupy both slots, then shrink to 1 while they are held:
            # nothing is interrupted, and only one permit comes back.
            first = asyncio.create_task(server._work())
            second = asyncio.create_task(server._work())
            await asyncio.sleep(0)  # let both acquire their slots
            server.set_capacity(1)
            assert server._capacity_debt == 1
            await asyncio.gather(first, second)
            assert server._capacity_debt == 0
            # The single remaining slot still serves.
            assert (await server._work())[0] == 200
            return server

        server = asyncio.run(scenario())
        assert server.requests_served == 3

    def test_growth_pays_down_debt_before_adding_permits(self):
        async def scenario():
            server = make_server(capacity=4)
            server.set_capacity(2)  # idle shrink: debt 2
            assert server._capacity_debt == 2
            server.set_capacity(3)  # growth of 1 only settles debt
            assert server._capacity_debt == 1
            # 3 requests may hold slots at once (capacity 3, debt 1
            # retired by the first to finish).
            results = await asyncio.gather(*(server._work()
                                             for _ in range(3)))
            assert all(status == 200 for status, _body in results)

        asyncio.run(scenario())

    def test_shrink_below_one_rejected(self):
        from repro.errors import MeshError
        with pytest.raises(MeshError):
            make_server(capacity=2).set_capacity(0)


class TestLiveAutoscaler:
    def test_fake_clock_scale_up_without_sleeps(self):
        clock = FakeClock()
        server = make_server(capacity=8)
        target = LiveCapacityTarget(server, unit_capacity=4)
        source = FakeSource(inflight=12.0)
        policy = AutoscalePolicy(target=0.5, min_replicas=1, max_replicas=4,
                                 interval_s=5.0, provisioning_lag_s=10.0,
                                 scale_down_stabilization_s=0.0)
        scaler = BackendAutoscaler("api/cluster-1", target, policy, source)
        loop = LiveAutoscaler(scaler, start_time=clock.now)

        assert loop.tick(clock.advance(4.0)) is False  # not due yet
        assert loop.tick(clock.advance(1.0)) is True  # t=5: evaluates
        # inflight 12 / (0.5 x 4) => desired 4: two launches pending.
        assert scaler.pending_count == 2
        assert server.capacity == 8  # provisioning lag not elapsed
        loop.tick(clock.advance(5.0))  # t=10: still provisioning
        assert server.capacity == 8
        loop.tick(clock.advance(5.0))  # t=15: both admitted
        assert server.capacity == 16
        assert server.replica_units == 4

        source.inflight = 2.0  # load drops: desired 1, one step at a time
        loop.tick(clock.advance(5.0))
        assert server.capacity == 12
        loop.tick(clock.advance(5.0))
        assert server.capacity == 8

    def test_ticks_between_intervals_do_not_step(self):
        clock = FakeClock()
        server = make_server(capacity=8)
        scaler = BackendAutoscaler(
            "api/cluster-1", LiveCapacityTarget(server, 4),
            AutoscalePolicy(interval_s=5.0), FakeSource(inflight=2.0))
        loop = LiveAutoscaler(scaler, start_time=clock.now)
        steps = sum(loop.tick(clock.advance(1.0)) for _ in range(20))
        assert steps == 4  # t=5, 10, 15, 20
