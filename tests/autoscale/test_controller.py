"""BackendAutoscaler control-loop dynamics, driven with stub substrates.

The core is a pure ``step(now)`` state machine, so every HPA behaviour —
provisioning lag, stabilization windows, cancel-before-retire,
one-retirement-per-step, cost accounting — is pinned here with
hand-picked timestamps and no simulator.
"""

import types

import pytest

from repro.autoscale import AutoscalePolicy, BackendAutoscaler
from repro.autoscale.targets import SimBackendTarget
from repro.mesh.service import Backend
from repro.workloads.profiles import constant_backend_profile


class FakeTarget:
    """A bare counter implementing the scale-target protocol."""

    def __init__(self, replicas=1, capacity=4):
        self.replica_count = replicas
        self.capacity_per_replica = capacity
        self.warmup_ticks = 0

    def add_replica(self, now):
        self.replica_count += 1

    def remove_replica(self, now):
        self.replica_count -= 1

    def tick_warmup(self, now):
        self.warmup_ticks += 1


class FakeSource:
    """Telemetry stub: settable inflight gauge + rps/p99 sample."""

    def __init__(self, inflight=None, rps=None, latency_s=None):
        self.inflight = inflight
        self.rps = rps
        self.latency_s = latency_s

    def server_gauge(self, name, metric, now, window_s):
        return self.inflight

    def collect(self, names, now, window_s, percentile):
        if self.rps is None and self.latency_s is None:
            return {name: None for name in names}
        sample = types.SimpleNamespace(rps=self.rps,
                                       latency_s=self.latency_s)
        return {name: sample for name in names}


def make_scaler(policy, *, replicas=1, capacity=4, inflight=None, **source):
    target = FakeTarget(replicas=replicas, capacity=capacity)
    src = FakeSource(inflight=inflight, **source)
    scaler = BackendAutoscaler("api/cluster-1", target, policy, src)
    return scaler, target, src


class TestScaleUp:
    def test_no_telemetry_holds_state(self):
        scaler, target, _src = make_scaler(AutoscalePolicy(), replicas=3)
        scaler.step(15.0)
        assert target.replica_count == 3
        assert scaler.pending_count == 0
        assert scaler.last_desired is None
        assert target.warmup_ticks == 1  # warmup still advances

    def test_provisioning_lag_delays_admission(self):
        policy = AutoscalePolicy(interval_s=15.0, provisioning_lag_s=30.0)
        # inflight 8 against target 0.5 x capacity 4 => desired 4.
        scaler, target, _src = make_scaler(policy, replicas=1, inflight=8.0)
        scaler.step(15.0)
        assert scaler.last_desired == 4
        assert target.replica_count == 1  # launched, not yet serving
        assert scaler.pending_count == 3
        scaler.step(30.0)  # lag has not elapsed (ready at 45)
        assert target.replica_count == 1
        scaler.step(45.0)
        assert target.replica_count == 4
        assert scaler.pending_count == 0
        assert scaler.events == [(45.0, +1, 2), (45.0, +1, 3), (45.0, +1, 4)]
        assert scaler.events_total == 3

    def test_up_stabilization_takes_smallest_recommendation(self):
        policy = AutoscalePolicy(provisioning_lag_s=0.0,
                                 scale_up_stabilization_s=30.0,
                                 scale_down_stabilization_s=30.0)
        scaler, target, src = make_scaler(policy, replicas=1, inflight=2.0)
        scaler.step(0.0)  # desired 1: a low sample enters the window
        src.inflight = 8.0  # the spike begins
        scaler.step(15.0)
        scaler.step(30.0)
        # The 30 s window still contains the desired-1 sample: no launch.
        assert scaler.pending_count == 0 and target.replica_count == 1
        scaler.step(45.0)  # low sample aged out; window is all desired-4
        assert scaler.pending_count == 3

    def test_admission_respects_max_replicas(self):
        policy = AutoscalePolicy(max_replicas=3, provisioning_lag_s=10.0)
        scaler, target, _src = make_scaler(policy, replicas=2, inflight=16.0)
        scaler.step(0.0)
        assert scaler.pending_count == 1  # desired bounded at max 3
        # An operator scales the deployment by hand before the pending
        # replica lands: admission must not overshoot the bound.
        target.replica_count = 3
        scaler.step(10.0)
        assert target.replica_count == 3
        assert scaler.events == []


class TestScaleDown:
    def test_down_stabilization_rides_out_dips(self):
        policy = AutoscalePolicy(provisioning_lag_s=0.0,
                                 scale_down_stabilization_s=60.0)
        scaler, target, src = make_scaler(policy, replicas=4, inflight=8.0)
        scaler.step(0.0)  # desired 4 enters the down-window
        src.inflight = 2.0  # load drops; desired becomes 1
        for t in (15.0, 30.0, 45.0, 60.0):
            scaler.step(t)
            assert target.replica_count == 4, t  # peak still in window
        scaler.step(61.0)  # the desired-4 sample aged out
        assert target.replica_count == 3

    def test_at_most_one_retirement_per_evaluation(self):
        policy = AutoscalePolicy(scale_down_stabilization_s=0.0)
        scaler, target, _src = make_scaler(policy, replicas=4, inflight=2.0)
        scaler.step(15.0)
        assert target.replica_count == 3  # not straight to 1
        scaler.step(30.0)
        assert target.replica_count == 2
        assert scaler.events == [(15.0, -1, 3), (30.0, -1, 2)]

    def test_pending_launches_cancelled_before_retiring_running(self):
        policy = AutoscalePolicy(provisioning_lag_s=100.0,
                                 scale_down_stabilization_s=0.0)
        scaler, target, src = make_scaler(policy, replicas=2, inflight=12.0)
        scaler.step(0.0)  # desired 6: 4 launches enter the pipeline
        assert scaler.pending_count == 4
        src.inflight = 2.0  # desired 1 before anything was admitted
        scaler.step(15.0)
        assert scaler.cancelled == 4  # free: they never served
        assert scaler.pending_count == 0
        assert target.replica_count == 1  # plus one real retirement
        assert scaler.events == [(15.0, -1, 1)]

    def test_never_scales_below_min_replicas(self):
        policy = AutoscalePolicy(min_replicas=2,
                                 scale_down_stabilization_s=0.0)
        scaler, target, _src = make_scaler(policy, replicas=3, inflight=0.0)
        scaler.step(15.0)
        assert scaler.last_desired == 2  # raw 0 bounded up to min
        assert target.replica_count == 2
        scaler.step(30.0)
        assert target.replica_count == 2


class TestSignals:
    def test_rps_metric(self):
        policy = AutoscalePolicy(metric="rps", target=40.0)
        scaler, _target, _src = make_scaler(policy, rps=90.0)
        scaler.step(15.0)
        assert scaler.last_desired == 3  # ceil(90 / 40)

    def test_p99_metric_scales_proportionally(self):
        policy = AutoscalePolicy(metric="p99", target=0.2)
        scaler, _target, _src = make_scaler(
            policy, replicas=2, latency_s=0.5)
        scaler.step(15.0)
        assert scaler.last_desired == 5  # ceil(2 * 0.5 / 0.2)

    def test_p99_without_latency_sample_holds(self):
        policy = AutoscalePolicy(metric="p99", target=0.2)
        scaler, _target, _src = make_scaler(policy, replicas=2, rps=10.0)
        scaler.step(15.0)
        assert scaler.last_desired is None


class TestCostAccounting:
    def test_pending_replicas_bill_like_running_ones(self):
        policy = AutoscalePolicy(provisioning_lag_s=10.0)
        scaler, _target, src = make_scaler(policy, replicas=1, inflight=4.0)
        scaler.step(0.0)  # launch one (desired 2)
        assert scaler.pending_count == 1
        src.inflight = None  # hold state from here on
        scaler.step(10.0)  # 10 s x (1 running + 1 pending)
        assert scaler.replica_seconds == pytest.approx(20.0)
        scaler.finalize(20.0)  # 10 s x 2 running
        assert scaler.replica_seconds == pytest.approx(40.0)

    def test_finalize_is_idempotent(self):
        scaler, _target, _src = make_scaler(AutoscalePolicy(), replicas=2)
        scaler.finalize(30.0)
        scaler.finalize(30.0)
        assert scaler.replica_seconds == pytest.approx(60.0)


class TestSimBackendTargetWarmup:
    def test_cold_start_ramp(self, sim, rng_registry):
        backend = Backend(sim, "svc", "cluster-1",
                          constant_backend_profile(0.1, 0.2), rng_registry,
                          replicas=1, replica_capacity=4)
        target = SimBackendTarget(backend, warmup_s=10.0,
                                  cold_start_factor=2.0)
        target.add_replica(0.0)
        fresh = backend.replicas[-1]
        assert target.replica_count == 2
        assert fresh.service_time_scale == 2.0  # half speed when cold
        target.tick_warmup(5.0)
        assert fresh.service_time_scale == pytest.approx(1.5)
        target.tick_warmup(10.0)
        assert fresh.service_time_scale == 1.0
        target.tick_warmup(20.0)  # ramp finished: no further effect
        assert fresh.service_time_scale == 1.0

    def test_remove_retires_newest_and_forgets_its_ramp(self, sim,
                                                       rng_registry):
        backend = Backend(sim, "svc", "cluster-1",
                          constant_backend_profile(0.1, 0.2), rng_registry,
                          replicas=1, replica_capacity=4)
        target = SimBackendTarget(backend, warmup_s=10.0,
                                  cold_start_factor=2.0)
        target.add_replica(0.0)
        newest = backend.replicas[-1]
        target.remove_replica(1.0)
        assert target.replica_count == 1
        assert newest not in backend.replicas
        assert target._warming == []

    def test_without_warmup_replicas_join_at_full_speed(self, sim,
                                                        rng_registry):
        backend = Backend(sim, "svc", "cluster-1",
                          constant_backend_profile(0.1, 0.2), rng_registry,
                          replicas=1, replica_capacity=4)
        target = SimBackendTarget(backend)
        target.add_replica(0.0)
        assert backend.replicas[-1].service_time_scale == 1.0
