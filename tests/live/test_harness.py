"""End-to-end live harness smoke tests (real sockets, short wall-clock runs).

The acceptance behaviour of the live testbed: with one backend's latency
degraded 5x, the real L3 control loop — scraping real HTTP /metrics
pages into the unmodified PromMetricsSource/L3Controller — shifts weight
away from the degraded backend, while round-robin keeps spraying traffic
uniformly. Runs use a fast control cadence so a few wall-clock seconds
cover many reconcile cycles.
"""

import pytest

from repro.bench.coordinator import BenchmarkResult
from repro.errors import ConfigError
from repro.live.harness import (
    LiveConfig,
    LiveHarness,
    live_l3_config,
    run_live,
    weight_points,
)
from repro.workloads.profiles import BackendProfile, constant_series
from repro.workloads.scenarios import Scenario

PORT_BASE = 19580
UNIFORM_SHARE = 100.0 / 3.0


def latency_profile(median_s):
    return BackendProfile(
        median_latency_s=constant_series(median_s),
        p99_latency_s=constant_series(median_s * 3.0),
        failure_prob=constant_series(0.0))


def degraded_scenario(base_s=0.040, factor=5.0):
    """Three clusters; cluster-2's latency is ``factor`` times the others."""
    profiles = {
        "cluster-1": latency_profile(base_s),
        "cluster-2": latency_profile(base_s * factor),
        "cluster-3": latency_profile(base_s),
    }
    return Scenario("degraded", 120.0, profiles, constant_series(60.0),
                    "one 5x-degraded backend")


def fast_config(algorithm, port_base, duration_s):
    return LiveConfig(
        algorithm=algorithm, duration_s=duration_s, port_base=port_base,
        rps=60.0, scrape_interval_s=0.5, reconcile_interval_s=0.5,
        drain_s=3.0, seed=1)


class TestLiveSmoke:
    def test_l3_shifts_weight_away_from_degraded_backend(self):
        # The acceptance budget is 60 s; 20 s leaves headroom for a
        # loaded CI host (standalone the shift lands well inside 10 s).
        harness = LiveHarness(
            degraded_scenario(),
            fast_config("l3", PORT_BASE, duration_s=20.0))
        result = harness.run()

        assert harness.clean_shutdown, harness.leaked_tasks
        assert result.request_count > 100
        assert result.controller_weights
        points = weight_points(result.controller_weights)
        # >= 20 weight points moved off the degraded backend (from the
        # uniform 33.3 it started at) within the run.
        assert points["api/cluster-2"] <= UNIFORM_SHARE - 20.0, points
        # The trajectory shows the controller actually drove the split.
        assert len(harness.weight_history) >= 5

    def test_round_robin_does_not_shift(self):
        harness = LiveHarness(
            degraded_scenario(),
            fast_config("round-robin", PORT_BASE + 16, duration_s=4.0))
        result = harness.run()

        assert harness.clean_shutdown, harness.leaked_tasks
        # No controller: no weights, no trajectory.
        assert result.controller_weights == {}
        assert harness.weight_history == []
        # Traffic stays uniform regardless of the degraded backend.
        counts = {}
        for record in result.records:
            counts[record.backend] = counts.get(record.backend, 0) + 1
        shares = {name: 100.0 * count / result.request_count
                  for name, count in counts.items()}
        assert shares["api/cluster-2"] > UNIFORM_SHARE - 5.0, shares

    def test_c3_produces_weights_and_clean_shutdown(self):
        result, harness = run_live(
            degraded_scenario(), config=fast_config(
                "c3", PORT_BASE + 32, duration_s=4.0))
        assert harness.clean_shutdown, harness.leaked_tasks
        assert set(result.controller_weights) == {
            "api/cluster-1", "api/cluster-2", "api/cluster-3"}

    def test_ha_mode_has_exactly_one_active_leader(self):
        config = fast_config("l3", PORT_BASE + 48, duration_s=4.0)
        config.ha_replicas = 2
        harness = LiveHarness(degraded_scenario(), config)
        result = harness.run()

        assert harness.clean_shutdown, harness.leaked_tasks
        assert result.controller_weights
        active = [c for c in harness.parts.controllers
                  if c.reconcile_count > 0]
        assert len(active) == 1
        assert len(harness.parts.lease.transitions) == 1

    def test_result_is_a_benchmark_result(self):
        result, harness = run_live(
            degraded_scenario(), config=fast_config(
                "l3", PORT_BASE + 64, duration_s=3.0))
        assert isinstance(result, BenchmarkResult)
        assert result.scenario == "degraded"
        assert result.algorithm == "l3"
        assert result.success_rate == 1.0
        assert all(record.latency_s >= 0.0 for record in result.records)
        # Ports were allocated for 3 replicas plus the metrics endpoint.
        assert len(harness.ports) == 4


class TestLiveConfig:
    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ConfigError):
            LiveConfig(algorithm="p2c")

    def test_duration_must_be_positive(self):
        with pytest.raises(ConfigError):
            LiveConfig(duration_s=0.0)

    def test_port_base_range(self):
        with pytest.raises(ConfigError):
            LiveConfig(port_base=65530)

    def test_ha_replicas_minimum(self):
        with pytest.raises(ConfigError):
            LiveConfig(ha_replicas=0)

    def test_live_l3_config_scales_the_whole_loop(self):
        config = live_l3_config(1.0)
        assert config.reconcile_interval_s == 1.0
        assert config.metrics_window_s == 2.0
        assert config.latency_half_life_s == 1.0
        assert config.staleness_s == 2.0
        # Non-temporal tunables keep the paper's values.
        assert config.percentile == 0.99
        assert config.default_latency_s == 5.0

    def test_live_l3_config_floors_window_at_three_scrape_intervals(self):
        # rate() needs two samples in the window and a live round can
        # land up to one interval late, so 2x the scrape interval (the
        # simulator's minimum) flaps between 1 and 2 visible samples.
        config = live_l3_config(0.5, scrape_interval_s=0.5)
        assert config.metrics_window_s == pytest.approx(1.5)
        # A window already wider than the floor is left alone.
        wide = live_l3_config(5.0, scrape_interval_s=0.5)
        assert wide.metrics_window_s == pytest.approx(10.0)
