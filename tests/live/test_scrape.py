"""Tests for the HTTP scrape loop — fake fetches, fake clock, no sockets."""

import asyncio

import pytest

from repro.errors import TelemetryError
from repro.live.clock import FakeClock
from repro.live.exposition import render_exposition
from repro.live.scrape import HttpScraper
from repro.telemetry import names
from repro.telemetry.metrics import BackendTelemetry
from repro.telemetry.query import PromMetricsSource
from repro.telemetry.timeseries import TimeSeriesStore

SERIES = "cluster-1|api/cluster-2"


class FakePage:
    """An in-memory /metrics endpoint rendered from a telemetry bundle."""

    def __init__(self, bundles, on_fetch=None):
        self.bundles = bundles
        self.on_fetch = on_fetch
        self.fetches = 0

    async def __call__(self, host, port):
        self.fetches += 1
        if self.on_fetch is not None:
            self.on_fetch()
        return render_exposition(self.bundles)


def scrape(scraper, now=None):
    return asyncio.run(scraper.scrape_once(now))


class TestScrapeOnce:
    def test_samples_land_in_store(self):
        telemetry = BackendTelemetry("api/cluster-2", scrape_name=SERIES)
        telemetry.on_request_sent()
        telemetry.on_response(0.02, True)
        store = TimeSeriesStore()
        scraper = HttpScraper(store, [("h", 1)], FakeClock(4.0),
                              fetch=FakePage([telemetry]))
        assert scrape(scraper) == 1
        assert store.series(SERIES, names.REQUESTS_TOTAL).latest_in_window(
            0.0, 10.0) == (4.0, 1.0)

    def test_feeds_prom_metrics_source_unchanged(self):
        """Scraped-over-HTTP pages drive the same windowed queries."""
        telemetry = BackendTelemetry("api/cluster-2", scrape_name=SERIES)
        clock = FakeClock(0.0)
        store = TimeSeriesStore()
        scraper = HttpScraper(store, [("h", 1)], clock,
                              fetch=FakePage([telemetry]))
        scrape(scraper)  # t=0: no traffic yet
        for _ in range(50):
            telemetry.on_request_sent()
            telemetry.on_response(0.02, True)
        clock.advance(10.0)
        scrape(scraper)  # t=10: 50 requests later

        source = PromMetricsSource(store, scope="cluster-1")
        sample = source.collect(["api/cluster-2"], 10.0, 10.0, 0.99)[
            "api/cluster-2"]
        assert sample is not None
        assert sample.rps == pytest.approx(5.0)
        assert sample.success_rate == 1.0
        assert sample.latency_s is not None

    def test_one_capture_timestamp_per_round(self):
        """Fetch latency must not skew per-target sample times: all
        targets of one round share the round's start timestamp."""
        telemetry = BackendTelemetry("api/cluster-2", scrape_name=SERIES)
        other = BackendTelemetry("api/cluster-3",
                                 scrape_name="cluster-1|api/cluster-3")
        clock = FakeClock(2.0)
        store = TimeSeriesStore()
        # Every fetch advances the clock, simulating slow targets.
        pages = {1: FakePage([telemetry]), 2: FakePage([other])}

        async def slow_fetch(host, port):
            clock.advance(0.4)
            return await pages[port](host, port)

        scraper = HttpScraper(store, [("h", 1), ("h", 2)], clock,
                              fetch=slow_fetch)
        scrape(scraper)
        first = store.series(SERIES, names.REQUESTS_TOTAL).latest_in_window(
            0.0, 10.0)
        second = store.series(
            "cluster-1|api/cluster-3",
            names.REQUESTS_TOTAL).latest_in_window(0.0, 10.0)
        assert first[0] == second[0] == 2.0

    def test_failed_target_contributes_nothing(self):
        telemetry = BackendTelemetry("api/cluster-2", scrape_name=SERIES)
        good = FakePage([telemetry])

        async def fetch(host, port):
            if port == 9:
                raise OSError("connection refused")
            return await good(host, port)

        store = TimeSeriesStore()
        scraper = HttpScraper(store, [("h", 9), ("h", 1)], FakeClock(1.0),
                              fetch=fetch)
        assert scrape(scraper) == 1
        assert scraper.failed_scrapes == 1
        # The healthy target was still scraped in the same round.
        assert store.series(SERIES, names.REQUESTS_TOTAL).latest_in_window(
            0.0, 10.0) is not None

    def test_sustained_failure_starves_the_window_to_none(self):
        """A dead endpoint produces the no-data → None path that triggers
        the controller's decay-toward-default behaviour."""

        async def fetch(host, port):
            raise asyncio.TimeoutError()

        store = TimeSeriesStore()
        scraper = HttpScraper(store, [("h", 1)], FakeClock(), fetch=fetch)
        for _ in range(3):
            scrape(scraper)
        source = PromMetricsSource(store, scope="cluster-1")
        assert source.collect(["api/cluster-2"], 10.0, 10.0, 0.99)[
            "api/cluster-2"] is None
        assert scraper.failed_scrapes == 3

    def test_malformed_page_counts_as_failure(self):
        async def fetch(host, port):
            return "requests_total 5\n"  # no labels: parse error

        scraper = HttpScraper(TimeSeriesStore(), [("h", 1)], FakeClock(),
                              fetch=fetch)
        assert scrape(scraper) == 0
        assert scraper.failed_scrapes == 1

    def test_explicit_now_overrides_clock(self):
        telemetry = BackendTelemetry("api/cluster-2", scrape_name=SERIES)
        store = TimeSeriesStore()
        scraper = HttpScraper(store, [("h", 1)], FakeClock(99.0),
                              fetch=FakePage([telemetry]))
        scrape(scraper, now=5.0)
        sample = store.series(SERIES, names.REQUESTS_TOTAL).latest_in_window(
            0.0, 10.0)
        assert sample[0] == 5.0

    def test_interval_validation(self):
        with pytest.raises(TelemetryError):
            HttpScraper(TimeSeriesStore(), [], FakeClock(), interval_s=0.0)


class TestConcurrentRounds:
    """A stalled target must not starve anyone else's telemetry."""

    def test_stalled_target_does_not_delay_healthy_samples(self):
        """The healthy target's samples land while the stalled target's
        fetch is still hanging — not after the round barrier."""
        telemetry = BackendTelemetry("api/cluster-2", scrape_name=SERIES)
        store = TimeSeriesStore()

        async def scenario():
            gate = asyncio.Event()

            async def fetch(host, port):
                if port == 9:
                    await gate.wait()  # blackholed replica: hangs
                    raise asyncio.TimeoutError()
                return render_exposition([telemetry])

            scraper = HttpScraper(store, [("h", 9), ("h", 1)],
                                  FakeClock(3.0), fetch=fetch)
            round_task = asyncio.ensure_future(scraper.scrape_once())
            await asyncio.sleep(0)  # let both fetches start
            await asyncio.sleep(0)
            landed = store.series(
                SERIES, names.REQUESTS_TOTAL).latest_in_window(0.0, 10.0)
            gate.set()
            answered = await round_task
            return landed, answered

        landed, answered = asyncio.run(scenario())
        assert landed == (3.0, 0.0)  # fresh while port 9 still hung
        assert answered == 1

    def test_fetch_outliving_its_round_is_dropped(self):
        """A stalled fetch that finally answers after a newer round has
        landed for the target must not append back in time."""
        telemetry = BackendTelemetry("api/cluster-2", scrape_name=SERIES)
        store = TimeSeriesStore()
        clock = FakeClock(1.0)

        async def scenario():
            gate = asyncio.Event()
            slow_once = [True]

            async def fetch(host, port):
                if slow_once[0]:
                    slow_once[0] = False
                    await gate.wait()  # round 1's fetch stalls...
                return render_exposition([telemetry])

            scraper = HttpScraper(store, [("h", 1)], clock, fetch=fetch)
            stalled = asyncio.ensure_future(scraper.scrape_once())
            await asyncio.sleep(0)
            clock.advance(2.0)
            await scraper.scrape_once()  # ...round 2 lands at t=3
            gate.set()  # round 1 answers late, stamped t=1
            await stalled
            return scraper

        scraper = asyncio.run(scenario())
        assert scraper.stale_drops == 1
        assert scraper.failed_scrapes == 0
        latest = store.series(SERIES, names.REQUESTS_TOTAL).latest_in_window(
            0.0, 10.0)
        assert latest[0] == 3.0  # only round 2's stamp; no back-in-time

    def test_run_cancels_outstanding_rounds(self):
        """Cancelling the scrape loop reaps in-flight round tasks — the
        harness leak report must stay clean mid-stall."""

        async def scenario():
            started = asyncio.Event()

            async def fetch(host, port):
                started.set()
                await asyncio.Event().wait()  # hangs forever

            scraper = HttpScraper(TimeSeriesStore(), [("h", 1)],
                                  FakeClock(), interval_s=0.01,
                                  fetch=fetch)
            loop_task = asyncio.ensure_future(scraper.run())
            await started.wait()
            loop_task.cancel()
            try:
                await loop_task
            except asyncio.CancelledError:
                pass
            await asyncio.sleep(0)
            return [t for t in asyncio.all_tasks()
                    if t is not asyncio.current_task() and not t.done()]

        assert asyncio.run(scenario()) == []
