"""Tests for the live client proxy: mock transports, no sockets, no sleeps."""

import asyncio

import pytest

from repro.errors import MeshError
from repro.live.clock import FakeClock
from repro.live.proxy import LiveProxy
from repro.live.split import LiveTrafficSplit
from repro.mesh.ejection import OutlierEjectionConfig
from repro.sim.rng import RngRegistry

BACKENDS = {"api/cluster-1": ("127.0.0.1", 1001),
            "api/cluster-2": ("127.0.0.1", 1002)}


class FakeTransport:
    """Scripted transport: pops one outcome per call.

    Outcomes: True/False (the attempt's success), or an exception
    instance to raise — ``asyncio.TimeoutError()`` stands in for an
    expired ``wait_for`` deadline, so the timeout path needs no timer.
    """

    def __init__(self, outcomes):
        self.outcomes = list(outcomes)
        self.calls = []

    async def __call__(self, host, port):
        self.calls.append((host, port))
        outcome = self.outcomes.pop(0)
        if isinstance(outcome, BaseException):
            raise outcome
        return outcome


def make_proxy(outcomes, clock=None, picker=None, **kwargs):
    transport = FakeTransport(outcomes)
    proxy = LiveProxy(
        "cluster-1", "api", BACKENDS,
        picker or LiveTrafficSplit("api", list(BACKENDS)),
        RngRegistry(1).stream("test-proxy"), clock or FakeClock(),
        transport=transport, **kwargs)
    return proxy, transport


def dispatch(proxy):
    return asyncio.run(proxy.dispatch())


class TestDispatch:
    def test_success_record_and_telemetry(self):
        clock = FakeClock(10.0)
        proxy, transport = make_proxy([True], clock=clock)
        record = dispatch(proxy)
        assert record.success
        assert record.attempts == 1
        assert record.backend in BACKENDS
        assert record.source_cluster == "cluster-1"
        assert transport.calls == [BACKENDS[record.backend]]
        telemetry = proxy.telemetry[record.backend]
        assert telemetry.requests_total.value == 1.0
        assert telemetry.failures_total.value == 0.0
        assert telemetry.inflight.value == 0.0
        assert telemetry.success_latency.count == 1

    def test_failure_counts_and_failure_histogram(self):
        proxy, _ = make_proxy([OSError("connection refused")])
        record = dispatch(proxy)
        assert not record.success
        telemetry = proxy.telemetry[record.backend]
        assert telemetry.failures_total.value == 1.0
        assert telemetry.failure_latency.count == 1
        assert telemetry.success_latency.count == 0

    def test_routing_follows_split_weights(self):
        split = LiveTrafficSplit("api", list(BACKENDS))
        split.set_weights({"api/cluster-1": 1, "api/cluster-2": 0}, now=0.0)
        proxy, transport = make_proxy([True] * 50, picker=split)
        for _ in range(50):
            assert dispatch(proxy).backend == "api/cluster-1"
        assert set(transport.calls) == {BACKENDS["api/cluster-1"]}

    def test_telemetry_is_scoped_by_source_cluster(self):
        proxy, _ = make_proxy([True])
        names = {t.scrape_name for t in proxy.telemetry_bundles()}
        assert names == {"cluster-1|api/cluster-1",
                         "cluster-1|api/cluster-2"}

    def test_unknown_backend_from_picker_rejected(self):
        class BadPicker:
            def pick(self, rng, now):
                return "api/cluster-9"

        proxy, _ = make_proxy([True], picker=BadPicker())
        with pytest.raises(MeshError):
            dispatch(proxy)


class TestRetries:
    def test_retry_until_success(self):
        proxy, transport = make_proxy(
            [OSError("boom"), True], max_retries=2)
        record = dispatch(proxy)
        assert record.success
        assert record.attempts == 2
        assert len(transport.calls) == 2

    def test_retries_exhausted(self):
        proxy, _ = make_proxy([OSError("a"), OSError("b")], max_retries=1)
        record = dispatch(proxy)
        assert not record.success
        assert record.attempts == 2

    def test_no_retries_by_default(self):
        proxy, transport = make_proxy([OSError("boom"), True])
        assert not dispatch(proxy).success
        assert len(transport.calls) == 1

    def test_each_attempt_recorded_separately(self):
        proxy, _ = make_proxy([OSError("x"), True], max_retries=1)
        dispatch(proxy)
        total = sum(t.requests_total.value
                    for t in proxy.telemetry.values())
        failures = sum(t.failures_total.value
                       for t in proxy.telemetry.values())
        assert total == 2.0
        assert failures == 1.0


class TestTimeouts:
    def test_expired_deadline_is_a_failed_attempt(self):
        proxy, _ = make_proxy([asyncio.TimeoutError()],
                              request_timeout_s=5.0)
        record = dispatch(proxy)
        assert not record.success
        assert proxy.timeouts == 1
        failures = sum(t.failures_total.value
                       for t in proxy.telemetry.values())
        assert failures == 1.0

    def test_timeout_then_retry_succeeds(self):
        proxy, _ = make_proxy([asyncio.TimeoutError(), True],
                              max_retries=1, request_timeout_s=5.0)
        record = dispatch(proxy)
        assert record.success
        assert record.attempts == 2
        assert proxy.timeouts == 1

    def test_validation(self):
        with pytest.raises(MeshError):
            make_proxy([], request_timeout_s=0.0)
        with pytest.raises(MeshError):
            make_proxy([], max_retries=-1)
        with pytest.raises(MeshError):
            make_proxy([], retry_backoff_s=-1.0)
        with pytest.raises(MeshError):
            LiveProxy("c", "api", {}, None,
                      RngRegistry(1).stream("x"), FakeClock())


class TargetedTransport:
    """Succeeds or fails by destination instead of by call order."""

    def __init__(self, failing_port):
        self.failing_port = failing_port
        self.calls = []

    async def __call__(self, host, port):
        self.calls.append((host, port))
        return port != self.failing_port


class TestOutlierEjection:
    def test_consecutive_failures_divert_traffic(self):
        # Uniform split; cluster-1 always fails, so its breaker trips
        # after 2 consecutive failures (cluster-2 successes in between
        # do not reset it — breakers count per backend).
        clock = FakeClock()
        proxy, _ = make_proxy(
            [], clock=clock,
            outlier_ejection=OutlierEjectionConfig(
                consecutive_failures=2, ejection_s=1000.0, max_ejection_s=1000.0))
        proxy.transport = TargetedTransport(BACKENDS["api/cluster-1"][1])

        for _ in range(200):
            dispatch(proxy)
            clock.advance(0.01)
            if proxy.ejector.is_ejected("api/cluster-1", clock()):
                break
        assert proxy.ejector.is_ejected("api/cluster-1", clock())
        # Once ejected, the redraw loop diverts picks to cluster-2.
        diverted = 0
        for _ in range(20):
            record = dispatch(proxy)
            clock.advance(0.01)
            if record.backend == "api/cluster-2":
                assert record.success
                diverted += 1
        assert diverted >= 18

    def test_fail_open_when_everything_ejected(self):
        split = LiveTrafficSplit("api", list(BACKENDS))
        clock = FakeClock()
        proxy, _ = make_proxy(
            [OSError("down")] * 40, clock=clock, picker=split,
            outlier_ejection=OutlierEjectionConfig(
                consecutive_failures=1, ejection_s=1000.0, max_ejection_s=1000.0))
        for _ in range(10):
            record = dispatch(proxy)
            clock.advance(0.01)
        # Both breakers are open, yet requests still go out (fail-open).
        assert all(proxy.ejector.is_ejected(name, clock())
                   for name in BACKENDS)
        record = dispatch(proxy)
        assert record.backend in BACKENDS


class TestRetryBackoff:
    """Capped exponential backoff with full jitter (chaos satellite)."""

    def make(self, **kwargs):
        proxy, _ = make_proxy([], **kwargs)
        return proxy

    def test_default_is_the_historical_constant_backoff(self):
        proxy = self.make(retry_backoff_s=0.2)
        state = proxy.rng.getstate()
        assert [proxy.backoff_delay(n) for n in (1, 2, 3, 5)] == [0.2] * 4
        # No jitter configured: the rng stream is untouched.
        assert proxy.rng.getstate() == state

    def test_zero_base_never_sleeps_whatever_the_shape(self):
        proxy = self.make(retry_backoff_multiplier=4.0, retry_jitter=True)
        assert proxy.backoff_delay(1) == 0.0
        assert proxy.backoff_delay(9) == 0.0

    def test_exponential_growth_per_attempt(self):
        proxy = self.make(retry_backoff_s=0.1, retry_backoff_multiplier=2.0)
        delays = [proxy.backoff_delay(n) for n in (1, 2, 3, 4)]
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.8])

    def test_cap_clamps_the_growth(self):
        proxy = self.make(retry_backoff_s=0.1, retry_backoff_multiplier=2.0,
                          retry_backoff_max_s=0.25)
        delays = [proxy.backoff_delay(n) for n in (1, 2, 3, 4, 8)]
        assert delays == pytest.approx([0.1, 0.2, 0.25, 0.25, 0.25])

    def test_full_jitter_draws_uniformly_below_the_delay(self):
        proxy = self.make(retry_backoff_s=0.1, retry_backoff_multiplier=2.0,
                          retry_backoff_max_s=0.4, retry_jitter=True)
        draws = [proxy.backoff_delay(4) for _ in range(200)]
        assert all(0.0 <= d <= 0.4 for d in draws)
        assert len(set(draws)) > 100          # actually random
        assert max(draws) > 0.3               # spans the range
        assert min(draws) < 0.1

    def test_jitter_is_seeded_and_reproducible(self):
        draws = []
        for _ in range(2):
            proxy = self.make(retry_backoff_s=0.1, retry_jitter=True)
            draws.append([proxy.backoff_delay(1) for _ in range(20)])
        assert draws[0] == draws[1]

    def test_shape_validation(self):
        with pytest.raises(MeshError):
            self.make(retry_backoff_multiplier=0.5)
        with pytest.raises(MeshError):
            self.make(retry_backoff_max_s=0.0)

    def test_dispatch_sleeps_the_computed_backoff(self):
        proxy, _ = make_proxy([OSError("down"), True], max_retries=1,
                              retry_backoff_s=0.01,
                              retry_backoff_multiplier=2.0)
        record = dispatch(proxy)
        assert record.success
        assert record.attempts == 2
