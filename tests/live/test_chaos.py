"""Tests for live chaos: the shaper, the injector, and real-socket runs.

Unit tests drive :class:`~repro.live.chaos.LiveFaultInjector` with a
FakeClock and an injected sleep (no sockets, no waiting); the smoke
class at the bottom runs the full harness against real localhost sockets
with faults landing mid-run — the acceptance behaviour of the chaos
harness (reroute around a blackholed cluster, restore after the revert,
fail the leader over within one lease TTL, exit clean).
"""

import asyncio

import pytest

from repro.errors import ConfigError, FaultSpecError, MeshError
from repro.faults import (
    ClusterOutage,
    ControllerCrash,
    ControllerPause,
    LinkDegradation,
    LinkPartition,
    ReplicaCrash,
    ReplicaRestart,
    ScrapeOutage,
)
from repro.live.chaos import LiveFaultInjector, LiveLinkShaper
from repro.live.clock import FakeClock
from repro.live.harness import LiveConfig, LiveHarness, weight_points

from tests.live.test_harness import (
    UNIFORM_SHARE,
    degraded_scenario,
    fast_config,
    latency_profile,
)
from repro.workloads.profiles import constant_series
from repro.workloads.scenarios import Scenario

PORT_BASE = 19720


class FakeServer:
    """Records the chaos calls a ReplicaServer would receive."""

    def __init__(self):
        self.events = []
        self.metrics_fail_mode = None

    async def crash(self, mode):
        self.events.append(("crash", mode))

    async def restart(self):
        self.events.append(("restart",))

    def fail_metrics(self, mode="error"):
        self.metrics_fail_mode = mode

    def restore_metrics(self):
        self.metrics_fail_mode = None


class FakeController:
    def __init__(self):
        self.paused = False

    def pause(self):
        self.paused = True

    def resume(self):
        self.paused = False


class FakeReplica:
    def __init__(self):
        self.crashed = False

    def crash(self):
        self.crashed = True

    def recover(self):
        self.crashed = False


def build_injector(clusters=("cluster-1", "cluster-2"), **kwargs):
    clock = FakeClock()

    async def sleep(delay):
        clock.advance(delay)

    servers = {f"api/{cluster}": FakeServer() for cluster in clusters}
    injector = LiveFaultInjector(
        "api", servers, LiveLinkShaper(), clock, sleep=sleep, **kwargs)
    return injector, servers, clock


def run_schedule(injector, faults, offset_s=0.0):
    injector.schedule_all(faults, offset_s=offset_s)
    asyncio.run(injector.run())


class TestLiveLinkShaper:
    def test_degradation_adds_delay_symmetrically(self):
        shaper = LiveLinkShaper(base_delay_s=0.010)
        shaper.degrade("a", "b", multiplier=3.0, extra_delay_s=0.005)
        assert shaper.extra_delay_s("a", "b") == pytest.approx(0.025)
        assert shaper.extra_delay_s("b", "a") == pytest.approx(0.025)
        assert shaper.extra_delay_s("a", "c") == 0.0
        shaper.heal_degradation("a", "b")
        assert shaper.extra_delay_s("a", "b") == 0.0

    def test_asymmetric_faults_shape_one_direction(self):
        shaper = LiveLinkShaper()
        shaper.partition("a", "b", symmetric=False)
        assert shaper.partitioned("a", "b")
        assert not shaper.partitioned("b", "a")

    def test_partitioned_traversal_hangs_until_release_then_raises(self):
        shaper = LiveLinkShaper()
        shaper.partition("a", "b")

        async def scenario():
            task = asyncio.ensure_future(shaper.traverse("a", "b"))
            await asyncio.sleep(0)
            assert not task.done()  # hanging, like a real partition
            shaper.release()
            with pytest.raises(MeshError):
                await task

        asyncio.run(scenario())
        assert shaper.dropped == 1

    def test_healed_link_passes(self):
        shaper = LiveLinkShaper()
        shaper.partition("a", "b")
        shaper.heal_partition("a", "b")
        asyncio.run(shaper.traverse("a", "b"))  # returns, nothing raised

    def test_base_delay_validation(self):
        with pytest.raises(ConfigError):
            LiveLinkShaper(base_delay_s=-1.0)


class TestLiveFaultInjector:
    def test_cluster_outage_crashes_and_restarts_the_server(self):
        injector, servers, _clock = build_injector()
        run_schedule(injector, [
            ClusterOutage("cluster-2", at_s=5.0, duration_s=5.0,
                          mode="blackhole")])
        assert servers["api/cluster-2"].events == [
            ("crash", "blackhole"), ("restart",)]
        assert servers["api/cluster-1"].events == []
        times = [t for t, _desc in injector.log]
        assert times == pytest.approx([5.0, 10.0])
        assert injector.errors == []

    def test_replica_crash_hits_the_one_live_replica(self):
        injector, servers, _clock = build_injector()
        run_schedule(injector, [
            ReplicaCrash("api", "cluster-1", at_s=1.0, duration_s=2.0),
            ReplicaRestart("api", "cluster-2", at_s=0.5)])
        assert servers["api/cluster-1"].events == [
            ("crash", "fail_fast"), ("restart",)]
        assert servers["api/cluster-2"].events == [("restart",)]

    def test_scrape_outage_breaks_every_metrics_page(self):
        metrics_server = FakeServer()
        clock = FakeClock()

        async def sleep(delay):
            # Mid-outage the pages must already be broken.
            if clock.now < 3.0 <= clock.now + delay:
                clock.now = 3.5
                assert all(s.metrics_fail_mode == "stall"
                           for s in [server_a, server_b, metrics_server])
            clock.advance(delay)

        server_a, server_b = FakeServer(), FakeServer()
        injector = LiveFaultInjector(
            "api", {"api/cluster-1": server_a, "api/cluster-2": server_b},
            LiveLinkShaper(), clock, metrics_server=metrics_server,
            sleep=sleep)
        run_schedule(injector, [
            ScrapeOutage(at_s=2.0, duration_s=2.0, mode="stall")])
        assert metrics_server.metrics_fail_mode is None  # restored
        assert server_a.metrics_fail_mode is None

    def test_link_faults_drive_the_shaper(self):
        injector, _servers, _clock = build_injector()
        shaper = injector.mesh.network
        seen = []

        async def probe_sleep(delay):
            seen.append((injector.clock() + delay,
                         shaper.partitioned("cluster-1", "cluster-2"),
                         shaper.extra_delay_s("cluster-1", "cluster-2")))
            injector.clock.advance(delay)

        injector._sleep = probe_sleep
        run_schedule(injector, [
            LinkPartition("cluster-1", "cluster-2", at_s=1.0,
                          duration_s=1.0),
            LinkDegradation("cluster-1", "cluster-2", at_s=4.0,
                            duration_s=1.0, extra_delay_s=0.050)])
        assert not shaper.partitioned("cluster-1", "cluster-2")
        assert shaper.extra_delay_s("cluster-1", "cluster-2") == 0.0
        # The sleep *into* each revert saw the fault active.
        assert (2.0, True, 0.0) in seen
        assert (5.0, False, 0.050) in seen

    def test_controller_faults_reach_controllers_and_replicas(self):
        controller = FakeController()
        replica = FakeReplica()
        injector, _servers, _clock = build_injector(
            controllers=[controller], replicas=[replica])

        async def scenario():
            injector.schedule(ControllerPause(at_s=0.0, duration_s=1.0))
            injector.schedule(ControllerCrash(at_s=0.0, duration_s=2.0))
            await injector.run()

        asyncio.run(scenario())
        assert not controller.paused  # paused at 0, resumed at 1
        assert not replica.crashed    # crashed at 0, recovered at 2
        assert len(injector.log) == 4

    def test_unrunnable_fault_is_logged_not_fatal(self):
        injector, servers, _clock = build_injector()  # no replicas
        run_schedule(injector, [
            ControllerCrash(at_s=1.0, duration_s=1.0),
            ClusterOutage("cluster-1", at_s=3.0, duration_s=1.0)])
        # Both the apply and the revert failed, loudly...
        assert len(injector.errors) == 2
        assert "needs controller replicas" in injector.errors[0]
        # ...and the rest of the schedule still ran.
        assert servers["api/cluster-1"].events == [
            ("crash", "fail_fast"), ("restart",)]

    def test_revert_runs_before_an_apply_due_at_the_same_time(self):
        injector, servers, _clock = build_injector()
        run_schedule(injector, [
            ClusterOutage("cluster-1", at_s=5.0, duration_s=5.0),
            ClusterOutage("cluster-1", at_s=10.0, duration_s=5.0,
                          mode="blackhole")])
        assert servers["api/cluster-1"].events == [
            ("crash", "fail_fast"), ("restart",),
            ("crash", "blackhole"), ("restart",)]

    def test_facade_rejects_unknown_service_and_cluster(self):
        injector, _servers, _clock = build_injector()
        with pytest.raises(ConfigError):
            injector.mesh.deployment("db")
        with pytest.raises(ConfigError):
            injector.mesh.deployment("api").backend_in("cluster-9")

    def test_offset_shifts_the_whole_schedule(self):
        injector, _servers, _clock = build_injector()
        run_schedule(injector,
                     [ClusterOutage("cluster-1", at_s=1.0, duration_s=1.0)],
                     offset_s=10.0)
        assert [t for t, _desc in injector.log] == pytest.approx(
            [11.0, 12.0])


def chaos_config(algorithm, port_base, duration_s, faults, **overrides):
    config = fast_config(algorithm, port_base, duration_s)
    config.faults = faults
    config.request_timeout_s = 0.5
    for name, value in overrides.items():
        setattr(config, name, value)
    return config


def uniform_scenario(base_s=0.040):
    profiles = {f"cluster-{i}": latency_profile(base_s) for i in (1, 2, 3)}
    return Scenario("uniform", 120.0, profiles, constant_series(60.0),
                    "three equal clusters")


class TestChaosValidation:
    """Boot-time rejection: a bad schedule must not bind a single port."""

    def test_unknown_cluster_rejected_before_boot(self):
        config = chaos_config("l3", PORT_BASE, 5.0,
                              "cluster-outage@1+2:cluster=cluster-9")
        with pytest.raises(FaultSpecError, match="unknown cluster"):
            LiveHarness(uniform_scenario(), config).run()

    def test_controller_crash_requires_ha(self):
        config = chaos_config("l3", PORT_BASE, 5.0,
                              "controller-crash@1+2:replica=0")
        with pytest.raises(FaultSpecError, match="HA mode"):
            LiveHarness(uniform_scenario(), config).run()

    def test_controller_faults_rejected_for_round_robin(self):
        config = chaos_config("round-robin", PORT_BASE, 5.0,
                              "controller-pause@1+2")
        with pytest.raises(FaultSpecError, match="round-robin"):
            LiveHarness(uniform_scenario(), config).run()

    def test_replica_index_beyond_the_single_live_server(self):
        config = chaos_config(
            "l3", PORT_BASE, 5.0,
            "replica-crash@1+2:service=api:cluster=cluster-1:index=3")
        with pytest.raises(FaultSpecError, match="single server"):
            LiveHarness(uniform_scenario(), config).run()

    def test_parsed_fault_list_accepted_too(self):
        config = chaos_config(
            "l3", PORT_BASE, 5.0,
            [ClusterOutage("cluster-9", at_s=1.0, duration_s=2.0)])
        with pytest.raises(FaultSpecError, match="unknown cluster"):
            LiveHarness(uniform_scenario(), config).run()


class TestChaosSmoke:
    """Real sockets, real faults, short wall-clock runs."""

    def test_l3_reroutes_around_blackholed_cluster_and_restores(self):
        # Uniform clusters; cluster-2 blackholes mid-run and comes back.
        # L3 must shift >= 20 points away during the outage and bring
        # the share back up after the revert.
        duration, t0, t1 = 18.0, 4.0, 9.0
        config = chaos_config(
            "l3", PORT_BASE + 16, duration,
            f"cluster-outage@{t0}+{t1 - t0}"
            f":cluster=cluster-2:mode=blackhole")
        harness = LiveHarness(uniform_scenario(), config)
        result = harness.run()

        assert harness.clean_shutdown, harness.leaked_tasks
        assert harness.chaos_errors == []
        assert [desc.split(" ", 1)[0] for _t, desc in harness.fault_log] \
            == ["apply", "revert"]

        shares = [(t, weight_points(w)["api/cluster-2"])
                  for t, w in harness.weight_history]
        during = [s for t, s in shares if t >= t0]
        assert during and min(during) <= UNIFORM_SHARE - 20.0, shares
        # After the revert the controller walks the share back up.
        revert_t = harness.fault_log[1][0]
        after = [s for t, s in shares if t >= revert_t]
        assert after and max(after) >= UNIFORM_SHARE - 15.0, shares
        # The outage really happened on the wire.
        outage_failures = [r for r in result.records
                           if not r.success
                           and r.backend == "api/cluster-2"]
        assert outage_failures

    def test_leader_crash_fails_over_within_one_ttl(self):
        config = chaos_config(
            "l3", PORT_BASE + 32, 8.0, "controller-crash@2:replica=0",
            ha_replicas=2, lease_ttl_s=1.5)
        harness = LiveHarness(uniform_scenario(), config)
        harness.run()

        assert harness.clean_shutdown, harness.leaked_tasks
        assert harness.chaos_errors == []
        transitions = harness.lease_transitions
        assert len(transitions) == 2, transitions
        crash_t = harness.fault_log[0][0]
        takeover_t, successor = transitions[1]
        assert successor == "replica-1"
        # Takeover within one TTL, plus a reconcile tick of slack for a
        # loaded host (the contract is TTL-bounded, not instantaneous).
        assert takeover_t - crash_t <= config.lease_ttl_s \
            + 2 * config.reconcile_interval_s + 0.5, transitions

    def test_replica_crash_recovers_and_exits_clean(self):
        config = chaos_config(
            "l3", PORT_BASE + 48, 8.0,
            "replica-crash@2+3:service=api:cluster=cluster-2"
            ":mode=fail_fast ; scrape-outage@3+2")
        harness = LiveHarness(degraded_scenario(), config)
        result = harness.run()

        assert harness.clean_shutdown, harness.leaked_tasks
        assert harness.chaos_errors == []
        server = harness.parts.servers["api/cluster-2"]
        assert server.crash_count == 1
        assert server.restart_count == 1
        # The crashed listener re-bound on the same port and served again.
        served_after = [r for r in result.records
                        if r.backend == "api/cluster-2" and r.success
                        and r.start_s > 5.0]
        assert served_after
        # The scraper felt the outage and survived it.
        assert harness.parts.scraper.failed_scrapes > 0
        assert result.request_count > 50
