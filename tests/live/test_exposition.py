"""Prometheus text-exposition emit→parse round-trip, pinned to the scraper."""

import math

import pytest

from repro.errors import TelemetryError
from repro.live.exposition import parse_exposition, render_exposition
from repro.telemetry import names
from repro.telemetry.metrics import BackendTelemetry
from repro.telemetry.scraper import Scraper
from repro.telemetry.timeseries import TimeSeriesStore


def traffic_bundle(name="cluster-1|api/cluster-2"):
    telemetry = BackendTelemetry("api/cluster-2", scrape_name=name)
    for latency, success in [(0.010, True), (0.080, True), (0.450, True),
                             (0.030, False), (2.5, False)]:
        telemetry.on_request_sent()
        telemetry.on_response(latency, success)
    telemetry.on_request_sent()  # one left in flight
    return telemetry


class TestRoundTrip:
    def test_parse_equals_simulated_scrape(self):
        """The live path (render→parse) must store the exact values the
        simulated scraper stores — the sim↔live parity contract."""
        telemetry = traffic_bundle()

        store = TimeSeriesStore()
        scraper = Scraper(store)
        scraper.register(telemetry)
        scraper.scrape_once(7.0)

        parsed = parse_exposition(render_exposition([telemetry]))
        series = telemetry.scrape_name
        assert set(parsed) == {series}
        for metric in names.ALL_METRICS:
            if metric in names.SERVER_SIDE_METRICS:
                continue  # server-side series, not part of proxy bundles
            stored = store.series(series, metric).latest_in_window(0.0, 7.0)
            assert stored is not None, metric
            assert parsed[series][metric] == stored[1], metric

    def test_bucket_tuples_are_cumulative_and_inf_terminated(self):
        telemetry = traffic_bundle()
        parsed = parse_exposition(render_exposition([telemetry]))
        buckets = parsed[telemetry.scrape_name][names.SUCCESS_LATENCY_BUCKETS]
        assert buckets == telemetry.success_latency.cumulative_counts()
        assert all(b2 >= b1 for b1, b2 in zip(buckets, buckets[1:]))
        assert buckets[-1] == telemetry.success_latency.count

    def test_series_label_escaping_round_trips(self):
        weird = 'cluster "a"\\|svc/b\nc'
        telemetry = BackendTelemetry("svc/b", scrape_name=weird)
        telemetry.on_request_sent()
        telemetry.on_response(0.01, True)
        parsed = parse_exposition(render_exposition([telemetry]))
        assert weird in parsed
        assert parsed[weird][names.REQUESTS_TOTAL] == 1.0

    def test_custom_gauges_render_under_their_series(self):
        text = render_exposition(
            [], gauges=[(names.server_series_name("api/cluster-1"),
                         names.SERVER_QUEUE, lambda: 7)])
        parsed = parse_exposition(text)
        assert parsed == {
            "server|api/cluster-1": {names.SERVER_QUEUE: 7.0}}

    def test_multiple_targets_stay_separate(self):
        bundles = [traffic_bundle("cluster-1|api/cluster-2"),
                   BackendTelemetry("api/cluster-3",
                                    scrape_name="cluster-1|api/cluster-3")]
        parsed = parse_exposition(render_exposition(bundles))
        assert set(parsed) == {"cluster-1|api/cluster-2",
                               "cluster-1|api/cluster-3"}
        assert parsed["cluster-1|api/cluster-3"][names.REQUESTS_TOTAL] == 0.0


class TestRenderFormat:
    def test_type_lines_present(self):
        text = render_exposition([traffic_bundle()])
        assert f"# TYPE {names.REQUESTS_TOTAL} counter" in text
        assert "# TYPE success_latency histogram" in text
        assert f"# TYPE {names.INFLIGHT} gauge" in text

    def test_inf_bucket_spelled_prometheus_style(self):
        text = render_exposition([traffic_bundle()])
        assert 'le="+Inf"' in text
        assert "inf}" not in text  # no Python float repr leaking out

    def test_empty_page_is_just_a_newline(self):
        assert render_exposition([]) == "\n"


class TestParseErrors:
    def test_sample_without_labels_rejected(self):
        with pytest.raises(TelemetryError):
            parse_exposition("requests_total 5\n")

    def test_sample_without_series_label_rejected(self):
        with pytest.raises(TelemetryError):
            parse_exposition('requests_total{other="x"} 5\n')

    def test_bad_value_rejected(self):
        with pytest.raises(TelemetryError):
            parse_exposition('requests_total{series="a"} banana\n')

    def test_non_cumulative_histogram_rejected(self):
        text = ('success_latency_bucket{series="a",le="0.1"} 5\n'
                'success_latency_bucket{series="a",le="+Inf"} 3\n')
        with pytest.raises(TelemetryError):
            parse_exposition(text)

    def test_unknown_families_ignored(self):
        text = ('something_else{series="a"} 5\n'
                'failure_latency_sum{series="a"} 1.5\n'
                'requests_total{series="a"} 2\n')
        parsed = parse_exposition(text)
        assert parsed == {"a": {names.REQUESTS_TOTAL: 2.0}}

    def test_inf_values_parse(self):
        parsed = parse_exposition(f'{names.INFLIGHT}{{series="a"}} +Inf\n')
        assert parsed["a"][names.INFLIGHT] == math.inf
