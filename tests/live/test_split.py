"""Tests for the wall-clock TrafficSplit (weighted routing table)."""

import random
from collections import Counter

import pytest

from repro.errors import ConfigError, MeshError
from repro.live.split import LiveTrafficSplit


def split(*names):
    return LiveTrafficSplit("api", names or ("a", "b", "c"))


class TestConstruction:
    def test_needs_backends(self):
        with pytest.raises(ConfigError):
            LiveTrafficSplit("api", [])

    def test_rejects_duplicates(self):
        with pytest.raises(ConfigError):
            LiveTrafficSplit("api", ["a", "a"])

    def test_starts_uniform(self):
        assert split().weights == {"a": 1, "b": 1, "c": 1}


class TestSetWeights:
    def test_applies_immediately(self):
        s = split()
        s.set_weights({"a": 5, "b": 0, "c": 2}, now=3.0)
        assert s.weights == {"a": 5, "b": 0, "c": 2}

    def test_omitted_backends_keep_weight(self):
        s = split()
        s.set_weights({"a": 9}, now=1.0)
        assert s.weights == {"a": 9, "b": 1, "c": 1}

    def test_unknown_backend_rejected(self):
        with pytest.raises(MeshError):
            split().set_weights({"nope": 1}, now=0.0)

    def test_negative_weight_rejected(self):
        with pytest.raises(MeshError):
            split().set_weights({"a": -1}, now=0.0)

    def test_non_integer_weight_rejected(self):
        with pytest.raises(MeshError):
            split().set_weights({"a": 1.5}, now=0.0)

    def test_history_records_trajectory(self):
        s = split()
        s.set_weights({"a": 2}, now=1.0)
        s.set_weights({"b": 7}, now=2.5)
        assert s.history == [
            (1.0, {"a": 2, "b": 1, "c": 1}),
            (2.5, {"a": 2, "b": 7, "c": 1}),
        ]
        assert s.update_count == 2


class TestPick:
    def test_zero_weight_backend_never_picked(self):
        s = split()
        s.set_weights({"a": 1, "b": 0, "c": 0}, now=0.0)
        rng = random.Random(7)
        assert {s.pick(rng, now=1.0) for _ in range(200)} == {"a"}

    def test_proportional_distribution(self):
        s = split()
        s.set_weights({"a": 3, "b": 1, "c": 0}, now=0.0)
        rng = random.Random(11)
        counts = Counter(s.pick(rng) for _ in range(4000))
        assert counts["c"] == 0
        assert 0.70 < counts["a"] / 4000 < 0.80  # expected 0.75

    def test_all_zero_falls_back_to_uniform(self):
        s = split()
        s.set_weights({"a": 0, "b": 0, "c": 0}, now=0.0)
        rng = random.Random(3)
        counts = Counter(s.pick(rng) for _ in range(900))
        assert set(counts) == {"a", "b", "c"}
        assert all(count > 200 for count in counts.values())

    def test_matches_balancer_pick_shape(self):
        # The proxy treats a split and a Balancer interchangeably.
        assert split().pick(random.Random(1), 5.0) in {"a", "b", "c"}
