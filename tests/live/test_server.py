"""Tests for the asyncio HTTP servers — real sockets, near-zero latencies."""

import asyncio
import random

import pytest

from repro.errors import MeshError
from repro.live.clock import FakeClock
from repro.live.exposition import parse_exposition
from repro.live.proxy import HttpTransport
from repro.live.scrape import fetch_metrics
from repro.live.server import MetricsServer, ReplicaServer, start_http_server
from repro.telemetry import names
from repro.workloads.profiles import BackendProfile, constant_series

PORT_BASE = 19480  # away from the harness tests' ranges


def fast_profile(median_s=0.0005, failure_prob=0.0):
    return BackendProfile(
        median_latency_s=constant_series(median_s),
        p99_latency_s=constant_series(median_s * 2),
        failure_prob=constant_series(failure_prob),
        failure_latency_s=0.0005)


def replica_server(port=PORT_BASE, **kwargs):
    return ReplicaServer("api/cluster-1", fast_profile(**kwargs),
                         random.Random(1), FakeClock())


class TestReplicaServer:
    def test_work_and_metrics_round_trip(self):
        async def scenario():
            server = replica_server()
            port = await server.start(PORT_BASE)
            try:
                assert await HttpTransport()("127.0.0.1", port)
                page = await fetch_metrics("127.0.0.1", port)
            finally:
                await server.stop()
            assert server.requests_served == 1
            parsed = parse_exposition(page)
            series = names.server_series_name("api/cluster-1")
            assert parsed[series][names.SERVER_QUEUE] == 0.0

        asyncio.run(scenario())

    def test_failure_schedule_produces_500(self):
        async def scenario():
            server = ReplicaServer("api/cluster-1",
                                   fast_profile(failure_prob=1.0),
                                   random.Random(1), FakeClock())
            port = await server.start(PORT_BASE)
            try:
                assert not await HttpTransport()("127.0.0.1", port)
            finally:
                await server.stop()
            assert server.failures_served == 1

        asyncio.run(scenario())

    def test_unknown_path_is_404_not_a_failure(self):
        async def scenario():
            server = replica_server()
            port = await server.start(PORT_BASE)
            try:
                assert not await HttpTransport(path="/nope")(
                    "127.0.0.1", port)
            finally:
                await server.stop()
            assert server.requests_served == 0
            assert server.failures_served == 0

        asyncio.run(scenario())

    def test_stop_releases_the_port_and_handlers(self):
        async def scenario():
            server = replica_server()
            port = await server.start(PORT_BASE)
            await HttpTransport()("127.0.0.1", port)
            await server.stop()
            assert not server._handlers
            with pytest.raises(OSError):
                await asyncio.open_connection("127.0.0.1", port)
            # The port is genuinely free again: a new server can bind it.
            reborn = replica_server()
            assert await reborn.start(port) == port
            await reborn.stop()

        asyncio.run(scenario())

    def test_capacity_validation(self):
        with pytest.raises(MeshError):
            ReplicaServer("b", fast_profile(), random.Random(1),
                          FakeClock(), capacity=0)

    def test_double_start_rejected(self):
        async def scenario():
            server = replica_server()
            await server.start(PORT_BASE)
            try:
                with pytest.raises(MeshError):
                    await server.start(PORT_BASE)
            finally:
                await server.stop()

        asyncio.run(scenario())


class TestPortCollision:
    def test_second_server_walks_to_next_port(self):
        async def scenario():
            first = replica_server()
            second = replica_server()
            port1 = await first.start(PORT_BASE + 40)
            try:
                port2 = await second.start(port1)
                assert port2 > port1
                await second.stop()
            finally:
                await first.stop()

        asyncio.run(scenario())

    def test_exhausted_range_raises(self):
        async def scenario():
            listener, port = await start_http_server(
                lambda r, w: None, "127.0.0.1", PORT_BASE + 60)
            try:
                with pytest.raises(MeshError):
                    await start_http_server(
                        lambda r, w: None, "127.0.0.1", port, max_tries=1)
            finally:
                listener.close()
                await listener.wait_closed()

        asyncio.run(scenario())


class TestMetricsServer:
    def test_serves_render_output(self):
        async def scenario():
            server = MetricsServer(lambda: 'inflight{series="a"} 2\n')
            port = await server.start(PORT_BASE + 80)
            try:
                page = await fetch_metrics("127.0.0.1", port)
            finally:
                await server.stop()
            assert parse_exposition(page) == {
                "a": {names.INFLIGHT: 2.0}}

        asyncio.run(scenario())
