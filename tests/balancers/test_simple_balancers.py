"""Tests for round-robin, static-weight and P2C balancers."""

import collections

import pytest

from repro.balancers.p2c import P2cPeakEwmaBalancer
from repro.balancers.round_robin import RoundRobinBalancer
from repro.balancers.static_weights import StaticWeightBalancer
from repro.errors import ConfigError


class TestRoundRobin:
    def test_cycles_in_order(self, rng):
        balancer = RoundRobinBalancer(["a", "b", "c"])
        picks = [balancer.pick(rng, 0.0) for _ in range(6)]
        assert picks == ["a", "b", "c", "a", "b", "c"]

    def test_validation(self):
        with pytest.raises(ConfigError):
            RoundRobinBalancer([])
        with pytest.raises(ConfigError):
            RoundRobinBalancer(["a", "a"])

    def test_exactly_equal_distribution(self, rng):
        balancer = RoundRobinBalancer(["a", "b"])
        counts = collections.Counter(
            balancer.pick(rng, 0.0) for _ in range(100))
        assert counts["a"] == counts["b"] == 50


class TestStaticWeights:
    def test_validation(self):
        with pytest.raises(ConfigError):
            StaticWeightBalancer({})
        with pytest.raises(ConfigError):
            StaticWeightBalancer({"a": -1.0})
        with pytest.raises(ConfigError):
            StaticWeightBalancer({"a": 0.0})

    def test_pinned_backend(self, rng):
        balancer = StaticWeightBalancer({"local": 1.0})
        assert all(balancer.pick(rng, 0.0) == "local" for _ in range(20))

    def test_weighted_distribution(self, rng):
        balancer = StaticWeightBalancer({"a": 9.0, "b": 1.0})
        counts = collections.Counter(
            balancer.pick(rng, 0.0) for _ in range(10_000))
        assert counts["a"] / (counts["a"] + counts["b"]) > 0.85


class TestP2cPeakEwma:
    def test_validation(self):
        with pytest.raises(ConfigError):
            P2cPeakEwmaBalancer([])
        with pytest.raises(ConfigError):
            P2cPeakEwmaBalancer(["a", "a"])

    def test_single_backend(self, rng):
        balancer = P2cPeakEwmaBalancer(["only"])
        assert balancer.pick(rng, 0.0) == "only"

    def test_prefers_lower_latency_backend(self, rng):
        balancer = P2cPeakEwmaBalancer(["fast", "slow"], start_time=0.0)
        now = 0.0
        # Feed both backends enough responses to separate their EWMAs.
        for i in range(50):
            now = float(i)
            balancer.on_response("fast", now, 0.010, True)
            balancer.on_response("slow", now, 0.500, True)
        counts = collections.Counter(
            balancer.pick(rng, now) for _ in range(1000))
        assert counts["fast"] > 900

    def test_inflight_steers_away_from_loaded(self, rng):
        balancer = P2cPeakEwmaBalancer(["a", "b"], default_latency_s=0.1)
        for _ in range(10):
            balancer.on_request_sent("a", 0.0)
        counts = collections.Counter(
            balancer.pick(rng, 1.0) for _ in range(1000))
        assert counts["b"] > 900

    def test_inflight_never_negative(self):
        balancer = P2cPeakEwmaBalancer(["a"])
        balancer.on_response("a", 1.0, 0.1, True)
        assert balancer._inflight["a"] == 0

    def test_hooks_track_inflight(self):
        balancer = P2cPeakEwmaBalancer(["a"])
        balancer.on_request_sent("a", 0.0)
        balancer.on_request_sent("a", 0.0)
        assert balancer._inflight["a"] == 2
        balancer.on_response("a", 1.0, 0.1, True)
        assert balancer._inflight["a"] == 1
