"""Tests for the L3 balancer wrapper and the balancer factory."""

import pytest

from repro.balancers.c3 import C3Balancer
from repro.balancers.factory import BALANCER_NAMES, make_balancer
from repro.balancers.l3 import L3Balancer
from repro.balancers.p2c import P2cPeakEwmaBalancer
from repro.balancers.round_robin import RoundRobinBalancer
from repro.core.config import L3Config
from repro.core.controller import MetricSample
from repro.core.ewma import PeakEwma
from repro.errors import ConfigError


class FakeSource:
    def __init__(self, samples=None):
        self.samples = samples or {}

    def collect(self, backend_names, now, window_s, percentile):
        return {name: self.samples.get(name) for name in backend_names}

    def server_queue(self, name, now, window_s):
        return 0.0


BACKENDS = ["svc/c1", "svc/c2"]


class TestL3Balancer:
    def test_control_loop_adjusts_split(self, sim):
        source = FakeSource({
            "svc/c1": MetricSample(0.05, 1.0, 100.0, 1.0),
            "svc/c2": MetricSample(0.50, 1.0, 100.0, 1.0),
        })
        balancer = L3Balancer(sim, "svc", BACKENDS, source,
                              propagation_delay_s=0.0)
        balancer.start(sim)
        sim.run(until=61.0)
        balancer.stop()
        sim.run(until=62.0)
        weights = balancer.split.weights
        assert weights["svc/c1"] > weights["svc/c2"]

    def test_start_twice_is_idempotent(self, sim):
        balancer = L3Balancer(sim, "svc", BACKENDS, FakeSource())
        balancer.start(sim)
        loop = balancer._loop
        balancer.start(sim)
        assert balancer._loop is loop
        balancer.stop()

    def test_stop_without_start(self, sim):
        L3Balancer(sim, "svc", BACKENDS, FakeSource()).stop()

    def test_pick_uses_split(self, sim, rng):
        balancer = L3Balancer(sim, "svc", BACKENDS, FakeSource())
        assert balancer.pick(rng, 0.0) in BACKENDS


class TestFactory:
    def test_all_names_construct(self, sim):
        for name in BALANCER_NAMES:
            balancer = make_balancer(
                name, sim, "svc", BACKENDS, FakeSource())
            assert balancer is not None

    def test_types(self, sim):
        source = FakeSource()
        assert isinstance(
            make_balancer("round-robin", sim, "svc", BACKENDS, source),
            RoundRobinBalancer)
        assert isinstance(
            make_balancer("c3", sim, "svc", BACKENDS, source), C3Balancer)
        assert isinstance(
            make_balancer("l3", sim, "svc", BACKENDS, source), L3Balancer)
        assert isinstance(
            make_balancer("p2c", sim, "svc", BACKENDS, source),
            P2cPeakEwmaBalancer)

    def test_unknown_name_rejected(self, sim):
        with pytest.raises(ConfigError):
            make_balancer("magic", sim, "svc", BACKENDS, FakeSource())

    def test_l3_peak_forces_peak_ewma(self, sim):
        balancer = make_balancer(
            "l3-peak", sim, "svc", BACKENDS, FakeSource())
        state = next(iter(balancer.controller.backends.values()))
        assert isinstance(state.latency, PeakEwma)

    def test_plain_l3_forces_peak_off(self, sim):
        config = L3Config(use_peak_ewma=True)
        balancer = make_balancer(
            "l3", sim, "svc", BACKENDS, FakeSource(), l3_config=config)
        state = next(iter(balancer.controller.backends.values()))
        assert not isinstance(state.latency, PeakEwma)

    def test_l3_config_passthrough(self, sim):
        config = L3Config(percentile=0.98)
        balancer = make_balancer(
            "l3", sim, "svc", BACKENDS, FakeSource(), l3_config=config)
        assert balancer.config.percentile == 0.98
