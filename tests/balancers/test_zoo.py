"""Tests for the retrieved-work balancer zoo and its shared helpers."""

import collections

import pytest

from repro.balancers.estimate import LoadCostModel
from repro.balancers.ewma_latency import EwmaLatencyBalancer
from repro.balancers.gradient import (
    GradientConfig,
    GradientDescentBalancer,
    project_to_floored_simplex,
)
from repro.balancers.knapsack import (
    KnapsackConfig,
    KnapsackLbController,
    greedy_allocation,
)
from repro.balancers.least_outstanding import LeastOutstandingBalancer
from repro.balancers.service_rate import (
    ServiceRateConfig,
    ServiceRateController,
    solve_rate_shares,
)
from repro.errors import ConfigError


class FakeSink:
    def __init__(self):
        self.pushed = []

    def set_weights(self, weights, now):
        self.pushed.append((now, dict(weights)))


class FakeSource:
    """Minimal MetricsSource double: returns canned MetricSample-likes."""

    def __init__(self, samples):
        self.samples = samples

    def collect(self, backend_names, now, window_s, percentile):
        return {name: self.samples.get(name) for name in backend_names}


class Sample:
    def __init__(self, rps=10.0, mean_latency_s=0.05, latency_s=0.1,
                 inflight=0.0):
        self.rps = rps
        self.mean_latency_s = mean_latency_s
        self.latency_s = latency_s
        self.inflight = inflight
        self.success_rate = 1.0


class TestLoadCostModel:
    def test_prior_before_observations(self):
        model = LoadCostModel(0.2)
        assert model.predict(100.0) == 0.2

    def test_flat_fit_on_single_point(self):
        model = LoadCostModel(0.2)
        model.observe(10.0, 0.05)
        assert model.predict(1000.0) == pytest.approx(0.05)

    def test_recovers_linear_curve(self):
        model = LoadCostModel(0.2)
        for rps in (10.0, 20.0, 30.0, 40.0):
            model.observe(rps, 0.010 + 0.002 * rps)
        base, slope = model.fit()
        assert base == pytest.approx(0.010, abs=1e-6)
        assert slope == pytest.approx(0.002, abs=1e-9)

    def test_negative_slope_clamped(self):
        model = LoadCostModel(0.2)
        model.observe(10.0, 0.5)
        model.observe(50.0, 0.1)  # noise: faster under more load
        base, slope = model.fit()
        assert slope == 0.0
        assert base > 0

    def test_window_rolls_over(self):
        model = LoadCostModel(0.2, max_points=4)
        for _ in range(10):
            model.observe(10.0, 0.05)
        assert model.observations == 4

    def test_validation(self):
        with pytest.raises(ConfigError):
            LoadCostModel(0.0)
        with pytest.raises(ConfigError):
            LoadCostModel(0.1, max_points=1)


class TestLeastOutstanding:
    def test_validation(self):
        with pytest.raises(ConfigError):
            LeastOutstandingBalancer([])
        with pytest.raises(ConfigError):
            LeastOutstandingBalancer(["a", "a"])

    def test_single_backend(self, rng):
        balancer = LeastOutstandingBalancer(["only"])
        assert balancer.pick(rng, 0.0) == "only"

    def test_picks_least_loaded(self, rng):
        balancer = LeastOutstandingBalancer(["a", "b", "c"])
        for _ in range(5):
            balancer.on_request_sent("a", 0.0)
        balancer.on_request_sent("b", 0.0)
        assert all(balancer.pick(rng, 0.0) == "c" for _ in range(20))

    def test_ties_split_between_minimum_set(self, rng):
        balancer = LeastOutstandingBalancer(["a", "b", "c"])
        for _ in range(5):
            balancer.on_request_sent("a", 0.0)
        counts = collections.Counter(
            balancer.pick(rng, 0.0) for _ in range(2000))
        assert counts["a"] == 0
        assert counts["b"] > 800 and counts["c"] > 800

    def test_inflight_never_negative(self):
        balancer = LeastOutstandingBalancer(["a", "b"])
        balancer.on_response("a", 1.0, 0.1, True)
        assert balancer._inflight["a"] == 0


class TestEwmaLatency:
    def test_validation(self):
        with pytest.raises(ConfigError):
            EwmaLatencyBalancer([])
        with pytest.raises(ConfigError):
            EwmaLatencyBalancer(["a", "a"])

    def test_single_backend(self, rng):
        balancer = EwmaLatencyBalancer(["only"])
        assert balancer.pick(rng, 0.0) == "only"

    def test_herds_to_fastest(self, rng):
        balancer = EwmaLatencyBalancer(["fast", "slow"], start_time=0.0)
        for i in range(50):
            balancer.on_response("fast", float(i), 0.010, True)
            balancer.on_response("slow", float(i), 0.500, True)
        counts = collections.Counter(
            balancer.pick(rng, 50.0) for _ in range(1000))
        # Greedy argmin plus ~10 % exploration split across 2 backends.
        assert counts["fast"] > 900

    def test_exploration_keeps_sampling_losers(self, rng):
        balancer = EwmaLatencyBalancer(["fast", "slow"], start_time=0.0)
        balancer.on_response("fast", 0.0, 0.010, True)
        balancer.on_response("slow", 0.0, 0.500, True)
        counts = collections.Counter(
            balancer.pick(rng, 1.0) for _ in range(5000))
        assert counts["slow"] > 100  # epsilon/n of 5000 ~ 250


class TestGradientDescent:
    def test_validation(self):
        with pytest.raises(ConfigError):
            GradientDescentBalancer([])
        with pytest.raises(ConfigError):
            GradientDescentBalancer(["a", "a"])
        with pytest.raises(ConfigError):
            GradientConfig(step_size=0.0)
        with pytest.raises(ConfigError):
            GradientConfig(min_share=1.0)
        with pytest.raises(ConfigError):
            # floor infeasible: 3 backends x 0.4 > 1
            GradientDescentBalancer(
                ["a", "b", "c"], GradientConfig(min_share=0.4))

    def test_single_backend(self, rng):
        balancer = GradientDescentBalancer(["only"])
        assert balancer.pick(rng, 0.0) == "only"

    def test_starts_uniform(self):
        balancer = GradientDescentBalancer(["a", "b", "c", "d"])
        assert all(share == pytest.approx(0.25)
                   for share in balancer.shares.values())

    def test_update_moves_mass_to_cheap_backend(self):
        balancer = GradientDescentBalancer(["cheap", "dear"])
        for _ in range(20):
            balancer.on_response("cheap", 0.0, 0.010, True)
            balancer.on_response("dear", 0.0, 0.200, True)
        balancer.update(5.0)
        assert balancer.shares["cheap"] > 0.5 > balancer.shares["dear"]

    def test_converges_to_floor_on_persistent_gap(self):
        config = GradientConfig(min_share=0.05)
        balancer = GradientDescentBalancer(["cheap", "dear"], config)
        for round_ in range(30):
            for _ in range(20):
                balancer.on_response("cheap", float(round_), 0.010, True)
                balancer.on_response("dear", float(round_), 0.200, True)
            balancer.update(float(round_))
        assert balancer.shares["dear"] == pytest.approx(0.05)
        assert balancer.shares["cheap"] == pytest.approx(0.95)
        assert sum(balancer.shares.values()) == pytest.approx(1.0)

    def test_failures_are_expensive(self):
        balancer = GradientDescentBalancer(["up", "down"])
        for _ in range(20):
            balancer.on_response("up", 0.0, 0.050, True)
            balancer.on_response("down", 0.0, 0.050, False)
        balancer.update(5.0)
        assert balancer.shares["up"] > balancer.shares["down"]

    def test_estimate_persists_without_samples(self):
        balancer = GradientDescentBalancer(["a", "b"])
        for _ in range(10):
            balancer.on_response("a", 0.0, 0.010, True)
            balancer.on_response("b", 0.0, 0.200, True)
        balancer.update(5.0)
        after_first = dict(balancer.shares)
        balancer.update(10.0)  # no new samples: same gradient re-applied
        assert balancer.shares["a"] >= after_first["a"]

    def test_projection_properties(self):
        shares = project_to_floored_simplex(
            {"a": 0.9, "b": 0.005, "c": 0.095}, floor=0.02)
        assert sum(shares.values()) == pytest.approx(1.0)
        assert all(share >= 0.02 - 1e-12 for share in shares.values())
        degenerate = project_to_floored_simplex(
            {"a": 0.0, "b": 0.0}, floor=0.1)
        assert degenerate == {"a": 0.5, "b": 0.5}


class TestKnapsack:
    def test_validation(self):
        with pytest.raises(ConfigError):
            KnapsackLbController([], FakeSource({}), FakeSink())
        with pytest.raises(ConfigError):
            KnapsackConfig(allocation_units=0)
        with pytest.raises(ConfigError):
            KnapsackConfig(latency_signal="p999")

    def test_greedy_equalises_marginal_latency(self):
        # Equal bases, slopes 1:3 -> allocation settles near 3:1.
        fast = LoadCostModel(0.1)
        slow = LoadCostModel(0.1)
        for rps in (10.0, 20.0, 30.0):
            fast.observe(rps, 0.010 + 0.001 * rps)
            slow.observe(rps, 0.010 + 0.003 * rps)
        counts = greedy_allocation(
            {"fast": fast, "slow": slow}, total_rps=100.0, units=100)
        assert counts["fast"] + counts["slow"] == 100
        assert counts["fast"] == pytest.approx(75, abs=3)

    def test_cold_start_ranks_on_base_latency(self):
        near = LoadCostModel(0.020)
        far = LoadCostModel(0.080)
        counts = greedy_allocation(
            {"near": near, "far": far}, total_rps=0.0, units=10)
        assert counts["near"] == 10 and counts["far"] == 0

    def test_reconcile_pushes_floored_weights(self):
        sink = FakeSink()
        source = FakeSource({
            "a": Sample(rps=50.0, mean_latency_s=0.020),
            "b": Sample(rps=50.0, mean_latency_s=0.900),
        })
        controller = KnapsackLbController(["a", "b"], source, sink)
        for now in (5.0, 10.0, 15.0):
            weights = controller.reconcile(now)
        assert controller.reconcile_count == 3
        assert weights["a"] > weights["b"] >= 1  # floor keeps probes alive
        assert sink.pushed[-1][0] == 15.0

    def test_missing_samples_keep_prior(self):
        sink = FakeSink()
        controller = KnapsackLbController(
            ["a", "b"], FakeSource({}), sink)
        weights = controller.reconcile(5.0)
        assert set(weights) == {"a", "b"}
        assert all(weight >= 1 for weight in weights.values())

    def test_pause_resume(self):
        controller = KnapsackLbController(
            ["a"], FakeSource({}), FakeSink())
        controller.pause()
        assert controller.paused
        controller.resume()
        assert not controller.paused


class TestServiceRate:
    def test_validation(self):
        with pytest.raises(ConfigError):
            ServiceRateController([], FakeSource({}), FakeSink())
        with pytest.raises(ConfigError):
            ServiceRateConfig(solve_iterations=0)

    def test_fixed_point_shares_proportional_to_rates(self):
        # Constant service times (no load dependence): shares must be
        # proportional to the service rates 1/s0.
        fast = LoadCostModel(0.010)
        slow = LoadCostModel(0.030)
        shares = solve_rate_shares(
            {"fast": fast, "slow": slow}, total_rps=100.0, iterations=8)
        assert shares["fast"] == pytest.approx(0.75, abs=1e-6)
        assert shares["slow"] == pytest.approx(0.25, abs=1e-6)

    def test_load_dependent_rate_shifts_share(self):
        flat = LoadCostModel(0.010)
        degrading = LoadCostModel(0.010)
        for rps in (10.0, 30.0, 50.0):
            flat.observe(rps, 0.010)
            degrading.observe(rps, 0.010 + 0.001 * rps)
        shares = solve_rate_shares(
            {"flat": flat, "degrading": degrading},
            total_rps=200.0, iterations=8)
        assert shares["flat"] > shares["degrading"]
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_reconcile_deflates_by_queue_depth(self):
        sink = FakeSink()
        source = FakeSource({
            # Same latency, but "queued" holds 4 in flight: its service
            # time estimate is latency/5, so it earns the larger share.
            "lone": Sample(rps=50.0, mean_latency_s=0.100, inflight=0.0),
            "queued": Sample(rps=50.0, mean_latency_s=0.100, inflight=4.0),
        })
        controller = ServiceRateController(["lone", "queued"], source, sink)
        weights = controller.reconcile(5.0)
        assert weights["queued"] > weights["lone"]
        assert controller.last_weights == weights
