"""Tests for the decorator-based balancer registry."""

import pytest

from repro.balancers import (
    C3Balancer,
    EwmaLatencyBalancer,
    FailoverBalancer,
    GradientDescentBalancer,
    KnapsackLbBalancer,
    L3Balancer,
    LeastOutstandingBalancer,
    P2cPeakEwmaBalancer,
    RoundRobinBalancer,
    ServiceRateAwareBalancer,
)
from repro.balancers.factory import (
    BALANCER_NAMES,
    balancer_specs,
    controller_balancer_names,
    make_balancer,
    register_balancer,
)
from repro.errors import ConfigError

BACKENDS = ["api/cluster-1", "api/cluster-2"]

EXPECTED_CLASSES = {
    "round-robin": RoundRobinBalancer,
    "c3": C3Balancer,
    "l3": L3Balancer,
    "l3-peak": L3Balancer,
    "p2c": P2cPeakEwmaBalancer,
    "failover": FailoverBalancer,
    "least-outstanding": LeastOutstandingBalancer,
    "ewma": EwmaLatencyBalancer,
    "knapsack": KnapsackLbBalancer,
    "gradient": GradientDescentBalancer,
    "service-rate": ServiceRateAwareBalancer,
}


class FakeSource:
    def collect(self, backend_names, now, window_s, percentile):
        return {name: None for name in backend_names}


class TestRegistry:
    def test_names_derive_from_registry(self):
        assert BALANCER_NAMES == tuple(
            spec.name for spec in balancer_specs())
        # The original six stay first, in their historical order (CLI
        # choices and docs depend on it).
        assert BALANCER_NAMES[:6] == (
            "round-robin", "c3", "l3", "l3-peak", "p2c", "failover")
        assert len(BALANCER_NAMES) >= 9

    def test_every_name_builds_its_class(self, sim):
        for name, expected in EXPECTED_CLASSES.items():
            balancer = make_balancer(
                name, sim, "api", BACKENDS, FakeSource(),
                local_cluster="cluster-1")
            assert isinstance(balancer, expected), name

    def test_unknown_name_lists_valid_set(self, sim):
        with pytest.raises(ConfigError, match="round-robin"):
            make_balancer("psychic", sim, "api", BACKENDS, FakeSource())

    def test_controller_flag_matches_reality(self, sim):
        controller_names = controller_balancer_names()
        for name in BALANCER_NAMES:
            balancer = make_balancer(
                name, sim, "api", BACKENDS, FakeSource(),
                local_cluster="cluster-1")
            has_controller = getattr(balancer, "controller", None) is not None
            assert has_controller == (name in controller_names), name

    def test_controller_interface_uniform(self, sim):
        """Every controller exposes the pause/introspection surface the
        fault injector and the coordinator program against."""
        for name in controller_balancer_names():
            balancer = make_balancer(
                name, sim, "api", BACKENDS, FakeSource())
            controller = balancer.controller
            assert hasattr(controller, "reconcile")
            assert hasattr(controller, "pause")
            assert hasattr(controller, "resume")
            assert controller.reconcile_count == 0
            assert controller.last_weights == {}

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigError, match="registered twice"):
            register_balancer("l3", summary="imposter")(lambda ctx: None)

    def test_specs_have_summaries(self):
        for spec in balancer_specs():
            assert spec.summary, spec.name

    def test_l3_peak_flag_forced(self, sim):
        plain = make_balancer("l3", sim, "api", BACKENDS, FakeSource())
        peak = make_balancer("l3-peak", sim, "api", BACKENDS, FakeSource())
        assert plain.config.use_peak_ewma is False
        assert peak.config.use_peak_ewma is True

    def test_failover_prefers_local_cluster(self, sim):
        balancer = make_balancer(
            "failover", sim, "api", BACKENDS, FakeSource(),
            local_cluster="cluster-2")
        assert balancer._order[0] == "api/cluster-2"
