"""Tests for the C3 adaptation."""

import math

import pytest

from repro.balancers.c3 import C3Balancer, C3Config, C3Controller, c3_score
from repro.core.controller import MetricSample
from repro.errors import ConfigError


class FakeSource:
    def __init__(self):
        self.samples = {}
        self.queues = {}

    def collect(self, backend_names, now, window_s, percentile):
        return {name: self.samples.get(name) for name in backend_names}

    def server_queue(self, name, now, window_s):
        return self.queues.get(name, 0.0)


class FakeSink:
    def __init__(self):
        self.writes = []

    def set_weights(self, weights, now):
        self.writes.append((now, dict(weights)))


class TestConfig:
    def test_defaults(self):
        config = C3Config()
        assert config.latency_signal == "mean"
        assert config.queue_signal == "server"
        assert config.reconcile_interval_s == 5.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            C3Config(latency_signal="p42")
        with pytest.raises(ConfigError):
            C3Config(queue_signal="psychic")
        with pytest.raises(ConfigError):
            C3Config(weight_scale=0.0)
        with pytest.raises(ConfigError):
            C3Config(percentile=0.0)


class TestScore:
    def test_zero_queue_score_is_latency(self):
        assert math.isclose(c3_score(0.1, 0.0), 0.1)

    def test_score_grows_cubically_with_queue(self):
        base = c3_score(0.1, 0.0)
        loaded = c3_score(0.1, 3.0)
        # q=3: T = R/4, psi = R - R/4 + 64 R/4 = 16.75 R
        assert math.isclose(loaded / base, 16.75)

    def test_lower_latency_lower_score(self):
        assert c3_score(0.05, 1.0) < c3_score(0.5, 1.0)

    def test_score_never_zero(self):
        assert c3_score(0.0, 0.0) > 0.0

    def test_negative_queue_clamped(self):
        assert c3_score(0.1, -5.0) == c3_score(0.1, 0.0)


class TestController:
    def test_needs_backends(self):
        with pytest.raises(ConfigError):
            C3Controller([], FakeSource(), FakeSink())

    def test_prefers_faster_backend(self):
        source = FakeSource()
        source.samples = {
            "fast": MetricSample(0.2, 1.0, 100.0, 1.0, mean_latency_s=0.05),
            "slow": MetricSample(0.9, 1.0, 100.0, 1.0, mean_latency_s=0.50),
        }
        sink = FakeSink()
        controller = C3Controller(["fast", "slow"], source, sink)
        for t in range(1, 10):
            controller.reconcile(float(t * 5))
        weights = controller.last_weights
        assert weights["fast"] > weights["slow"]

    def test_queue_buildup_penalised(self):
        source = FakeSource()
        source.samples = {
            "a": MetricSample(0.2, 1.0, 100.0, 1.0, mean_latency_s=0.1),
            "b": MetricSample(0.2, 1.0, 100.0, 1.0, mean_latency_s=0.1),
        }
        source.queues = {"a": 8.0, "b": 0.0}
        sink = FakeSink()
        controller = C3Controller(["a", "b"], source, sink)
        for t in range(1, 10):
            controller.reconcile(float(t * 5))
        weights = controller.last_weights
        assert weights["b"] > weights["a"] * 3

    def test_percentile_signal_configurable(self):
        source = FakeSource()
        source.samples = {
            "a": MetricSample(0.9, 1.0, 100.0, 1.0, mean_latency_s=0.05),
            "b": MetricSample(0.1, 1.0, 100.0, 1.0, mean_latency_s=0.50),
        }
        sink = FakeSink()
        controller = C3Controller(
            ["a", "b"], source, sink,
            C3Config(latency_signal="percentile"))
        for t in range(1, 10):
            controller.reconcile(float(t * 5))
        # With the percentile signal, "b" (P99 0.1 s) looks better.
        assert controller.last_weights["b"] > controller.last_weights["a"]

    def test_success_rate_is_ignored(self):
        # The paper's adaptation performs no success-rate optimisation.
        source = FakeSource()
        source.samples = {
            "healthy": MetricSample(0.2, 1.0, 100.0, 1.0, mean_latency_s=0.1),
            "failing": MetricSample(0.2, 0.1, 100.0, 1.0, mean_latency_s=0.1),
        }
        sink = FakeSink()
        controller = C3Controller(["healthy", "failing"], source, sink)
        for t in range(1, 6):
            controller.reconcile(float(t * 5))
        weights = controller.last_weights
        assert abs(weights["healthy"] - weights["failing"]) <= 1

    def test_missing_sample_keeps_previous_state(self):
        source = FakeSource()
        source.samples = {
            "a": MetricSample(0.2, 1.0, 100.0, 1.0, mean_latency_s=0.1),
        }
        sink = FakeSink()
        controller = C3Controller(["a", "b"], source, sink)
        controller.reconcile(5.0)
        # "b" had no sample: it stays at the 5 s default latency.
        assert controller.backends["b"].latency.value == 5.0


class TestC3Balancer:
    def test_runs_control_loop(self, sim):
        source = FakeSource()
        source.samples = {
            "svc/c1": MetricSample(0.2, 1.0, 100.0, 1.0, mean_latency_s=0.05),
            "svc/c2": MetricSample(0.9, 1.0, 100.0, 1.0, mean_latency_s=0.50),
        }
        balancer = C3Balancer(sim, "svc", ["svc/c1", "svc/c2"], source,
                              propagation_delay_s=0.0)
        balancer.start(sim)
        sim.run(until=60.0)
        balancer.stop()
        sim.run(until=61.0)
        assert balancer.controller.reconcile_count == 12
        assert balancer.split.weights["svc/c1"] > balancer.split.weights["svc/c2"]
