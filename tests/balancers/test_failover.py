"""Tests for the locality-failover baseline (related-work mechanism)."""

import pytest

from repro.balancers.failover import FailoverBalancer
from repro.errors import ConfigError


class TestValidation:
    def test_needs_backends(self):
        with pytest.raises(ConfigError):
            FailoverBalancer([])

    def test_duplicates_rejected(self):
        with pytest.raises(ConfigError):
            FailoverBalancer(["a", "a"])

    def test_threshold_bounds(self):
        with pytest.raises(ConfigError):
            FailoverBalancer(["a"], unhealthy_threshold=0.0)
        with pytest.raises(ConfigError):
            FailoverBalancer(["a"], unhealthy_threshold=1.5)

    def test_window_and_ejection(self):
        with pytest.raises(ConfigError):
            FailoverBalancer(["a"], window=0)
        with pytest.raises(ConfigError):
            FailoverBalancer(["a"], ejection_s=-1.0)


class TestFailover:
    def test_prefers_first_backend_when_healthy(self, rng):
        balancer = FailoverBalancer(["local", "remote"])
        assert all(balancer.pick(rng, 0.0) == "local" for _ in range(20))

    def test_fails_over_when_local_unhealthy(self, rng):
        balancer = FailoverBalancer(
            ["local", "remote"], unhealthy_threshold=0.5, window=10,
            ejection_s=30.0)
        for i in range(10):
            balancer.on_response("local", float(i), 0.01, success=False)
        assert balancer.pick(rng, 10.0) == "remote"

    def test_recovers_after_ejection_expires(self, rng):
        balancer = FailoverBalancer(
            ["local", "remote"], unhealthy_threshold=0.5, window=10,
            ejection_s=30.0)
        for i in range(10):
            balancer.on_response("local", float(i), 0.01, success=False)
        assert balancer.pick(rng, 10.0) == "remote"
        # After the ejection window the cleared health record fails open.
        assert balancer.pick(rng, 50.0) == "local"

    def test_mostly_successful_backend_stays_healthy(self, rng):
        balancer = FailoverBalancer(
            ["local", "remote"], unhealthy_threshold=0.5, window=10)
        for i in range(20):
            balancer.on_response("local", float(i), 0.01,
                                 success=(i % 10 != 0))  # 90 % success
        assert balancer.pick(rng, 25.0) == "local"

    def test_all_unhealthy_falls_back_to_top_preference(self, rng):
        balancer = FailoverBalancer(
            ["a", "b"], unhealthy_threshold=0.9, window=4, ejection_s=60.0)
        for i in range(4):
            balancer.on_response("a", float(i), 0.01, success=False)
            balancer.on_response("b", float(i), 0.01, success=False)
        assert balancer.pick(rng, 5.0) == "a"

    def test_few_samples_fail_open(self, rng):
        balancer = FailoverBalancer(
            ["local", "remote"], unhealthy_threshold=0.5, window=10)
        balancer.on_response("local", 0.0, 0.01, success=False)
        # One failure out of a 10-wide window is not enough to judge.
        assert balancer.pick(rng, 1.0) == "local"


class TestFactoryIntegration:
    def test_factory_builds_failover_with_local_first(self, sim):
        from repro.balancers.factory import make_balancer

        balancer = make_balancer(
            "failover", sim, "svc",
            ["svc/cluster-2", "svc/cluster-1", "svc/cluster-3"],
            metrics_source=None, local_cluster="cluster-2")
        assert balancer._order[0] == "svc/cluster-2"

    def test_scenario_benchmark_supports_failover(self):
        from repro.bench.coordinator import (
            ScenarioBenchConfig,
            run_scenario_benchmark,
        )

        result = run_scenario_benchmark(
            "scenario-1", "failover", duration_s=20.0, seed=3,
            env=ScenarioBenchConfig(warmup_s=5.0, drain_s=10.0))
        assert result.request_count > 100
        # Healthy local cluster: everything stays local.
        assert {r.backend for r in result.records} == {"api/cluster-1"}
