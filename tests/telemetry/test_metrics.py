"""Tests for counters, gauges and per-backend telemetry bundles."""

import pytest

from repro.errors import TelemetryError
from repro.telemetry.metrics import BackendTelemetry, Counter, Gauge


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter().value == 0.0

    def test_inc_accumulates(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_cannot_decrease(self):
        with pytest.raises(TelemetryError):
            Counter().inc(-1.0)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge(10.0)
        gauge.inc(5.0)
        gauge.dec(2.0)
        assert gauge.value == 13.0
        gauge.set(0.0)
        assert gauge.value == 0.0


class TestBackendTelemetry:
    def test_scrape_name_defaults_to_backend_name(self):
        telemetry = BackendTelemetry("svc/cluster-1")
        assert telemetry.scrape_name == "svc/cluster-1"

    def test_scrape_name_override(self):
        telemetry = BackendTelemetry("svc/c1", scrape_name="cluster-2|svc/c1")
        assert telemetry.scrape_name == "cluster-2|svc/c1"
        assert telemetry.backend_name == "svc/c1"

    def test_request_lifecycle_success(self):
        telemetry = BackendTelemetry("b")
        telemetry.on_request_sent()
        assert telemetry.inflight.value == 1
        telemetry.on_response(0.050, success=True)
        assert telemetry.inflight.value == 0
        assert telemetry.requests_total.value == 1
        assert telemetry.failures_total.value == 0
        assert telemetry.success_latency.count == 1
        assert telemetry.failure_latency.count == 0

    def test_request_lifecycle_failure(self):
        telemetry = BackendTelemetry("b")
        telemetry.on_request_sent()
        telemetry.on_response(0.020, success=False)
        assert telemetry.failures_total.value == 1
        assert telemetry.success_latency.count == 0
        assert telemetry.failure_latency.count == 1

    def test_failure_latency_never_pollutes_success_histogram(self):
        telemetry = BackendTelemetry("b")
        for _ in range(10):
            telemetry.on_request_sent()
            telemetry.on_response(5.0, success=False)
        telemetry.on_request_sent()
        telemetry.on_response(0.001, success=True)
        assert telemetry.success_latency.quantile(0.99) < 0.01
