"""Tests for the bucketed latency histogram and quantile estimation."""

import math

import pytest

from repro.errors import TelemetryError
from repro.telemetry.histogram import (
    DEFAULT_BUCKET_BOUNDS_S,
    LatencyHistogram,
    quantile_from_cumulative,
    quantile_from_delta,
)


class TestBucketLadder:
    def test_default_ladder_is_sorted_and_unique(self):
        bounds = DEFAULT_BUCKET_BOUNDS_S
        assert list(bounds) == sorted(bounds)
        assert len(set(bounds)) == len(bounds)

    def test_ladder_spans_1ms_to_60s(self):
        assert DEFAULT_BUCKET_BOUNDS_S[0] == 0.001
        assert DEFAULT_BUCKET_BOUNDS_S[-1] == 60.0

    def test_custom_bounds_validation(self):
        with pytest.raises(TelemetryError):
            LatencyHistogram(bounds=(0.2, 0.1))
        with pytest.raises(TelemetryError):
            LatencyHistogram(bounds=())
        with pytest.raises(TelemetryError):
            LatencyHistogram(bounds=(0.1, 0.1))


class TestObserve:
    def test_count_and_sum(self):
        histogram = LatencyHistogram()
        histogram.observe(0.010)
        histogram.observe(0.020)
        assert histogram.count == 2
        assert math.isclose(histogram.sum, 0.030)

    def test_negative_rejected(self):
        with pytest.raises(TelemetryError):
            LatencyHistogram().observe(-0.1)

    def test_nan_rejected(self):
        with pytest.raises(TelemetryError):
            LatencyHistogram().observe(float("nan"))

    def test_cumulative_counts_are_monotone(self):
        histogram = LatencyHistogram()
        for value in (0.0005, 0.003, 0.05, 0.2, 3.0, 100.0):
            histogram.observe(value)
        cumulative = histogram.cumulative_counts()
        assert list(cumulative) == sorted(cumulative)
        assert cumulative[-1] == histogram.count

    def test_overflow_goes_to_inf_bucket(self):
        histogram = LatencyHistogram(bounds=(0.1, 1.0))
        histogram.observe(99.0)
        cumulative = histogram.cumulative_counts()
        assert cumulative == (0, 0, 1)

    def test_boundary_value_lands_in_le_bucket(self):
        histogram = LatencyHistogram(bounds=(0.1, 1.0))
        histogram.observe(0.1)
        assert histogram.cumulative_counts() == (1, 1, 1)


class TestQuantile:
    def test_empty_histogram_returns_zero(self):
        assert LatencyHistogram().quantile(0.99) == 0.0

    def test_invalid_quantile_rejected(self):
        with pytest.raises(TelemetryError):
            LatencyHistogram().quantile(1.5)

    def test_interpolates_within_bucket(self):
        histogram = LatencyHistogram(bounds=(0.1, 0.2, 0.4))
        for _ in range(100):
            histogram.observe(0.15)  # all samples in (0.1, 0.2]
        q50 = histogram.quantile(0.5)
        assert 0.1 < q50 <= 0.2

    def test_rank_in_overflow_clamps_to_top_bound(self):
        histogram = LatencyHistogram(bounds=(0.1, 1.0))
        for _ in range(100):
            histogram.observe(50.0)
        assert histogram.quantile(0.99) == 1.0

    def test_accuracy_within_bucket_resolution(self):
        import random

        rng = random.Random(3)
        histogram = LatencyHistogram()
        samples = [rng.lognormvariate(math.log(0.05), 0.5)
                   for _ in range(50_000)]
        for sample in samples:
            histogram.observe(sample)
        samples.sort()
        exact = samples[int(0.99 * len(samples))]
        estimate = histogram.quantile(0.99)
        # Prometheus-style estimation is exact only up to the bucket width.
        assert 0.5 * exact <= estimate <= 2.0 * exact

    def test_q0_and_q1(self):
        histogram = LatencyHistogram(bounds=(0.1, 0.2))
        histogram.observe(0.05)
        histogram.observe(0.15)
        assert histogram.quantile(0.0) == 0.0
        assert histogram.quantile(1.0) <= 0.2


class TestDeltaQuantile:
    def test_window_distribution(self):
        bounds = (0.1, 0.2, 0.4)
        start = (5, 5, 5, 5)   # everything so far was <= 0.1
        end = (5, 105, 105, 105)  # the window added 100 samples in (0.1, .2]
        q50 = quantile_from_delta(bounds, start, end, 0.5)
        assert 0.1 < q50 <= 0.2

    def test_counter_reset_detected(self):
        bounds = (0.1,)
        with pytest.raises(TelemetryError):
            quantile_from_delta(bounds, (10, 10), (5, 5), 0.5)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(TelemetryError):
            quantile_from_delta((0.1,), (0, 0), (0, 0, 0), 0.5)

    def test_cumulative_length_validation(self):
        with pytest.raises(TelemetryError):
            quantile_from_cumulative((0.1, 0.2), (1, 2), 0.5)
