"""Tests for the periodic scraper."""

import pytest

from repro.errors import TelemetryError
from repro.telemetry import scraper as metric_names
from repro.telemetry.metrics import BackendTelemetry
from repro.telemetry.scraper import Scraper
from repro.telemetry.timeseries import TimeSeriesStore


@pytest.fixture
def store():
    return TimeSeriesStore()


@pytest.fixture
def scraper(store):
    return Scraper(store, interval_s=5.0)


class TestRegistration:
    def test_duplicate_target_rejected(self, scraper):
        scraper.register(BackendTelemetry("b"))
        with pytest.raises(TelemetryError):
            scraper.register(BackendTelemetry("b"))

    def test_scoped_names_coexist(self, scraper):
        scraper.register(BackendTelemetry("b", scrape_name="c1|b"))
        scraper.register(BackendTelemetry("b", scrape_name="c2|b"))

    def test_invalid_interval_rejected(self, store):
        with pytest.raises(TelemetryError):
            Scraper(store, interval_s=0.0)


class TestScraping:
    def test_scrape_once_writes_all_series(self, store, scraper):
        telemetry = BackendTelemetry("b")
        telemetry.on_request_sent()
        telemetry.on_response(0.05, success=True)
        scraper.register(telemetry)
        scraper.scrape_once(5.0)
        assert store.series("b", metric_names.REQUESTS_TOTAL).latest_in_window(
            0, 10)[1] == 1.0
        assert store.series("b", metric_names.FAILURES_TOTAL).latest_in_window(
            0, 10)[1] == 0.0
        buckets = store.series(
            "b", metric_names.SUCCESS_LATENCY_BUCKETS).latest_in_window(0, 10)[1]
        assert buckets[-1] == 1
        assert store.series(
            "b", metric_names.SUCCESS_LATENCY_COUNT).latest_in_window(0, 10)[1] == 1

    def test_custom_gauge_scraped(self, store, scraper):
        values = iter([3.0, 7.0])
        scraper.register_gauge("server|b", "queue", lambda: next(values))
        scraper.scrape_once(5.0)
        scraper.scrape_once(10.0)
        window = store.series("server|b", "queue").window(0.0, 20.0)
        assert [v for _t, v in window] == [3.0, 7.0]

    def test_run_loop_scrapes_on_interval(self, sim, store, scraper):
        telemetry = BackendTelemetry("b")
        scraper.register(telemetry)
        process = sim.spawn(scraper.run(sim))
        sim.run(until=16.0)
        samples = store.series("b", metric_names.REQUESTS_TOTAL).window(0, 16)
        assert [t for t, _v in samples] == [5.0, 10.0, 15.0]
        process.interrupt()
        sim.run()
        assert not process.is_alive

    def test_counters_scraped_are_monotone(self, sim, store, scraper):
        telemetry = BackendTelemetry("b")
        scraper.register(telemetry)

        def traffic(sim):
            while sim.now < 20.0:
                telemetry.on_request_sent()
                telemetry.on_response(0.01, success=True)
                yield sim.timeout(0.5)

        sim.spawn(traffic(sim))
        loop = sim.spawn(scraper.run(sim))
        sim.run(until=20.0)
        loop.interrupt()
        sim.run()
        values = [v for _t, v in
                  store.series("b", metric_names.REQUESTS_TOTAL).window(0, 99)]
        assert values == sorted(values)
