"""Tests for scraped-sample storage and windowed lookups."""

import pytest

from repro.errors import TelemetryError
from repro.telemetry.timeseries import SampleSeries, TimeSeriesStore


class TestSampleSeries:
    def test_append_and_len(self):
        series = SampleSeries()
        series.append(1.0, 10.0)
        series.append(2.0, 20.0)
        assert len(series) == 2

    def test_out_of_order_rejected(self):
        series = SampleSeries()
        series.append(5.0, 1.0)
        with pytest.raises(TelemetryError):
            series.append(4.0, 1.0)

    def test_equal_timestamps_allowed(self):
        series = SampleSeries()
        series.append(5.0, 1.0)
        series.append(5.0, 2.0)
        assert len(series) == 2

    def test_window_inclusive_bounds(self):
        series = SampleSeries()
        for t in (1.0, 2.0, 3.0, 4.0):
            series.append(t, t * 10)
        window = series.window(2.0, 3.0)
        assert [t for t, _v in window] == [2.0, 3.0]

    def test_first_last_requires_two_samples(self):
        series = SampleSeries()
        series.append(1.0, 10.0)
        assert series.first_last_in_window(0.0, 5.0) is None
        series.append(2.0, 20.0)
        (t0, v0), (t1, v1) = series.first_last_in_window(0.0, 5.0)
        assert (t0, v0) == (1.0, 10.0)
        assert (t1, v1) == (2.0, 20.0)

    def test_latest_in_window(self):
        series = SampleSeries()
        for t in (1.0, 2.0, 3.0):
            series.append(t, t)
        assert series.latest_in_window(0.0, 2.5) == (2.0, 2.0)
        assert series.latest_in_window(5.0, 9.0) is None

    def test_retention_trims_old_samples(self):
        series = SampleSeries(max_age_s=10.0)
        series.append(0.0, 1.0)
        series.append(100.0, 2.0)
        assert len(series) == 1
        assert series.latest_in_window(0.0, 100.0) == (100.0, 2.0)

    def test_invalid_retention_rejected(self):
        with pytest.raises(TelemetryError):
            SampleSeries(max_age_s=0.0)

    def test_stores_arbitrary_values(self):
        series = SampleSeries()
        series.append(1.0, (1, 2, 3))
        assert series.latest_in_window(0.0, 2.0)[1] == (1, 2, 3)


class TestTimeSeriesStore:
    def test_series_created_on_first_use(self):
        store = TimeSeriesStore()
        series = store.series("backend", "metric")
        assert series is store.series("backend", "metric")

    def test_backends_enumeration(self):
        store = TimeSeriesStore()
        store.series("a", "m1")
        store.series("b", "m2")
        assert store.backends() == {"a", "b"}

    def test_retention_propagates(self):
        store = TimeSeriesStore(max_age_s=42.0)
        assert store.series("a", "m").max_age_s == 42.0
