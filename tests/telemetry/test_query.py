"""Tests for the windowed metrics queries (the controller's data source)."""

import math

from repro.telemetry.metrics import BackendTelemetry
from repro.telemetry.query import PromMetricsSource
from repro.telemetry.scraper import Scraper
from repro.telemetry.timeseries import TimeSeriesStore


def scraped_traffic(latencies_and_outcomes, scrape_times, name="b",
                    scrape_name=None, inflight_at_end=0):
    """Build a store by replaying completed requests then scraping."""
    store = TimeSeriesStore()
    scraper = Scraper(store)
    telemetry = BackendTelemetry(name, scrape_name=scrape_name)
    scraper.register(telemetry)
    # First scrape with no traffic, then traffic, then the closing scrape.
    scraper.scrape_once(scrape_times[0])
    for latency, success in latencies_and_outcomes:
        telemetry.on_request_sent()
        telemetry.on_response(latency, success)
    for _ in range(inflight_at_end):
        telemetry.on_request_sent()
    for when in scrape_times[1:]:
        scraper.scrape_once(when)
    return store


class TestCollect:
    def test_rps_is_delta_over_elapsed(self):
        store = scraped_traffic(
            [(0.01, True)] * 50, scrape_times=(0.0, 5.0, 10.0))
        source = PromMetricsSource(store)
        sample = source.collect(["b"], 10.0, 10.0, 0.99)["b"]
        assert math.isclose(sample.rps, 5.0)  # 50 requests over 10 s

    def test_success_rate_from_failure_delta(self):
        store = scraped_traffic(
            [(0.01, True)] * 90 + [(0.01, False)] * 10,
            scrape_times=(0.0, 10.0))
        source = PromMetricsSource(store)
        sample = source.collect(["b"], 10.0, 10.0, 0.99)["b"]
        assert math.isclose(sample.success_rate, 0.9)

    def test_no_traffic_yields_none(self):
        store = scraped_traffic([], scrape_times=(0.0, 5.0, 10.0))
        source = PromMetricsSource(store)
        assert source.collect(["b"], 10.0, 10.0, 0.99)["b"] is None

    def test_single_scrape_in_window_yields_none(self):
        store = scraped_traffic([(0.01, True)], scrape_times=(0.0, 10.0))
        source = PromMetricsSource(store)
        # Window covers only the last scrape: rate() needs two samples.
        assert source.collect(["b"], 10.0, 5.0, 0.99)["b"] is None

    def test_all_failures_gives_none_latency(self):
        store = scraped_traffic(
            [(0.01, False)] * 10, scrape_times=(0.0, 10.0))
        source = PromMetricsSource(store)
        sample = source.collect(["b"], 10.0, 10.0, 0.99)["b"]
        assert sample is not None
        assert sample.latency_s is None
        assert sample.success_rate == 0.0

    def test_percentile_reflects_distribution(self):
        store = scraped_traffic(
            [(0.010, True)] * 99 + [(1.0, True)], scrape_times=(0.0, 10.0))
        source = PromMetricsSource(store)
        p50 = source.collect(["b"], 10.0, 10.0, 0.50)["b"].latency_s
        p999 = source.collect(["b"], 10.0, 10.0, 0.999)["b"].latency_s
        assert p50 < 0.05
        assert p999 > 0.5

    def test_mean_latency(self):
        store = scraped_traffic(
            [(0.010, True)] * 50 + [(0.030, True)] * 50,
            scrape_times=(0.0, 10.0))
        source = PromMetricsSource(store)
        sample = source.collect(["b"], 10.0, 10.0, 0.99)["b"]
        assert math.isclose(sample.mean_latency_s, 0.020, rel_tol=1e-9)

    def test_inflight_from_latest_gauge(self):
        store = scraped_traffic(
            [(0.01, True)] * 10, scrape_times=(0.0, 10.0),
            inflight_at_end=4)
        source = PromMetricsSource(store)
        sample = source.collect(["b"], 10.0, 10.0, 0.99)["b"]
        assert sample.inflight == 4.0

    def test_unknown_backend_is_none(self):
        source = PromMetricsSource(TimeSeriesStore())
        assert source.collect(["ghost"], 10.0, 10.0, 0.99)["ghost"] is None


class TestScoping:
    def test_scoped_source_reads_prefixed_series(self):
        store = scraped_traffic(
            [(0.01, True)] * 20, scrape_times=(0.0, 10.0),
            scrape_name="cluster-1|b")
        scoped = PromMetricsSource(store, scope="cluster-1")
        unscoped = PromMetricsSource(store)
        assert scoped.collect(["b"], 10.0, 10.0, 0.99)["b"] is not None
        assert unscoped.collect(["b"], 10.0, 10.0, 0.99)["b"] is None


class TestServerQueue:
    def test_reads_latest_server_gauge(self):
        store = TimeSeriesStore()
        scraper = Scraper(store)
        scraper.register_gauge("server|b", "server_queue", lambda: 6.0)
        scraper.scrape_once(5.0)
        source = PromMetricsSource(store)
        assert source.server_queue("b", 10.0, 10.0) == 6.0

    def test_missing_series_returns_zero(self):
        source = PromMetricsSource(TimeSeriesStore())
        assert source.server_queue("b", 10.0, 10.0) == 0.0


class TestFailureLatency:
    def test_failure_latency_quantile(self):
        store = scraped_traffic(
            [(0.5, False)] * 20 + [(0.01, True)] * 20,
            scrape_times=(0.0, 10.0))
        source = PromMetricsSource(store)
        q = source.failure_latency_quantile("b", 10.0, 10.0, 0.5)
        assert q is not None and q > 0.3

    def test_no_failures_returns_none(self):
        store = scraped_traffic(
            [(0.01, True)] * 20, scrape_times=(0.0, 10.0))
        source = PromMetricsSource(store)
        assert source.failure_latency_quantile("b", 10.0, 10.0, 0.5) is None


class TestScopedNameMemoization:
    def test_scoped_names_built_once_and_reused(self):
        source = PromMetricsSource(TimeSeriesStore(), scope="cluster-1")
        first = source._scoped("b")
        second = source._scoped("b")
        assert first == "cluster-1|b"
        assert first is second  # memoized: the exact same string object
        assert source._scoped_names == {"b": "cluster-1|b"}

    def test_unscoped_source_skips_the_memo(self):
        source = PromMetricsSource(TimeSeriesStore())
        assert source._scoped("b") == "b"
        assert source._scoped_names == {}

    def test_server_names_memoized(self):
        source = PromMetricsSource(TimeSeriesStore())
        source.server_queue("b", 10.0, 10.0)
        first = source._server_names["b"]
        source.server_queue("b", 20.0, 10.0)
        assert source._server_names["b"] is first
        assert first == "server|b"

    def test_collect_uses_memoized_names(self):
        store = scraped_traffic(
            [(0.01, True)] * 10, scrape_times=(0.0, 10.0),
            scrape_name="cluster-1|b")
        source = PromMetricsSource(store, scope="cluster-1")
        source.collect(["b"], 10.0, 10.0, 0.99)
        cached = source._scoped_names["b"]
        sample = source.collect(["b"], 10.0, 10.0, 0.99)["b"]
        assert sample is not None
        assert source._scoped_names["b"] is cached


class TestNoTrafficDecayPath:
    """No traffic in the window -> None -> controller decay-toward-default."""

    def test_traffic_outside_window_yields_none(self):
        store = scraped_traffic(
            [(0.01, True)] * 20, scrape_times=(0.0, 5.0, 10.0))
        source = PromMetricsSource(store)
        # Plenty of traffic before t=10, none in the (40, 50] window.
        assert source.collect(["b"], 50.0, 10.0, 0.99)["b"] is None

    def test_controller_decays_toward_defaults_on_none(self):
        from repro.core.config import L3Config
        from repro.core.controller import L3Controller

        store = scraped_traffic(
            [(0.2, True)] * 200, scrape_times=(0.0, 5.0, 10.0))
        source = PromMetricsSource(store)

        class Sink:
            def set_weights(self, weights, now):
                pass

        config = L3Config(staleness_s=10.0, decay_fraction=0.5)
        controller = L3Controller(["b"], source, Sink(), config=config)
        controller.reconcile(10.0)
        state = controller.backends["b"]
        observed = state.latency.value
        # The EWMA was pulled down from the 5 s default toward ~0.2 s.
        assert observed < config.default_latency_s / 2.0

        # The backend goes quiet: every later window is empty, so collect
        # returns None and (past staleness) the filters decay back toward
        # default_latency_s in increments.
        values = [observed]
        for now in (25.0, 30.0, 35.0, 40.0):
            assert source.collect(["b"], now, 10.0, 0.99)["b"] is None
            controller.reconcile(now)
            values.append(state.latency.value)
        assert all(b >= a for a, b in zip(values, values[1:]))
        assert values[-1] > observed
        assert values[-1] <= config.default_latency_s
