"""Tests for the windowed metrics queries (the controller's data source)."""

import math

from repro.telemetry.metrics import BackendTelemetry
from repro.telemetry.query import PromMetricsSource
from repro.telemetry.scraper import Scraper
from repro.telemetry.timeseries import TimeSeriesStore


def scraped_traffic(latencies_and_outcomes, scrape_times, name="b",
                    scrape_name=None, inflight_at_end=0):
    """Build a store by replaying completed requests then scraping."""
    store = TimeSeriesStore()
    scraper = Scraper(store)
    telemetry = BackendTelemetry(name, scrape_name=scrape_name)
    scraper.register(telemetry)
    # First scrape with no traffic, then traffic, then the closing scrape.
    scraper.scrape_once(scrape_times[0])
    for latency, success in latencies_and_outcomes:
        telemetry.on_request_sent()
        telemetry.on_response(latency, success)
    for _ in range(inflight_at_end):
        telemetry.on_request_sent()
    for when in scrape_times[1:]:
        scraper.scrape_once(when)
    return store


class TestCollect:
    def test_rps_is_delta_over_elapsed(self):
        store = scraped_traffic(
            [(0.01, True)] * 50, scrape_times=(0.0, 5.0, 10.0))
        source = PromMetricsSource(store)
        sample = source.collect(["b"], 10.0, 10.0, 0.99)["b"]
        assert math.isclose(sample.rps, 5.0)  # 50 requests over 10 s

    def test_success_rate_from_failure_delta(self):
        store = scraped_traffic(
            [(0.01, True)] * 90 + [(0.01, False)] * 10,
            scrape_times=(0.0, 10.0))
        source = PromMetricsSource(store)
        sample = source.collect(["b"], 10.0, 10.0, 0.99)["b"]
        assert math.isclose(sample.success_rate, 0.9)

    def test_no_traffic_yields_none(self):
        store = scraped_traffic([], scrape_times=(0.0, 5.0, 10.0))
        source = PromMetricsSource(store)
        assert source.collect(["b"], 10.0, 10.0, 0.99)["b"] is None

    def test_single_scrape_in_window_yields_none(self):
        store = scraped_traffic([(0.01, True)], scrape_times=(0.0, 10.0))
        source = PromMetricsSource(store)
        # Window covers only the last scrape: rate() needs two samples.
        assert source.collect(["b"], 10.0, 5.0, 0.99)["b"] is None

    def test_all_failures_gives_none_latency(self):
        store = scraped_traffic(
            [(0.01, False)] * 10, scrape_times=(0.0, 10.0))
        source = PromMetricsSource(store)
        sample = source.collect(["b"], 10.0, 10.0, 0.99)["b"]
        assert sample is not None
        assert sample.latency_s is None
        assert sample.success_rate == 0.0

    def test_percentile_reflects_distribution(self):
        store = scraped_traffic(
            [(0.010, True)] * 99 + [(1.0, True)], scrape_times=(0.0, 10.0))
        source = PromMetricsSource(store)
        p50 = source.collect(["b"], 10.0, 10.0, 0.50)["b"].latency_s
        p999 = source.collect(["b"], 10.0, 10.0, 0.999)["b"].latency_s
        assert p50 < 0.05
        assert p999 > 0.5

    def test_mean_latency(self):
        store = scraped_traffic(
            [(0.010, True)] * 50 + [(0.030, True)] * 50,
            scrape_times=(0.0, 10.0))
        source = PromMetricsSource(store)
        sample = source.collect(["b"], 10.0, 10.0, 0.99)["b"]
        assert math.isclose(sample.mean_latency_s, 0.020, rel_tol=1e-9)

    def test_inflight_from_latest_gauge(self):
        store = scraped_traffic(
            [(0.01, True)] * 10, scrape_times=(0.0, 10.0),
            inflight_at_end=4)
        source = PromMetricsSource(store)
        sample = source.collect(["b"], 10.0, 10.0, 0.99)["b"]
        assert sample.inflight == 4.0

    def test_unknown_backend_is_none(self):
        source = PromMetricsSource(TimeSeriesStore())
        assert source.collect(["ghost"], 10.0, 10.0, 0.99)["ghost"] is None


class TestScoping:
    def test_scoped_source_reads_prefixed_series(self):
        store = scraped_traffic(
            [(0.01, True)] * 20, scrape_times=(0.0, 10.0),
            scrape_name="cluster-1|b")
        scoped = PromMetricsSource(store, scope="cluster-1")
        unscoped = PromMetricsSource(store)
        assert scoped.collect(["b"], 10.0, 10.0, 0.99)["b"] is not None
        assert unscoped.collect(["b"], 10.0, 10.0, 0.99)["b"] is None


class TestServerQueue:
    def test_reads_latest_server_gauge(self):
        store = TimeSeriesStore()
        scraper = Scraper(store)
        scraper.register_gauge("server|b", "server_queue", lambda: 6.0)
        scraper.scrape_once(5.0)
        source = PromMetricsSource(store)
        assert source.server_queue("b", 10.0, 10.0) == 6.0

    def test_missing_series_returns_zero(self):
        source = PromMetricsSource(TimeSeriesStore())
        assert source.server_queue("b", 10.0, 10.0) == 0.0


class TestFailureLatency:
    def test_failure_latency_quantile(self):
        store = scraped_traffic(
            [(0.5, False)] * 20 + [(0.01, True)] * 20,
            scrape_times=(0.0, 10.0))
        source = PromMetricsSource(store)
        q = source.failure_latency_quantile("b", 10.0, 10.0, 0.5)
        assert q is not None and q > 0.3

    def test_no_failures_returns_none(self):
        store = scraped_traffic(
            [(0.01, True)] * 20, scrape_times=(0.0, 10.0))
        source = PromMetricsSource(store)
        assert source.failure_latency_quantile("b", 10.0, 10.0, 0.5) is None
