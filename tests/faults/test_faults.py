"""Tests for the fault injector and the concrete fault types."""

import math

import pytest

from repro.errors import ConfigError
from repro.faults import (
    ClusterOutage,
    ControllerPause,
    FaultInjector,
    LinkDegradation,
    LinkPartition,
    ReplicaCrash,
    ReplicaRestart,
    ScrapeOutage,
)
from repro.mesh.mesh import ServiceMesh
from repro.mesh.network import WanLink
from repro.workloads.profiles import constant_backend_profile

CLUSTERS = ["cluster-1", "cluster-2", "cluster-3"]


@pytest.fixture
def mesh(sim, rng_registry):
    mesh = ServiceMesh(sim, rng_registry, clusters=CLUSTERS,
                       wan_link=WanLink(base_delay_s=0.010,
                                        jitter_p99_ratio=1.0,
                                        drift_amplitude=0.0,
                                        spike_prob=0.0))
    mesh.deploy_service("api", profiles={
        cluster: constant_backend_profile(0.010, 0.010)
        for cluster in CLUSTERS
    }, replicas=2)
    return mesh


@pytest.fixture
def injector(mesh):
    return FaultInjector(mesh)


class FakeScraper:
    def __init__(self):
        self.paused = False
        self.mode = None

    def pause(self, mode="error"):
        self.paused = True
        self.mode = mode

    def resume(self):
        self.paused = False


class FakeController:
    def __init__(self):
        self.paused = False

    def pause(self):
        self.paused = True

    def resume(self):
        self.paused = False


class TestScheduling:
    def test_apply_and_revert_at_scheduled_times(self, sim, mesh, injector):
        backend = mesh.deployment("api").backend_in("cluster-2")
        injector.schedule(ClusterOutage("cluster-2", at_s=10.0,
                                        duration_s=5.0))
        sim.run(until=9.0)
        assert backend.up_replica_count == 2
        sim.run(until=12.0)
        assert backend.up_replica_count == 0
        sim.run(until=16.0)
        assert backend.up_replica_count == 2

    def test_offset_shifts_the_schedule(self, sim, mesh, injector):
        backend = mesh.deployment("api").backend_in("cluster-2")
        injector.schedule(ClusterOutage("cluster-2", at_s=10.0),
                          offset_s=30.0)
        sim.run(until=20.0)
        assert backend.up_replica_count == 2
        sim.run(until=41.0)
        assert backend.up_replica_count == 0

    def test_log_records_apply_and_revert(self, sim, injector):
        injector.schedule(ClusterOutage("cluster-2", at_s=10.0,
                                        duration_s=5.0))
        sim.run(until=20.0)
        assert len(injector.log) == 2
        (t_apply, first), (t_revert, second) = injector.log
        assert t_apply == 10.0 and "apply" in first
        assert t_revert == 15.0 and "revert" in second

    def test_past_start_rejected(self, sim, injector):
        sim.run(until=20.0)
        with pytest.raises(ConfigError, match="past"):
            injector.schedule(ClusterOutage("cluster-2", at_s=10.0))

    def test_schedule_all(self, sim, injector):
        injector.schedule_all([
            ClusterOutage("cluster-2", at_s=10.0, duration_s=5.0),
            ScrapeOutage(at_s=12.0, duration_s=2.0),
        ])
        # Both validated and registered (the second needs a scraper at
        # *apply* time, not schedule time).
        assert injector.log == []

    def test_invalid_schedule_rejected_upfront(self, injector):
        with pytest.raises(ConfigError, match="start"):
            injector.schedule(ClusterOutage("cluster-2", at_s=-1.0))
        with pytest.raises(ConfigError, match="duration"):
            injector.schedule(ClusterOutage("cluster-2", at_s=1.0,
                                            duration_s=0.0))


class TestReplicaFaults:
    def test_crash_with_duration_auto_restarts(self, sim, mesh, injector):
        backend = mesh.deployment("api").backend_in("cluster-1")
        injector.schedule(ReplicaCrash("api", "cluster-1", at_s=5.0,
                                       replica_index=1, duration_s=5.0))
        sim.run(until=7.0)
        assert backend.up_replica_count == 1
        assert backend.replicas[1].up is False
        sim.run(until=11.0)
        assert backend.up_replica_count == 2

    def test_crash_then_explicit_restart(self, sim, mesh, injector):
        backend = mesh.deployment("api").backend_in("cluster-1")
        injector.schedule_all([
            ReplicaCrash("api", "cluster-1", at_s=5.0),
            ReplicaRestart("api", "cluster-1", at_s=9.0),
        ])
        sim.run(until=7.0)
        assert backend.replicas[0].up is False
        sim.run(until=10.0)
        assert backend.replicas[0].up is True

    def test_negative_index_rejected(self):
        with pytest.raises(ConfigError, match="index"):
            ReplicaCrash("api", "cluster-1", at_s=1.0,
                         replica_index=-1).validate()

    def test_out_of_range_index_raises_at_apply(self, mesh, injector):
        fault = ReplicaCrash("api", "cluster-1", at_s=1.0, replica_index=9)
        fault.validate()
        with pytest.raises(ConfigError, match="replicas"):
            fault.apply(injector)


class TestClusterOutage:
    def test_service_scoped_outage(self, sim, mesh, injector):
        mesh.deploy_service("billing", profiles={
            "cluster-2": constant_backend_profile(0.010, 0.010)})
        injector.schedule(ClusterOutage("cluster-2", at_s=5.0,
                                        service="billing"))
        sim.run(until=6.0)
        assert mesh.deployment("billing").backend_in(
            "cluster-2").up_replica_count == 0
        assert mesh.deployment("api").backend_in(
            "cluster-2").up_replica_count == 2

    def test_unknown_cluster_raises_at_apply(self, injector):
        fault = ClusterOutage("atlantis", at_s=1.0)
        with pytest.raises(ConfigError, match="no backends"):
            fault.apply(injector)


class TestLinkFaults:
    def test_partition_makes_delay_infinite(self, sim, mesh, injector, rng):
        injector.schedule(LinkPartition("cluster-1", "cluster-2", at_s=5.0,
                                        duration_s=5.0))
        sim.run(until=6.0)
        network = mesh.network
        assert math.isinf(network.delay("cluster-1", "cluster-2", rng, 6.0))
        assert math.isinf(network.delay("cluster-2", "cluster-1", rng, 6.0))
        # Unrelated pairs are unaffected.
        assert network.delay("cluster-1", "cluster-3", rng, 6.0) < 1.0
        sim.run(until=11.0)
        assert network.delay("cluster-1", "cluster-2", rng, 11.0) < 1.0

    def test_asymmetric_partition(self, sim, mesh, injector, rng):
        injector.schedule(LinkPartition("cluster-1", "cluster-2", at_s=5.0,
                                        symmetric=False))
        sim.run(until=6.0)
        assert math.isinf(
            mesh.network.delay("cluster-1", "cluster-2", rng, 6.0))
        assert mesh.network.delay("cluster-2", "cluster-1", rng, 6.0) < 1.0

    def test_degradation_inflates_delay(self, sim, mesh, injector, rng):
        baseline = mesh.network.delay("cluster-1", "cluster-2", rng, 1.0)
        injector.schedule(LinkDegradation(
            "cluster-1", "cluster-2", at_s=5.0, duration_s=5.0,
            multiplier=10.0, extra_delay_s=0.5))
        sim.run(until=6.0)
        degraded = mesh.network.delay("cluster-1", "cluster-2", rng, 6.0)
        assert degraded >= 0.5 + baseline  # extra + inflated base
        sim.run(until=11.0)
        healed = mesh.network.delay("cluster-1", "cluster-2", rng, 11.0)
        assert healed == pytest.approx(baseline, rel=0.5)


class TestControlPlaneFaults:
    def test_scrape_outage_pauses_and_resumes(self, sim, mesh):
        scraper = FakeScraper()
        injector = FaultInjector(mesh, scraper=scraper)
        injector.schedule(ScrapeOutage(at_s=5.0, duration_s=5.0))
        sim.run(until=6.0)
        assert scraper.paused is True
        sim.run(until=11.0)
        assert scraper.paused is False

    def test_scrape_outage_needs_a_scraper(self, injector):
        with pytest.raises(ConfigError, match="scraper"):
            ScrapeOutage(at_s=1.0).apply(injector)

    def test_controller_pause_and_resume(self, sim, mesh):
        controller = FakeController()
        injector = FaultInjector(mesh, controllers=[controller])
        injector.schedule(ControllerPause(at_s=5.0, duration_s=5.0))
        sim.run(until=6.0)
        assert controller.paused is True
        sim.run(until=11.0)
        assert controller.paused is False

    def test_controller_pause_needs_controllers(self, injector):
        with pytest.raises(ConfigError, match="controllers"):
            ControllerPause(at_s=1.0).apply(injector)

    def test_none_controllers_filtered(self, mesh):
        injector = FaultInjector(mesh, controllers=[None])
        assert injector.controllers == []
