"""Tests for the compact --faults spec grammar."""

import pytest

from repro.errors import ConfigError
from repro.faults import (
    ClusterOutage,
    ControllerPause,
    LinkDegradation,
    LinkPartition,
    ReplicaCrash,
    ScrapeOutage,
    parse_fault_spec,
)
from repro.faults.spec import FAULT_KINDS, parse_fault_entry


class TestParseEntry:
    def test_cluster_outage(self):
        fault = parse_fault_entry(
            "cluster-outage@60+30:cluster=cluster-2:mode=blackhole")
        assert isinstance(fault, ClusterOutage)
        assert fault.cluster == "cluster-2"
        assert fault.at_s == 60.0
        assert fault.duration_s == 30.0
        assert fault.mode == "blackhole"
        assert fault.service is None

    def test_duration_is_optional(self):
        fault = parse_fault_entry("cluster-outage@60:cluster=cluster-2")
        assert fault.duration_s is None

    def test_replica_crash_with_index(self):
        fault = parse_fault_entry(
            "replica-crash@10+40:service=api:cluster=cluster-1:index=2")
        assert isinstance(fault, ReplicaCrash)
        assert fault.replica_index == 2
        assert fault.mode == "fail_fast"

    def test_link_partition_symmetric_flag(self):
        fault = parse_fault_entry(
            "link-partition@30+20:src=cluster-1:dst=cluster-2"
            ":symmetric=false")
        assert isinstance(fault, LinkPartition)
        assert fault.symmetric is False

    def test_link_degradation_numbers(self):
        fault = parse_fault_entry(
            "link-degradation@30+60:src=cluster-1:dst=cluster-3"
            ":multiplier=5:extra=0.2")
        assert isinstance(fault, LinkDegradation)
        assert fault.multiplier == 5.0
        assert fault.extra_delay_s == 0.2

    def test_parameterless_kinds(self):
        assert isinstance(parse_fault_entry("scrape-outage@40+25"),
                          ScrapeOutage)
        assert isinstance(parse_fault_entry("controller-pause@50+15"),
                          ControllerPause)

    def test_whitespace_tolerated(self):
        fault = parse_fault_entry(
            "  cluster-outage@60+30 : cluster = cluster-2  ")
        assert fault.cluster == "cluster-2"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="unknown fault kind"):
            parse_fault_entry("meteor-strike@10")

    def test_missing_start_rejected(self):
        with pytest.raises(ConfigError, match="start time"):
            parse_fault_entry("scrape-outage")

    def test_missing_required_key_rejected(self):
        with pytest.raises(ConfigError, match="cluster"):
            parse_fault_entry("cluster-outage@60+30")

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigError, match="does not take"):
            parse_fault_entry("scrape-outage@40:cluster=cluster-1")

    def test_duplicate_key_rejected(self):
        with pytest.raises(ConfigError, match="duplicate"):
            parse_fault_entry(
                "cluster-outage@60:cluster=a:cluster=b")

    def test_bad_number_rejected(self):
        with pytest.raises(ConfigError, match="seconds"):
            parse_fault_entry("scrape-outage@soon")
        with pytest.raises(ConfigError, match="number"):
            parse_fault_entry(
                "link-degradation@1:src=a:dst=b:multiplier=lots")

    def test_bad_boolean_rejected(self):
        with pytest.raises(ConfigError, match="boolean"):
            parse_fault_entry(
                "link-partition@1:src=a:dst=b:symmetric=maybe")

    def test_validation_runs_on_parse(self):
        # A degradation that degrades nothing is a misconfiguration.
        with pytest.raises(ConfigError, match="multiplier"):
            parse_fault_entry("link-degradation@1:src=a:dst=b")
        with pytest.raises(ConfigError, match="mode"):
            parse_fault_entry("cluster-outage@1:cluster=a:mode=sideways")


class TestParseSpec:
    def test_multiple_entries(self):
        faults = parse_fault_spec(
            "cluster-outage@60+30:cluster=cluster-2 ; scrape-outage@90+10")
        assert len(faults) == 2
        assert isinstance(faults[0], ClusterOutage)
        assert isinstance(faults[1], ScrapeOutage)

    def test_trailing_separator_ignored(self):
        faults = parse_fault_spec("scrape-outage@40+25;")
        assert len(faults) == 1

    def test_empty_spec_rejected(self):
        with pytest.raises(ConfigError, match="empty"):
            parse_fault_spec(" ; ")

    def test_every_kind_is_listed(self):
        assert FAULT_KINDS == (
            "cluster-outage", "controller-pause", "link-degradation",
            "link-partition", "replica-crash", "replica-restart",
            "scrape-outage")
