"""Tests for the compact --faults spec grammar."""

import pytest

from repro.errors import ConfigError, FaultSpecError
from repro.faults import (
    ClusterOutage,
    ControllerCrash,
    ControllerPause,
    LinkDegradation,
    LinkPartition,
    ReplicaCrash,
    ScrapeOutage,
    parse_fault_spec,
    validate_fault_spec,
)
from repro.faults.spec import FAULT_KINDS, parse_fault_entry


class TestParseEntry:
    def test_cluster_outage(self):
        fault = parse_fault_entry(
            "cluster-outage@60+30:cluster=cluster-2:mode=blackhole")
        assert isinstance(fault, ClusterOutage)
        assert fault.cluster == "cluster-2"
        assert fault.at_s == 60.0
        assert fault.duration_s == 30.0
        assert fault.mode == "blackhole"
        assert fault.service is None

    def test_duration_is_optional(self):
        fault = parse_fault_entry("cluster-outage@60:cluster=cluster-2")
        assert fault.duration_s is None

    def test_replica_crash_with_index(self):
        fault = parse_fault_entry(
            "replica-crash@10+40:service=api:cluster=cluster-1:index=2")
        assert isinstance(fault, ReplicaCrash)
        assert fault.replica_index == 2
        assert fault.mode == "fail_fast"

    def test_link_partition_symmetric_flag(self):
        fault = parse_fault_entry(
            "link-partition@30+20:src=cluster-1:dst=cluster-2"
            ":symmetric=false")
        assert isinstance(fault, LinkPartition)
        assert fault.symmetric is False

    def test_link_degradation_numbers(self):
        fault = parse_fault_entry(
            "link-degradation@30+60:src=cluster-1:dst=cluster-3"
            ":multiplier=5:extra=0.2")
        assert isinstance(fault, LinkDegradation)
        assert fault.multiplier == 5.0
        assert fault.extra_delay_s == 0.2

    def test_parameterless_kinds(self):
        assert isinstance(parse_fault_entry("scrape-outage@40+25"),
                          ScrapeOutage)
        assert isinstance(parse_fault_entry("controller-pause@50+15"),
                          ControllerPause)

    def test_whitespace_tolerated(self):
        fault = parse_fault_entry(
            "  cluster-outage@60+30 : cluster = cluster-2  ")
        assert fault.cluster == "cluster-2"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="unknown fault kind"):
            parse_fault_entry("meteor-strike@10")

    def test_missing_start_rejected(self):
        with pytest.raises(ConfigError, match="start time"):
            parse_fault_entry("scrape-outage")

    def test_missing_required_key_rejected(self):
        with pytest.raises(ConfigError, match="cluster"):
            parse_fault_entry("cluster-outage@60+30")

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigError, match="does not take"):
            parse_fault_entry("scrape-outage@40:cluster=cluster-1")

    def test_duplicate_key_rejected(self):
        with pytest.raises(ConfigError, match="duplicate"):
            parse_fault_entry(
                "cluster-outage@60:cluster=a:cluster=b")

    def test_bad_number_rejected(self):
        with pytest.raises(ConfigError, match="seconds"):
            parse_fault_entry("scrape-outage@soon")
        with pytest.raises(ConfigError, match="number"):
            parse_fault_entry(
                "link-degradation@1:src=a:dst=b:multiplier=lots")

    def test_bad_boolean_rejected(self):
        with pytest.raises(ConfigError, match="boolean"):
            parse_fault_entry(
                "link-partition@1:src=a:dst=b:symmetric=maybe")

    def test_validation_runs_on_parse(self):
        # A degradation that degrades nothing is a misconfiguration.
        with pytest.raises(ConfigError, match="multiplier"):
            parse_fault_entry("link-degradation@1:src=a:dst=b")
        with pytest.raises(ConfigError, match="mode"):
            parse_fault_entry("cluster-outage@1:cluster=a:mode=sideways")


class TestParseSpec:
    def test_multiple_entries(self):
        faults = parse_fault_spec(
            "cluster-outage@60+30:cluster=cluster-2 ; scrape-outage@90+10")
        assert len(faults) == 2
        assert isinstance(faults[0], ClusterOutage)
        assert isinstance(faults[1], ScrapeOutage)

    def test_trailing_separator_ignored(self):
        faults = parse_fault_spec("scrape-outage@40+25;")
        assert len(faults) == 1

    def test_empty_spec_rejected(self):
        with pytest.raises(ConfigError, match="empty"):
            parse_fault_spec(" ; ")

    def test_every_kind_is_listed(self):
        assert FAULT_KINDS == (
            "cluster-outage", "controller-crash", "controller-pause",
            "link-degradation", "link-partition", "replica-crash",
            "replica-restart", "scrape-outage")


class TestParseTimeValidation:
    """Satellite: structural problems surface as FaultSpecError at parse
    time — unknown targets, bad windows, overlapping schedules."""

    def test_all_parse_errors_are_fault_spec_errors(self):
        for bad in ("meteor-strike@10", "scrape-outage", "scrape-outage@x",
                    "cluster-outage@60+30", "scrape-outage@40:cluster=a",
                    "cluster-outage@1:cluster=a:mode=sideways", " ; "):
            with pytest.raises(FaultSpecError):
                parse_fault_spec(bad)

    def test_negative_start_rejected(self):
        with pytest.raises(FaultSpecError, match=">= 0"):
            parse_fault_entry("scrape-outage@-5+10")

    def test_non_positive_duration_rejected(self):
        with pytest.raises(FaultSpecError, match="duration"):
            parse_fault_entry("scrape-outage@5+0")
        with pytest.raises(FaultSpecError, match="duration"):
            parse_fault_entry("scrape-outage@5+-3")

    def test_controller_crash_entry(self):
        fault = parse_fault_entry("controller-crash@20+30:replica=1")
        assert isinstance(fault, ControllerCrash)
        assert fault.replica_index == 1
        assert fault.duration_s == 30.0

    def test_scrape_outage_mode(self):
        fault = parse_fault_entry("scrape-outage@40+25:mode=stall")
        assert fault.mode == "stall"
        with pytest.raises(FaultSpecError, match="mode"):
            parse_fault_entry("scrape-outage@40:mode=quietly")

    def test_unknown_cluster_rejected_against_topology(self):
        with pytest.raises(FaultSpecError, match="unknown cluster"):
            parse_fault_spec("cluster-outage@1+2:cluster=cluster-9",
                             clusters={"cluster-1", "cluster-2"})
        with pytest.raises(FaultSpecError, match="unknown cluster"):
            parse_fault_spec("link-partition@1+2:src=cluster-1:dst=nowhere",
                             clusters={"cluster-1", "cluster-2"})

    def test_unknown_service_rejected_against_topology(self):
        with pytest.raises(FaultSpecError, match="unknown service"):
            parse_fault_spec(
                "replica-crash@1+2:service=db:cluster=cluster-1",
                clusters={"cluster-1"}, services={"api"})

    def test_known_names_pass(self):
        faults = parse_fault_spec(
            "cluster-outage@1+2:cluster=cluster-2 ;"
            "link-partition@5+2:src=cluster-1:dst=cluster-2",
            clusters={"cluster-1", "cluster-2"}, services={"api"})
        assert len(faults) == 2

    def test_names_unchecked_without_topology(self):
        # No clusters/services given: only structure is checked.
        assert parse_fault_spec("cluster-outage@1+2:cluster=anything")

    def test_overlapping_windows_on_same_target_rejected(self):
        with pytest.raises(FaultSpecError, match="overlapping"):
            parse_fault_spec(
                "cluster-outage@10+20:cluster=a ;"
                "cluster-outage@25+10:cluster=a")

    def test_forever_fault_overlaps_everything_after_it(self):
        with pytest.raises(FaultSpecError, match="overlapping"):
            parse_fault_spec(
                "cluster-outage@10:cluster=a ;"          # never reverted
                "cluster-outage@500+10:cluster=a")

    def test_back_to_back_windows_are_fine(self):
        # Half-open [start, end): revert at 30 precedes apply at 30.
        faults = parse_fault_spec(
            "cluster-outage@10+20:cluster=a ;"
            "cluster-outage@30+10:cluster=a")
        assert len(faults) == 2

    def test_different_targets_may_overlap(self):
        faults = parse_fault_spec(
            "cluster-outage@10+20:cluster=a ;"
            "cluster-outage@15+20:cluster=b ;"
            "scrape-outage@12+30")
        assert len(faults) == 3

    def test_symmetric_link_faults_collide_on_the_reverse_pair(self):
        with pytest.raises(FaultSpecError, match="overlapping"):
            parse_fault_spec(
                "link-partition@10+20:src=a:dst=b ;"
                "link-partition@15+20:src=b:dst=a")
        # One-directional faults on opposite directions coexist.
        faults = parse_fault_spec(
            "link-partition@10+20:src=a:dst=b:symmetric=false ;"
            "link-partition@15+20:src=b:dst=a:symmetric=false")
        assert len(faults) == 2

    def test_instantaneous_restart_inside_a_crash_window_is_fine(self):
        # ReplicaRestart is a heal event (empty window); pairing it with
        # an open-ended crash on the same replica is the idiom.
        faults = parse_fault_spec(
            "replica-crash@10:service=api:cluster=a ;"
            "replica-restart@40:service=api:cluster=a")
        assert len(faults) == 2

    def test_validate_fault_spec_on_constructed_faults(self):
        from repro.faults import ClusterOutage as Outage
        with pytest.raises(FaultSpecError, match="overlapping"):
            validate_fault_spec([
                Outage("a", at_s=0.0, duration_s=10.0),
                Outage("a", at_s=5.0, duration_s=10.0)])
        validate_fault_spec([Outage("a", at_s=0.0, duration_s=10.0)],
                            clusters={"a"})
