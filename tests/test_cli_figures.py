"""CLI figure-command wiring, with the expensive experiments stubbed."""

import pytest

from repro.bench import experiments
from repro.bench.results import ComparisonTable
from repro.cli import main


def stub_bar(title="stub"):
    table = ComparisonTable(title, baseline="round-robin")
    table.add("round-robin", p99_ms=100.0)
    table.add("c3", p99_ms=90.0)
    table.add("l3", p99_ms=80.0)
    return experiments.BarExperiment("Fig. X", title, table)


@pytest.fixture
def stubbed(monkeypatch):
    monkeypatch.setattr(
        experiments, "fig7_penalty_factor_sweep",
        lambda **kw: stub_bar("penalty"))
    monkeypatch.setattr(
        experiments, "fig8_ewma_vs_peakewma",
        lambda **kw: stub_bar("peak"))
    monkeypatch.setattr(
        experiments, "fig9_hotel_reservation",
        lambda **kw: stub_bar("hotel"))
    monkeypatch.setattr(
        experiments, "fig10_scenario_comparison",
        lambda **kw: {"scenario-1": stub_bar("s1")})
    monkeypatch.setattr(
        experiments, "fig11_12_failure_scenarios",
        lambda **kw: {"failure-1": stub_bar("f1")})


class TestFigureWiring:
    @pytest.mark.parametrize("figure,needle", [
        ("fig7", "penalty"),
        ("fig8", "peak"),
        ("fig9", "hotel"),
        ("fig10", "s1"),
        ("fig11", "f1"),
        ("fig12", "f1"),
    ])
    def test_each_figure_renders(self, stubbed, capsys, figure, needle):
        assert main(["figure", figure, "--fast"]) == 0
        out = capsys.readouterr().out
        assert needle in out

    def test_bar_chart_attached_to_bar_figures(self, stubbed, capsys):
        main(["figure", "fig9", "--fast"])
        out = capsys.readouterr().out
        assert "P99 latency" in out
        assert "#" in out  # the ASCII bars
