"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "scenario-1" in out
        assert "l3" in out
        assert "fig9" in out
        assert "cluster-outage" in out  # fault kinds


class TestRun:
    def test_runs_scenario(self, capsys):
        code = main(["run", "--scenario", "scenario-1", "--algorithm",
                     "round-robin", "--duration", "15", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "99%" in out  # the latency spectrum table
        assert "success rate" in out

    def test_l3_prints_weights(self, capsys):
        main(["run", "--algorithm", "l3", "--duration", "15"])
        assert "final weights" in capsys.readouterr().out

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            main(["run", "--algorithm", "psychic"])

    def test_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            main(["run", "--scenario", "scenario-42"])


class TestRunWithFaults:
    def test_fault_spec_and_timeout(self, capsys):
        code = main([
            "run", "--scenario", "scenario-5", "--algorithm", "l3",
            "--duration", "30", "--request-timeout", "1.0",
            "--faults", "cluster-outage@5+10:cluster=cluster-2"
                        ":mode=blackhole",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "success rate" in out

    def test_outlier_ejection_flag(self, capsys):
        code = main([
            "run", "--scenario", "scenario-5", "--algorithm",
            "round-robin", "--duration", "15", "--outlier-ejection",
        ])
        assert code == 0

    def test_bad_fault_spec_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            main(["run", "--duration", "15",
                  "--faults", "meteor-strike@10"])

    def test_unknown_fault_cluster_rejected_before_run(self):
        from repro.errors import FaultSpecError

        with pytest.raises(FaultSpecError, match="unknown cluster"):
            main(["run", "--duration", "15",
                  "--faults", "cluster-outage@5+5:cluster=nowhere"])


class TestHotel:
    def test_runs_hotel(self, capsys):
        code = main(["hotel", "--algorithm", "round-robin", "--rps", "30",
                     "--duration", "15"])
        assert code == 0
        assert "hotel-reservation" in capsys.readouterr().out


class TestTraceCommands:
    def test_export_and_run_scenario_file(self, tmp_path, capsys):
        trace = tmp_path / "s5.json"
        assert main(["export-trace", "scenario-5", str(trace)]) == 0
        assert trace.exists()
        code = main(["run", "--scenario-file", str(trace), "--algorithm",
                     "round-robin", "--duration", "15"])
        assert code == 0
        assert "scenario-5" in capsys.readouterr().out

    def test_run_records_distributed_trace(self, tmp_path, capsys):
        import json

        out = tmp_path / "spans.json"
        code = main(["run", "--scenario", "scenario-5", "--algorithm",
                     "round-robin", "--duration", "15",
                     "--trace", str(out), "--trace-sample", "0.5"])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "critical path" in stdout
        assert "wrote" in stdout
        data = json.loads(out.read_text())
        assert data["resourceSpans"]

    def test_run_records_chrome_trace(self, tmp_path, capsys):
        import json

        out = tmp_path / "spans.chrome.json"
        code = main(["run", "--scenario", "scenario-5", "--algorithm",
                     "l3", "--duration", "15", "--trace", str(out),
                     "--trace-format", "chrome"])
        assert code == 0
        data = json.loads(out.read_text())
        assert any(event["ph"] == "X" for event in data["traceEvents"])
        # The L3 controller's decision audit rides along as instant events.
        assert any(event["name"] == "l3.reconcile"
                   for event in data["traceEvents"])


class TestFigure:
    def test_pure_function_figure(self, capsys):
        assert main(["figure", "fig4"]) == 0
        assert "rate-control" in capsys.readouterr().out

    def test_trace_figures(self, capsys):
        assert main(["figure", "fig1"]) == 0
        assert "scenario-1" in capsys.readouterr().out
        assert main(["figure", "fig6"]) == 0
        assert "scenario-4" in capsys.readouterr().out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])


class TestLiveCommand:
    def test_live_run_writes_report(self, tmp_path, capsys):
        report = tmp_path / "live.json"
        code = main(["live", "--duration", "2", "--rps", "30",
                     "--port-base", "19780", "--report", str(report)])
        out = capsys.readouterr().out
        assert code == 0
        assert "scenario-1 / l3" in out
        assert report.exists()

        import json

        payload = json.loads(report.read_text())
        assert payload["algorithm"] == "l3"
        assert payload["clean_shutdown"] is True
        assert payload["leaked_tasks"] == []
        assert payload["requests"] > 0
        assert len(payload["ports"]) == 4

    def test_live_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            main(["live", "--algorithm", "p2c"])

    def test_live_chaos_run_reports_fault_log(self, tmp_path, capsys):
        report = tmp_path / "chaos.json"
        code = main(["live", "--duration", "4", "--rps", "30",
                     "--port-base", "19800", "--ha-replicas", "2",
                     "--lease-ttl", "1.5", "--request-timeout", "0.5",
                     "--faults",
                     "scrape-outage@1+1 ; controller-crash@2:replica=0",
                     "--report", str(report)])
        out = capsys.readouterr().out
        assert code == 0
        assert "[chaos" in out
        assert "lease transitions" in out

        import json

        payload = json.loads(report.read_text())
        assert payload["clean_shutdown"] is True
        assert payload["chaos_errors"] == []
        assert [d.split(" ", 1)[0] for _t, d in payload["fault_log"]] == [
            "apply", "revert", "apply"]
        # The crashed leader was replaced: election + takeover.
        assert len(payload["lease_transitions"]) == 2

    def test_live_bad_fault_spec_fails_before_binding(self):
        from repro.errors import FaultSpecError

        with pytest.raises(FaultSpecError):
            main(["live", "--duration", "2", "--port-base", "19820",
                  "--faults", "cluster-outage@1+1:cluster=nowhere"])


class TestTournament:
    def test_small_grid_prints_leaderboard(self, tmp_path, capsys):
        out_path = tmp_path / "tournament.json"
        code = main(["tournament", "--algorithms", "round-robin", "p2c",
                     "--scenarios", "scenario-1", "--duration", "15",
                     "--output", str(out_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "leaderboard" in out
        assert "head-to-head" in out

        import json

        document = json.loads(out_path.read_text())
        assert document["schema"] == 1
        assert set(document["grid"]) == {"scenario-1"}
        assert set(document["grid"]["scenario-1"]) == {"round-robin", "p2c"}
        assert document["leaderboard"]["ranking"]

    def test_check_passes_on_degraded_backend(self, capsys):
        code = main(["tournament", "--algorithms", "l3", "round-robin",
                     "--scenarios", "degraded-backend", "--duration", "24",
                     "--check"])
        assert code == 0
        assert "check OK" in capsys.readouterr().out

    def test_check_without_required_cells_fails(self, capsys):
        code = main(["tournament", "--algorithms", "p2c",
                     "--scenarios", "scenario-1", "--duration", "15",
                     "--check"])
        assert code == 1
        assert "CHECK FAILED" in capsys.readouterr().out

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            main(["tournament", "--algorithms", "nope",
                  "--scenarios", "scenario-1"])

    def test_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            main(["tournament", "--scenarios", "nope"])

    def test_list_mentions_tournament_grid(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        assert "tournament:" in out
        assert "degraded-backend" in out
