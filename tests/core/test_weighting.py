"""Tests for the weighting algorithm (Algorithm 1, Eq. 3, Eq. 4)."""

import math

import pytest

from repro.core.weighting import (
    BackendSnapshot,
    WeightingConfig,
    backend_weight,
    compute_weights,
    estimate_latency,
)
from repro.errors import ConfigError


def snapshot(name="b", latency=0.1, success=1.0, rps=100.0, inflight=0.0):
    return BackendSnapshot(name, latency, success, rps, inflight)


class TestSnapshotValidation:
    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            snapshot(latency=-0.1)

    def test_success_rate_bounds(self):
        with pytest.raises(ValueError):
            snapshot(success=1.5)
        with pytest.raises(ValueError):
            snapshot(success=-0.1)

    def test_negative_rps_rejected(self):
        with pytest.raises(ValueError):
            snapshot(rps=-1.0)

    def test_negative_inflight_rejected(self):
        with pytest.raises(ValueError):
            snapshot(inflight=-1.0)


class TestConfigValidation:
    def test_defaults_are_paper_values(self):
        config = WeightingConfig()
        assert config.penalty_s == 0.6
        assert config.inflight_exponent == 2.0
        assert config.min_weight == 1.0

    def test_negative_penalty_rejected(self):
        with pytest.raises(ConfigError):
            WeightingConfig(penalty_s=-0.1)

    def test_zero_scale_rejected(self):
        with pytest.raises(ConfigError):
            WeightingConfig(weight_scale=0.0)


class TestEstimateLatency:
    def test_perfect_success_rate_adds_nothing(self):
        assert estimate_latency(0.1, 1.0, 0.6) == 0.1

    def test_eq3_formula(self):
        # R_s = 0.5 -> expected 2 tries -> one extra penalty.
        assert math.isclose(estimate_latency(0.1, 0.5, 0.6), 0.1 + 0.6)

    def test_zero_success_rate_falls_back_to_raw_latency(self):
        # Algorithm 1 lines 10-11: avoid division by zero.
        assert estimate_latency(0.25, 0.0, 0.6) == 0.25

    def test_lower_success_rate_higher_estimate(self):
        estimates = [
            estimate_latency(0.1, rate, 0.6)
            for rate in (1.0, 0.9, 0.5, 0.25)
        ]
        assert estimates == sorted(estimates)

    def test_zero_penalty_ignores_failures(self):
        assert estimate_latency(0.1, 0.5, 0.0) == 0.1


class TestBackendWeight:
    def test_reciprocal_in_latency(self):
        config = WeightingConfig(min_weight=0.0)
        fast = backend_weight(snapshot(latency=0.05), config)
        slow = backend_weight(snapshot(latency=0.5), config)
        assert math.isclose(fast / slow, 10.0)

    def test_inflight_normalisation_by_rps(self):
        config = WeightingConfig(min_weight=0.0)
        # Same normalised in-flight (R_i = 0.05) -> same weight.
        a = backend_weight(snapshot(rps=100.0, inflight=5.0), config)
        b = backend_weight(snapshot(rps=200.0, inflight=10.0), config)
        assert math.isclose(a, b)

    def test_zero_rps_means_zero_normalised_inflight(self):
        config = WeightingConfig(min_weight=0.0)
        idle = backend_weight(snapshot(rps=0.0, inflight=50.0), config)
        clean = backend_weight(snapshot(rps=100.0, inflight=0.0), config)
        assert math.isclose(idle, clean)

    def test_negligible_rps_also_skips_normalisation(self):
        # A decaying RPS EWMA never reaches exactly zero; dividing a
        # decaying in-flight EWMA by it would be noise, so below the
        # meaningful-traffic floor R_i is treated as 0 (Algorithm 1's
        # "R_rps != 0" guard, interpreted as "has meaningful traffic").
        config = WeightingConfig(min_weight=0.0)
        ghost = backend_weight(snapshot(rps=1e-9, inflight=0.05), config)
        clean = backend_weight(snapshot(rps=100.0, inflight=0.0), config)
        assert math.isclose(ghost, clean)

    def test_meaningful_rps_is_normalised(self):
        config = WeightingConfig(min_weight=0.0)
        loaded = backend_weight(snapshot(rps=1.0, inflight=1.0), config)
        clean = backend_weight(snapshot(rps=1.0, inflight=0.0), config)
        assert math.isclose(clean / loaded, 4.0)

    def test_squared_inflight_term(self):
        config = WeightingConfig(min_weight=0.0)
        # R_i = 1 -> (1+1)^2 = 4x weight reduction.
        loaded = backend_weight(snapshot(rps=10.0, inflight=10.0), config)
        clean = backend_weight(snapshot(inflight=0.0), config)
        assert math.isclose(clean / loaded, 4.0)

    def test_configurable_exponent(self):
        cubic = WeightingConfig(min_weight=0.0, inflight_exponent=3.0)
        loaded = backend_weight(snapshot(rps=10.0, inflight=10.0), cubic)
        clean = backend_weight(snapshot(inflight=0.0), cubic)
        assert math.isclose(clean / loaded, 8.0)

    def test_weight_floor_applies(self):
        config = WeightingConfig(min_weight=1.0, weight_scale=1e-6)
        assert backend_weight(snapshot(latency=100.0), config) == 1.0

    def test_zero_latency_does_not_explode(self):
        config = WeightingConfig()
        weight = backend_weight(snapshot(latency=0.0), config)
        assert math.isfinite(weight)

    def test_failure_lowers_weight(self):
        config = WeightingConfig(min_weight=0.0)
        healthy = backend_weight(snapshot(success=1.0), config)
        failing = backend_weight(snapshot(success=0.5), config)
        assert failing < healthy


class TestComputeWeights:
    def test_orders_by_latency(self):
        weights = compute_weights([
            snapshot("fast", latency=0.01),
            snapshot("medium", latency=0.1),
            snapshot("slow", latency=1.0),
        ])
        assert weights["fast"] > weights["medium"] > weights["slow"]

    def test_empty_input_gives_empty_output(self):
        assert compute_weights([]) == {}

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            compute_weights([snapshot("x"), snapshot("x")])

    def test_all_weights_at_least_min(self):
        config = WeightingConfig(min_weight=2.5)
        weights = compute_weights(
            [snapshot(f"b{i}", latency=float(i + 1) * 100) for i in range(5)],
            config)
        assert all(weight >= 2.5 for weight in weights.values())

    def test_default_config_used_when_none(self):
        weights = compute_weights([snapshot("only")])
        assert "only" in weights
