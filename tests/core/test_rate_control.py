"""Tests for the rate-control algorithm (Algorithm 2, Eq. 5)."""

import math

import pytest

from repro.core.rate_control import (
    adjust_weight,
    apply_rate_control,
    relative_change,
)
from repro.errors import ConfigError


class TestRelativeChange:
    def test_no_change(self):
        assert relative_change(100.0, 100.0) == 0.0

    def test_increase(self):
        assert math.isclose(relative_change(100.0, 150.0), 0.5)

    def test_decrease(self):
        assert math.isclose(relative_change(100.0, 50.0), -0.5)

    def test_zero_ewma_no_traffic(self):
        assert relative_change(0.0, 0.0) == 0.0

    def test_zero_ewma_with_traffic_is_capped_surge(self):
        change = relative_change(0.0, 10.0)
        assert change > 1000.0 and math.isfinite(change)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            relative_change(-1.0, 10.0)
        with pytest.raises(ValueError):
            relative_change(10.0, -1.0)

    def test_extreme_values_stay_finite(self):
        assert math.isfinite(relative_change(1e-12, 1e12))


class TestAdjustWeight:
    def test_zero_change_is_identity(self):
        assert adjust_weight(1234.0, 1000.0, 0.0) == 1234.0

    def test_increase_pulls_toward_mean_from_above(self):
        adjusted = adjust_weight(2000.0, 1000.0, 1.0)
        assert 1000.0 < adjusted < 2000.0

    def test_increase_pulls_toward_mean_from_below(self):
        adjusted = adjust_weight(500.0, 1000.0, 1.0)
        assert 500.0 < adjusted < 1000.0

    def test_large_increase_converges_to_mean(self):
        assert math.isclose(
            adjust_weight(2000.0, 1000.0, 1e6), 1000.0, rel_tol=1e-6)

    def test_eq5_exact_value(self):
        damping = (1.0 + 1.0) ** 1.5
        expected = 1000.0 - 1000.0 / damping + 2000.0 / damping
        assert math.isclose(adjust_weight(2000.0, 1000.0, 1.0), expected)

    def test_decrease_boosts_above_average(self):
        assert adjust_weight(2000.0, 1000.0, -0.5) > 2000.0

    def test_decrease_shrinks_below_average(self):
        assert adjust_weight(500.0, 1000.0, -0.5) < 500.0

    def test_decrease_boost_bounded_by_mirror(self):
        # The boosted weight approaches (but never exceeds) 2*w_b - w_mu.
        boosted = adjust_weight(2000.0, 1000.0, -100.0)
        assert boosted < 2.0 * 2000.0 - 1000.0
        assert boosted > 2000.0

    def test_weight_equal_to_mean_shrinks_on_decrease(self):
        # Algorithm 2 line 7: w_b <= w_mu branch includes equality.
        adjusted = adjust_weight(1000.0, 1000.0, -0.5)
        assert adjusted < 1000.0

    def test_monotone_in_change_for_increase(self):
        values = [
            adjust_weight(2000.0, 1000.0, c)
            for c in (0.1, 0.5, 1.0, 2.0, 3.0)
        ]
        assert values == sorted(values, reverse=True)


class TestApplyRateControl:
    def test_empty_weights(self):
        assert apply_rate_control({}, 100.0, 100.0) == {}

    def test_no_change_preserves_weights(self):
        weights = {"a": 2000.0, "b": 500.0}
        out = apply_rate_control(weights, 100.0, 100.0)
        assert out == weights

    def test_input_not_mutated(self):
        weights = {"a": 2000.0, "b": 500.0}
        apply_rate_control(weights, 100.0, 200.0)
        assert weights == {"a": 2000.0, "b": 500.0}

    def test_surge_compresses_spread(self):
        weights = {"a": 3000.0, "b": 1000.0, "c": 500.0}
        out = apply_rate_control(weights, 100.0, 400.0)
        spread_before = max(weights.values()) - min(weights.values())
        spread_after = max(out.values()) - min(out.values())
        assert spread_after < spread_before

    def test_drop_expands_spread(self):
        weights = {"a": 3000.0, "b": 1000.0, "c": 500.0}
        out = apply_rate_control(weights, 100.0, 50.0)
        spread_before = max(weights.values()) - min(weights.values())
        spread_after = max(out.values()) - min(out.values())
        assert spread_after > spread_before

    def test_floor_enforced(self):
        weights = {"a": 1.0, "b": 10000.0}
        out = apply_rate_control(weights, 100.0, 50.0, min_weight=1.0)
        assert all(weight >= 1.0 for weight in out.values())

    def test_negative_min_weight_rejected(self):
        with pytest.raises(ConfigError):
            apply_rate_control({"a": 1.0}, 1.0, 1.0, min_weight=-1.0)

    def test_mean_preserved_under_surge(self):
        # Eq. 5 moves every weight toward the mean without changing it.
        weights = {"a": 3000.0, "b": 1000.0, "c": 500.0}
        mean_before = sum(weights.values()) / 3
        out = apply_rate_control(weights, 100.0, 400.0, min_weight=0.0)
        mean_after = sum(out.values()) / 3
        assert math.isclose(mean_before, mean_after)

    def test_single_backend_unchanged_by_surge(self):
        out = apply_rate_control({"only": 700.0}, 10.0, 100.0)
        assert math.isclose(out["only"], 700.0)
