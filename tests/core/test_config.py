"""Tests for L3Config validation and paper defaults (§4)."""

import pytest

from repro.core.config import L3Config
from repro.core.weighting import WeightingConfig
from repro.errors import ConfigError


class TestPaperDefaults:
    def test_percentile_is_p99(self):
        assert L3Config().percentile == 0.99

    def test_reconcile_every_5s_window_10s(self):
        config = L3Config()
        assert config.reconcile_interval_s == 5.0
        assert config.metrics_window_s == 10.0

    def test_half_lives(self):
        config = L3Config()
        assert config.latency_half_life_s == 5.0
        assert config.inflight_half_life_s == 5.0
        assert config.success_half_life_s == 10.0
        assert config.rps_half_life_s == 10.0

    def test_ewma_defaults(self):
        config = L3Config()
        assert config.default_latency_s == 5.0
        assert config.default_success_rate == 1.0
        assert config.default_rps == 0.0

    def test_penalty_default(self):
        assert L3Config().weighting.penalty_s == 0.6

    def test_ewma_not_peak_by_default(self):
        assert not L3Config().use_peak_ewma


class TestValidation:
    def test_percentile_bounds(self):
        with pytest.raises(ConfigError):
            L3Config(percentile=0.0)
        with pytest.raises(ConfigError):
            L3Config(percentile=1.0)

    def test_alternative_percentiles_allowed(self):
        # §3.1: P98 and P99.9 are supported configurations.
        assert L3Config(percentile=0.98).percentile == 0.98
        assert L3Config(percentile=0.999).percentile == 0.999

    def test_window_must_cover_interval(self):
        with pytest.raises(ConfigError):
            L3Config(reconcile_interval_s=10.0, metrics_window_s=5.0)

    def test_negative_half_life_rejected(self):
        with pytest.raises(ConfigError):
            L3Config(latency_half_life_s=-1.0)

    def test_decay_fraction_bounds(self):
        with pytest.raises(ConfigError):
            L3Config(decay_fraction=0.0)
        with pytest.raises(ConfigError):
            L3Config(decay_fraction=1.5)

    def test_success_rate_default_bounds(self):
        with pytest.raises(ConfigError):
            L3Config(default_success_rate=1.2)

    def test_nested_weighting_config(self):
        config = L3Config(weighting=WeightingConfig(penalty_s=1.5))
        assert config.weighting.penalty_s == 1.5

    def test_frozen(self):
        with pytest.raises(Exception):
            L3Config().percentile = 0.5
