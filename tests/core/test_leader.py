"""Tests for lease-based leader election (paper §4 HA mode)."""

import pytest

from repro.core.leader import ControllerReplica, LeaseLock
from repro.errors import ConfigError
from repro.live.clock import FakeClock


class CountingController:
    def __init__(self):
        self.reconciles = []

    def reconcile(self, now):
        self.reconciles.append(now)


class TestLeaseLock:
    def test_ttl_validation(self):
        with pytest.raises(ConfigError):
            LeaseLock(ttl_s=0.0)

    def test_first_candidate_acquires(self):
        lease = LeaseLock(ttl_s=10.0)
        assert lease.try_acquire("a", now=0.0)
        assert lease.holder(5.0) == "a"

    def test_second_candidate_blocked_while_held(self):
        lease = LeaseLock(ttl_s=10.0)
        lease.try_acquire("a", now=0.0)
        assert not lease.try_acquire("b", now=5.0)
        assert lease.holder(5.0) == "a"

    def test_holder_renews(self):
        lease = LeaseLock(ttl_s=10.0)
        lease.try_acquire("a", now=0.0)
        assert lease.try_acquire("a", now=8.0)  # renew
        assert lease.holder(17.0) == "a"        # ttl from renewal

    def test_expiry_allows_takeover(self):
        lease = LeaseLock(ttl_s=10.0)
        lease.try_acquire("a", now=0.0)
        assert lease.holder(10.0) is None  # expired exactly at ttl
        assert lease.try_acquire("b", now=10.0)
        assert lease.holder(12.0) == "b"

    def test_release_lets_others_in_immediately(self):
        lease = LeaseLock(ttl_s=100.0)
        lease.try_acquire("a", now=0.0)
        lease.release("a", now=1.0)
        assert lease.try_acquire("b", now=1.0)

    def test_release_by_non_holder_is_noop(self):
        lease = LeaseLock(ttl_s=100.0)
        lease.try_acquire("a", now=0.0)
        lease.release("b", now=1.0)
        assert lease.holder(2.0) == "a"

    def test_transitions_recorded(self):
        lease = LeaseLock(ttl_s=10.0)
        lease.try_acquire("a", now=0.0)
        lease.try_acquire("a", now=5.0)   # renewal: no transition
        lease.try_acquire("b", now=20.0)  # takeover
        assert lease.transitions == [(0.0, "a"), (20.0, "b")]


class TestWallClockLease:
    """The live testbed's HA mode: the lease reads an attached clock."""

    def test_explicit_now_required_without_clock(self):
        lease = LeaseLock(ttl_s=10.0)
        with pytest.raises(ConfigError):
            lease.holder()

    def test_clock_supplies_time_when_now_omitted(self):
        clock = FakeClock()
        lease = LeaseLock(ttl_s=10.0, clock=clock)
        assert lease.try_acquire("a")
        clock.advance(5.0)
        assert lease.holder() == "a"
        clock.advance(5.0)  # expired exactly at ttl
        assert lease.holder() is None

    def test_explicit_now_still_wins_over_the_clock(self):
        clock = FakeClock(100.0)
        lease = LeaseLock(ttl_s=10.0, clock=clock)
        lease.try_acquire("a", now=0.0)
        assert lease.holder(5.0) == "a"

    def test_takeover_after_leader_goes_silent(self):
        """Two controller replicas on one wall-clock lease: when the
        leader stops renewing, the standby takes over within the TTL."""
        clock = FakeClock()
        lease = LeaseLock(ttl_s=3.0, clock=clock)
        controllers = [CountingController(), CountingController()]
        replicas = [
            ControllerReplica(f"replica-{i}", controller, lease)
            for i, controller in enumerate(controllers)
        ]

        # Both step once per second; replica-0 wins the first election.
        for _ in range(5):
            stepped = [replica.step() for replica in replicas]
            assert stepped == [True, False]
            clock.advance(1.0)
        assert controllers[0].reconciles and not controllers[1].reconciles

        # The leader dies (stops renewing); the standby keeps stepping
        # and acquires the lease once the TTL runs out.
        replicas[0].crash()
        takeover_at = None
        for _ in range(6):
            if replicas[1].step():
                takeover_at = clock()
                break
            clock.advance(1.0)
        assert takeover_at is not None
        assert takeover_at <= 5.0 + lease.ttl_s
        assert controllers[1].reconciles == [takeover_at]
        assert [name for _t, name in lease.transitions] == [
            "replica-0", "replica-1"]

    def test_release_then_immediate_takeover_on_wall_clock(self):
        clock = FakeClock()
        lease = LeaseLock(ttl_s=100.0, clock=clock)
        lease.try_acquire("a")
        lease.release("a")
        assert lease.try_acquire("b")
        assert lease.holder() == "b"


class TestControllerReplica:
    def test_interval_validation(self):
        with pytest.raises(ConfigError):
            ControllerReplica("r", CountingController(), LeaseLock(),
                              interval_s=0.0)

    def test_only_leader_reconciles(self, sim):
        lease = LeaseLock(ttl_s=12.0)
        controllers = [CountingController() for _ in range(3)]
        replicas = [
            ControllerReplica(f"replica-{i}", controller, lease,
                              interval_s=5.0)
            for i, controller in enumerate(controllers)
        ]
        loops = [sim.spawn(replica.run(sim)) for replica in replicas]
        sim.run(until=60.0)
        for loop in loops:
            loop.interrupt()
        sim.run()
        active = [c for c in controllers if c.reconciles]
        assert len(active) == 1
        assert len(active[0].reconciles) == 12  # every 5 s for 60 s

    def test_failover_after_leader_crash(self, sim):
        lease = LeaseLock(ttl_s=12.0)
        controllers = [CountingController(), CountingController()]
        replicas = [
            ControllerReplica(f"replica-{i}", controller, lease,
                              interval_s=5.0)
            for i, controller in enumerate(controllers)
        ]
        loops = [sim.spawn(replica.run(sim)) for replica in replicas]
        # replica-0 wins the first election (tie broken by spawn order).
        sim.run(until=20.0)
        leader_index = 0 if replicas[0].is_leader(20.0) else 1
        standby_index = 1 - leader_index
        replicas[leader_index].crash()
        sim.run(until=60.0)
        for loop in loops:
            loop.interrupt()
        sim.run()
        # The standby took over within the lease TTL and kept reconciling.
        assert controllers[standby_index].reconciles
        takeover = controllers[standby_index].reconciles[0]
        assert takeover <= 20.0 + lease.ttl_s + 5.0
        assert len(lease.transitions) == 2

    def test_crashed_replica_can_recover_and_rejoin(self, sim):
        lease = LeaseLock(ttl_s=10.0)
        controller = CountingController()
        replica = ControllerReplica("solo", controller, lease,
                                    interval_s=5.0)
        loop = sim.spawn(replica.run(sim))
        sim.run(until=12.0)
        replica.crash()
        sim.run(until=30.0)
        count_at_crash = len(controller.reconciles)
        replica.recover()
        sim.run(until=50.0)
        loop.interrupt()
        sim.run()
        assert len(controller.reconciles) > count_at_crash

    def test_reconcile_gap_bounded_by_ttl_plus_interval(self, sim):
        lease = LeaseLock(ttl_s=12.0)
        controllers = [CountingController(), CountingController()]
        replicas = [
            ControllerReplica(f"replica-{i}", controller, lease,
                              interval_s=5.0)
            for i, controller in enumerate(controllers)
        ]
        loops = [sim.spawn(replica.run(sim)) for replica in replicas]
        sim.run(until=20.0)
        leader_index = 0 if replicas[0].is_leader(20.0) else 1
        replicas[leader_index].crash()
        sim.run(until=80.0)
        for loop in loops:
            loop.interrupt()
        sim.run()
        all_reconciles = sorted(
            controllers[0].reconciles + controllers[1].reconciles)
        gaps = [b - a for a, b in zip(all_reconciles, all_reconciles[1:])]
        assert max(gaps) <= lease.ttl_s + 5.0 + 1e-9
