"""Tests for the future-work extensions: dynamic penalty, cost bias."""

import math

import pytest

from repro.core.config import L3Config
from repro.core.controller import L3Controller, MetricSample
from repro.core.cost import CostConfig, apply_cost_bias
from repro.core.weighting import BackendSnapshot, WeightingConfig, compute_weights
from repro.errors import ConfigError


class RecordingSink:
    def __init__(self):
        self.writes = []

    def set_weights(self, weights, now):
        self.writes.append((now, dict(weights)))


class FailureAwareSource:
    """Source that also reports failure-latency percentiles."""

    def __init__(self, samples, failure_latency):
        self.samples = samples
        self.failure_latency = failure_latency

    def collect(self, backend_names, now, window_s, percentile):
        return {name: self.samples.get(name) for name in backend_names}

    def failure_latency_quantile(self, name, now, window_s, percentile):
        return self.failure_latency.get(name)


class TestPenaltyOverrides:
    def test_override_changes_weight(self):
        snapshots = [BackendSnapshot("a", 0.1, 0.5, 100.0, 0.0)]
        config = WeightingConfig(min_weight=0.0)
        base = compute_weights(snapshots, config)["a"]
        harsher = compute_weights(
            snapshots, config, penalty_overrides={"a": 5.0})["a"]
        assert harsher < base

    def test_unlisted_backend_uses_static_penalty(self):
        snapshots = [
            BackendSnapshot("a", 0.1, 0.5, 100.0, 0.0),
            BackendSnapshot("b", 0.1, 0.5, 100.0, 0.0),
        ]
        config = WeightingConfig(min_weight=0.0)
        out = compute_weights(
            snapshots, config, penalty_overrides={"a": config.penalty_s})
        assert math.isclose(out["a"], out["b"])

    def test_negative_override_rejected(self):
        snapshots = [BackendSnapshot("a", 0.1, 1.0, 100.0, 0.0)]
        with pytest.raises(ValueError):
            compute_weights(snapshots, penalty_overrides={"a": -1.0})


class TestDynamicPenaltyController:
    def make(self, failure_latency, **config_kwargs):
        samples = {
            "cheap-failures": MetricSample(0.1, 0.5, 100.0, 0.0),
            "costly-failures": MetricSample(0.1, 0.5, 100.0, 0.0),
        }
        source = FailureAwareSource(samples, failure_latency)
        sink = RecordingSink()
        controller = L3Controller(
            list(samples), source, sink,
            L3Config(dynamic_penalty=True, **config_kwargs))
        return controller

    def test_costly_failures_get_lower_weight(self):
        controller = self.make({
            "cheap-failures": 0.01,
            "costly-failures": 2.0,
        })
        for t in range(1, 15):
            controller.reconcile(float(t * 5))
        weights = controller.last_weights
        assert weights["cheap-failures"] > weights["costly-failures"]

    def test_no_failure_data_holds_static_penalty(self):
        controller = self.make({})
        controller.reconcile(5.0)
        for state in controller.backends.values():
            assert state.failure_latency.value == pytest.approx(0.6)

    def test_disabled_by_default(self):
        source = FailureAwareSource(
            {"a": MetricSample(0.1, 1.0, 10.0, 0.0)}, {"a": 9.0})
        controller = L3Controller(["a"], source, RecordingSink(), L3Config())
        controller.reconcile(5.0)
        assert controller.backends["a"].failure_latency.value == pytest.approx(0.6)

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            L3Config(dynamic_penalty_percentile=0.0)
        with pytest.raises(ConfigError):
            L3Config(dynamic_penalty_half_life_s=0.0)


class TestCostBias:
    def test_validation(self):
        with pytest.raises(ConfigError):
            CostConfig(source_cluster="")
        with pytest.raises(ConfigError):
            CostConfig(source_cluster="c1", cost_weight=-1.0)
        with pytest.raises(ConfigError):
            CostConfig(source_cluster="c1", egress_cost={"c2": -0.5})

    def test_local_traffic_is_free(self):
        config = CostConfig(source_cluster="c1")
        assert config.cost_to("c1") == 0.0
        assert config.cost_to("c2") == 1.0

    def test_bias_lowers_remote_weights_only(self):
        config = CostConfig(source_cluster="c1", cost_weight=1.0)
        weights = {"svc/c1": 1000.0, "svc/c2": 1000.0}
        out = apply_cost_bias(weights, config, min_weight=0.0)
        assert out["svc/c1"] == 1000.0
        assert out["svc/c2"] == 500.0

    def test_zero_weight_disables_bias(self):
        config = CostConfig(source_cluster="c1", cost_weight=0.0)
        weights = {"svc/c1": 1000.0, "svc/c2": 1000.0}
        assert apply_cost_bias(weights, config) == weights

    def test_custom_per_cluster_pricing(self):
        config = CostConfig(
            source_cluster="c1",
            egress_cost={"c2": 0.0, "c3": 4.0},  # c2 is a free zone
            cost_weight=1.0)
        weights = {"s/c2": 1000.0, "s/c3": 1000.0}
        out = apply_cost_bias(weights, config, min_weight=0.0)
        assert out["s/c2"] == 1000.0
        assert out["s/c3"] == 200.0

    def test_controller_integration(self):
        samples = {
            "svc/c1": MetricSample(0.1, 1.0, 100.0, 0.0),
            "svc/c2": MetricSample(0.1, 1.0, 100.0, 0.0),
        }
        source = FailureAwareSource(samples, {})
        sink = RecordingSink()
        cost = CostConfig(source_cluster="c1", cost_weight=2.0)
        controller = L3Controller(
            list(samples), source, sink, L3Config(cost=cost))
        for t in range(1, 10):
            controller.reconcile(float(t * 5))
        weights = controller.last_weights
        assert weights["svc/c1"] > weights["svc/c2"] * 2
