"""Tests for controller introspection (§4 observability)."""

import pytest

from repro.core.config import L3Config
from repro.core.controller import L3Controller, MetricSample
from repro.core.introspection import (
    ControllerIntrospection,
    LATENCY_EWMA_S,
    RECONCILE_COUNT,
    RELATIVE_CHANGE,
    WEIGHT,
)
from repro.telemetry.scraper import Scraper
from repro.telemetry.timeseries import TimeSeriesStore


class StaticSource:
    def __init__(self, samples):
        self.samples = samples

    def collect(self, backend_names, now, window_s, percentile):
        return {name: self.samples.get(name) for name in backend_names}


class NullSink:
    def set_weights(self, weights, now):
        pass


@pytest.fixture
def wired(sim):
    samples = {
        "svc/c1": MetricSample(0.05, 1.0, 100.0, 1.0),
        "svc/c2": MetricSample(0.40, 1.0, 100.0, 1.0),
    }
    controller = L3Controller(
        list(samples), StaticSource(samples), NullSink(), L3Config())
    store = TimeSeriesStore()
    scraper = Scraper(store, interval_s=5.0)
    introspection = ControllerIntrospection(controller, prefix="l3")
    introspection.register(scraper)
    return sim, controller, store, scraper, introspection


class TestIntrospection:
    def test_weights_scraped_per_backend(self, wired):
        sim, controller, store, scraper, introspection = wired
        sim.spawn(controller.run(sim))
        sim.spawn(scraper.run(sim))
        sim.run(until=31.0)
        history = introspection.weight_series(store, "svc/c1", 0.0, 31.0)
        assert len(history) == 6  # scrapes at 5..30 s
        final = history[-1][1]
        other = introspection.weight_series(
            store, "svc/c2", 0.0, 31.0)[-1][1]
        assert final > other  # faster backend, higher weight

    def test_ewma_values_exposed(self, wired):
        sim, controller, store, scraper, _intro = wired
        sim.spawn(controller.run(sim))
        sim.spawn(scraper.run(sim))
        sim.run(until=31.0)
        latency = store.series("l3|svc/c1", LATENCY_EWMA_S).window(0, 31)
        values = [v for _t, v in latency]
        # Converging from the 5 s default down toward the 50 ms signal.
        assert values[0] > values[-1]
        assert values[-1] < 1.0

    def test_controller_wide_series(self, wired):
        sim, controller, store, scraper, _intro = wired
        sim.spawn(controller.run(sim))
        sim.spawn(scraper.run(sim))
        sim.run(until=31.0)
        count = store.series("l3", RECONCILE_COUNT).window(0, 31)
        values = [v for _t, v in count]
        # One reconcile per 5 s tick; the same-tick ordering between the
        # reconcile and the scrape is an implementation detail, so accept
        # either off-by-one alignment — but the count must step by 1.
        assert len(values) == 6
        assert all(b - a == 1.0 for a, b in zip(values, values[1:]))
        change = store.series("l3", RELATIVE_CHANGE).window(0, 31)
        assert len(change) == 6

    def test_weights_before_first_reconcile_are_zero(self, wired):
        sim, _controller, store, scraper, _intro = wired
        scraper.scrape_once(0.0)
        weight = store.series("l3|svc/c1", WEIGHT).window(0, 1)[0][1]
        assert weight == 0.0
