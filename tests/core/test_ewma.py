"""Tests for the EWMA and PeakEWMA filters (Eq. 1, Eq. 2)."""

import math

import pytest

from repro.core.ewma import Ewma, PeakEwma, half_life_to_beta
from repro.errors import ConfigError


class TestHalfLife:
    def test_conversion_formula(self):
        assert math.isclose(half_life_to_beta(5.0), 5.0 / math.log(2))

    def test_half_life_semantics(self):
        # After exactly one half-life, an old value's weight must be 1/2.
        beta = half_life_to_beta(10.0)
        assert math.isclose(math.exp(-10.0 / beta), 0.5)

    def test_non_positive_rejected(self):
        with pytest.raises(ConfigError):
            half_life_to_beta(0.0)
        with pytest.raises(ConfigError):
            half_life_to_beta(-1.0)


class TestEwma:
    def test_starts_at_default(self):
        ewma = Ewma(default=5.0, beta=1.0)
        assert ewma.value == 5.0

    def test_invalid_beta_rejected(self):
        with pytest.raises(ConfigError):
            Ewma(default=0.0, beta=0.0)

    def test_eq1_blend_is_exact(self):
        beta = 2.0
        ewma = Ewma(default=10.0, beta=beta, start_time=0.0)
        ewma.observe(20.0, 3.0)
        decay = math.exp(-3.0 / beta)
        assert math.isclose(ewma.value, 20.0 * (1 - decay) + 10.0 * decay)

    def test_half_life_decay(self):
        ewma = Ewma(default=100.0, beta=half_life_to_beta(5.0), start_time=0.0)
        ewma.observe(0.0, 5.0)
        assert math.isclose(ewma.value, 50.0)

    def test_rapid_samples_have_little_weight(self):
        ewma = Ewma(default=100.0, beta=half_life_to_beta(5.0))
        ewma.observe(0.0, 1e-9)
        assert ewma.value > 99.9

    def test_long_gap_converges_to_sample(self):
        ewma = Ewma(default=100.0, beta=half_life_to_beta(5.0))
        ewma.observe(7.0, 1000.0)
        assert math.isclose(ewma.value, 7.0, rel_tol=1e-6)

    def test_out_of_order_samples_rejected(self):
        ewma = Ewma(default=0.0, beta=1.0, start_time=10.0)
        with pytest.raises(ValueError):
            ewma.observe(1.0, 5.0)

    def test_same_timestamp_sample_is_noop_blend(self):
        ewma = Ewma(default=10.0, beta=1.0, start_time=0.0)
        ewma.observe(99.0, 0.0)
        assert ewma.value == 10.0  # exp(0) == 1: all weight on the old value

    def test_value_stays_between_samples_and_default(self):
        ewma = Ewma(default=0.0, beta=half_life_to_beta(5.0))
        for i in range(1, 50):
            ewma.observe(10.0, float(i))
            assert 0.0 <= ewma.value <= 10.0
        assert ewma.value > 9.0

    def test_reset_restores_default(self):
        ewma = Ewma(default=3.0, beta=1.0)
        ewma.observe(50.0, 10.0)
        ewma.reset(now=11.0)
        assert ewma.value == 3.0
        assert ewma.last_update == 11.0


class TestDecayTowardDefault:
    def test_moves_fraction_of_gap(self):
        ewma = Ewma(default=0.0, beta=1.0)
        ewma.observe(100.0, 100.0)
        before = ewma.value
        ewma.decay_toward_default(101.0, fraction=0.1)
        assert math.isclose(ewma.value, before * 0.9)

    def test_full_fraction_snaps_to_default(self):
        ewma = Ewma(default=5.0, beta=1.0)
        ewma.observe(100.0, 10.0)
        ewma.decay_toward_default(11.0, fraction=1.0)
        assert ewma.value == 5.0

    def test_invalid_fraction_rejected(self):
        ewma = Ewma(default=0.0, beta=1.0)
        with pytest.raises(ConfigError):
            ewma.decay_toward_default(1.0, fraction=0.0)
        with pytest.raises(ConfigError):
            ewma.decay_toward_default(1.0, fraction=1.5)

    def test_repeated_decay_converges(self):
        ewma = Ewma(default=1.0, beta=1.0)
        ewma.observe(100.0, 10.0)
        for i in range(200):
            ewma.decay_toward_default(11.0 + i, fraction=0.1)
        assert math.isclose(ewma.value, 1.0, abs_tol=1e-6)


class TestPeakEwma:
    def test_jumps_to_peak(self):
        peak = PeakEwma(default=0.0, beta=half_life_to_beta(5.0))
        peak.observe(10.0, 1.0)
        peak.observe(100.0, 2.0)
        assert peak.value == 100.0

    def test_decays_like_ewma_below_peak(self):
        beta = half_life_to_beta(5.0)
        peak = PeakEwma(default=0.0, beta=beta)
        plain = Ewma(default=0.0, beta=beta)
        peak.observe(100.0, 1.0)
        plain_value = plain.observe(100.0, 1.0)
        # Set both to 100 via the peak jump vs blending — differ; force same:
        peak._value = plain_value
        peak.observe(10.0, 6.0)
        plain.observe(10.0, 6.0)
        assert math.isclose(peak.value, plain.value)

    def test_equal_sample_blends_rather_than_jumps(self):
        peak = PeakEwma(default=50.0, beta=1.0)
        peak.observe(50.0, 1.0)
        assert peak.value == 50.0

    def test_is_never_below_plain_ewma(self):
        beta = half_life_to_beta(5.0)
        peak = PeakEwma(default=0.0, beta=beta)
        plain = Ewma(default=0.0, beta=beta)
        samples = [(1.0, 5.0), (2.0, 50.0), (3.0, 2.0), (8.0, 1.0),
                   (9.0, 80.0), (15.0, 3.0)]
        for when, sample in samples:
            peak.observe(sample, when)
            plain.observe(sample, when)
            assert peak.value >= plain.value - 1e-12
