"""Tests for per-backend metric state (§4 defaults and staleness)."""

import pytest

from repro.core.config import L3Config
from repro.core.ewma import Ewma, PeakEwma
from repro.core.state import BackendMetricState


@pytest.fixture
def state():
    return BackendMetricState("api/cluster-1", L3Config(), now=0.0)


class TestDefaults:
    def test_starts_at_paper_defaults(self, state):
        snap = state.snapshot()
        assert snap.latency_s == 5.0
        assert snap.success_rate == 1.0
        assert snap.rps == 0.0
        assert snap.inflight == 0.0

    def test_peak_ewma_selected_by_config(self):
        peaky = BackendMetricState(
            "b", L3Config(use_peak_ewma=True), now=0.0)
        assert isinstance(peaky.latency, PeakEwma)
        plain = BackendMetricState("b", L3Config(), now=0.0)
        assert isinstance(plain.latency, Ewma)
        assert not isinstance(plain.latency, PeakEwma)


class TestObserve:
    def test_observe_updates_all_filters(self, state):
        state.observe(10.0, latency_s=0.2, success_rate=0.9, rps=50.0,
                      inflight=3.0)
        snap = state.snapshot()
        assert snap.latency_s < 5.0
        assert snap.success_rate < 1.0
        assert snap.rps > 0.0
        assert snap.inflight > 0.0

    def test_none_latency_leaves_latency_filter_untouched(self, state):
        state.observe(10.0, latency_s=None, success_rate=0.5, rps=50.0,
                      inflight=1.0)
        assert state.latency.value == 5.0
        assert state.success_rate.value < 1.0

    def test_observe_advances_sample_time(self, state):
        state.observe(12.0, 0.1, 1.0, 10.0, 0.0)
        assert state.last_sample_time == 12.0


class TestStaleness:
    def test_not_stale_before_threshold(self, state):
        state.observe(10.0, 0.1, 1.0, 10.0, 0.0)
        assert not state.is_stale(15.0)

    def test_stale_after_threshold(self, state):
        state.observe(10.0, 0.1, 1.0, 10.0, 0.0)
        assert state.is_stale(20.0)

    def test_decay_moves_filters_toward_defaults(self, state):
        for t in range(1, 20):
            state.observe(float(t), 0.05, 0.8, 100.0, 5.0)
        before = state.snapshot()
        state.decay_toward_defaults(40.0)
        after = state.snapshot()
        assert abs(after.latency_s - 5.0) < abs(before.latency_s - 5.0)
        assert abs(after.success_rate - 1.0) < abs(before.success_rate - 1.0)
        assert after.rps < before.rps


class TestSnapshotClamping:
    def test_snapshot_clamps_success_rate(self, state):
        # Drive the EWMA value out of range artificially and confirm the
        # snapshot clamps — the weighting algorithm requires [0, 1].
        state.success_rate._value = 1.3
        assert state.snapshot().success_rate == 1.0
        state.success_rate._value = -0.2
        assert state.snapshot().success_rate == 0.0

    def test_snapshot_clamps_negative_values(self, state):
        state.rps._value = -5.0
        state.inflight._value = -2.0
        snap = state.snapshot()
        assert snap.rps == 0.0
        assert snap.inflight == 0.0
