"""Controller hardening: degraded mode, pause, rounding, stale decay."""

import pytest

import repro.core.controller as controller_module
from repro.core.config import L3Config
from repro.core.controller import L3Controller, MetricSample
from repro.core.introspection import (
    DEGRADED_RECONCILES,
    ControllerIntrospection,
)
from repro.errors import Interrupted
from repro.telemetry.scraper import Scraper
from repro.telemetry.timeseries import TimeSeriesStore

SAMPLES = {
    "a": MetricSample(0.05, 1.0, 100.0, 1.0),
    "b": MetricSample(0.10, 1.0, 100.0, 1.0),
}


class FlakySource:
    """Raises for the first ``failures`` collects, then serves samples."""

    def __init__(self, failures=0, exc_factory=None):
        self.failures = failures
        self.exc_factory = exc_factory or (
            lambda: ConnectionError("prometheus is down"))
        self.calls = 0

    def collect(self, backend_names, now, window_s, percentile):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc_factory()
        return {name: SAMPLES.get(name) for name in backend_names}


class FlakySink:
    def __init__(self, failures=0):
        self.failures = failures
        self.writes = []

    def set_weights(self, weights, now):
        if len(self.writes) < self.failures:
            self.writes.append(None)
            raise RuntimeError("API server rejected the TrafficSplit")
        self.writes.append((now, dict(weights)))


def make_controller(source, sink, **config_kwargs):
    return L3Controller(["a", "b"], source, sink, L3Config(**config_kwargs))


class TestDegradedMode:
    def test_source_outage_holds_last_known_good_weights(self):
        source = FlakySource(failures=3)
        sink = FlakySink()
        controller = make_controller(source, sink)
        # One healthy reconcile establishes known-good weights.
        source.failures = 0
        good = controller.reconcile(5.0)
        assert controller.degraded_reconciles == 0
        # The source starts raising: every reconcile returns the held
        # weights, counts as degraded, and records the error.
        source.calls = 0
        source.failures = 3
        for i, t in enumerate((10.0, 15.0, 20.0), start=1):
            held = controller.reconcile(t)
            assert held == good
            assert controller.degraded_reconciles == i
            assert "ConnectionError" in controller.last_error
        assert controller.last_weights == good
        # Nothing new reached the sink during the outage.
        assert len(sink.writes) == 1
        # Recovery: the loop resumes where it left off.
        recovered = controller.reconcile(25.0)
        assert controller.last_error is None
        assert controller.reconcile_count == 2
        assert len(sink.writes) == 2
        assert recovered == controller.last_weights

    def test_sink_outage_degrades(self):
        source = FlakySource()
        sink = FlakySink(failures=1)
        controller = make_controller(source, sink)
        controller.reconcile(5.0)
        assert controller.degraded_reconciles == 1
        assert "RuntimeError" in controller.last_error
        assert controller.last_weights == {}
        controller.reconcile(10.0)
        assert controller.last_error is None
        assert controller.last_weights != {}

    def test_interrupted_still_propagates(self):
        source = FlakySource(failures=1,
                             exc_factory=lambda: Interrupted("stop"))
        controller = make_controller(source, FlakySink())
        with pytest.raises(Interrupted):
            controller.reconcile(5.0)

    def test_degraded_before_any_success_returns_empty(self):
        source = FlakySource(failures=1)
        controller = make_controller(source, FlakySink())
        assert controller.reconcile(5.0) == {}

    def test_degraded_reconciles_scraped(self):
        source = FlakySource(failures=1)
        controller = make_controller(source, FlakySink())
        store = TimeSeriesStore()
        scraper = Scraper(store)
        ControllerIntrospection(controller, prefix="l3").register(scraper)
        controller.reconcile(5.0)
        scraper.scrape_once(6.0)
        samples = store.series("l3", DEGRADED_RECONCILES).window(0.0, 10.0)
        assert samples[-1][1] == 1


class TestPauseResume:
    def test_paused_loop_skips_reconciles(self, sim):
        controller = make_controller(FlakySource(), FlakySink())
        process = sim.spawn(controller.run(sim))
        sim.run(until=11.0)
        assert controller.reconcile_count == 2  # t = 5, 10
        controller.pause()
        sim.run(until=21.0)
        assert controller.reconcile_count == 2  # stalled
        controller.resume()
        sim.run(until=26.0)
        assert controller.reconcile_count == 3  # t = 25
        process.interrupt()
        sim.run()


class TestWeightRounding:
    def test_half_weights_round_up_not_to_even(self, monkeypatch):
        # Regression: int(round(2.5)) is 2 (banker's rounding); SMI
        # weights must round half *up* so equal backends stay equal.
        monkeypatch.setattr(
            controller_module, "compute_weights",
            lambda snapshots, config, penalty_overrides=None:
                {"a": 2.5, "b": 3.5})
        controller = make_controller(FlakySource(), FlakySink(),
                                     rate_control_enabled=False)
        weights = controller.reconcile(5.0)
        assert weights == {"a": 3, "b": 4}

    def test_sub_half_weight_floors_to_one(self, monkeypatch):
        monkeypatch.setattr(
            controller_module, "compute_weights",
            lambda snapshots, config, penalty_overrides=None:
                {"a": 0.2, "b": 900.0})
        controller = make_controller(FlakySource(), FlakySink(),
                                     rate_control_enabled=False)
        assert controller.reconcile(5.0) == {"a": 1, "b": 900}


class TestBackendRemoval:
    def test_remove_backend_purges_weight_snapshots(self):
        controller = make_controller(FlakySource(), FlakySink())
        controller.reconcile(5.0)
        assert "b" in controller.last_weights
        assert "b" in controller.last_raw_weights
        controller.remove_backend("b")
        assert "b" not in controller.last_weights
        assert "b" not in controller.last_raw_weights
        assert "a" in controller.last_weights


class TestStaleDecay:
    """§4 no-traffic behaviour under a multi-interval scrape outage."""

    def make_quiet_controller(self):
        """A controller that saw one real sample, then silence."""
        source = FlakySource()
        controller = make_controller(source, FlakySink())
        controller.reconcile(5.0)
        return controller

    def test_not_stale_within_staleness_window(self):
        controller = self.make_quiet_controller()
        state = controller.backends["a"]
        before = state.latency.value
        assert not state.is_stale(12.0)  # 7 s quiet < 10 s staleness
        # A reconcile without samples inside the window leaves the
        # filters untouched.
        controller.metrics_source.collect = (
            lambda names, now, window_s, percentile:
                {name: None for name in names})
        controller.reconcile(12.0)
        assert state.latency.value == before

    def test_multi_interval_outage_decays_toward_defaults(self):
        controller = self.make_quiet_controller()
        state = controller.backends["a"]
        default = controller.config.default_latency_s
        observed = state.latency.value
        assert observed < default  # 50 ms sample vs 5 s default
        controller.metrics_source.collect = (
            lambda names, now, window_s, percentile:
                {name: None for name in names})
        values = []
        for t in (20.0, 25.0, 30.0, 35.0, 40.0):
            assert state.is_stale(t)
            controller.reconcile(t)
            values.append(state.latency.value)
        # Monotone decay toward (but never past) the default.
        assert values == sorted(values)
        assert observed < values[0]
        assert values[-1] <= default
        # decay_fraction=0.1 per reconcile: five steps recover
        # 1 - 0.9^5 of the gap.
        expected = default - (default - observed) * 0.9 ** 5
        assert values[-1] == pytest.approx(expected, rel=1e-6)

    def test_success_rate_decays_up_toward_default(self):
        source = FlakySource()
        controller = make_controller(source, FlakySink())
        low = {
            "a": MetricSample(0.05, 0.2, 100.0, 1.0),
            "b": MetricSample(0.05, 0.2, 100.0, 1.0),
        }
        source.collect = (lambda names, now, window_s, percentile:
                          {name: low[name] for name in names})
        controller.reconcile(5.0)
        state = controller.backends["a"]
        after_sample = state.success_rate.value
        source.collect = (lambda names, now, window_s, percentile:
                          {name: None for name in names})
        for t in (20.0, 25.0, 30.0):
            controller.reconcile(t)
        assert state.success_rate.value > after_sample
        assert (state.success_rate.value
                <= controller.config.default_success_rate)
