"""FakeClock-driven lease-contention suite (the HA failover contract).

DESIGN.md §5f states the contract these tests pin down, deterministically
and without sleeping:

- **no split-brain** — at any instant at most one replica is leader, and
  at most one reconciles per election round, no matter how many compete
  or in what order they step;
- **bounded takeover** — a crashed leader is replaced within one lease
  TTL plus one step interval;
- **hold-last-good** — while the lease is vacant the last pushed weights
  keep serving; nobody writes the split until the new leader's first
  reconcile.
"""

import itertools
import random

import pytest

from repro.core.leader import ControllerReplica, LeaseLock
from repro.live.clock import FakeClock


class WeightPushingController:
    """Pushes a fresh, identifiable weight map on every reconcile."""

    def __init__(self, name: str, split: "RecordingSplit"):
        self.name = name
        self.split = split
        self.paused = False
        self.reconciles = []
        self._version = itertools.count(1)

    def reconcile(self, now):
        self.reconciles.append(now)
        self.split.apply(now, {"backend": next(self._version),
                               "leader": self.name})


class RecordingSplit:
    """The shared weight sink: remembers every apply and the current map."""

    def __init__(self):
        self.history = []
        self.current = None

    def apply(self, now, weights):
        self.history.append((now, dict(weights)))
        self.current = dict(weights)


def build_group(n, ttl_s, clock):
    split = RecordingSplit()
    lease = LeaseLock(ttl_s=ttl_s, clock=clock)
    replicas = [
        ControllerReplica(f"replica-{i}",
                          WeightPushingController(f"replica-{i}", split),
                          lease)
        for i in range(n)
    ]
    return split, lease, replicas


class TestNoSplitBrain:
    @pytest.mark.parametrize("n", [2, 3, 7])
    def test_at_most_one_leader_per_tick(self, n):
        clock = FakeClock()
        _split, lease, replicas = build_group(n, ttl_s=3.0, clock=clock)
        for _ in range(30):
            reconciled = [replica for replica in replicas if replica.step()]
            assert len(reconciled) <= 1
            leaders = [r for r in replicas if r.is_leader()]
            assert len(leaders) <= 1
            assert lease.holder() is not None  # someone always wins
            clock.advance(0.5)

    def test_step_order_cannot_steal_a_held_lease(self):
        """Whatever order replicas step in, a live leader is never
        preempted — shuffled step orders across many rounds."""
        clock = FakeClock()
        rng = random.Random(7)
        _split, lease, replicas = build_group(4, ttl_s=3.0, clock=clock)
        [replica.step() for replica in replicas]
        first_leader = lease.holder()
        for _ in range(40):
            clock.advance(0.5)  # well inside the TTL: renewals keep up
            order = list(replicas)
            rng.shuffle(order)
            for replica in order:
                replica.step()
            assert lease.holder() == first_leader
        assert len(lease.transitions) == 1

    def test_every_reconcile_was_made_by_the_lease_holder(self):
        clock = FakeClock()
        rng = random.Random(21)
        split, lease, replicas = build_group(3, ttl_s=2.0, clock=clock)
        crashed = False
        for round_no in range(60):
            order = list(replicas)
            rng.shuffle(order)
            for replica in order:
                replica.step()
            if round_no == 20:  # mid-run leader crash
                leader = [r for r in replicas if r.is_leader()][0]
                leader.crash()
                crashed = True
            clock.advance(0.5)
        assert crashed
        # Each pushed weight map names its author; the lease log names
        # every holder. No push may come from a non-holder's controller.
        holders = {name for _t, name in lease.transitions}
        authors = {weights["leader"] for _t, weights in split.history}
        assert authors <= holders
        assert len(lease.transitions) == 2  # one election, one takeover


class TestBoundedTakeover:
    def test_takeover_within_one_ttl_plus_one_step(self):
        clock = FakeClock()
        step_s = 0.5
        _split, lease, replicas = build_group(2, ttl_s=2.0, clock=clock)
        [replica.step() for replica in replicas]
        crash_at = clock()
        replicas[0].crash()
        takeover_at = None
        for _ in range(20):
            clock.advance(step_s)
            if replicas[1].step():
                takeover_at = clock()
                break
        assert takeover_at is not None
        assert takeover_at - crash_at <= lease.ttl_s + step_s + 1e-9

    def test_recovered_replica_rejoins_without_preempting(self):
        clock = FakeClock()
        _split, lease, replicas = build_group(2, ttl_s=2.0, clock=clock)
        [replica.step() for replica in replicas]
        replicas[0].crash()
        for _ in range(10):
            clock.advance(0.5)
            [replica.step() for replica in replicas]
        assert lease.holder() == "replica-1"
        replicas[0].recover()
        for _ in range(10):
            clock.advance(0.5)
            [replica.step() for replica in replicas]
        # The old leader is back in the election but replica-1 renews
        # fast enough to keep the lease: exactly two transitions ever.
        assert lease.holder() == "replica-1"
        assert [name for _t, name in lease.transitions] == [
            "replica-0", "replica-1"]


class TestHoldLastGood:
    def test_weights_freeze_during_the_leaderless_window(self):
        clock = FakeClock()
        split, lease, replicas = build_group(2, ttl_s=2.0, clock=clock)
        for _ in range(4):
            [replica.step() for replica in replicas]
            clock.advance(0.5)
        last_good = dict(split.current)
        pushes_before = len(split.history)

        crash_at = clock()
        replicas[0].crash()
        saw_vacancy = False
        while clock() - crash_at <= lease.ttl_s:
            if lease.holder() is None:
                saw_vacancy = True
                # Leaderless: the split still serves the last-known-good
                # weights and nothing has written to it since the crash.
                assert split.current == last_good
                assert len(split.history) == pushes_before
            [replica.step() for replica in replicas]
            clock.advance(0.25)
        assert saw_vacancy

        # The standby's first reconcile after takeover resumes pushes.
        assert len(split.history) > pushes_before
        assert split.current["leader"] == "replica-1"

    def test_paused_leader_keeps_the_lease_but_freezes_weights(self):
        """controller-pause under HA: the process is alive (renews) but
        the reconcile loop is stalled — leadership must NOT move and the
        weights must not change until resume."""
        clock = FakeClock()
        split, lease, replicas = build_group(2, ttl_s=2.0, clock=clock)
        [replica.step() for replica in replicas]
        leader = replicas[0]
        assert leader.is_leader()
        pushes_before = len(split.history)

        leader.controller.paused = True
        for _ in range(12):  # 6 s >> TTL: a dead leader would be deposed
            clock.advance(0.5)
            assert not any(replica.step() for replica in replicas)
        assert lease.holder() == "replica-0"
        assert len(split.history) == pushes_before

        leader.controller.paused = False
        clock.advance(0.5)
        assert leader.step()
        assert len(split.history) == pushes_before + 1
        assert len(lease.transitions) == 1  # leadership never moved
