"""Tests for the L3 controller reconcile loop."""

import pytest

from repro.core.config import L3Config
from repro.core.controller import L3Controller, MetricSample


class FakeSource:
    """Scriptable metrics source."""

    def __init__(self):
        self.samples = {}
        self.calls = []

    def collect(self, backend_names, now, window_s, percentile):
        self.calls.append((tuple(backend_names), now, window_s, percentile))
        return {name: self.samples.get(name) for name in backend_names}


class FakeSink:
    def __init__(self):
        self.writes = []

    def set_weights(self, weights, now):
        self.writes.append((now, dict(weights)))


@pytest.fixture
def source():
    return FakeSource()


@pytest.fixture
def sink():
    return FakeSink()


def make_controller(source, sink, backends=("a", "b"), **config_kwargs):
    return L3Controller(
        list(backends), source, sink, L3Config(**config_kwargs))


class TestConstruction:
    def test_requires_backends(self, source, sink):
        with pytest.raises(ValueError):
            L3Controller([], source, sink)

    def test_rejects_duplicates(self, source, sink):
        with pytest.raises(ValueError):
            L3Controller(["a", "a"], source, sink)

    def test_add_and_remove_backend(self, source, sink):
        controller = make_controller(source, sink)
        controller.add_backend("c", now=1.0)
        assert "c" in controller.backends
        controller.remove_backend("c")
        assert "c" not in controller.backends

    def test_add_duplicate_rejected(self, source, sink):
        controller = make_controller(source, sink)
        with pytest.raises(ValueError):
            controller.add_backend("a", now=1.0)

    def test_cannot_remove_last_backend(self, source, sink):
        controller = make_controller(source, sink, backends=("solo",))
        with pytest.raises(ValueError):
            controller.remove_backend("solo")


class TestReconcile:
    def test_queries_configured_window_and_percentile(self, source, sink):
        controller = make_controller(source, sink, percentile=0.98)
        controller.reconcile(5.0)
        (_names, now, window, percentile) = source.calls[0]
        assert now == 5.0
        assert window == 10.0
        assert percentile == 0.98

    def test_pushes_integer_weights(self, source, sink):
        source.samples = {
            "a": MetricSample(0.05, 1.0, 100.0, 1.0),
            "b": MetricSample(0.50, 1.0, 100.0, 1.0),
        }
        controller = make_controller(source, sink)
        controller.reconcile(5.0)
        _now, weights = sink.writes[-1]
        assert all(isinstance(weight, int) for weight in weights.values())
        assert all(weight >= 1 for weight in weights.values())

    def test_faster_backend_gets_higher_weight(self, source, sink):
        source.samples = {
            "a": MetricSample(0.05, 1.0, 100.0, 1.0),
            "b": MetricSample(0.50, 1.0, 100.0, 1.0),
        }
        controller = make_controller(source, sink)
        for t in (5.0, 10.0, 15.0, 20.0, 25.0, 30.0):
            controller.reconcile(t)
        weights = controller.last_weights
        assert weights["a"] > weights["b"]

    def test_lower_success_rate_lowers_weight(self, source, sink):
        source.samples = {
            "a": MetricSample(0.10, 1.0, 100.0, 1.0),
            "b": MetricSample(0.10, 0.50, 100.0, 1.0),
        }
        controller = make_controller(source, sink)
        for t in (5.0, 10.0, 15.0, 20.0, 25.0, 30.0):
            controller.reconcile(t)
        weights = controller.last_weights
        assert weights["a"] > weights["b"]

    def test_missing_samples_trigger_decay_after_staleness(self, source, sink):
        source.samples = {
            "a": MetricSample(0.9, 1.0, 100.0, 1.0),
            "b": MetricSample(0.9, 1.0, 100.0, 1.0),
        }
        controller = make_controller(source, sink)
        controller.reconcile(5.0)
        latency_after_sample = controller.backends["a"].latency.value
        # Backend goes dark: no samples, beyond the 10 s staleness window.
        source.samples = {}
        controller.reconcile(20.0)
        latency_after_decay = controller.backends["a"].latency.value
        # Decay pulls back toward the 5 s default (i.e. upward from 0.9).
        assert latency_after_decay > latency_after_sample

    def test_rate_control_disabled_leaves_raw_weights(self, source, sink):
        source.samples = {
            "a": MetricSample(0.05, 1.0, 200.0, 1.0),
            "b": MetricSample(0.50, 1.0, 200.0, 1.0),
        }
        controller = make_controller(source, sink,
                                     rate_control_enabled=False)
        controller.reconcile(5.0)
        assert controller.last_relative_change == 0.0
        raw = controller.last_raw_weights
        pushed = controller.last_weights
        for name in raw:
            assert pushed[name] == max(int(round(raw[name])), 1)

    def test_rps_surge_flattens_weights(self, source, sink):
        low = {
            "a": MetricSample(0.05, 1.0, 50.0, 1.0),
            "b": MetricSample(0.50, 1.0, 50.0, 1.0),
        }
        surge = {
            "a": MetricSample(0.05, 1.0, 500.0, 1.0),
            "b": MetricSample(0.50, 1.0, 500.0, 1.0),
        }
        source.samples = low
        controller = make_controller(source, sink)
        for t in range(1, 30):
            controller.reconcile(float(t * 5))
        steady = dict(controller.last_weights)
        source.samples = surge
        controller.reconcile(150.0)
        surged = controller.last_weights
        assert controller.last_relative_change > 0
        steady_ratio = steady["a"] / steady["b"]
        surged_ratio = surged["a"] / surged["b"]
        assert surged_ratio < steady_ratio

    def test_reconcile_count_increments(self, source, sink):
        controller = make_controller(source, sink)
        controller.reconcile(5.0)
        controller.reconcile(10.0)
        assert controller.reconcile_count == 2


class TestRunLoop:
    def test_run_reconciles_on_interval(self, sim, source, sink):
        source.samples = {
            "a": MetricSample(0.05, 1.0, 100.0, 1.0),
            "b": MetricSample(0.10, 1.0, 100.0, 1.0),
        }
        controller = make_controller(source, sink)
        process = sim.spawn(controller.run(sim))
        sim.run(until=26.0)
        assert controller.reconcile_count == 5  # t = 5, 10, 15, 20, 25
        process.interrupt()
        sim.run()
        assert not process.is_alive
