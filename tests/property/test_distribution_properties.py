"""Statistical properties of the weighted-pick machinery.

TrafficSplit proportionality is the contract the whole system rests on
("a backend with twice the weight receives twice as much traffic"), so it
gets a direct statistical check across random weight vectors.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh.traffic_split import TrafficSplit
from repro.sim.engine import Simulator
from repro.workloads.profiles import PiecewiseSeries


class TestTrafficSplitProportionality:
    @given(st.lists(st.integers(min_value=1, max_value=50),
                    min_size=2, max_size=6),
           st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_pick_frequencies_match_weight_ratios(self, weights, seed):
        sim = Simulator()
        names = [f"b{i}" for i in range(len(weights))]
        split = TrafficSplit(sim, "svc", names, propagation_delay_s=0.0)
        split.set_weights(dict(zip(names, weights)), now=0.0)
        rng = random.Random(seed)
        draws = 4000
        counts = {name: 0 for name in names}
        for _ in range(draws):
            counts[split.pick(rng)] += 1
        total_weight = sum(weights)
        for name, weight in zip(names, weights):
            expected = weight / total_weight
            observed = counts[name] / draws
            # Binomial std-dev at n=4000 is < 0.008; allow 5 sigma.
            assert abs(observed - expected) < 0.04, (name, weights)

    @given(st.lists(st.integers(min_value=0, max_value=10),
                    min_size=2, max_size=5).filter(lambda w: sum(w) > 0),
           st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_zero_weight_backends_never_picked(self, weights, seed):
        sim = Simulator()
        names = [f"b{i}" for i in range(len(weights))]
        split = TrafficSplit(sim, "svc", names, propagation_delay_s=0.0)
        split.set_weights(dict(zip(names, weights)), now=0.0)
        rng = random.Random(seed)
        zero_names = {n for n, w in zip(names, weights) if w == 0}
        for _ in range(500):
            assert split.pick(rng) not in zero_names


class TestPiecewisePeriodicity:
    @given(st.lists(st.tuples(st.floats(min_value=0.0, max_value=99.0),
                              st.floats(min_value=-1e3, max_value=1e3)),
                    min_size=2, max_size=20,
                    unique_by=lambda p: round(p[0], 6)),
           st.floats(min_value=0.0, max_value=1e4))
    def test_periodic_series_repeats(self, points, when):
        import math

        series = PiecewiseSeries(points, period_s=100.0)
        base = series.value_at(when)
        # Float modulo introduces last-ulp differences at large offsets,
        # and interpolation amplifies that time error by the segment
        # slope — near-vertical segments (points ~1e-6 apart spanning
        # ~1e3) legitimately shift the value by slope * ulp noise.
        ordered = sorted(points)
        max_slope = max(
            (abs(b[1] - a[1]) / (b[0] - a[0])
             for a, b in zip(ordered, ordered[1:]) if b[0] > a[0]),
            default=0.0)
        for offset in (100.0, 300.0):
            tol = 1e-9 + max_slope * 8 * math.ulp(when + offset)
            assert math.isclose(base, series.value_at(when + offset),
                                rel_tol=1e-9, abs_tol=tol)

    @given(st.lists(st.tuples(st.floats(min_value=0.0, max_value=99.0),
                              st.floats(min_value=-1e3, max_value=1e3)),
                    min_size=1, max_size=20,
                    unique_by=lambda p: round(p[0], 6)))
    def test_control_points_are_reproduced(self, points):
        series = PiecewiseSeries(points)
        for t, v in points:
            assert series.value_at(t) == v
