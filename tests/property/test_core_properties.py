"""Property-based tests (hypothesis) for the core algorithm invariants."""

import math

from hypothesis import assume, given
from hypothesis import strategies as st

from repro.core.ewma import Ewma, PeakEwma, half_life_to_beta
from repro.core.rate_control import (
    adjust_weight,
    apply_rate_control,
    relative_change,
)
from repro.core.weighting import (
    BackendSnapshot,
    WeightingConfig,
    backend_weight,
    compute_weights,
    estimate_latency,
)

finite = st.floats(allow_nan=False, allow_infinity=False)
latencies = st.floats(min_value=1e-6, max_value=1e4)
rates = st.floats(min_value=0.0, max_value=1.0)
rps_values = st.floats(min_value=0.0, max_value=1e6)
weights = st.floats(min_value=1.0, max_value=1e9)
changes = st.floats(min_value=-1e3, max_value=1e3)
times = st.floats(min_value=0.0, max_value=1e6)
samples = st.floats(min_value=0.0, max_value=1e6)


class TestEwmaProperties:
    @given(st.lists(st.tuples(samples, st.floats(min_value=1e-3,
                                                 max_value=100.0)),
                    min_size=1, max_size=50),
           st.floats(min_value=0.1, max_value=1e4))
    def test_value_bounded_by_observed_extremes(self, observations, default):
        """The EWMA stays within [min, max] of {default} U samples."""
        ewma = Ewma(default=default, beta=half_life_to_beta(5.0))
        seen = [default]
        now = 0.0
        for sample, gap in observations:
            now += gap
            ewma.observe(sample, now)
            seen.append(sample)
            assert min(seen) - 1e-9 <= ewma.value <= max(seen) + 1e-9

    @given(st.lists(st.tuples(samples, st.floats(min_value=1e-3,
                                                 max_value=100.0)),
                    min_size=1, max_size=50))
    def test_peak_ewma_dominates_plain_ewma(self, observations):
        """PeakEWMA is never below the plain EWMA on the same stream."""
        beta = half_life_to_beta(5.0)
        plain = Ewma(default=0.0, beta=beta)
        peak = PeakEwma(default=0.0, beta=beta)
        now = 0.0
        for sample, gap in observations:
            now += gap
            plain.observe(sample, now)
            peak.observe(sample, now)
            assert peak.value >= plain.value - 1e-9

    @given(samples, st.floats(min_value=1e-3, max_value=1e3),
           st.floats(min_value=0.1, max_value=1e3))
    def test_blend_is_convex_combination(self, sample, gap, default):
        ewma = Ewma(default=default, beta=half_life_to_beta(5.0))
        ewma.observe(sample, gap)
        low, high = min(sample, default), max(sample, default)
        assert low - 1e-9 <= ewma.value <= high + 1e-9


class TestWeightingProperties:
    @given(latencies, latencies, rates, rps_values,
           st.floats(min_value=0.0, max_value=1e4))
    def test_weight_anti_monotone_in_latency(self, lat_a, lat_b, success,
                                             rps, inflight):
        """Strictly higher latency never yields a higher weight."""
        assume(abs(lat_a - lat_b) > 1e-9)
        config = WeightingConfig(min_weight=0.0)
        slow, fast = max(lat_a, lat_b), min(lat_a, lat_b)
        w_fast = backend_weight(
            BackendSnapshot("f", fast, success, rps, inflight), config)
        w_slow = backend_weight(
            BackendSnapshot("s", slow, success, rps, inflight), config)
        assert w_fast >= w_slow

    @given(latencies,
           st.floats(min_value=1e-6, max_value=1.0),
           st.floats(min_value=1e-6, max_value=1.0),
           rps_values)
    def test_weight_monotone_in_positive_success_rate(self, latency, rate_a,
                                                      rate_b, rps):
        """For R_s > 0, a higher success rate never lowers the weight.

        R_s = 0 is deliberately excluded: Algorithm 1 (lines 10-11) falls
        back to the raw latency there to avoid dividing by zero, which
        creates a documented discontinuity — see
        ``test_zero_success_rate_discontinuity``.
        """
        config = WeightingConfig(min_weight=0.0)
        low, high = min(rate_a, rate_b), max(rate_a, rate_b)
        w_high = backend_weight(
            BackendSnapshot("h", latency, high, rps, 0.0), config)
        w_low = backend_weight(
            BackendSnapshot("l", latency, low, rps, 0.0), config)
        assert w_high >= w_low - 1e-12

    def test_zero_success_rate_discontinuity(self):
        """Algorithm 1's division-by-zero fallback is non-monotone.

        A backend with success rate exactly 0 is weighted by its raw
        latency (no retry penalty), so it can outrank a backend with a
        small positive success rate. The paper relies on the weight floor
        plus orchestrator health checks to handle truly dead backends.
        """
        config = WeightingConfig(min_weight=0.0)
        dead = backend_weight(
            BackendSnapshot("dead", 1.0, 0.0, 100.0, 0.0), config)
        barely_alive = backend_weight(
            BackendSnapshot("barely", 1.0, 0.5, 100.0, 0.0), config)
        assert dead > barely_alive

    @given(st.lists(st.tuples(latencies, rates,
                              st.floats(min_value=0.1, max_value=1e4),
                              st.floats(min_value=0.0, max_value=1e4)),
                    min_size=1, max_size=10))
    def test_weights_positive_finite_and_floored(self, rows):
        snapshots = [
            BackendSnapshot(f"b{i}", lat, sr, rps, infl)
            for i, (lat, sr, rps, infl) in enumerate(rows)
        ]
        config = WeightingConfig()
        out = compute_weights(snapshots, config)
        for weight in out.values():
            assert math.isfinite(weight)
            assert weight >= config.min_weight

    @given(latencies, rates, st.floats(min_value=0.0, max_value=100.0))
    def test_estimate_latency_at_least_raw(self, latency, success, penalty):
        assert estimate_latency(latency, success, penalty) >= latency - 1e-12


class TestRateControlProperties:
    @given(st.dictionaries(st.text(min_size=1, max_size=8), weights,
                           min_size=1, max_size=10),
           rps_values, rps_values)
    def test_outputs_finite_and_floored(self, weight_map, ewma, last):
        out = apply_rate_control(weight_map, ewma, last, min_weight=1.0)
        assert set(out) == set(weight_map)
        for value in out.values():
            assert math.isfinite(value)
            assert value >= 1.0

    @given(weights, weights, st.floats(min_value=1e-6, max_value=1e3))
    def test_increase_contracts_toward_mean(self, weight, mean, change):
        """For c > 0 the output lies between the input and the mean."""
        adjusted = adjust_weight(weight, mean, change)
        low, high = min(weight, mean), max(weight, mean)
        assert low - 1e-6 <= adjusted <= high + 1e-6

    @given(weights, weights, st.floats(min_value=-1e3, max_value=-1e-6))
    def test_decrease_expands_away_from_mean(self, weight, mean, change):
        adjusted = adjust_weight(weight, mean, change)
        if weight <= mean:
            assert adjusted <= weight + 1e-9
            assert adjusted >= 0.0
        else:
            assert weight - 1e-9 <= adjusted <= 2 * weight - mean + 1e-6

    @given(st.dictionaries(st.text(min_size=1, max_size=8), weights,
                           min_size=2, max_size=10),
           st.floats(min_value=1.0, max_value=1e5),
           st.floats(min_value=1.0, max_value=1e5))
    def test_surge_preserves_mean(self, weight_map, ewma, extra):
        last = ewma + extra  # guaranteed increase
        out = apply_rate_control(weight_map, ewma, last, min_weight=0.0)
        mean_in = sum(weight_map.values()) / len(weight_map)
        mean_out = sum(out.values()) / len(out)
        assert math.isclose(mean_in, mean_out, rel_tol=1e-9)

    @given(rps_values, rps_values)
    def test_relative_change_sign(self, ewma, last):
        change = relative_change(ewma, last)
        if last > ewma:
            assert change > 0
        elif last < ewma and ewma > 0:
            assert change < 0
        elif last == ewma:
            assert change == 0.0
