"""Property-based tests for substrate data structures."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.percentiles import exact_percentile
from repro.sim.engine import Simulator
from repro.sim.resources import Server
from repro.telemetry.histogram import LatencyHistogram
from repro.telemetry.timeseries import SampleSeries
from repro.workloads.profiles import PiecewiseSeries

latencies = st.floats(min_value=0.0, max_value=120.0)


class TestHistogramProperties:
    @given(st.lists(latencies, min_size=1, max_size=300))
    def test_count_sum_and_monotone_buckets(self, values):
        histogram = LatencyHistogram()
        for value in values:
            histogram.observe(value)
        assert histogram.count == len(values)
        assert math.isclose(histogram.sum, sum(values), rel_tol=1e-9,
                            abs_tol=1e-9)
        cumulative = histogram.cumulative_counts()
        assert list(cumulative) == sorted(cumulative)
        assert cumulative[-1] == len(values)

    @given(st.lists(latencies, min_size=1, max_size=300),
           st.floats(min_value=0.01, max_value=0.99))
    def test_quantile_monotone_in_q(self, values, q):
        histogram = LatencyHistogram()
        for value in values:
            histogram.observe(value)
        lower = histogram.quantile(q * 0.5)
        upper = histogram.quantile(min(q * 1.5, 1.0))
        assert lower <= upper + 1e-12

    @given(st.lists(st.floats(min_value=1e-4, max_value=50.0),
                    min_size=20, max_size=300),
           st.floats(min_value=0.05, max_value=0.99))
    def test_estimate_shares_bucket_with_rank_order_statistic(self, values,
                                                              q):
        """The interpolated estimate lies in the bucket holding the
        ceil(q*n)-th order statistic — Prometheus's rank convention.

        (Comparing against the *interpolated* exact percentile is too
        strict: its rank convention, q*(n-1), can differ by one sample
        and therefore one whole bucket at boundaries.)
        """
        import bisect
        import math

        histogram = LatencyHistogram()
        for value in values:
            histogram.observe(value)
        estimate = histogram.quantile(q)
        rank_value = sorted(values)[
            min(math.ceil(q * len(values)) - 1, len(values) - 1)]
        bounds = histogram.bounds
        bucket = bisect.bisect_left(bounds, rank_value)
        if bucket >= len(bounds):
            # Overflow bucket: the estimate clamps to the top bound.
            assert estimate == bounds[-1]
        else:
            lower = bounds[bucket - 1] if bucket > 0 else 0.0
            assert lower <= estimate <= bounds[bucket] + 1e-12


class TestPercentileProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6),
                    min_size=1, max_size=200),
           st.floats(min_value=0.0, max_value=1.0))
    def test_percentile_within_sample_range(self, values, q):
        result = exact_percentile(values, q)
        assert min(values) - 1e-9 <= result <= max(values) + 1e-9

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_subnormal=False),
                    min_size=2, max_size=200))
    def test_percentile_monotone(self, values):
        # Subnormals are excluded: interpolating between two 5e-324
        # values underflows to 0.0, a one-ulp artifact of IEEE denormal
        # arithmetic rather than a property violation.
        results = [exact_percentile(values, q)
                   for q in (0.0, 0.25, 0.5, 0.75, 1.0)]
        assert results == sorted(results)


class TestSeriesProperties:
    @given(st.lists(st.tuples(st.floats(min_value=0.0, max_value=1e4),
                              st.floats(min_value=-1e6, max_value=1e6)),
                    min_size=1, max_size=50,
                    unique_by=lambda p: p[0]),
           st.floats(min_value=0.0, max_value=1e4))
    def test_piecewise_value_within_control_range(self, points, when):
        series = PiecewiseSeries(points)
        value = series.value_at(when)
        assert series.min_value() - 1e-6 <= value <= series.max_value() + 1e-6

    @given(st.lists(st.tuples(st.floats(min_value=0.0, max_value=1e3),
                              st.floats(min_value=0.0, max_value=1e6)),
                    min_size=1, max_size=50))
    def test_sample_series_window_sorted(self, samples):
        series = SampleSeries(max_age_s=1e9)
        for when, value in sorted(samples, key=lambda s: s[0]):
            series.append(when, value)
        window = series.window(0.0, 1e3)
        times = [t for t, _v in window]
        assert times == sorted(times)


class TestServerProperties:
    @given(st.integers(min_value=1, max_value=8),
           st.lists(st.floats(min_value=0.01, max_value=2.0),
                    min_size=1, max_size=30))
    @settings(max_examples=25, deadline=None)
    def test_conservation_and_capacity(self, capacity, hold_times):
        """Every request completes; concurrency never exceeds capacity."""
        sim = Simulator()
        server = Server(sim, capacity)
        done = []
        peak = {"value": 0}

        def job(sim, hold):
            yield server.acquire()
            try:
                peak["value"] = max(peak["value"], server.in_use)
                yield sim.timeout(hold)
                done.append(hold)
            finally:
                server.release()

        for hold in hold_times:
            sim.spawn(job(sim, hold))
        sim.run()
        assert len(done) == len(hold_times)
        assert peak["value"] <= capacity
        assert server.in_use == 0
        assert server.queue_len == 0
