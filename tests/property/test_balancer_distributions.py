"""Distributional contracts of the balancer zoo.

Two families of checks over the newly implemented algorithms:

* **chi-square pick-frequency convergence** — each balancer, frozen on a
  fixed synthetic latency field, must draw backends with the empirical
  frequencies its update rule prescribes. The goodness-of-fit test runs
  at alpha = 0.001 on seeded RNGs, so it is deterministic in CI and
  still sharp enough to catch an inverted comparison or a mis-normalised
  split.
* **engine equivalence** — every new balancer must produce an *identical*
  benchmark run (same digest over every request record) under the
  pooled-callback fast engine and the process-per-request reference
  engine, like the original six already do.
"""

from __future__ import annotations

import pytest

from repro.balancers.estimate import LoadCostModel
from repro.balancers.ewma_latency import EwmaLatencyBalancer
from repro.balancers.gradient import GradientConfig, GradientDescentBalancer
from repro.balancers.knapsack import KnapsackLbBalancer
from repro.balancers.least_outstanding import LeastOutstandingBalancer
from repro.balancers.service_rate import ServiceRateAwareBalancer
from repro.bench.coordinator import run_scenario_benchmark
from repro.bench.digest import digest_result
from repro.sim.engine import Simulator

# Chi-square critical values at alpha = 0.001 by degrees of freedom.
CHI2_CRITICAL = {1: 10.83, 2: 13.82, 3: 16.27, 4: 18.47, 5: 20.52}

DRAWS = 6000

NEW_ALGORITHMS = (
    "least-outstanding", "ewma", "knapsack", "gradient", "service-rate")


def assert_frequencies(counts: dict[str, int],
                       expected: dict[str, float]) -> None:
    """Chi-square goodness-of-fit of observed counts vs. a target split."""
    total = sum(counts.values())
    assert total > 0
    stat = 0.0
    for name, probability in expected.items():
        expected_count = total * probability
        assert expected_count > 5, (
            f"cell {name} too thin for chi-square: {expected_count}")
        stat += (counts[name] - expected_count) ** 2 / expected_count
    critical = CHI2_CRITICAL[len(expected) - 1]
    assert stat < critical, (stat, critical, counts, expected)


def draw_counts(balancer, rng, draws: int = DRAWS,
                now: float = 0.0) -> dict[str, int]:
    counts: dict[str, int] = {}
    for _ in range(draws):
        name = balancer.pick(rng, now)
        counts[name] = counts.get(name, 0) + 1
    return counts


class FakeSource:
    def __init__(self, samples):
        self.samples = samples

    def collect(self, backend_names, now, window_s, percentile):
        return {name: self.samples.get(name) for name in backend_names}


class Sample:
    def __init__(self, rps=10.0, mean_latency_s=None, latency_s=None,
                 inflight=0.0):
        self.rps = rps
        self.mean_latency_s = mean_latency_s
        self.latency_s = latency_s
        self.inflight = inflight
        self.success_rate = 1.0


class TestEwmaFrequencies:
    def test_epsilon_greedy_split(self, rng):
        """Picks converge to (1-eps) + eps/n on the argmin, eps/n elsewhere."""
        names = ["b0", "b1", "b2"]
        balancer = EwmaLatencyBalancer(names, explore_prob=0.12)
        # Drive every EWMA close to its true latency before freezing.
        latencies = {"b0": 0.010, "b1": 0.050, "b2": 0.200}
        for step in range(60):
            for name in names:
                balancer.on_response(name, float(step), latencies[name], True)
        eps = balancer.explore_prob
        expected = {name: eps / len(names) for name in names}
        expected["b0"] += 1.0 - eps
        assert_frequencies(draw_counts(balancer, rng), expected)


class TestLeastOutstandingFrequencies:
    def test_uniform_over_tied_minimum(self, rng):
        """Ties at the minimum queue split uniformly; loaded never picked."""
        names = ["b0", "b1", "b2"]
        balancer = LeastOutstandingBalancer(names)
        for _ in range(5):
            balancer.on_request_sent("b2", 0.0)
        counts = draw_counts(balancer, rng)
        assert counts.get("b2", 0) == 0
        assert_frequencies(
            {name: counts.get(name, 0) for name in ("b0", "b1")},
            {"b0": 0.5, "b1": 0.5})


class TestGradientFrequencies:
    def test_converges_to_floored_optimum(self, rng):
        """A persistent 50x cost gap drives the split to the exploration
        floor, and the sampler reproduces the solved shares."""
        names = ["cheap", "costly"]
        config = GradientConfig(min_share=0.05)
        balancer = GradientDescentBalancer(names, config=config)
        costs = {"cheap": 0.010, "costly": 0.500}
        for step in range(30):
            for name in names:
                balancer.on_response(name, float(step), costs[name], True)
            balancer.update(float(step))
        assert balancer.shares["costly"] == pytest.approx(0.05)
        assert balancer.shares["cheap"] == pytest.approx(0.95)
        assert_frequencies(draw_counts(balancer, rng), dict(balancer.shares))


class TestKnapsackFrequencies:
    def test_split_matches_marginal_cost_solve(self, rng):
        """Equal bases, slopes 1:3 -> the greedy solve equalises marginal
        latency at a 3:1 unit split, and picks follow the pushed weights."""
        sim = Simulator()
        names = ["flat", "steep"]
        source = FakeSource({name: Sample(rps=50.0) for name in names})
        balancer = KnapsackLbBalancer(
            sim, "api", names, source, propagation_delay_s=0.0)
        slopes = {"flat": 0.001, "steep": 0.003}
        for name in names:
            model = balancer.controller.models[name]
            for load in (0.0, 40.0, 80.0):
                model.observe(load, 0.020 + slopes[name] * load)
        weights = balancer.controller.reconcile(now=0.0)
        total = sum(weights.values())
        expected = {name: weights[name] / total for name in names}
        assert expected["flat"] == pytest.approx(0.75, abs=0.02)
        assert_frequencies(draw_counts(balancer, rng), expected)


class TestServiceRateFrequencies:
    def test_split_proportional_to_service_rates(self, rng):
        """Constant service times 10 ms vs. 30 ms -> rates 3:1 -> shares
        0.75/0.25, reproduced by the sampled picks."""
        sim = Simulator()
        names = ["fast", "slow"]
        service_times = {"fast": 0.010, "slow": 0.030}
        source = FakeSource({
            name: Sample(rps=50.0, mean_latency_s=service_times[name])
            for name in names
        })
        balancer = ServiceRateAwareBalancer(
            sim, "api", names, source, propagation_delay_s=0.0)
        weights = balancer.controller.reconcile(now=0.0)
        total = sum(weights.values())
        expected = {name: weights[name] / total for name in names}
        assert expected["fast"] == pytest.approx(0.75, abs=0.02)
        assert_frequencies(draw_counts(balancer, rng), expected)


class TestModelFitProperty:
    def test_fit_interpolates_seen_range(self):
        """Within the observed load range the fitted curve stays between
        the smallest and largest observed costs (no wild extrapolation)."""
        model = LoadCostModel(0.1)
        points = [(10.0, 0.02), (50.0, 0.04), (90.0, 0.06)]
        for rps, cost in points:
            model.observe(rps, cost)
        for load in (10.0, 30.0, 60.0, 90.0):
            predicted = model.predict(load)
            assert 0.02 <= predicted <= 0.06, (load, predicted)


class TestEngineEquivalence:
    """Every zoo balancer is engine-agnostic: fast == process, exactly."""

    @pytest.mark.parametrize("algorithm", NEW_ALGORITHMS)
    def test_fast_matches_process(self, algorithm):
        runs = {
            engine: run_scenario_benchmark(
                "scenario-2", algorithm, duration_s=15.0, seed=3,
                engine=engine)
            for engine in ("fast", "process")
        }
        assert runs["fast"].records, "empty run proves nothing"
        assert (digest_result(runs["fast"])
                == digest_result(runs["process"])), algorithm
