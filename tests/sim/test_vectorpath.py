"""The numpy substrate of the vector engine, checked against CPython.

Every bank in :mod:`repro.sim.vectorpath` claims *bit-identity* with the
scalar code it replaces — not statistical agreement, exact float
equality over the shared MT19937 stream. These tests draw the same
streams both ways and compare with ``==``.

numpy itself is the optional ``[fleet]`` extra; when it is absent the
whole module is expected to fail fast with a ConfigError that names the
extra, and that path is tested here too (by blanking the module's
cached import, so the test runs on hosts *with* numpy as well).
"""

from __future__ import annotations

import math
import random

import pytest

from repro.errors import ConfigError
from repro.sim import vectorpath
from repro.sim.rng import NV_MAGICCONST
from repro.sim.vectorpath import (
    BufferedTelemetry,
    UniformBank,
    ZQueue,
    bankable_profile,
    numpy_bit_identical,
    sync_back,
    transplant_state,
    zqueue_service_time,
)
from repro.telemetry.metrics import BackendTelemetry
from repro.workloads.profiles import BackendProfile, PiecewiseSeries

# The bit-identity tests need numpy; TestNoNumpy below runs either way
# (on numpy hosts it blanks the cached import to simulate absence).
requires_numpy = pytest.mark.skipif(
    vectorpath._np is None, reason="numpy not installed ([fleet] extra)")


def _scalar_z(rng: random.Random) -> float:
    """The inlined Kinderman–Monahan loop, verbatim from BackendProfile."""
    while True:
        u1 = rng.random()
        u2 = 1.0 - rng.random()
        z = NV_MAGICCONST * (u1 - 0.5) / u2
        if z * z / 4.0 <= -math.log(u2):
            return z


def _profile(median=0.01, p99=0.05, failure=0.0) -> BackendProfile:
    return BackendProfile(
        median_latency_s=PiecewiseSeries([(0.0, median)]),
        p99_latency_s=PiecewiseSeries([(0.0, p99)]),
        failure_prob=PiecewiseSeries([(0.0, failure)]),
    )


@requires_numpy
class TestTransplant:
    def test_probe_passes_on_this_host(self):
        # The CI image's numpy must reproduce CPython uniforms exactly;
        # if this fails, every vector-engine equivalence test is void.
        assert numpy_bit_identical()

    def test_round_trip_continuity(self):
        reference = random.Random(99)
        twin = random.Random(99)
        state = transplant_state(twin)
        block = state.random_sample(1000).tolist()
        sync_back(twin, state)
        assert block == [reference.random() for _ in range(1000)]
        # The written-back state continues the stream seamlessly.
        assert [twin.random() for _ in range(10)] == \
            [reference.random() for _ in range(10)]


@requires_numpy
class TestUniformBank:
    def test_matches_serial_draws(self):
        reference = random.Random(7)
        bank = UniformBank(random.Random(7), block=64)
        assert [bank.next() for _ in range(500)] == \
            [reference.random() for _ in range(500)]

    def test_returns_plain_floats(self):
        bank = UniformBank(random.Random(1), block=8)
        assert type(bank.next()) is float

    def test_rejects_bad_block(self):
        with pytest.raises(ConfigError):
            UniformBank(random.Random(1), block=0)


@requires_numpy
class TestZQueue:
    @pytest.mark.parametrize("warmup", [0, 7, 512])
    def test_matches_scalar_rejection_loop(self, warmup):
        """Identical z sequence across the cold->banked boundary and
        across several adaptive block refills."""
        reference = random.Random(1234)
        zq = ZQueue(random.Random(1234), block=16, max_block=64,
                    warmup=warmup)
        banked = [zq.pop() for _ in range(800)]
        scalar = [_scalar_z(reference) for _ in range(800)]
        assert banked == scalar

    def test_release_syncs_stream_position(self):
        reference = random.Random(5)
        rng = random.Random(5)
        zq = ZQueue(rng, block=16, warmup=0)
        for _ in range(10):
            zq.pop()
        zq.release()
        # The Python rng now reflects every uniform the queue consumed —
        # whole blocks, including pre-drawn candidates not yet popped.
        # Advancing a twin one uniform at a time must land exactly on the
        # written-back state after a whole number of blocks (>= 16).
        consumed = 0
        while reference.getstate() != rng.getstate():
            reference.random()
            consumed += 1
            assert consumed < 10_000, "streams never re-converged"
        assert consumed >= 16 and consumed % 2 == 0

    def test_rejects_odd_block(self):
        with pytest.raises(ConfigError):
            ZQueue(random.Random(1), block=15)

    def test_service_time_matches_profile(self):
        profile = _profile()
        reference = random.Random(42)
        zq = ZQueue(random.Random(42), block=16, warmup=4)
        for now in (0.0, 1.5, 3.0, 97.25):
            for _ in range(50):
                assert zqueue_service_time(profile, zq, now) == \
                    profile.sample_service_time(reference, now)

    def test_degenerate_p99_skips_the_stream(self):
        # p99 <= median returns the median without popping; the stream
        # must stay aligned with the scalar twin that also skips.
        profile = _profile(median=0.02, p99=0.01)
        live = _profile()
        reference = random.Random(8)
        zq = ZQueue(random.Random(8), block=16, warmup=2)
        for _ in range(20):
            assert zqueue_service_time(profile, zq, 0.0) == 0.02
            assert zqueue_service_time(live, zq, 0.0) == \
                live.sample_service_time(reference, 0.0)


@requires_numpy
class TestBankable:
    def test_constant_zero_failure_is_bankable(self):
        assert bankable_profile(_profile(failure=0.0))

    def test_failure_prob_disqualifies(self):
        assert not bankable_profile(_profile(failure=0.1))
        varying = BackendProfile(
            median_latency_s=PiecewiseSeries([(0.0, 0.01)]),
            p99_latency_s=PiecewiseSeries([(0.0, 0.05)]),
            failure_prob=PiecewiseSeries([(0.0, 0.0), (10.0, 0.2)]),
        )
        assert not bankable_profile(varying)


@requires_numpy
class TestBufferedTelemetry:
    def test_flush_is_indistinguishable_from_per_event_updates(self):
        scalar = BackendTelemetry("svc/cluster-1")
        buffered = BufferedTelemetry(BackendTelemetry("svc/cluster-1"))
        rng = random.Random(3)
        events = [(rng.expovariate(20.0), rng.random() < 0.9)
                  for _ in range(500)]
        for latency, success in events:
            scalar.on_request_sent()
            scalar.on_response(latency, success)
            buffered.on_request_sent()
            buffered.on_response(latency, success)
        buffered.flush()
        base = buffered.base
        assert base.requests_total.value == scalar.requests_total.value
        assert base.failures_total.value == scalar.failures_total.value
        assert base.inflight.value == scalar.inflight.value
        for name in ("success_latency", "failure_latency"):
            folded = getattr(base, name)
            direct = getattr(scalar, name)
            assert folded.cumulative_counts() == direct.cumulative_counts()
            assert folded.count == direct.count
            # Sums are re-added sequentially in arrival order: bit-equal.
            assert folded.sum == direct.sum

    def test_flush_rejects_invalid_latency(self):
        from repro.errors import TelemetryError

        buffered = BufferedTelemetry(BackendTelemetry("svc/cluster-1"))
        buffered.on_request_sent()
        buffered.on_response(-1.0, True)
        with pytest.raises(TelemetryError):
            buffered.flush()

    def test_empty_flush_is_a_noop(self):
        buffered = BufferedTelemetry(BackendTelemetry("svc/cluster-1"))
        buffered.flush()
        assert buffered.base.requests_total.value == 0.0


class TestNoNumpy:
    """The [fleet] extra is optional: without numpy every vector entry
    point must raise a ConfigError naming the extra, not ImportError."""

    @pytest.fixture
    def no_numpy(self, monkeypatch):
        monkeypatch.setattr(vectorpath, "_np", None)
        monkeypatch.setattr(vectorpath, "_probe_result", None)

    def test_require_numpy_names_the_extra(self, no_numpy):
        with pytest.raises(ConfigError, match=r"\[fleet\]"):
            vectorpath.require_numpy()

    def test_vector_engine_refuses(self, no_numpy):
        from repro.bench.coordinator import run_scenario_benchmark

        with pytest.raises(ConfigError, match=r"\[fleet\]"):
            run_scenario_benchmark("scenario-1", "l3", duration_s=5.0,
                                   engine="vector")

    def test_shard_engine_refuses(self, no_numpy):
        from repro.sim.shard import run_sharded_benchmark
        from repro.workloads.fleet import FleetSpec, build_fleet_scenario

        scenario = build_fleet_scenario(
            FleetSpec(clusters=3, duration_s=30.0, total_rps=30.0,
                      replica_budget_per_cluster=1), seed=1)
        with pytest.raises(ConfigError, match=r"\[fleet\]"):
            run_sharded_benchmark(scenario, "l3", duration_s=10.0)
