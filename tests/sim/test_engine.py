"""Tests for the simulation event loop."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


class TestClock:
    def test_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_custom_start_time(self):
        assert Simulator(start_time=42.5).now == 42.5

    def test_run_until_advances_clock_even_without_events(self, sim):
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_run_until_past_raises(self, sim):
        sim.run(until=5.0)
        with pytest.raises(SimulationError):
            sim.run(until=1.0)

    def test_peek_empty_agenda_is_inf(self, sim):
        assert sim.peek() == float("inf")

    def test_peek_returns_next_event_time(self, sim):
        sim.timeout(3.0)
        sim.timeout(1.0)
        assert sim.peek() == 1.0


class TestCallbacks:
    def test_call_after_runs_at_right_time(self, sim):
        fired = []
        sim.call_after(2.5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [2.5]

    def test_call_at_runs_at_absolute_time(self, sim):
        fired = []
        sim.call_at(7.0, fired.append, "x")
        sim.run()
        assert fired == ["x"]
        assert sim.now == 7.0

    def test_call_at_in_past_raises(self, sim):
        sim.run(until=5.0)
        with pytest.raises(SimulationError):
            sim.call_at(1.0, lambda: None)

    def test_callbacks_fire_in_time_order(self, sim):
        order = []
        sim.call_after(3.0, order.append, "c")
        sim.call_after(1.0, order.append, "a")
        sim.call_after(2.0, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_broken_by_insertion_order(self, sim):
        order = []
        sim.call_after(1.0, order.append, 1)
        sim.call_after(1.0, order.append, 2)
        sim.call_after(1.0, order.append, 3)
        sim.run()
        assert order == [1, 2, 3]

    def test_callback_can_schedule_more_work(self, sim):
        log = []

        def first():
            log.append(("first", sim.now))
            sim.call_after(1.0, second)

        def second():
            log.append(("second", sim.now))

        sim.call_after(1.0, first)
        sim.run()
        assert log == [("first", 1.0), ("second", 2.0)]


class TestRun:
    def test_run_until_does_not_process_later_events(self, sim):
        fired = []
        sim.call_after(1.0, fired.append, "early")
        sim.call_after(10.0, fired.append, "late")
        sim.run(until=5.0)
        assert fired == ["early"]
        assert sim.now == 5.0
        sim.run()
        assert fired == ["early", "late"]

    def test_run_until_boundary_event_is_processed(self, sim):
        fired = []
        sim.call_after(5.0, fired.append, "edge")
        sim.run(until=5.0)
        assert fired == ["edge"]

    def test_step_on_empty_agenda_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.step()

    def test_run_returns_final_time(self, sim):
        sim.call_after(3.0, lambda: None)
        assert sim.run() == 3.0

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.call_after(-1.0, lambda: None)


class TestErrorPropagation:
    def test_unwaited_process_failure_aborts_run(self, sim):
        def bad(sim):
            yield sim.timeout(1.0)
            raise ValueError("boom")

        sim.spawn(bad(sim))
        with pytest.raises(SimulationError):
            sim.run()

    def test_waited_process_failure_reaches_waiter(self, sim):
        outcome = []

        def bad(sim):
            yield sim.timeout(1.0)
            raise ValueError("boom")

        def guard(sim):
            try:
                yield sim.spawn(bad(sim))
            except ValueError as error:
                outcome.append(str(error))

        sim.spawn(guard(sim))
        sim.run()
        assert outcome == ["boom"]

    def test_defused_failure_does_not_abort(self, sim):
        def bad(sim):
            yield sim.timeout(1.0)
            raise ValueError("boom")

        process = sim.spawn(bad(sim))
        process.defused = True
        sim.run()
        assert not process.ok
