"""Tests for Server and Store resources."""

import pytest

from repro.errors import SimulationError
from repro.sim.resources import Server, Store


def occupy(sim, server, hold, log, tag):
    yield server.acquire()
    try:
        yield sim.timeout(hold)
        log.append((sim.now, tag))
    finally:
        server.release()


class TestServer:
    def test_capacity_must_be_positive(self, sim):
        with pytest.raises(SimulationError):
            Server(sim, 0)

    def test_serves_up_to_capacity_concurrently(self, sim):
        server = Server(sim, 2)
        log = []
        for i in range(2):
            sim.spawn(occupy(sim, server, 1.0, log, i))
        sim.run()
        assert [t for t, _ in log] == [1.0, 1.0]

    def test_excess_requests_queue_fifo(self, sim):
        server = Server(sim, 1)
        log = []
        for i in range(3):
            sim.spawn(occupy(sim, server, 1.0, log, i))
        sim.run()
        assert log == [(1.0, 0), (2.0, 1), (3.0, 2)]

    def test_in_use_and_queue_len_track_state(self, sim):
        server = Server(sim, 1)
        for i in range(3):
            sim.spawn(occupy(sim, server, 1.0, [], i))
        sim.run(until=0.5)
        assert server.in_use == 1
        assert server.queue_len == 2
        sim.run()
        assert server.in_use == 0
        assert server.queue_len == 0

    def test_release_without_acquire_raises(self, sim):
        server = Server(sim, 1)
        with pytest.raises(SimulationError):
            server.release()

    def test_release_hands_slot_to_waiter_without_gap(self, sim):
        server = Server(sim, 1)
        log = []
        sim.spawn(occupy(sim, server, 2.0, log, "first"))
        sim.spawn(occupy(sim, server, 1.0, log, "second"))
        sim.run()
        assert log == [(2.0, "first"), (3.0, "second")]

    def test_cancel_removes_queued_acquisition(self, sim):
        server = Server(sim, 1)
        sim.spawn(occupy(sim, server, 5.0, [], "holder"))
        sim.run(until=0.1)
        queued = server.acquire()
        assert server.queue_len == 1
        assert server.cancel(queued)
        assert server.queue_len == 0

    def test_cancel_unknown_event_returns_false(self, sim):
        server = Server(sim, 1)
        assert not server.cancel(sim.event())


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        store.put("item")
        got = []
        store.get().add_callback(lambda e: got.append(e.value))
        sim.run()
        assert got == ["item"]

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        got = []

        def consumer(sim):
            value = yield store.get()
            got.append((sim.now, value))

        sim.spawn(consumer(sim))
        sim.call_after(2.0, store.put, "late")
        sim.run()
        assert got == [(2.0, "late")]

    def test_fifo_ordering(self, sim):
        store = Store(sim)
        for item in ("a", "b", "c"):
            store.put(item)
        got = []

        def consumer(sim):
            for _ in range(3):
                got.append((yield store.get()))

        sim.spawn(consumer(sim))
        sim.run()
        assert got == ["a", "b", "c"]

    def test_len_tracks_backlog(self, sim):
        store = Store(sim)
        store.put(1)
        store.put(2)
        assert len(store) == 2
