"""The pooled-event free list: reuse, state hygiene, and the bound.

These pin the reuse contract documented on
:class:`repro.sim.events.PooledCallback`: a recycled event must be
indistinguishable from a fresh one (no stale function, value, exception
or callback leaking into the next occupant), chains of hops must reuse
one object end to end, and the free list must never grow past
``max_free``.
"""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.events import _PENDING, EventPool, PooledCallback


class TestReuse:
    def test_schedule_fires_fn(self, sim):
        pool = EventPool(sim)
        fired = []
        pool.schedule(1.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [1.0]

    def test_chain_reuses_one_object(self, sim):
        """A hop chain recycles-before-fire, so each hop's schedule() pops
        the very object that just fired."""
        pool = EventPool(sim)
        seen = []

        def hop(remaining):
            if remaining:
                event = pool.schedule(0.5, lambda: hop(remaining - 1))
                seen.append(id(event))

        hop(5)
        sim.run()
        assert len(set(seen)) == 1
        assert pool.created == 1
        assert pool.reused == 4

    def test_counters_track_acquisitions(self, sim):
        pool = EventPool(sim)
        pool.schedule(0.0, lambda: None)
        pool.schedule(0.0, lambda: None)  # first is still on the agenda
        assert pool.created == 2
        sim.run()
        pool.schedule(0.0, lambda: None)
        assert pool.created == 2
        assert pool.reused == 1

    def test_gate_event_fired_via_succeed(self, sim):
        pool = EventPool(sim)
        fired = []
        gate = pool.gate(lambda: fired.append(sim.now))
        sim.timeout(2.0).add_callback(lambda _: gate.succeed())
        sim.run()
        assert fired == [2.0]
        # The gate recycled itself on firing and is reusable.
        assert pool.acquire(lambda: None) is gate

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            EventPool(sim).schedule(-0.1, lambda: None)


class TestNoStaleState:
    def test_recycled_event_is_pristine(self, sim):
        pool = EventPool(sim)
        event = pool.schedule(1.0, lambda: None)
        sim.run()
        assert len(pool) == 1
        assert event.fn is None
        assert event._value is _PENDING
        assert not event.triggered

    def test_recycle_clears_every_field(self, sim):
        pool = EventPool(sim)
        event = PooledCallback(sim, pool)
        event.fn = lambda: None
        event._value = None
        event._exception = ValueError("stale")
        event._processed = True
        event._delivered = True
        event.defused = True
        event.callbacks.append(lambda _: None)
        pool.recycle(event)
        assert event.fn is None
        assert not event.triggered
        assert event._exception is None
        assert not event._processed
        assert not event._delivered
        assert not event.defused
        assert event.callbacks == []

    def test_next_occupant_sees_only_its_own_fn(self, sim):
        pool = EventPool(sim)
        calls = []
        pool.schedule(1.0, lambda: calls.append("first"))
        sim.run()
        pool.schedule(1.0, lambda: calls.append("second"))
        sim.run()
        assert calls == ["first", "second"]

    def test_recycled_event_can_succeed_again(self, sim):
        """succeed() checks the trigger sentinel; recycling must reset it
        or reuse would raise 'event already triggered'."""
        pool = EventPool(sim)
        fired = []
        first = pool.gate(lambda: fired.append("a"))
        first.succeed()
        sim.run()
        second = pool.gate(lambda: fired.append("b"))
        assert second is first
        second.succeed()
        sim.run()
        assert fired == ["a", "b"]


class TestBound:
    def test_free_list_never_exceeds_max_free(self, sim):
        pool = EventPool(sim, max_free=2)
        for _ in range(6):
            pool.schedule(0.0, lambda: None)
        sim.run()
        assert len(pool) <= 2

    def test_overflow_recycle_drops_event(self, sim):
        pool = EventPool(sim, max_free=1)
        kept = PooledCallback(sim, pool)
        dropped = PooledCallback(sim, pool)
        pool.recycle(kept)
        pool.recycle(dropped)
        assert len(pool) == 1
        assert pool.acquire(lambda: None) is kept

    def test_zero_bound_pool_always_allocates(self, sim):
        pool = EventPool(sim, max_free=0)
        for _ in range(3):
            pool.schedule(0.0, lambda: None)
            sim.run()
        assert len(pool) == 0
        assert pool.created == 3
        assert pool.reused == 0

    def test_negative_bound_rejected(self, sim):
        with pytest.raises(SimulationError):
            EventPool(sim, max_free=-1)
