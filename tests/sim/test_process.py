"""Tests for generator-based processes."""

import pytest

from repro.errors import Interrupted, SimulationError
from repro.sim.engine import Simulator


def ticker(sim, log, period, count):
    for _ in range(count):
        yield sim.timeout(period)
        log.append(sim.now)
    return len(log)


class TestLifecycle:
    def test_runs_and_returns_value(self, sim):
        log = []
        process = sim.spawn(ticker(sim, log, 1.0, 3))
        sim.run()
        assert log == [1.0, 2.0, 3.0]
        assert process.value == 3

    def test_is_alive_until_done(self, sim):
        process = sim.spawn(ticker(sim, [], 1.0, 2))
        assert process.is_alive
        sim.run()
        assert not process.is_alive

    def test_spawn_requires_generator(self, sim):
        with pytest.raises(SimulationError):
            sim.spawn(lambda: None)

    def test_immediate_return(self, sim):
        def instant(sim):
            return 99
            yield  # pragma: no cover - makes this a generator

        process = sim.spawn(instant(sim))
        sim.run()
        assert process.value == 99

    def test_name_defaults_and_overrides(self, sim):
        named = sim.spawn(ticker(sim, [], 1.0, 1), name="my-proc")
        assert named.name == "my-proc"


class TestWaiting:
    def test_process_waits_on_process(self, sim):
        def child(sim):
            yield sim.timeout(5.0)
            return "child-result"

        def parent(sim):
            result = yield sim.spawn(child(sim))
            return f"got:{result}"

        process = sim.spawn(parent(sim))
        sim.run()
        assert process.value == "got:child-result"

    def test_waiting_on_already_finished_process(self, sim):
        def child(sim):
            yield sim.timeout(1.0)
            return 7

        finished = sim.spawn(child(sim))
        sim.run()

        def late_waiter(sim):
            value = yield finished
            return value * 2

        waiter = sim.spawn(late_waiter(sim))
        sim.run()
        assert waiter.value == 14

    def test_yielding_non_event_fails_the_process(self, sim):
        def confused(sim):
            yield 42

        process = sim.spawn(confused(sim))
        process.defused = True
        sim.run()
        assert not process.ok

    def test_chain_of_processes(self, sim):
        def leaf(sim, n):
            yield sim.timeout(1.0)
            return n

        def middle(sim):
            total = 0
            for i in range(3):
                total += yield sim.spawn(leaf(sim, i))
            return total

        process = sim.spawn(middle(sim))
        sim.run()
        assert process.value == 3
        assert sim.now == 3.0

    def test_yield_from_composition(self, sim):
        def inner(sim):
            yield sim.timeout(2.0)
            return "inner"

        def outer(sim):
            value = yield from inner(sim)
            return value.upper()

        process = sim.spawn(outer(sim))
        sim.run()
        assert process.value == "INNER"


class TestInterrupt:
    def test_interrupt_wakes_sleeper(self, sim):
        log = []

        def sleeper(sim):
            try:
                yield sim.timeout(100.0)
            except Interrupted as interruption:
                log.append((sim.now, interruption.cause))

        process = sim.spawn(sleeper(sim))
        sim.call_after(3.0, process.interrupt, "wake up")
        sim.run()
        assert log == [(3.0, "wake up")]

    def test_interrupt_finished_process_is_noop(self, sim):
        process = sim.spawn(ticker(sim, [], 1.0, 1))
        sim.run()
        process.interrupt("too late")
        sim.run()
        assert process.ok

    def test_uncaught_interrupt_fails_process(self, sim):
        def stubborn(sim):
            yield sim.timeout(100.0)

        process = sim.spawn(stubborn(sim))
        process.defused = True
        sim.call_after(1.0, process.interrupt)
        sim.run()
        assert not process.ok

    def test_interrupted_process_can_continue(self, sim):
        log = []

        def resilient(sim):
            try:
                yield sim.timeout(100.0)
            except Interrupted:
                pass
            yield sim.timeout(2.0)
            log.append(sim.now)

        process = sim.spawn(resilient(sim))
        sim.call_after(1.0, process.interrupt)
        sim.run()
        assert log == [3.0]


class TestExceptions:
    def test_exception_inside_process_propagates_to_waiter(self, sim):
        def bad(sim):
            yield sim.timeout(1.0)
            raise LookupError("nope")

        def waiter(sim):
            try:
                yield sim.spawn(bad(sim))
            except LookupError:
                return "handled"

        process = sim.spawn(waiter(sim))
        sim.run()
        assert process.value == "handled"

    def test_failed_event_throws_into_process(self, sim):
        event = Simulator.event(sim)

        def waiter(sim):
            try:
                yield event
            except RuntimeError as error:
                return str(error)

        process = sim.spawn(waiter(sim))
        event.fail(RuntimeError("event failed"), delay=1.0)
        sim.run()
        assert process.value == "event failed"
