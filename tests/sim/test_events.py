"""Tests for event primitives: Event, Timeout, AllOf, AnyOf."""

import pytest

from repro.errors import SimulationError


class TestEvent:
    def test_starts_pending(self, sim):
        event = sim.event()
        assert not event.triggered
        assert not event.processed

    def test_succeed_carries_value(self, sim):
        event = sim.event()
        event.succeed("payload")
        sim.run()
        assert event.processed
        assert event.value == "payload"

    def test_value_before_trigger_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.event().value

    def test_double_succeed_raises(self, sim):
        event = sim.event().succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_succeed_after_fail_raises(self, sim):
        event = sim.event()
        event.fail(RuntimeError("x"))
        event.defused = True
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_requires_exception(self, sim):
        with pytest.raises(TypeError):
            sim.event().fail("not an exception")

    def test_failed_event_value_raises_original(self, sim):
        event = sim.event()
        event.fail(KeyError("missing"))
        event.defused = True
        sim.run()
        with pytest.raises(KeyError):
            event.value

    def test_delayed_succeed(self, sim):
        event = sim.event()
        seen = []
        event.add_callback(lambda e: seen.append(sim.now))
        event.succeed(delay=4.0)
        sim.run()
        assert seen == [4.0]

    def test_callback_after_processed_runs_immediately(self, sim):
        event = sim.event().succeed("v")
        sim.run()
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        assert seen == ["v"]

    def test_ok_reflects_outcome(self, sim):
        good = sim.event().succeed()
        bad = sim.event()
        bad.fail(RuntimeError("x"))
        bad.defused = True
        sim.run()
        assert good.ok and not bad.ok


class TestTimeout:
    def test_fires_after_delay(self, sim):
        fired = []
        timeout = sim.timeout(2.0, value="done")
        timeout.add_callback(lambda e: fired.append((sim.now, e.value)))
        sim.run()
        assert fired == [(2.0, "done")]

    def test_zero_delay_fires_at_now(self, sim):
        sim.run(until=5.0)
        timeout = sim.timeout(0.0)
        sim.run()
        assert timeout.processed
        assert sim.now == 5.0

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-0.1)


class TestConditions:
    def test_all_of_waits_for_every_event(self, sim):
        t1 = sim.timeout(1.0, "a")
        t2 = sim.timeout(3.0, "b")
        done = []
        sim.all_of([t1, t2]).add_callback(
            lambda e: done.append((sim.now, sorted(e.value.values()))))
        sim.run()
        assert done == [(3.0, ["a", "b"])]

    def test_any_of_fires_on_first(self, sim):
        t1 = sim.timeout(1.0, "fast")
        t2 = sim.timeout(3.0, "slow")
        done = []
        sim.any_of([t1, t2]).add_callback(
            lambda e: done.append((sim.now, list(e.value.values()))))
        sim.run()
        assert done == [(1.0, ["fast"])]

    def test_empty_all_of_fires_immediately(self, sim):
        condition = sim.all_of([])
        assert condition.triggered

    def test_all_of_propagates_failure(self, sim):
        bad = sim.event()
        bad.fail(RuntimeError("child failed"))
        condition = sim.all_of([bad, sim.timeout(1.0)])
        condition.defused = True
        sim.run()
        assert not condition.ok

    def test_process_waiting_on_all_of(self, sim):
        def fan_out(sim):
            timeouts = [sim.timeout(i, i) for i in (1.0, 2.0, 3.0)]
            values = yield sim.all_of(timeouts)
            return sorted(values.values())

        process = sim.spawn(fan_out(sim))
        sim.run()
        assert process.value == [1.0, 2.0, 3.0]
        assert sim.now == 3.0
