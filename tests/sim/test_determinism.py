"""Determinism and stress tests for the simulation kernel."""

from repro.sim.engine import Simulator
from repro.sim.resources import Server
from repro.sim.rng import RngRegistry


def chaotic_workload(seed):
    """A moderately large random workload; returns a fingerprint."""
    sim = Simulator()
    registry = RngRegistry(seed)
    rng = registry.stream("chaos")
    server = Server(sim, 4)
    log = []

    def job(sim, i):
        yield sim.timeout(rng.random() * 2.0)
        yield server.acquire()
        try:
            yield sim.timeout(rng.random() * 0.5)
            log.append((round(sim.now, 9), i))
        finally:
            server.release()

    def spawner(sim):
        for i in range(300):
            sim.spawn(job(sim, i))
            yield sim.timeout(rng.random() * 0.05)

    sim.spawn(spawner(sim))
    sim.run()
    return sim.now, tuple(log)


class TestDeterminism:
    def test_identical_seeds_identical_history(self):
        assert chaotic_workload(7) == chaotic_workload(7)

    def test_different_seeds_differ(self):
        assert chaotic_workload(7) != chaotic_workload(8)

    def test_all_jobs_complete(self):
        _final, log = chaotic_workload(3)
        assert len(log) == 300
        assert sorted(i for _t, i in log) == list(range(300))


class TestStress:
    def test_many_concurrent_processes(self):
        sim = Simulator()
        done = []

        def worker(sim, i):
            for _ in range(10):
                yield sim.timeout(0.1)
            done.append(i)

        for i in range(2000):
            sim.spawn(worker(sim, i))
        sim.run()
        assert len(done) == 2000
        assert abs(sim.now - 1.0) < 1e-9  # 10 x 0.1 accumulates FP error

    def test_deep_process_chain(self):
        sim = Simulator()

        def nested(sim, depth):
            if depth == 0:
                yield sim.timeout(0.001)
                return 0
            result = yield sim.spawn(nested(sim, depth - 1))
            return result + 1

        process = sim.spawn(nested(sim, 200))
        sim.run()
        assert process.value == 200

    def test_interleaved_events_and_processes(self):
        sim = Simulator()
        order = []

        def process(sim):
            yield sim.timeout(1.0)
            order.append("process")

        sim.call_after(1.0, order.append, "callback-first")
        sim.spawn(process(sim))
        sim.call_after(1.0, order.append, "callback-second")
        sim.run()
        assert len(order) == 3
        # Deterministic tie order at equal time = enqueue order. The
        # process's timeout is enqueued when its generator first runs
        # (bootstrap at t=0), i.e. *after* both callbacks registered.
        assert order == ["callback-first", "callback-second", "process"]
