"""Tests for deterministic RNG streams and log-normal helpers."""

import math
import random

import pytest

from repro.sim.rng import (
    NV_MAGICCONST,
    RngRegistry,
    Z_P99,
    lognormal_params_from_percentiles,
    sample_lognormal,
)


class TestInlinedDrawEquivalence:
    """The hot paths inline ``Random.lognormvariate`` (Kinderman-Monahan);
    the inlined copies must consume the underlying stream identically."""

    def test_magic_constant_is_bit_identical_to_stdlib(self):
        assert NV_MAGICCONST == random.NV_MAGICCONST

    def test_inlined_algorithm_matches_lognormvariate(self):
        rng = random.Random(42)
        clone = random.Random()
        clone.setstate(rng.getstate())
        for _ in range(500):
            mu, sigma = 0.25, 1.5
            expected = rng.lognormvariate(mu, sigma)
            # The exact loop inlined in profiles.py / network.py.
            clone_random = clone.random
            while True:
                u1 = clone_random()
                u2 = 1.0 - clone_random()
                z = NV_MAGICCONST * (u1 - 0.5) / u2
                zz = z * z / 4.0
                if zz <= -math.log(u2):
                    break
            assert math.exp(mu + z * sigma) == expected
            assert clone.getstate() == rng.getstate()


class TestRegistry:
    def test_same_name_same_stream_object(self):
        registry = RngRegistry(7)
        assert registry.stream("a") is registry.stream("a")

    def test_same_seed_reproduces_draws(self):
        first = RngRegistry(7).stream("x").random()
        second = RngRegistry(7).stream("x").random()
        assert first == second

    def test_different_names_are_independent(self):
        registry = RngRegistry(7)
        assert registry.stream("a").random() != registry.stream("b").random()

    def test_different_seeds_differ(self):
        a = RngRegistry(1).stream("x").random()
        b = RngRegistry(2).stream("x").random()
        assert a != b

    def test_new_streams_do_not_perturb_existing(self):
        registry = RngRegistry(7)
        stream = registry.stream("stable")
        first = stream.random()
        registry.stream("newcomer")
        registry2 = RngRegistry(7)
        stream2 = registry2.stream("stable")
        assert stream2.random() == first


class TestLognormal:
    def test_params_roundtrip_median(self):
        mu, _sigma = lognormal_params_from_percentiles(0.1, 0.5)
        assert math.isclose(math.exp(mu), 0.1)

    def test_params_pin_tail(self):
        mu, sigma = lognormal_params_from_percentiles(0.1, 0.5)
        assert math.isclose(math.exp(mu + sigma * Z_P99), 0.5, rel_tol=1e-9)

    def test_degenerate_distribution(self):
        mu, sigma = lognormal_params_from_percentiles(0.2, 0.2)
        assert sigma == 0.0

    def test_invalid_median_rejected(self):
        with pytest.raises(ValueError):
            lognormal_params_from_percentiles(0.0, 1.0)

    def test_tail_below_median_rejected(self):
        with pytest.raises(ValueError):
            lognormal_params_from_percentiles(0.5, 0.1)

    def test_samples_match_pinned_percentiles(self, rng):
        samples = sorted(
            sample_lognormal(rng, 0.1, 0.4) for _ in range(20_000))
        median = samples[len(samples) // 2]
        p99 = samples[int(len(samples) * 0.99)]
        assert math.isclose(median, 0.1, rel_tol=0.05)
        assert math.isclose(p99, 0.4, rel_tol=0.10)

    def test_degenerate_sampling_returns_median(self, rng):
        assert sample_lognormal(rng, 0.3, 0.3) == 0.3

    def test_samples_are_positive(self, rng):
        assert all(
            sample_lognormal(rng, 0.05, 1.0) > 0 for _ in range(1000))
