"""The sharded bulk engine: shard-count invariance and scope guards.

The shard engine's only determinism contract is with itself: a fixed
``(scenario, seed)`` must produce byte-identical results for every
``jobs`` value, because every random draw is keyed to the entity that
consumes it, never to scheduling order. CI runs the jobs=1 vs jobs=2
comparison on every push (the ``fleet-smoke`` job); these tests run it
in-process, plus the up-front ConfigError guards that keep the engine
from silently diverging on inputs outside its scope.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.bench.digest import digest_result
from repro.errors import ConfigError
from repro.faults.faults import ClusterOutage
from repro.sim.shard import SHARD_ALGORITHMS, run_sharded_benchmark
from repro.workloads.fleet import FleetSpec, build_fleet_scenario
from repro.workloads.scenarios import build_scenario

pytest.importorskip("numpy")

# A small fleet cell: big enough that clusters land on distinct shards
# with interleaved barrier merges, small enough for test-suite runtime.
_SPEC = FleetSpec(clusters=12, duration_s=60.0, total_rps=120.0,
                  replica_budget_per_cluster=2)
_SEED = 3
_DURATION = 20.0


@pytest.fixture(scope="module")
def fleet_scenario():
    return build_fleet_scenario(_SPEC, seed=_SEED)


@pytest.fixture(scope="module")
def jobs1_result(fleet_scenario):
    return run_sharded_benchmark(
        fleet_scenario, "l3", duration_s=_DURATION, seed=_SEED, jobs=1)


class TestShardInvariance:
    @pytest.mark.parametrize("jobs", [2, 5])
    def test_jobs_do_not_change_the_bytes(self, fleet_scenario,
                                          jobs1_result, jobs):
        sharded = run_sharded_benchmark(
            fleet_scenario, "l3", duration_s=_DURATION, seed=_SEED,
            jobs=jobs)
        assert digest_result(sharded) == digest_result(jobs1_result)

    def test_poisson_arrivals_are_also_invariant(self, fleet_scenario):
        from repro.bench.coordinator import ScenarioBenchConfig

        env = ScenarioBenchConfig(arrival="poisson")
        runs = [
            run_sharded_benchmark(
                fleet_scenario, "l3-peak", duration_s=_DURATION,
                seed=_SEED, env=env, jobs=jobs)
            for jobs in (1, 3)
        ]
        assert digest_result(runs[0]) == digest_result(runs[1])

    def test_result_shape(self, jobs1_result):
        result = jobs1_result
        assert result.records, "a loaded fleet cell must serve requests"
        keys = [(r.end_s, r.request_id) for r in result.records]
        assert keys == sorted(keys), "records sorted by completion"
        assert result.controller_weights, "the controller reconciled"
        assert set(result.controller_weights) == {
            f"api/cluster-{i}" for i in range(1, _SPEC.clusters + 1)}
        # No retries/deadlines/faults in scope: every request succeeds
        # unless the profile itself fails it (this fleet's don't).
        assert result.success_rate == 1.0
        assert result.events_processed == 0

    def test_seed_changes_the_bytes(self, fleet_scenario, jobs1_result):
        other = run_sharded_benchmark(
            fleet_scenario, "l3", duration_s=_DURATION, seed=_SEED + 1,
            jobs=1)
        assert digest_result(other) != digest_result(jobs1_result)


class TestScopeGuards:
    """Anything the bulk model cannot reproduce is rejected up front."""

    def test_algorithm_outside_scope(self, fleet_scenario):
        assert "round-robin" not in SHARD_ALGORITHMS
        with pytest.raises(ConfigError, match="shard engine"):
            run_sharded_benchmark(fleet_scenario, "round-robin",
                                  duration_s=5.0)

    def test_topology_free_scenario(self):
        with pytest.raises(ConfigError, match="FleetTopology"):
            run_sharded_benchmark(build_scenario("scenario-1"), "l3",
                                  duration_s=5.0)

    def test_fault_schedule(self, fleet_scenario):
        faulty = dataclasses.replace(
            fleet_scenario,
            faults=(ClusterOutage(cluster="cluster-2", at_s=5.0,
                                  duration_s=5.0),))
        with pytest.raises(ConfigError, match="fault"):
            run_sharded_benchmark(faulty, "l3", duration_s=5.0)

    def test_resilience_knobs(self, fleet_scenario):
        from repro.bench.coordinator import ScenarioBenchConfig

        for env in (ScenarioBenchConfig(max_retries=1),
                    ScenarioBenchConfig(request_timeout_s=0.05)):
            with pytest.raises(ConfigError, match="retries"):
                run_sharded_benchmark(fleet_scenario, "l3",
                                      duration_s=5.0, env=env)

    def test_jobs_must_be_positive(self, fleet_scenario):
        with pytest.raises(ConfigError, match="jobs"):
            run_sharded_benchmark(fleet_scenario, "l3", duration_s=5.0,
                                  jobs=0)

    def test_reconcile_must_align_with_epochs(self, fleet_scenario):
        from repro.core.config import L3Config

        config = L3Config(reconcile_interval_s=7.0)  # not a multiple of 5
        with pytest.raises(ConfigError, match="multiple"):
            run_sharded_benchmark(fleet_scenario, "l3", duration_s=5.0,
                                  l3_config=config)
