"""Tests for scenario JSON serialization."""

import json

import pytest

from repro.errors import ConfigError
from repro.workloads.scenarios import SCENARIO_NAMES, build_scenario
from repro.workloads.traceio import (
    load_scenario,
    save_scenario,
    scenario_from_dict,
    scenario_to_dict,
)


def series_points(series, step=7.0, until=600.0):
    return [series.value_at(t * step) for t in range(int(until / step))]


class TestRoundTrip:
    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_every_builtin_scenario_roundtrips(self, name):
        original = build_scenario(name)
        restored = scenario_from_dict(scenario_to_dict(original))
        assert restored.name == original.name
        assert restored.duration_s == original.duration_s
        assert restored.clusters() == original.clusters()
        for cluster in original.clusters():
            a = original.cluster_profiles[cluster]
            b = restored.cluster_profiles[cluster]
            assert series_points(a.median_latency_s) == series_points(
                b.median_latency_s)
            assert series_points(a.p99_latency_s) == series_points(
                b.p99_latency_s)
            assert series_points(a.failure_prob) == series_points(
                b.failure_prob)
            assert a.failure_latency_s == b.failure_latency_s
        assert series_points(original.rps) == series_points(restored.rps)

    def test_file_roundtrip(self, tmp_path):
        original = build_scenario("scenario-2")
        path = tmp_path / "trace.json"
        save_scenario(original, path)
        restored = load_scenario(path)
        assert restored.name == "scenario-2"
        assert series_points(original.rps) == series_points(restored.rps)

    def test_saved_file_is_plain_json(self, tmp_path):
        path = tmp_path / "trace.json"
        save_scenario(build_scenario("scenario-5"), path)
        data = json.loads(path.read_text())
        assert data["format_version"] == 1
        assert set(data["clusters"]) == {
            "cluster-1", "cluster-2", "cluster-3"}


class TestValidation:
    def test_wrong_version_rejected(self):
        data = scenario_to_dict(build_scenario("scenario-1"))
        data["format_version"] = 99
        with pytest.raises(ConfigError):
            scenario_from_dict(data)

    def test_missing_clusters_rejected(self):
        data = scenario_to_dict(build_scenario("scenario-1"))
        data["clusters"] = {}
        with pytest.raises(ConfigError):
            scenario_from_dict(data)

    def test_series_length_mismatch_rejected(self):
        data = scenario_to_dict(build_scenario("scenario-1"))
        data["rps"]["values"] = data["rps"]["values"][:-1]
        with pytest.raises(ConfigError):
            scenario_from_dict(data)

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("not json at all {")
        with pytest.raises(ConfigError):
            load_scenario(path)


class TestLoadedScenarioRuns:
    def test_loaded_scenario_drives_a_benchmark(self, tmp_path):
        from repro.bench.coordinator import (
            ScenarioBenchConfig,
            run_scenario_benchmark,
        )

        path = tmp_path / "trace.json"
        save_scenario(build_scenario("scenario-5"), path)
        scenario = load_scenario(path)
        result = run_scenario_benchmark(
            scenario, "l3", duration_s=20.0, seed=3,
            env=ScenarioBenchConfig(warmup_s=5.0, drain_s=10.0))
        assert result.request_count > 100
