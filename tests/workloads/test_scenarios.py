"""Tests for the synthetic TIER-like scenarios.

Each assertion corresponds to a characteristic the paper publishes for the
original traces (Figs. 1, 2, 6, 7a; §5.3.2 prose).
"""

import pytest

from repro.errors import ConfigError
from repro.workloads.scenarios import (
    CLUSTERS,
    SCENARIO_NAMES,
    TRACE_PERIOD_S,
    build_scenario,
)


def series_values(series, step_s=5.0, duration_s=TRACE_PERIOD_S):
    return [series.value_at(i * step_s)
            for i in range(int(duration_s / step_s))]


class TestRegistry:
    def test_all_scenarios_build(self):
        for name in SCENARIO_NAMES:
            scenario = build_scenario(name)
            assert scenario.name == name
            assert scenario.clusters() == sorted(CLUSTERS)

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError):
            build_scenario("scenario-99")

    def test_invalid_duration_rejected(self):
        with pytest.raises(ConfigError):
            build_scenario("scenario-1", duration_s=0.0)

    def test_deterministic_across_builds(self):
        first = build_scenario("scenario-1")
        second = build_scenario("scenario-1")
        for cluster in CLUSTERS:
            a = first.cluster_profiles[cluster].p99_latency_s
            b = second.cluster_profiles[cluster].p99_latency_s
            assert series_values(a) == series_values(b)

    def test_scenarios_differ_from_each_other(self):
        one = build_scenario("scenario-1")
        two = build_scenario("scenario-2")
        a = series_values(one.cluster_profiles["cluster-1"].median_latency_s)
        b = series_values(two.cluster_profiles["cluster-1"].median_latency_s)
        assert a != b


class TestScenario1:
    def test_median_range_and_cluster2_spikes(self):
        scenario = build_scenario("scenario-1")
        for cluster in CLUSTERS:
            values = series_values(
                scenario.cluster_profiles[cluster].median_latency_s)
            assert min(values) >= 0.040
        c2 = series_values(
            scenario.cluster_profiles["cluster-2"].median_latency_s)
        assert max(c2) > 0.10  # Fig. 1a: cluster-2 median spikes

    def test_rps_stable_around_300(self):
        scenario = build_scenario("scenario-1")
        values = series_values(scenario.rps)
        assert 270 <= min(values) and max(values) <= 330

    def test_no_failures(self):
        scenario = build_scenario("scenario-1")
        for profile in scenario.cluster_profiles.values():
            assert profile.failure_prob.max_value() == 0.0


class TestScenario2:
    def test_single_digit_medians(self):
        scenario = build_scenario("scenario-2")
        for cluster in CLUSTERS:
            values = series_values(
                scenario.cluster_profiles[cluster].median_latency_s)
            assert 0.002 <= min(values) and max(values) <= 0.015

    def test_p99_spikes_over_two_seconds(self):
        scenario = build_scenario("scenario-2")
        peak = max(
            max(series_values(profile.p99_latency_s))
            for profile in scenario.cluster_profiles.values())
        assert peak > 2.0

    def test_rps_fluctuates_50_to_200(self):
        scenario = build_scenario("scenario-2")
        values = series_values(scenario.rps)
        assert min(values) >= 40 and max(values) <= 210
        assert max(values) - min(values) > 50  # genuinely fluctuating


class TestScenario345:
    def test_tail_ordering(self):
        peaks = {}
        for name in ("scenario-3", "scenario-4", "scenario-5"):
            scenario = build_scenario(name)
            peaks[name] = max(
                max(series_values(profile.p99_latency_s))
                for profile in scenario.cluster_profiles.values())
        assert peaks["scenario-4"] > peaks["scenario-3"] > peaks["scenario-5"]

    def test_scenario5_is_calm(self):
        scenario = build_scenario("scenario-5")
        for profile in scenario.cluster_profiles.values():
            assert max(series_values(profile.p99_latency_s)) < 0.5


class TestFailureScenarios:
    def test_failure1_heavy(self):
        scenario = build_scenario("failure-1")
        rates = [
            series_values(profile.failure_prob)
            for profile in scenario.cluster_profiles.values()
        ]
        average = sum(sum(r) for r in rates) / sum(len(r) for r in rates)
        # ~91.4 % average success -> ~8.6 % average failure.
        assert 0.04 < average < 0.15
        assert max(max(r) for r in rates) >= 0.4  # drops to <= 60 % success

    def test_failure2_light_with_healthy_backend(self):
        scenario = build_scenario("failure-2")
        averages = {
            cluster: (lambda v: sum(v) / len(v))(
                series_values(profile.failure_prob))
            for cluster, profile in scenario.cluster_profiles.items()
        }
        # Average success ~98.5 %, with cluster-3 the near-perfect backend
        # that sets the success-rate ceiling (avg 99.8 %).
        overall = sum(averages.values()) / len(averages)
        assert 0.005 < overall < 0.03
        assert averages["cluster-3"] < 0.005

    def test_failure_scenarios_share_base_latency(self):
        base = build_scenario("scenario-1")
        failing = build_scenario("failure-1")
        for cluster in CLUSTERS:
            a = series_values(
                base.cluster_profiles[cluster].median_latency_s)
            b = series_values(
                failing.cluster_profiles[cluster].median_latency_s)
            assert a == b
