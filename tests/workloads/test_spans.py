"""Tests for the span → scenario pipeline (§5.1 methodology)."""

import random

import pytest

from repro.errors import ConfigError
from repro.workloads.spans import (
    NETWORK,
    SERVER,
    Span,
    execution_latencies,
    profile_from_spans,
    scenario_from_spans,
)


def server_span(trace, span, service="api", cluster="cluster-1",
                start=0.0, end=0.1, parent=None):
    return Span(trace, span, parent, service, cluster, start, end, SERVER)


def network_span(trace, span, parent, start, end, cluster="cluster-1"):
    return Span(trace, span, parent, "wan", cluster, start, end, NETWORK)


class TestSpanValidation:
    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigError):
            Span("t", "s", None, "svc", "c1", 5.0, 4.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            Span("t", "s", None, "svc", "c1", 0.0, 1.0, kind="client")

    def test_duration(self):
        assert server_span("t", "s", start=1.0, end=3.5).duration_s == 2.5


class TestExecutionLatencies:
    def test_plain_span_is_its_duration(self):
        out = execution_latencies([server_span("t", "s", start=0.0, end=0.2)])
        assert out == [("api", "cluster-1", 0.0, pytest.approx(0.2))]

    def test_network_children_subtracted(self):
        spans = [
            server_span("t", "root", start=0.0, end=0.100),
            network_span("t", "n1", "root", 0.010, 0.030),  # 20 ms out
            network_span("t", "n2", "root", 0.070, 0.090),  # 20 ms back
        ]
        out = execution_latencies(spans)
        assert out[0][3] == pytest.approx(0.060)

    def test_server_children_not_subtracted(self):
        # The paper keeps downstream wait time (it is part of the
        # service's observed latency); only network segments go.
        spans = [
            server_span("t", "root", start=0.0, end=0.100),
            server_span("t", "child", service="db", start=0.020,
                        end=0.080, parent="root"),
        ]
        out = {svc: exe for svc, _c, _s, exe in execution_latencies(spans)}
        assert out["api"] == pytest.approx(0.100)
        assert out["db"] == pytest.approx(0.060)

    def test_grandchild_network_not_subtracted_from_root(self):
        spans = [
            server_span("t", "root", start=0.0, end=0.100),
            server_span("t", "child", service="db", start=0.020,
                        end=0.080, parent="root"),
            network_span("t", "n", "child", 0.030, 0.050),
        ]
        out = {svc: exe for svc, _c, _s, exe in execution_latencies(spans)}
        assert out["api"] == pytest.approx(0.100)
        assert out["db"] == pytest.approx(0.040)

    def test_network_spans_never_reported(self):
        spans = [network_span("t", "n", None, 0.0, 1.0)]
        assert execution_latencies(spans) == []

    def test_same_span_ids_in_different_traces(self):
        spans = [
            server_span("t1", "root", start=0.0, end=0.100),
            network_span("t1", "n", "root", 0.0, 0.020),
            server_span("t2", "root", start=0.0, end=0.100),
        ]
        out = sorted(exe for _s, _c, _t, exe in execution_latencies(spans))
        assert out == [pytest.approx(0.080), pytest.approx(0.100)]

    def test_overlapping_network_cannot_go_negative(self):
        spans = [
            server_span("t", "root", start=0.0, end=0.010),
            network_span("t", "n", "root", 0.0, 0.050),  # longer than parent
        ]
        assert execution_latencies(spans)[0][3] == 0.0


def synthetic_spans(duration_s=120.0, rps=20.0, clusters=("cluster-1",
                                                          "cluster-2")):
    """A two-cluster span corpus with cluster-2 twice as slow."""
    rng = random.Random(9)
    spans = []
    count = int(duration_s * rps)
    for i in range(count):
        start = i / rps
        cluster = clusters[i % len(clusters)]
        base = 0.020 if cluster == "cluster-1" else 0.040
        execution = rng.lognormvariate(
            __import__("math").log(base), 0.4)
        trace = f"t{i}"
        spans.append(server_span(
            trace, "root", cluster=cluster, start=start,
            end=start + execution + 0.020))
        spans.append(network_span(
            trace, "n", "root", start, start + 0.020, cluster=cluster))
    return spans


class TestProfileFromSpans:
    def test_network_excluded_from_profile(self):
        spans = synthetic_spans()
        profile = profile_from_spans(spans, "api", "cluster-1", 120.0)
        # Median of execution only (~20 ms), not execution+network (~40).
        assert 0.012 < profile.median_latency_s.value_at(60.0) < 0.030

    def test_missing_service_rejected(self):
        with pytest.raises(ConfigError):
            profile_from_spans(synthetic_spans(), "ghost", "cluster-1", 120.0)

    def test_p99_above_median(self):
        profile = profile_from_spans(
            synthetic_spans(), "api", "cluster-1", 120.0)
        for t in (15.0, 45.0, 90.0):
            assert (profile.p99_latency_s.value_at(t)
                    >= profile.median_latency_s.value_at(t))


class TestScenarioFromSpans:
    def test_builds_runnable_scenario(self):
        scenario = scenario_from_spans(synthetic_spans(), "api", 120.0)
        assert scenario.clusters() == ["cluster-1", "cluster-2"]
        assert 15.0 < scenario.rps.value_at(60.0) < 25.0
        # cluster-2 is modelled twice as slow.
        slow = scenario.cluster_profiles["cluster-2"]
        fast = scenario.cluster_profiles["cluster-1"]
        assert (slow.median_latency_s.value_at(60.0)
                > fast.median_latency_s.value_at(60.0) * 1.5)

    def test_scenario_drives_benchmark(self):
        from repro.bench.coordinator import (
            ScenarioBenchConfig,
            run_scenario_benchmark,
        )

        scenario = scenario_from_spans(synthetic_spans(), "api", 120.0)
        result = run_scenario_benchmark(
            scenario, "l3", duration_s=30.0, seed=3,
            env=ScenarioBenchConfig(warmup_s=10.0, drain_s=10.0))
        assert result.request_count > 100

    def test_no_spans_rejected(self):
        with pytest.raises(ConfigError):
            scenario_from_spans([], "api", 120.0)
