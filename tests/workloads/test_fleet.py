"""Property tests for the fleet-scale scenario generator.

Three claims from the module docstring are checked: one ``(spec, seed)``
pair is one deterministic fleet forever (pickle byte-identity of two
independent builds); the replica deal really is zipf-skewed (a
chi-square test of the dealt counts against the generating pmf); and
the generated scenario is a first-class topology — the fault-spec
grammar validates cluster names against it exactly as it does for the
paper's three-cluster scenarios.
"""

from __future__ import annotations

import math
import pickle

import pytest

from repro.bench.coordinator import SCENARIO_SERVICE
from repro.errors import ConfigError
from repro.faults.spec import FaultSpecError, parse_fault_spec
from repro.workloads.fleet import (
    FleetSpec,
    build_fleet_scenario,
    fleet_rps_series,
)

_SPEC = FleetSpec()  # the BENCH_fleet.json reference spec


@pytest.fixture(scope="module")
def fleet():
    return build_fleet_scenario(_SPEC, seed=1)


class TestDeterminism:
    @pytest.mark.parametrize("seed", [1, 7])
    def test_same_seed_same_bytes(self, seed):
        spec = FleetSpec(clusters=40, duration_s=120.0)
        first = pickle.dumps(build_fleet_scenario(spec, seed=seed))
        second = pickle.dumps(build_fleet_scenario(spec, seed=seed))
        assert first == second

    def test_different_seeds_differ(self):
        spec = FleetSpec(clusters=40, duration_s=120.0)
        assert pickle.dumps(build_fleet_scenario(spec, seed=1)) != \
            pickle.dumps(build_fleet_scenario(spec, seed=2))

    def test_topology_shape(self, fleet):
        topology = fleet.topology
        assert len(topology.replicas) == _SPEC.clusters
        assert topology.total_endpoints() >= 1000
        assert all(n >= _SPEC.min_replicas
                   for n in topology.replicas.values())
        assert set(topology.capacities.values()) <= \
            set(_SPEC.capacity_choices)
        # The WAN matrix is symmetric and skips local pairs.
        for (src, dst), link in topology.links.items():
            assert src != dst
            assert topology.links[(dst, src)] is link
        assert math.isclose(sum(topology.rps_share.values()), 1.0)
        assert topology.client_cluster == "cluster-1"


def _chi_square_critical(df: int, z: float = 3.09) -> float:
    """Wilson–Hilferty upper-tail critical value (z=3.09 ~ p=0.001)."""
    term = 2.0 / (9.0 * df)
    return df * (1.0 - term + z * math.sqrt(term)) ** 3


class TestZipfSkew:
    def test_replica_deal_matches_the_pmf(self, fleet):
        """Chi-square of the dealt replica counts against the zipf pmf
        they were sampled from; buckets with expected < 5 are merged
        (the standard validity condition for the chi-square test)."""
        topology = fleet.topology
        draws = _SPEC.replica_budget_per_cluster * _SPEC.clusters
        cells = []  # (observed, expected), merged tail
        tail_obs, tail_exp = 0.0, 0.0
        for name, weight in sorted(topology.zipf_weight.items(),
                                   key=lambda kv: -kv[1]):
            observed = topology.replicas[name] - _SPEC.min_replicas
            expected = draws * weight
            if expected >= 5.0:
                cells.append((float(observed), expected))
            else:
                tail_obs += observed
                tail_exp += expected
        if tail_exp > 0.0:
            cells.append((tail_obs, tail_exp))
        assert len(cells) >= 10, "spec too small for a meaningful test"
        stat = sum((obs - exp) ** 2 / exp for obs, exp in cells)
        critical = _chi_square_critical(len(cells) - 1)
        assert stat < critical, (
            f"zipf deal failed chi-square: {stat:.1f} >= {critical:.1f}")

    def test_load_follows_its_own_zipf(self, fleet):
        """The hottest cluster by rps_share gets the biggest share and
        every cluster's series is the total scaled by its share."""
        topology = fleet.topology
        hottest = max(topology.rps_share, key=topology.rps_share.get)
        series = fleet_rps_series(fleet, hottest)
        share = topology.rps_share[hottest]
        for t in (0.0, 100.0, 299.5):
            assert series.value_at(t) == \
                pytest.approx(fleet.rps.value_at(t) * share)
        with pytest.raises(ConfigError, match="unknown cluster"):
            fleet_rps_series(fleet, "cluster-999")


class TestFaultSpecIntegration:
    """A generated fleet is a real topology: the fault grammar's name
    validation works against it out of the box."""

    def test_valid_spec_parses_against_the_fleet(self, fleet):
        faults = parse_fault_spec(
            "cluster-outage@30+30:cluster=cluster-57:mode=blackhole ; "
            "link-partition@90+15:src=cluster-1:dst=cluster-12",
            clusters=set(fleet.clusters()),
            services={SCENARIO_SERVICE})
        assert len(faults) == 2

    def test_unknown_cluster_is_rejected(self, fleet):
        with pytest.raises(FaultSpecError, match="unknown cluster"):
            parse_fault_spec(
                "cluster-outage@30+30:cluster=cluster-121:mode=blackhole",
                clusters=set(fleet.clusters()),
                services={SCENARIO_SERVICE})


class TestSpecValidation:
    @pytest.mark.parametrize("kwargs", [
        {"clusters": 1},
        {"duration_s": 0.0},
        {"total_rps": -1.0},
        {"zipf_exponent": 0.0},
        {"min_replicas": 0},
        {"replica_budget_per_cluster": -1},
        {"capacity_choices": ()},
        {"wan_delay_range_s": (0.05, 0.01)},
    ])
    def test_bad_specs_raise(self, kwargs):
        with pytest.raises(ConfigError):
            build_fleet_scenario(FleetSpec(**kwargs), seed=1)
