"""Tests for the open-loop load generator."""

import pytest

from repro.errors import ConfigError
from repro.mesh.request import RequestRecord
from repro.workloads.loadgen import OpenLoopLoadGenerator
from repro.workloads.profiles import PiecewiseSeries


class SlowTarget:
    """A dispatch target with a fixed response time."""

    def __init__(self, sim, response_time_s):
        self.sim = sim
        self.response_time_s = response_time_s
        self.dispatched = 0

    def dispatch(self, intended_start_s=None):
        self.dispatched += 1
        start = self.sim.now
        if intended_start_s is None:
            intended_start_s = start
        yield self.sim.timeout(self.response_time_s)
        return RequestRecord(
            request_id=self.dispatched, service="svc",
            source_cluster="c1", backend="svc/c1",
            intended_start_s=intended_start_s, start_s=start,
            end_s=self.sim.now, success=True)


class TestValidation:
    def test_invalid_arrival(self, sim, rng):
        with pytest.raises(ConfigError):
            OpenLoopLoadGenerator(
                SlowTarget(sim, 0.01), 10.0, rng, [], arrival="chaotic")

    def test_invalid_rps_type(self, sim, rng):
        with pytest.raises(ConfigError):
            OpenLoopLoadGenerator(SlowTarget(sim, 0.01), "fast", rng, [])

    def test_invalid_duration(self, sim, rng):
        generator = OpenLoopLoadGenerator(
            SlowTarget(sim, 0.01), 10.0, rng, [])
        with pytest.raises(ConfigError):
            next(generator.run(sim, 0.0))


class TestUniformArrivals:
    def test_constant_rate_spacing(self, sim, rng):
        records = []
        target = SlowTarget(sim, 0.001)
        generator = OpenLoopLoadGenerator(
            target, 10.0, rng, records, arrival="uniform")
        sim.spawn(generator.run(sim, 2.0))
        sim.run()
        # 10 RPS for 2 s -> 19 requests (the one at t=2.0 is excluded).
        assert generator.generated == 19
        starts = sorted(r.start_s for r in records)
        gaps = {round(b - a, 9) for a, b in zip(starts, starts[1:])}
        assert gaps == {0.1}

    def test_open_loop_is_not_blocked_by_slow_target(self, sim, rng):
        records = []
        target = SlowTarget(sim, 10.0)  # responses far slower than gaps
        generator = OpenLoopLoadGenerator(
            target, 10.0, rng, records, arrival="uniform")
        sim.spawn(generator.run(sim, 1.0))
        sim.run(until=1.0)
        # The schedule kept pace (10 RPS x 1 s, +/-1 for FP edge effects).
        assert generator.generated in (9, 10)
        assert not records  # nothing finished yet
        sim.run()
        assert len(records) == generator.generated

    def test_latency_measured_from_intended_start(self, sim, rng):
        records = []
        generator = OpenLoopLoadGenerator(
            SlowTarget(sim, 0.5), 10.0, rng, records, arrival="uniform")
        sim.spawn(generator.run(sim, 0.5))
        sim.run()
        for record in records:
            assert record.latency_s == pytest.approx(0.5)
            assert record.intended_start_s == record.start_s


class TestPoissonArrivals:
    def test_mean_rate_approximates_target(self, sim, rng):
        records = []
        generator = OpenLoopLoadGenerator(
            SlowTarget(sim, 0.0001), 100.0, rng, records, arrival="poisson")
        sim.spawn(generator.run(sim, 30.0))
        sim.run()
        rate = generator.generated / 30.0
        assert 85.0 < rate < 115.0

    def test_gaps_are_irregular(self, sim, rng):
        records = []
        generator = OpenLoopLoadGenerator(
            SlowTarget(sim, 0.0001), 50.0, rng, records, arrival="poisson")
        sim.spawn(generator.run(sim, 5.0))
        sim.run()
        starts = sorted(r.start_s for r in records)
        gaps = {round(b - a, 6) for a, b in zip(starts, starts[1:])}
        assert len(gaps) > 10


class TestTimeVaryingRate:
    def test_rate_follows_series(self, sim, rng):
        records = []
        rps = PiecewiseSeries([(0.0, 10.0), (10.0, 10.0), (10.001, 100.0),
                               (20.0, 100.0)])
        generator = OpenLoopLoadGenerator(
            SlowTarget(sim, 0.0001), rps, rng, records, arrival="uniform")
        sim.spawn(generator.run(sim, 20.0))
        sim.run()
        early = sum(1 for r in records if r.start_s < 10.0)
        late = sum(1 for r in records if r.start_s >= 10.0)
        assert 95 <= early + late <= 1105
        assert late > early * 5
