"""Tests for the social-network application (extension workload)."""

import pytest

from repro.balancers.round_robin import RoundRobinBalancer
from repro.bench.coordinator import ScenarioBenchConfig, run_social_benchmark
from repro.mesh.mesh import ServiceMesh
from repro.mesh.network import WanLink
from repro.workloads.social import (
    build_social_application,
    social_endpoints,
    social_service_specs,
)

ENV = ScenarioBenchConfig(warmup_s=10.0, drain_s=10.0)
CLUSTERS = ["cluster-1", "cluster-2", "cluster-3"]


class TestSpecs:
    def test_stateful_tier_is_local_only(self):
        for name, spec in social_service_specs().items():
            stateful = name.startswith(("redis-", "memcached-", "mongodb-"))
            assert spec.local_only == stateful, name

    def test_compose_path_reaches_timelines(self):
        specs = social_service_specs()
        compose = specs["compose-post"]
        called = {
            service
            for stage in compose.stages
            if hasattr(stage, "services")
            for service in stage.services
        }
        assert {"unique-id", "media", "user", "text",
                "user-timeline", "write-home-timeline"} <= called | {
                    "post-storage"} | called

    def test_endpoint_mix_is_read_heavy(self):
        weights = {e.name: e.weight for e in social_endpoints()}
        assert weights["read-home-timeline"] > weights["compose-post"]
        assert sum(weights.values()) == pytest.approx(100.0)


class TestExecution:
    def test_single_request_through_graph(self, sim, rng_registry):
        mesh = ServiceMesh(
            sim, rng_registry, clusters=CLUSTERS,
            wan_link=WanLink(base_delay_s=0.010, jitter_p99_ratio=1.0,
                             drift_amplitude=0.0, spike_prob=0.0))
        app = build_social_application(
            mesh, "cluster-1",
            lambda service, names, src: RoundRobinBalancer(names),
            rng_registry.stream("social"))
        app.prewire()
        process = sim.spawn(app.dispatch())
        sim.run()
        record = process.value
        assert record.success
        assert record.service == "nginx"

    def test_compose_touches_write_path(self, sim, rng_registry):
        mesh = ServiceMesh(
            sim, rng_registry, clusters=CLUSTERS,
            wan_link=WanLink(base_delay_s=0.010, jitter_p99_ratio=1.0,
                             drift_amplitude=0.0, spike_prob=0.0))
        app = build_social_application(
            mesh, "cluster-1",
            lambda service, names, src: RoundRobinBalancer(names),
            rng_registry.stream("social"))
        app.prewire()
        # Force the compose endpoint.
        compose = next(e for e in app.endpoints
                       if e.name == "compose-post")
        process = sim.spawn(app._call(
            "nginx", "cluster-1", stages_override=compose.stages))
        sim.run()
        assert process.value.success
        total_writes = sum(
            sum(r.completed for r in
                mesh.deployment("redis-home-timeline").backend_in(c).replicas)
            for c in CLUSTERS)
        assert total_writes >= 1


class TestBenchmark:
    def test_benchmark_runs_and_l3_helps_median(self):
        rr = run_social_benchmark(
            "round-robin", rps=60.0, duration_s=45.0, seed=3, env=ENV)
        l3 = run_social_benchmark(
            "l3", rps=60.0, duration_s=45.0, seed=3, env=ENV)
        assert rr.scenario == "social-network"
        assert rr.request_count == l3.request_count > 1000
        assert l3.p50_ms < rr.p50_ms
