"""Tests for the call-graph engine and the hotel-reservation application."""

import collections

import pytest

from repro.balancers.round_robin import RoundRobinBalancer
from repro.errors import ConfigError
from repro.mesh.mesh import ServiceMesh
from repro.mesh.network import WanLink
from repro.workloads.callgraph import (
    CachedRead,
    CallGraphApp,
    EndpointSpec,
    ParallelCalls,
    ServiceSpec,
    deploy_callgraph_services,
)
from repro.workloads.hotel import (
    build_hotel_application,
    hotel_endpoints,
    hotel_service_specs,
)

CLUSTERS = ["cluster-1", "cluster-2", "cluster-3"]


def quiet_wan():
    return WanLink(base_delay_s=0.010, jitter_p99_ratio=1.0,
                   drift_amplitude=0.0, spike_prob=0.0)


def rr_factory(mesh):
    def factory(service, backend_names, source_cluster):
        return RoundRobinBalancer(backend_names)
    return factory


@pytest.fixture
def mesh(sim, rng_registry):
    return ServiceMesh(sim, rng_registry, clusters=CLUSTERS,
                       wan_link=quiet_wan())


class TestSpecs:
    def test_parallel_calls_validation(self):
        with pytest.raises(ConfigError):
            ParallelCalls(())

    def test_cached_read_validation(self):
        with pytest.raises(ConfigError):
            CachedRead("cache", "db", hit_prob=1.5)

    def test_endpoint_validation(self):
        with pytest.raises(ConfigError):
            EndpointSpec("e", weight=0.0, stages=())


class TestCallGraphExecution:
    def make_app(self, sim, mesh, rng_registry, stages, hit_prob=1.0):
        specs = {
            "root": ServiceSpec("root", 0.001, 0.001),
            "child-a": ServiceSpec("child-a", 0.002, 0.002),
            "child-b": ServiceSpec("child-b", 0.003, 0.003),
            "cache": ServiceSpec("cache", 0.0005, 0.0005, local_only=True),
            "db": ServiceSpec("db", 0.004, 0.004, local_only=True),
        }
        deploy_callgraph_services(mesh, specs)
        endpoints = [EndpointSpec("only", 1.0, stages=stages)]
        return CallGraphApp(
            mesh, specs, endpoints, root_service="root",
            client_cluster="cluster-1",
            balancer_factory=rr_factory(mesh),
            rng=rng_registry.stream("app"))

    def test_sequential_stages_accumulate_latency(self, sim, mesh,
                                                  rng_registry):
        app = self.make_app(sim, mesh, rng_registry, stages=(
            ParallelCalls(("child-a",)),
            ParallelCalls(("child-b",)),
        ))
        process = sim.spawn(app.dispatch())
        sim.run()
        record = process.value
        assert record.success
        # root 1ms + two sequential child calls (2 + 3 ms, + network).
        assert record.latency_s >= 0.006

    def test_parallel_stage_takes_max_not_sum(self, sim, mesh, rng_registry):
        app = self.make_app(sim, mesh, rng_registry, stages=(
            ParallelCalls(("child-a", "child-b")),
        ))
        process = sim.spawn(app.dispatch())
        sim.run()
        sequential_estimate = 0.001 + 0.002 + 0.003
        # Parallel: root + max(children) + hops, well under sequential+hops.
        assert process.value.latency_s < sequential_estimate + 0.045

    def test_cache_hit_skips_db(self, sim, mesh, rng_registry):
        app = self.make_app(sim, mesh, rng_registry, stages=(
            CachedRead("cache", "db", hit_prob=1.0),
        ))
        process = sim.spawn(app.dispatch())
        sim.run()
        db_backend = mesh.deployment("db").backend_in("cluster-1")
        assert sum(r.completed for r in db_backend.replicas) == 0

    def test_cache_miss_hits_db(self, sim, mesh, rng_registry):
        app = self.make_app(sim, mesh, rng_registry, stages=(
            CachedRead("cache", "db", hit_prob=0.0),
        ))
        process = sim.spawn(app.dispatch())
        sim.run()
        total_db = sum(
            sum(r.completed for r in
                mesh.deployment("db").backend_in(c).replicas)
            for c in CLUSTERS)
        assert total_db == 1

    def test_local_only_service_stays_in_callers_cluster(self, sim, mesh,
                                                         rng_registry):
        app = self.make_app(sim, mesh, rng_registry, stages=(
            CachedRead("cache", "db", hit_prob=0.0),
        ))
        for _ in range(12):
            process = sim.spawn(app.dispatch())
            sim.run()
        # The root is pinned to cluster-1; children (none here) vary. The
        # db call happens in the root's cluster == cluster-1 only.
        for cluster in ("cluster-2", "cluster-3"):
            backend = mesh.deployment("db").backend_in(cluster)
            assert sum(r.completed for r in backend.replicas) == 0

    def test_undeclared_service_rejected(self, sim, mesh, rng_registry):
        specs = {"root": ServiceSpec("root", 0.001, 0.001, stages=(
            ParallelCalls(("ghost",)),))}
        deploy_callgraph_services(mesh, specs)
        app = CallGraphApp(
            mesh, specs, [EndpointSpec("e", 1.0, stages=None)],
            root_service="root", client_cluster="cluster-1",
            balancer_factory=rr_factory(mesh),
            rng=rng_registry.stream("app"))
        process = sim.spawn(app.dispatch())
        process.defused = True
        sim.run()
        assert not process.ok


class TestHotelApplication:
    def test_specs_cover_paper_services(self):
        specs = hotel_service_specs()
        for name in ("frontend", "search", "geo", "rate", "profile",
                     "recommendation", "user", "reservation"):
            assert name in specs
        # Caches and databases are stateful -> local only.
        for name, spec in specs.items():
            if name.startswith(("memcached-", "mongodb-")):
                assert spec.local_only, name

    def test_endpoint_mix_matches_wrk2_script(self):
        endpoints = {e.name: e.weight for e in hotel_endpoints()}
        assert endpoints["search-hotel"] == pytest.approx(60.0)
        assert endpoints["recommend"] == pytest.approx(39.0)
        assert endpoints["user-login"] == pytest.approx(0.5)
        assert endpoints["reserve"] == pytest.approx(0.5)

    def test_end_to_end_request(self, sim, mesh, rng_registry):
        app = build_hotel_application(
            mesh, "cluster-1", rr_factory(mesh),
            rng_registry.stream("hotel"))
        app.prewire()
        process = sim.spawn(app.dispatch())
        sim.run()
        record = process.value
        assert record.success
        assert record.service == "frontend"
        assert 0.001 < record.latency_s < 1.0

    def test_endpoint_mix_sampling(self, sim, mesh, rng_registry):
        app = build_hotel_application(
            mesh, "cluster-1", rr_factory(mesh),
            rng_registry.stream("hotel"))
        counts = collections.Counter(
            app._pick_endpoint().name for _ in range(2000))
        assert counts["search-hotel"] > counts["recommend"] > counts["reserve"]

    def test_prewire_creates_all_proxies(self, sim, mesh, rng_registry):
        app = build_hotel_application(
            mesh, "cluster-1", rr_factory(mesh),
            rng_registry.stream("hotel"))
        app.prewire()
        specs = hotel_service_specs()
        # Every non-root service has a proxy in every cluster.
        expected = 1 + (len(specs) - 1) * len(CLUSTERS)
        assert len(mesh.proxies()) == expected
