"""Edge cases of the call-graph engine: failures, fan-out, lifecycle."""

import pytest

from repro.balancers.round_robin import RoundRobinBalancer
from repro.errors import ConfigError
from repro.mesh.mesh import ServiceMesh
from repro.mesh.network import WanLink
from repro.workloads.callgraph import (
    CallGraphApp,
    EndpointSpec,
    ParallelCalls,
    ServiceSpec,
    deploy_callgraph_services,
)
from repro.workloads.profiles import (
    BackendProfile,
    constant_series,
)

CLUSTERS = ["cluster-1", "cluster-2"]


def quiet_wan():
    return WanLink(base_delay_s=0.010, jitter_p99_ratio=1.0,
                   drift_amplitude=0.0, spike_prob=0.0)


def make_app(sim, rng_registry, specs, stages, noise=None):
    mesh = ServiceMesh(sim, rng_registry, clusters=CLUSTERS,
                       wan_link=quiet_wan())
    deploy_callgraph_services(mesh, specs, cluster_noise=noise)
    app = CallGraphApp(
        mesh, specs, [EndpointSpec("only", 1.0, stages=stages)],
        root_service="root", client_cluster="cluster-1",
        balancer_factory=lambda s, names, src: RoundRobinBalancer(names),
        rng=rng_registry.stream("app"))
    return mesh, app


class TestFailurePropagation:
    def failing_specs(self):
        return {
            "root": ServiceSpec("root", 0.001, 0.001),
            "healthy": ServiceSpec("healthy", 0.001, 0.001),
            "broken": ServiceSpec("broken", 0.001, 0.001),
        }

    def deploy_with_broken(self, sim, rng_registry, stages):
        mesh = ServiceMesh(sim, rng_registry, clusters=CLUSTERS,
                           wan_link=quiet_wan())
        for name in ("root", "healthy"):
            mesh.deploy_service(name, profiles={
                c: BackendProfile(constant_series(0.001),
                                  constant_series(0.001),
                                  constant_series(0.0))
                for c in CLUSTERS})
        mesh.deploy_service("broken", profiles={
            c: BackendProfile(constant_series(0.001),
                              constant_series(0.001),
                              constant_series(1.0))
            for c in CLUSTERS})
        app = CallGraphApp(
            mesh, self.failing_specs(),
            [EndpointSpec("only", 1.0, stages=stages)],
            root_service="root", client_cluster="cluster-1",
            balancer_factory=lambda s, n, src: RoundRobinBalancer(n),
            rng=rng_registry.stream("app"))
        return app

    def test_failed_child_fails_the_request(self, sim, rng_registry):
        app = self.deploy_with_broken(sim, rng_registry, stages=(
            ParallelCalls(("broken",)),
        ))
        process = sim.spawn(app.dispatch())
        sim.run()
        assert process.value.success is False

    def test_one_failed_parallel_branch_fails_the_request(self, sim,
                                                          rng_registry):
        app = self.deploy_with_broken(sim, rng_registry, stages=(
            ParallelCalls(("healthy", "broken")),
        ))
        process = sim.spawn(app.dispatch())
        sim.run()
        assert process.value.success is False

    def test_healthy_branches_alone_succeed(self, sim, rng_registry):
        app = self.deploy_with_broken(sim, rng_registry, stages=(
            ParallelCalls(("healthy",)),
            ParallelCalls(("healthy",)),
        ))
        process = sim.spawn(app.dispatch())
        sim.run()
        assert process.value.success is True


class TestFanOut:
    def test_wide_parallel_fanout(self, sim, rng_registry):
        specs = {"root": ServiceSpec("root", 0.001, 0.001)}
        children = tuple(f"child-{i}" for i in range(8))
        for child in children:
            specs[child] = ServiceSpec(child, 0.005, 0.005)
        _mesh, app = make_app(
            sim, rng_registry, specs, stages=(ParallelCalls(children),))
        process = sim.spawn(app.dispatch())
        sim.run()
        record = process.value
        assert record.success
        # All eight children in parallel: latency ~ one child + hops,
        # nowhere near 8 x 5 ms serial.
        assert record.latency_s < 0.040

    def test_deep_sequential_chain(self, sim, rng_registry):
        specs = {"root": ServiceSpec("root", 0.001, 0.001)}
        stages = tuple(
            ParallelCalls((f"step-{i}",)) for i in range(6))
        for i in range(6):
            specs[f"step-{i}"] = ServiceSpec(f"step-{i}", 0.002, 0.002)
        _mesh, app = make_app(sim, rng_registry, specs, stages=stages)
        process = sim.spawn(app.dispatch())
        sim.run()
        assert process.value.success
        assert process.value.latency_s >= 6 * 0.002


class TestLifecycle:
    def test_start_stop_idempotent(self, sim, rng_registry):
        specs = {
            "root": ServiceSpec("root", 0.001, 0.001),
            "leaf": ServiceSpec("leaf", 0.001, 0.001),
        }
        _mesh, app = make_app(sim, rng_registry, specs,
                              stages=(ParallelCalls(("leaf",)),))
        app.prewire()
        app.start(sim)
        app.start(sim)  # second start must not double the loops
        app.stop()
        app.stop()

    def test_endpoint_without_stages_is_pure_root(self, sim, rng_registry):
        specs = {"root": ServiceSpec("root", 0.003, 0.003)}
        _mesh, app = make_app(sim, rng_registry, specs, stages=())
        process = sim.spawn(app.dispatch())
        sim.run()
        assert process.value.success
        assert process.value.latency_s < 0.010

    def test_needs_endpoints(self, sim, rng_registry):
        mesh = ServiceMesh(sim, rng_registry, clusters=CLUSTERS,
                           wan_link=quiet_wan())
        specs = {"root": ServiceSpec("root", 0.001, 0.001)}
        deploy_callgraph_services(mesh, specs)
        with pytest.raises(ConfigError):
            CallGraphApp(
                mesh, specs, [], root_service="root",
                client_cluster="cluster-1",
                balancer_factory=lambda s, n, src: RoundRobinBalancer(n),
                rng=rng_registry.stream("app"))

    def test_unknown_root_rejected(self, sim, rng_registry):
        mesh = ServiceMesh(sim, rng_registry, clusters=CLUSTERS,
                           wan_link=quiet_wan())
        specs = {"root": ServiceSpec("root", 0.001, 0.001)}
        deploy_callgraph_services(mesh, specs)
        with pytest.raises(ConfigError):
            CallGraphApp(
                mesh, specs, [EndpointSpec("e", 1.0, stages=())],
                root_service="ghost", client_cluster="cluster-1",
                balancer_factory=lambda s, n, src: RoundRobinBalancer(n),
                rng=rng_registry.stream("app"))
