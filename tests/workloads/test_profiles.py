"""Tests for time-varying workload profiles."""

import math

import pytest

from repro.errors import ConfigError
from repro.workloads.profiles import (
    BackendProfile,
    PiecewiseSeries,
    constant_backend_profile,
    constant_series,
    pulse_series,
    scaled_series,
)


class TestPiecewiseSeries:
    def test_needs_points(self):
        with pytest.raises(ConfigError):
            PiecewiseSeries([])

    def test_duplicate_times_rejected(self):
        with pytest.raises(ConfigError):
            PiecewiseSeries([(0.0, 1.0), (0.0, 2.0)])

    def test_constant(self):
        series = constant_series(7.0)
        assert series.value_at(0.0) == 7.0
        assert series.value_at(1e6) == 7.0

    def test_linear_interpolation(self):
        series = PiecewiseSeries([(0.0, 0.0), (10.0, 100.0)])
        assert series.value_at(5.0) == 50.0
        assert series.value_at(2.5) == 25.0

    def test_clamps_outside_range_without_period(self):
        series = PiecewiseSeries([(10.0, 1.0), (20.0, 2.0)])
        assert series.value_at(0.0) == 1.0
        assert series.value_at(99.0) == 2.0

    def test_period_validation(self):
        with pytest.raises(ConfigError):
            PiecewiseSeries([(0.0, 1.0), (10.0, 2.0)], period_s=10.0)

    def test_periodic_wrapping(self):
        series = PiecewiseSeries(
            [(0.0, 0.0), (10.0, 100.0)], period_s=20.0)
        assert series.value_at(25.0) == series.value_at(5.0)
        assert series.value_at(45.0) == series.value_at(5.0)

    def test_wrap_interpolates_across_seam(self):
        series = PiecewiseSeries(
            [(0.0, 0.0), (10.0, 100.0)], period_s=20.0)
        # Between t=10 (value 100) and t=20==0 (value 0) the seam
        # interpolates linearly: at t=15 we are halfway.
        assert series.value_at(15.0) == pytest.approx(50.0)

    def test_min_max(self):
        series = PiecewiseSeries([(0.0, 3.0), (5.0, 9.0), (10.0, 1.0)])
        assert series.min_value() == 1.0
        assert series.max_value() == 9.0


class TestScaledAndPulse:
    def test_scaled_series(self):
        base = PiecewiseSeries([(0.0, 2.0), (10.0, 4.0)], period_s=20.0)
        scaled = scaled_series(base, 0.5)
        assert scaled.value_at(0.0) == 1.0
        assert scaled.value_at(10.0) == 2.0
        assert scaled.period_s == 20.0

    def test_pulse_series_mostly_base(self, rng):
        series = pulse_series(rng, 600.0, pulse_prob=0.0)
        assert series.max_value() == 1.0

    def test_pulse_series_has_pulses(self, rng):
        series = pulse_series(rng, 600.0, pulse_prob=1.0, pulse_lo=3.0,
                              pulse_hi=3.0)
        assert series.min_value() == 3.0

    def test_pulse_duration_validation(self, rng):
        with pytest.raises(ConfigError):
            pulse_series(rng, 0.0)


class TestBackendProfile:
    def test_constant_profile_samples_in_range(self, rng):
        profile = constant_backend_profile(0.05, 0.20)
        samples = sorted(
            profile.sample_service_time(rng, 0.0) for _ in range(20_000))
        median = samples[len(samples) // 2]
        p99 = samples[int(len(samples) * 0.99)]
        assert math.isclose(median, 0.05, rel_tol=0.05)
        assert math.isclose(p99, 0.20, rel_tol=0.15)

    def test_failure_sampling(self, rng):
        healthy = constant_backend_profile(0.05, 0.1)
        assert not any(
            healthy.sample_failure(rng, 0.0) for _ in range(100))
        broken = constant_backend_profile(0.05, 0.1, failure_prob=1.0)
        assert all(broken.sample_failure(rng, 0.0) for _ in range(100))

    def test_time_varying_failure(self, rng):
        profile = BackendProfile(
            median_latency_s=constant_series(0.05),
            p99_latency_s=constant_series(0.1),
            failure_prob=PiecewiseSeries([(0.0, 0.0), (10.0, 1.0)]),
        )
        assert not profile.sample_failure(rng, 0.0)
        assert profile.sample_failure(rng, 10.0)

    def test_p99_below_median_is_tolerated(self, rng):
        # Series may momentarily cross; sampling clamps tail >= median.
        profile = BackendProfile(
            median_latency_s=constant_series(0.1),
            p99_latency_s=constant_series(0.05),
            failure_prob=constant_series(0.0),
        )
        sample = profile.sample_service_time(rng, 0.0)
        assert sample > 0
