"""Tests for the ASCII chart renderers."""

import pytest

from repro.analysis.ascii_chart import render_bar_chart, render_line_chart


class TestLineChart:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_line_chart({})
        with pytest.raises(ValueError):
            render_line_chart({"s": []})

    def test_renders_glyphs_and_legend(self):
        chart = render_line_chart({
            "rising": [(0, 0.0), (1, 1.0), (2, 2.0)],
            "falling": [(0, 2.0), (1, 1.0), (2, 0.0)],
        }, width=30, height=8, title="two lines")
        assert "two lines" in chart
        assert "* = rising" in chart
        assert "o = falling" in chart
        assert "*" in chart and "o" in chart

    def test_axis_labels_show_extremes(self):
        chart = render_line_chart(
            {"s": [(0.0, 10.0), (100.0, 90.0)]}, width=20, height=5)
        assert "90" in chart and "10" in chart
        assert "100" in chart and "0" in chart

    def test_constant_series_does_not_crash(self):
        chart = render_line_chart({"flat": [(0, 5.0), (1, 5.0)]})
        assert "flat" in chart

    def test_dimensions_respected(self):
        chart = render_line_chart(
            {"s": [(0, 0), (1, 1)]}, width=40, height=10)
        plot_lines = [l for l in chart.splitlines() if "|" in l]
        assert len(plot_lines) == 10
        assert all(len(l.split("|", 1)[1]) == 40 for l in plot_lines)


class TestBarChart:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_bar_chart({})

    def test_non_positive_peak_rejected(self):
        with pytest.raises(ValueError):
            render_bar_chart({"a": 0.0})

    def test_bars_proportional(self):
        chart = render_bar_chart({"big": 100.0, "small": 25.0}, width=40)
        lines = {l.split()[0]: l for l in chart.splitlines()}
        big_bar = lines["big"].count("#")
        small_bar = lines["small"].count("#")
        assert big_bar == 40
        assert 8 <= small_bar <= 12

    def test_values_and_unit_shown(self):
        chart = render_bar_chart({"l3": 68.8}, unit=" ms")
        assert "68.8 ms" in chart
