"""The per-backend critical-path latency breakdown."""

import pytest

from repro.analysis import critical_path, render_critical_path
from repro.tracing import MeshTracer
from repro.tracing import model


def _simple_request(tracer, *, backend="api/cluster-2", exec_s=0.100,
                    queue_s=0.010, wan_s=0.050, attempts=1,
                    backoff_s=0.0, start=0.0):
    """Record one synthetic request trace with the given leg durations.

    With ``attempts > 1`` every attempt but the last fails instantly
    after ``exec_s`` and a back-off of ``backoff_s`` follows it.
    """
    ctx = tracer.trace()
    now = start
    root = ctx.start(model.REQUEST, model.CLIENT, now,
                     attributes={"service": "api"})
    rctx = ctx.child(root)
    for attempt_no in range(1, attempts + 1):
        final = attempt_no == attempts
        attempt = rctx.start(model.ATTEMPT, model.CLIENT, now,
                             attributes={"backend": backend,
                                         "attempt": attempt_no})
        actx = rctx.child(attempt)
        send = actx.start(model.WAN_SEND, model.NETWORK, now)
        actx.end(send, now + wan_s / 2)
        now += wan_s / 2
        queue = actx.start(model.SERVER_QUEUE, model.SERVER, now)
        actx.end(queue, now + queue_s)
        now += queue_s
        execute = actx.start(model.SERVER_EXEC, model.SERVER, now)
        actx.end(execute, now + exec_s,
                 status=model.OK if final else model.ERROR)
        now += exec_s
        recv = actx.start(model.WAN_RECV, model.NETWORK, now)
        actx.end(recv, now + wan_s / 2)
        now += wan_s / 2
        rctx.end(attempt, now, status=model.OK if final else model.ERROR)
        if not final and backoff_s > 0:
            backoff = rctx.start(model.RETRY_BACKOFF, model.INTERNAL, now)
            rctx.end(backoff, now + backoff_s)
            now += backoff_s
    ctx.end(root, now)
    root.attributes["backend"] = backend
    root.attributes["attempts"] = attempts
    return now - start


class TestCriticalPath:
    def test_single_attempt_decomposition(self):
        tracer = MeshTracer()
        total = _simple_request(tracer)
        breakdown = critical_path(tracer.recorder)
        row = breakdown["api/cluster-2"]
        assert row.requests == 1
        assert row.attempts == 1
        assert row.mean_attempts == 1.0
        assert row.total_s == pytest.approx(total)
        assert row.exec_s == pytest.approx(0.100)
        assert row.queue_s == pytest.approx(0.010)
        assert row.wan_s == pytest.approx(0.050)
        assert row.retry_s == 0.0
        assert row.other_s == pytest.approx(0.0, abs=1e-9)
        # Shares cover the whole client-perceived latency.
        shares = sum(row.share(part) for part in
                     (row.exec_s, row.queue_s, row.wan_s, row.retry_s,
                      row.other_s))
        assert shares == pytest.approx(1.0)

    def test_retries_attributed_to_retry_component(self):
        tracer = MeshTracer()
        _simple_request(tracer, attempts=3, backoff_s=0.020)
        row = critical_path(tracer.recorder)["api/cluster-2"]
        assert row.attempts == 3
        # Two failed attempts (0.160 each) + two back-offs (0.020 each).
        assert row.retry_s == pytest.approx(2 * 0.160 + 2 * 0.020)
        # Final-attempt legs are still split out individually.
        assert row.exec_s == pytest.approx(0.100)
        assert row.wan_s == pytest.approx(0.050)

    def test_aggregates_per_backend(self):
        tracer = MeshTracer()
        _simple_request(tracer, backend="api/cluster-1", exec_s=0.020)
        _simple_request(tracer, backend="api/cluster-1", exec_s=0.040,
                        start=5.0)
        _simple_request(tracer, backend="api/cluster-2", start=9.0)
        breakdown = critical_path(tracer.recorder)
        assert breakdown["api/cluster-1"].requests == 2
        assert breakdown["api/cluster-1"].exec_s == pytest.approx(0.060)
        assert breakdown["api/cluster-2"].requests == 1

    def test_abandoned_leg_clipped_to_attempt_window(self):
        # A deadline-abandoned exec span may close long after the client
        # gave up (blackholed replica released on fault revert); only the
        # overlap with the attempt counts, so no share can exceed 100 %.
        tracer = MeshTracer()
        ctx = tracer.trace()
        root = ctx.start(model.REQUEST, model.CLIENT, 0.0,
                         attributes={"backend": "api/cluster-2",
                                     "attempts": 1})
        rctx = ctx.child(root)
        attempt = rctx.start(model.ATTEMPT, model.CLIENT, 0.0,
                             attributes={"backend": "api/cluster-2"})
        actx = rctx.child(attempt)
        execute = actx.start(model.SERVER_EXEC, model.SERVER, 0.2)
        rctx.end(attempt, 1.0, status=model.TIMEOUT)  # 1 s deadline fires
        ctx.end(root, 1.0, status=model.ERROR)
        actx.end(execute, 20.0)  # parked request releases much later
        row = critical_path(tracer.recorder)["api/cluster-2"]
        assert row.total_s == pytest.approx(1.0)
        assert row.exec_s == pytest.approx(0.8)  # 0.2..1.0 only
        assert row.share(row.exec_s) <= 1.0

    def test_skips_unfinished_and_backendless_traces(self):
        tracer = MeshTracer()
        ctx = tracer.trace()
        ctx.start(model.REQUEST, model.CLIENT, 0.0)  # never finished
        other = tracer.trace()
        span = other.start(model.REQUEST, model.CLIENT, 0.0)
        other.end(span, 1.0)  # finished but no backend attribute
        assert critical_path(tracer.recorder) == {}

    def test_accepts_plain_span_iterables(self):
        tracer = MeshTracer()
        _simple_request(tracer)
        from_list = critical_path(list(tracer.recorder.spans))
        from_recorder = critical_path(tracer.recorder)
        assert from_list.keys() == from_recorder.keys()


class TestRender:
    def test_renders_table_with_attempt_column(self):
        tracer = MeshTracer()
        _simple_request(tracer, attempts=2, backoff_s=0.010)
        text = render_critical_path(critical_path(tracer.recorder))
        assert "critical path" in text
        assert "attempts" in text
        assert "api/cluster-2" in text
        assert "2.00" in text  # mean attempts

    def test_empty_breakdown_rejected(self):
        with pytest.raises(ValueError):
            render_critical_path({})
