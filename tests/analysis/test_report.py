"""Tests for the wrk2-style latency reports."""

import pytest

from repro.analysis.report import (
    latency_spectrum,
    render_comparison,
    render_spectrum,
)
from repro.mesh.request import RequestRecord


def record(latency_s):
    return RequestRecord(
        request_id=0, service="svc", source_cluster="c1", backend="svc/c1",
        intended_start_s=0.0, start_s=0.0, end_s=latency_s, success=True)


@pytest.fixture
def records():
    return [record(0.001 * (i + 1)) for i in range(100)]


class TestSpectrum:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            latency_spectrum([])

    def test_spectrum_is_monotone(self, records):
        spectrum = latency_spectrum(records)
        values = [latency for _q, latency in spectrum]
        assert values == sorted(values)

    def test_max_is_last(self, records):
        spectrum = dict(latency_spectrum(records))
        assert spectrum[1.0] == pytest.approx(100.0)  # 100 ms max

    def test_render_contains_percentiles_and_count(self, records):
        text = render_spectrum(records, title="my run")
        assert "my run" in text
        assert "99%" in text
        assert "99.9%" in text
        assert "100" in text


class TestComparison:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_comparison({})

    def test_side_by_side(self, records):
        fast = [record(r.latency_s / 2) for r in records]
        text = render_comparison({"slow": records, "fast": fast})
        assert "slow" in text and "fast" in text
        assert text.count("%") >= 7
