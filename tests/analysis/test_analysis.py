"""Tests for exact percentiles and record aggregations."""

import math

import pytest

from repro.analysis.percentiles import exact_percentile, percentile_summary
from repro.analysis.stats import (
    latency_timeline,
    relative_decrease,
    rps_timeline,
    success_rate,
)
from repro.mesh.request import RequestRecord


def record(intended=0.0, end=0.1, success=True, backend="svc/c1"):
    return RequestRecord(
        request_id=0, service="svc", source_cluster="c1", backend=backend,
        intended_start_s=intended, start_s=intended, end_s=end,
        success=success)


class TestExactPercentile:
    def test_single_value(self):
        assert exact_percentile([42.0], 0.99) == 42.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            exact_percentile([], 0.5)

    def test_invalid_quantile_rejected(self):
        with pytest.raises(ValueError):
            exact_percentile([1.0], 1.5)

    def test_median_of_odd_count(self):
        assert exact_percentile([3.0, 1.0, 2.0], 0.5) == 2.0

    def test_interpolation(self):
        assert exact_percentile([0.0, 10.0], 0.25) == 2.5

    def test_extremes(self):
        values = [5.0, 1.0, 9.0]
        assert exact_percentile(values, 0.0) == 1.0
        assert exact_percentile(values, 1.0) == 9.0

    def test_matches_numpy(self):
        numpy = pytest.importorskip("numpy")

        values = [float(i) ** 1.3 for i in range(1, 200)]
        for q in (0.5, 0.9, 0.99):
            assert math.isclose(
                exact_percentile(values, q),
                float(numpy.percentile(values, q * 100)))

    def test_summary_keys(self):
        summary = percentile_summary([1.0, 2.0, 3.0])
        assert set(summary) == {"p50", "p90", "p99"}


class TestAggregations:
    def test_success_rate(self):
        records = [record(success=True)] * 3 + [record(success=False)]
        assert success_rate(records) == 0.75

    def test_success_rate_empty(self):
        assert success_rate([]) == 1.0

    def test_relative_decrease(self):
        assert math.isclose(relative_decrease(100.0, 74.0), 0.26)
        assert relative_decrease(100.0, 120.0) < 0

    def test_relative_decrease_invalid_baseline(self):
        with pytest.raises(ValueError):
            relative_decrease(0.0, 1.0)

    def test_latency_timeline_buckets(self):
        records = [
            record(intended=1.0, end=1.1),
            record(intended=5.0, end=5.2),
            record(intended=15.0, end=15.4),
        ]
        timeline = latency_timeline(records, bucket_s=10.0)["all"]
        assert [t for t, _p in timeline] == [0.0, 10.0]
        first_bucket = timeline[0][1]
        assert first_bucket["count"] == 2
        assert "p50" in first_bucket and "p99" in first_bucket

    def test_latency_timeline_grouped_by_backend(self):
        records = [
            record(backend="svc/c1"),
            record(backend="svc/c2"),
        ]
        timeline = latency_timeline(
            records, key=lambda r: r.backend)
        assert set(timeline) == {"svc/c1", "svc/c2"}

    def test_rps_timeline(self):
        records = [record(intended=float(i) * 0.1) for i in range(100)]
        series = rps_timeline(records, bucket_s=5.0)
        assert series[0] == (0.0, 10.0)

    def test_invalid_bucket_width(self):
        with pytest.raises(ValueError):
            latency_timeline([], bucket_s=0.0)
        with pytest.raises(ValueError):
            rps_timeline([], bucket_s=-1.0)
