"""Tests for the HPA-style autoscaler extension."""

import pytest

from repro.errors import ConfigError
from repro.mesh.autoscaler import Autoscaler, AutoscalerConfig
from repro.mesh.service import Backend
from repro.workloads.profiles import constant_backend_profile


@pytest.fixture
def backend(sim, rng_registry):
    # Deterministic 1 s service time so occupancy is controllable.
    return Backend(sim, "svc", "cluster-1",
                   constant_backend_profile(1.0, 1.0), rng_registry,
                   replicas=2, replica_capacity=4)


def flood(sim, backend, count):
    for _ in range(count):
        sim.spawn(backend.handle())


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            AutoscalerConfig(target_utilization=0.0)
        with pytest.raises(ConfigError):
            AutoscalerConfig(min_replicas=0)
        with pytest.raises(ConfigError):
            AutoscalerConfig(min_replicas=5, max_replicas=2)
        with pytest.raises(ConfigError):
            AutoscalerConfig(interval_s=0.0)


class TestScaling:
    def test_desired_replicas_tracks_utilization(self, sim, backend):
        autoscaler = Autoscaler(backend, AutoscalerConfig(
            target_utilization=0.5, max_replicas=10))
        # 2 replicas x capacity 4 = 8 slots; flood 8 -> utilization 1.0
        # -> desired = ceil(2 * 1.0 / 0.5) = 4.
        flood(sim, backend, 8)
        sim.run(until=0.1)
        assert autoscaler.desired_replicas() == 4

    def test_scale_up_after_delay(self, sim, backend):
        config = AutoscalerConfig(
            target_utilization=0.5, interval_s=5.0, scale_up_delay_s=10.0,
            max_replicas=10)
        autoscaler = Autoscaler(backend, config)
        loop = sim.spawn(autoscaler.run(sim))

        def keep_loaded(sim):
            while sim.now < 30.0:
                flood(sim, backend, 8)
                yield sim.timeout(1.0)

        sim.spawn(keep_loaded(sim))
        sim.run(until=5.5)
        assert autoscaler.replica_count == 2  # decision made, pods starting
        sim.run(until=16.0)
        assert autoscaler.replica_count > 2   # pods arrived after delay
        loop.interrupt()
        sim.run()

    def test_never_exceeds_max(self, sim, backend):
        config = AutoscalerConfig(
            target_utilization=0.1, interval_s=2.0, scale_up_delay_s=0.5,
            max_replicas=3)
        autoscaler = Autoscaler(backend, config)
        loop = sim.spawn(autoscaler.run(sim))

        def keep_loaded(sim):
            while sim.now < 20.0:
                flood(sim, backend, 20)
                yield sim.timeout(0.5)

        sim.spawn(keep_loaded(sim))
        sim.run(until=20.0)
        assert autoscaler.replica_count <= 3
        loop.interrupt()
        sim.run()

    def test_scale_down_respects_cooldown_and_min(self, sim, backend):
        config = AutoscalerConfig(
            target_utilization=0.5, interval_s=5.0,
            scale_down_cooldown_s=30.0, min_replicas=1)
        autoscaler = Autoscaler(backend, config)
        loop = sim.spawn(autoscaler.run(sim))
        # No load at all: scale down toward min, one per cooldown window.
        sim.run(until=40.0)
        down_events = [t for t, delta in autoscaler.scale_events
                       if delta == -1]
        assert len(down_events) == 1  # cooldown throttles to one in 40 s
        sim.run(until=200.0)
        assert autoscaler.replica_count == 1
        loop.interrupt()
        sim.run()

    def test_scale_events_recorded(self, sim, backend):
        config = AutoscalerConfig(
            target_utilization=0.5, interval_s=5.0, scale_up_delay_s=1.0)
        autoscaler = Autoscaler(backend, config)
        flood(sim, backend, 8)
        sim.run(until=0.1)  # let the flood occupy the replicas
        autoscaler.step(sim)
        sim.run(until=2.0)
        assert autoscaler.scale_events
        assert all(delta == +1 for _t, delta in autoscaler.scale_events)
