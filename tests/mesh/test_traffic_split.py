"""Tests for the SMI-style TrafficSplit."""

import collections

import pytest

from repro.errors import ConfigError, MeshError
from repro.mesh.traffic_split import TrafficSplit


@pytest.fixture
def split(sim):
    return TrafficSplit(sim, "svc", ["a", "b", "c"],
                        propagation_delay_s=0.5)


class TestConstruction:
    def test_needs_backends(self, sim):
        with pytest.raises(ConfigError):
            TrafficSplit(sim, "svc", [])

    def test_rejects_duplicates(self, sim):
        with pytest.raises(ConfigError):
            TrafficSplit(sim, "svc", ["a", "a"])

    def test_negative_propagation_rejected(self, sim):
        with pytest.raises(ConfigError):
            TrafficSplit(sim, "svc", ["a"], propagation_delay_s=-1.0)

    def test_starts_with_equal_weights(self, split):
        assert split.weights == {"a": 1, "b": 1, "c": 1}


class TestSetWeights:
    def test_unknown_backend_rejected(self, sim, split):
        with pytest.raises(MeshError):
            split.set_weights({"ghost": 5}, now=sim.now)

    def test_non_integer_weight_rejected(self, sim, split):
        with pytest.raises(MeshError):
            split.set_weights({"a": 1.5}, now=sim.now)
        with pytest.raises(MeshError):
            split.set_weights({"a": -1}, now=sim.now)

    def test_weights_apply_after_propagation_delay(self, sim, split):
        split.set_weights({"a": 10, "b": 1, "c": 1}, now=sim.now)
        assert split.weights == {"a": 1, "b": 1, "c": 1}
        sim.run(until=0.4)
        assert split.weights["a"] == 1
        sim.run(until=0.6)
        assert split.weights["a"] == 10

    def test_zero_propagation_applies_immediately(self, sim):
        split = TrafficSplit(sim, "svc", ["a", "b"],
                             propagation_delay_s=0.0)
        split.set_weights({"a": 7, "b": 3}, now=sim.now)
        assert split.weights == {"a": 7, "b": 3}

    def test_partial_update_keeps_other_weights(self, sim):
        split = TrafficSplit(sim, "svc", ["a", "b"],
                             propagation_delay_s=0.0)
        split.set_weights({"a": 5}, now=sim.now)
        assert split.weights == {"a": 5, "b": 1}

    def test_update_count(self, sim, split):
        split.set_weights({"a": 2}, now=sim.now)
        split.set_weights({"a": 3}, now=sim.now)
        sim.run()
        assert split.update_count == 2


class TestPick:
    def test_single_backend_always_picked(self, sim, rng):
        split = TrafficSplit(sim, "svc", ["only"])
        assert all(split.pick(rng) == "only" for _ in range(10))

    def test_distribution_follows_weights(self, sim, rng):
        split = TrafficSplit(sim, "svc", ["a", "b"],
                             propagation_delay_s=0.0)
        split.set_weights({"a": 3, "b": 1}, now=sim.now)
        counts = collections.Counter(split.pick(rng) for _ in range(8000))
        ratio = counts["a"] / counts["b"]
        assert 2.5 < ratio < 3.6

    def test_zero_weight_backend_gets_no_traffic(self, sim, rng):
        split = TrafficSplit(sim, "svc", ["a", "b"],
                             propagation_delay_s=0.0)
        split.set_weights({"a": 0, "b": 5}, now=sim.now)
        assert all(split.pick(rng) == "b" for _ in range(100))

    def test_all_zero_weights_fall_back_to_uniform(self, sim, rng):
        split = TrafficSplit(sim, "svc", ["a", "b"],
                             propagation_delay_s=0.0)
        split.set_weights({"a": 0, "b": 0}, now=sim.now)
        counts = collections.Counter(split.pick(rng) for _ in range(1000))
        assert set(counts) == {"a", "b"}


class TestDynamicBackends:
    def test_add_backend_receives_traffic(self, sim, rng):
        split = TrafficSplit(sim, "svc", ["a"], propagation_delay_s=0.0)
        split.add_backend("b", weight=1)
        picks = {split.pick(rng) for _ in range(200)}
        assert picks == {"a", "b"}

    def test_add_duplicate_rejected(self, sim, split):
        with pytest.raises(MeshError):
            split.add_backend("a")

    def test_add_invalid_weight_rejected(self, sim, split):
        with pytest.raises(MeshError):
            split.add_backend("new", weight=-1)

    def test_remove_backend(self, sim, rng, split):
        split.remove_backend("c")
        assert set(split.backend_names()) == {"a", "b"}
        assert all(split.pick(rng) != "c" for _ in range(100))

    def test_remove_unknown_rejected(self, sim, split):
        with pytest.raises(MeshError):
            split.remove_backend("ghost")

    def test_remove_last_backend_rejected(self, sim, rng):
        split = TrafficSplit(sim, "svc", ["only"])
        with pytest.raises(MeshError):
            split.remove_backend("only")

    def test_controller_and_split_track_together(self, sim, rng):
        """§4 lifecycle: a backend added at runtime starts getting weights."""
        from repro.core.config import L3Config
        from repro.core.controller import L3Controller, MetricSample

        split = TrafficSplit(sim, "svc", ["a", "b"],
                             propagation_delay_s=0.0)

        class Source:
            def collect(self, names, now, window_s, percentile):
                return {
                    name: MetricSample(0.05, 1.0, 50.0, 1.0)
                    for name in names
                }

        controller = L3Controller(["a", "b"], Source(), split, L3Config())
        controller.reconcile(5.0)
        split.add_backend("c")
        controller.add_backend("c", now=5.0)
        controller.reconcile(10.0)
        assert "c" in controller.last_weights
        assert split.weights["c"] >= 1


class TestGenerationGuard:
    def test_older_push_never_overwrites_newer(self, sim):
        split = TrafficSplit(sim, "svc", ["a"], propagation_delay_s=0.0)
        # Apply generation 2 first, then replay generation 1 manually.
        split.set_weights({"a": 2}, now=sim.now)
        split._apply({"a": 99}, generation=1)
        assert split.weights["a"] == 2
