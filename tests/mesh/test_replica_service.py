"""Tests for replicas, backends, and service deployments."""

import pytest

from repro.errors import ConfigError, MeshError
from repro.mesh.cluster import backend_name, split_backend_name
from repro.mesh.replica import Replica
from repro.mesh.service import Backend, ServiceDeployment
from repro.workloads.profiles import constant_backend_profile


@pytest.fixture
def profile():
    return constant_backend_profile(0.010, 0.030)


def make_backend(sim, rng_registry, profile, replicas=3, capacity=4,
                 cluster="cluster-1"):
    return Backend(sim, "svc", cluster, profile, rng_registry,
                   replicas=replicas, replica_capacity=capacity)


class TestNames:
    def test_backend_name_roundtrip(self):
        name = backend_name("svc", "cluster-2")
        assert name == "svc/cluster-2"
        assert split_backend_name(name) == ("svc", "cluster-2")

    def test_split_invalid_name(self):
        with pytest.raises(ValueError):
            split_backend_name("no-slash")


class TestReplica:
    def test_capacity_validation(self, sim, rng, profile):
        with pytest.raises(ConfigError):
            Replica(sim, "r", profile, rng, capacity=0)

    def test_successful_request(self, sim, rng, profile):
        replica = Replica(sim, "r", profile, rng)
        process = sim.spawn(replica.handle())
        sim.run()
        assert process.value is True
        assert replica.completed == 1
        assert sim.now > 0  # service time elapsed

    def test_failure_injection(self, sim, rng):
        failing = constant_backend_profile(0.01, 0.03, failure_prob=1.0)
        replica = Replica(sim, "r", failing, rng)
        process = sim.spawn(replica.handle())
        sim.run()
        assert process.value is False
        assert replica.failed == 1
        assert sim.now == pytest.approx(failing.failure_latency_s)

    def test_queueing_beyond_capacity(self, sim, rng_registry):
        # Deterministic service time of 1 s, capacity 1 -> serialized.
        profile = constant_backend_profile(1.0, 1.0)
        replica = Replica(sim, "r", profile, rng_registry.stream("r"),
                          capacity=1)
        procs = [sim.spawn(replica.handle()) for _ in range(3)]
        sim.run()
        assert all(p.value for p in procs)
        assert sim.now == pytest.approx(3.0)

    def test_inflight_counts_queued_and_executing(self, sim, rng, profile):
        replica = Replica(sim, "r", constant_backend_profile(1.0, 1.0),
                          rng, capacity=1)
        for _ in range(3):
            sim.spawn(replica.handle())
        sim.run(until=0.5)
        assert replica.inflight == 3

    def test_body_runs_and_success_combines(self, sim, rng, profile):
        replica = Replica(sim, "r", profile, rng)
        log = []

        def body():
            log.append(sim.now)
            yield sim.timeout(0.5)
            return False  # downstream failure

        process = sim.spawn(replica.handle(body))
        sim.run()
        assert process.value is False
        assert log  # body executed after the replica's own compute time
        assert replica.failed == 1


class TestBackend:
    def test_replica_validation(self, sim, rng_registry, profile):
        with pytest.raises(ConfigError):
            make_backend(sim, rng_registry, profile, replicas=0)

    def test_round_robin_across_replicas(self, sim, rng_registry, profile):
        backend = make_backend(sim, rng_registry, profile, replicas=3)
        picks = [backend.pick_replica().name for _ in range(6)]
        assert picks[:3] == picks[3:]
        assert len(set(picks[:3])) == 3

    def test_add_remove_replica(self, sim, rng_registry, profile):
        backend = make_backend(sim, rng_registry, profile, replicas=1)
        backend.add_replica()
        assert len(backend.replicas) == 2
        backend.remove_replica()
        assert len(backend.replicas) == 1
        with pytest.raises(MeshError):
            backend.remove_replica()

    def test_replica_names_unique_across_scaling(self, sim, rng_registry,
                                                 profile):
        backend = make_backend(sim, rng_registry, profile, replicas=2)
        backend.remove_replica()
        replica = backend.add_replica()
        names = {r.name for r in backend.replicas}
        assert len(names) == len(backend.replicas)
        assert replica.name.endswith("/2")

    def test_backend_inflight_aggregates(self, sim, rng_registry):
        profile = constant_backend_profile(1.0, 1.0)
        backend = make_backend(sim, rng_registry, profile, replicas=2,
                               capacity=1)
        for _ in range(4):
            sim.spawn(backend.handle())
        sim.run(until=0.5)
        assert backend.inflight == 4


class TestServiceDeployment:
    def test_add_backend_validation(self, sim, rng_registry, profile):
        deployment = ServiceDeployment("svc")
        deployment.add_backend(make_backend(sim, rng_registry, profile))
        with pytest.raises(MeshError):
            deployment.add_backend(make_backend(sim, rng_registry, profile))

    def test_wrong_service_rejected(self, sim, rng_registry, profile):
        deployment = ServiceDeployment("other")
        with pytest.raises(MeshError):
            deployment.add_backend(make_backend(sim, rng_registry, profile))

    def test_backend_lookup(self, sim, rng_registry, profile):
        deployment = ServiceDeployment("svc")
        backend = make_backend(sim, rng_registry, profile)
        deployment.add_backend(backend)
        assert deployment.backend_in("cluster-1") is backend
        with pytest.raises(MeshError):
            deployment.backend_in("cluster-9")

    def test_backend_names_sorted_by_cluster(self, sim, rng_registry,
                                             profile):
        deployment = ServiceDeployment("svc")
        for cluster in ("cluster-2", "cluster-1"):
            deployment.add_backend(
                make_backend(sim, rng_registry, profile, cluster=cluster))
        assert deployment.backend_names() == [
            "svc/cluster-1", "svc/cluster-2"]
