"""Tests for the client proxy and mesh wiring."""

import pytest

from repro.balancers.round_robin import RoundRobinBalancer
from repro.balancers.static_weights import StaticWeightBalancer
from repro.errors import MeshError
from repro.mesh.mesh import ServiceMesh
from repro.mesh.network import WanLink
from repro.telemetry.scraper import Scraper
from repro.telemetry.timeseries import TimeSeriesStore
from repro.workloads.profiles import constant_backend_profile

CLUSTERS = ["cluster-1", "cluster-2", "cluster-3"]


@pytest.fixture
def mesh(sim, rng_registry):
    mesh = ServiceMesh(sim, rng_registry, clusters=CLUSTERS,
                       wan_link=WanLink(base_delay_s=0.010,
                                        jitter_p99_ratio=1.0,
                                        drift_amplitude=0.0,
                                        spike_prob=0.0))
    mesh.deploy_service("api", profiles={
        cluster: constant_backend_profile(0.010, 0.010)
        for cluster in CLUSTERS
    })
    return mesh


class TestServiceMesh:
    def test_duplicate_cluster_rejected(self, sim, rng_registry):
        with pytest.raises(MeshError):
            ServiceMesh(sim, rng_registry, clusters=["a", "a"])

    def test_duplicate_service_rejected(self, mesh):
        with pytest.raises(MeshError):
            mesh.deploy_service("api", profiles={
                "cluster-1": constant_backend_profile(0.01, 0.02)})

    def test_unknown_service_lookup(self, mesh):
        with pytest.raises(MeshError):
            mesh.deployment("ghost")

    def test_deploy_to_unknown_cluster_rejected(self, mesh):
        with pytest.raises(MeshError):
            mesh.deploy_service("other", profiles={
                "nowhere": constant_backend_profile(0.01, 0.02)})

    def test_proxy_for_unknown_cluster_rejected(self, mesh):
        balancer = RoundRobinBalancer(["api/cluster-1"])
        with pytest.raises(MeshError):
            mesh.client_proxy("nowhere", "api", balancer)

    def test_services_listing(self, mesh):
        assert mesh.services() == ["api"]


class TestDispatch:
    def test_local_request_latency_has_no_wan(self, sim, mesh):
        balancer = StaticWeightBalancer({"api/cluster-1": 1.0})
        proxy = mesh.client_proxy("cluster-1", "api", balancer)
        process = sim.spawn(proxy.dispatch())
        sim.run()
        record = process.value
        assert record.success
        assert record.backend == "api/cluster-1"
        # ~10 ms service + sub-ms local links and proxy overhead.
        assert 0.010 <= record.latency_s < 0.020

    def test_remote_request_pays_wan_round_trip(self, sim, mesh):
        balancer = StaticWeightBalancer({"api/cluster-2": 1.0})
        proxy = mesh.client_proxy("cluster-1", "api", balancer)
        process = sim.spawn(proxy.dispatch())
        sim.run()
        record = process.value
        # 10 ms service + 2 x 10 ms WAN.
        assert record.latency_s == pytest.approx(0.030, abs=0.005)

    def test_latency_measured_from_intended_start(self, sim, mesh):
        balancer = StaticWeightBalancer({"api/cluster-1": 1.0})
        proxy = mesh.client_proxy("cluster-1", "api", balancer)
        sim.run(until=5.0)
        process = sim.spawn(proxy.dispatch(intended_start_s=3.0))
        sim.run()
        record = process.value
        assert record.intended_start_s == 3.0
        assert record.latency_s == pytest.approx(
            record.end_s - 3.0)
        assert record.service_latency_s < record.latency_s

    def test_unknown_backend_pick_raises(self, sim, mesh):
        balancer = StaticWeightBalancer({"api/mars": 1.0})
        proxy = mesh.client_proxy("cluster-1", "api", balancer)
        process = sim.spawn(proxy.dispatch())
        process.defused = True
        sim.run()
        assert not process.ok

    def test_telemetry_recorded_per_backend(self, sim, mesh):
        balancer = RoundRobinBalancer(
            ["api/cluster-1", "api/cluster-2", "api/cluster-3"])
        proxy = mesh.client_proxy("cluster-1", "api", balancer)
        for _ in range(6):
            process = sim.spawn(proxy.dispatch())
            sim.run()
        for name, telemetry in proxy.telemetry.items():
            assert telemetry.requests_total.value == 2, name
            assert telemetry.inflight.value == 0

    def test_request_ids_monotone(self, sim, mesh):
        balancer = StaticWeightBalancer({"api/cluster-1": 1.0})
        proxy = mesh.client_proxy("cluster-1", "api", balancer)
        ids = []
        for _ in range(3):
            process = sim.spawn(proxy.dispatch())
            sim.run()
            ids.append(process.value.request_id)
        assert ids == [0, 1, 2]


class TestTelemetryRegistration:
    def test_scoped_scrape_names(self, sim, mesh):
        proxy = mesh.client_proxy(
            "cluster-2", "api",
            StaticWeightBalancer({"api/cluster-1": 1.0}))
        names = {t.scrape_name for t in proxy.telemetry.values()}
        assert names == {
            "cluster-2|api/cluster-1",
            "cluster-2|api/cluster-2",
            "cluster-2|api/cluster-3",
        }

    def test_register_all_telemetry_and_server_gauges(self, sim, mesh):
        mesh.client_proxy("cluster-1", "api",
                          RoundRobinBalancer(["api/cluster-1"]))
        store = TimeSeriesStore()
        scraper = Scraper(store)
        mesh.register_all_telemetry(scraper)
        scraper.scrape_once(5.0)
        assert "cluster-1|api/cluster-1" in store.backends()
        assert "server|api/cluster-1" in store.backends()

    def test_two_proxies_same_source_service_not_allowed_twice(
            self, sim, mesh):
        balancer = RoundRobinBalancer(["api/cluster-1"])
        mesh.client_proxy("cluster-1", "api", balancer)
        mesh.client_proxy("cluster-1", "api", balancer)
        store = TimeSeriesStore()
        scraper = Scraper(store)
        # Identical scrape names are aggregated rather than erroring.
        mesh.register_all_telemetry(scraper)
        scraper.scrape_once(5.0)
        assert "cluster-1|api/cluster-1" in store.backends()
