"""Tests for proxy request deadlines, down replicas, and ejection wiring."""

import pytest

from repro.balancers.round_robin import RoundRobinBalancer
from repro.balancers.static_weights import StaticWeightBalancer
from repro.errors import ConfigError, MeshError
from repro.mesh.ejection import OutlierEjectionConfig
from repro.mesh.mesh import ServiceMesh
from repro.mesh.network import WanLink
from repro.workloads.profiles import constant_backend_profile

CLUSTERS = ["cluster-1", "cluster-2", "cluster-3"]


@pytest.fixture
def mesh(sim, rng_registry):
    mesh = ServiceMesh(sim, rng_registry, clusters=CLUSTERS,
                       wan_link=WanLink(base_delay_s=0.010,
                                        jitter_p99_ratio=1.0,
                                        drift_amplitude=0.0,
                                        spike_prob=0.0))
    mesh.deploy_service("api", profiles={
        cluster: constant_backend_profile(0.010, 0.010)
        for cluster in CLUSTERS
    }, replicas=2)
    return mesh


def to_cluster_1():
    return StaticWeightBalancer({"api/cluster-1": 1.0})


class TestReplicaDownModes:
    def test_fail_fast_crash_fails_quickly(self, sim, mesh):
        backend = mesh.deployment("api").backend_in("cluster-1")
        backend.crash("fail_fast")
        proxy = mesh.client_proxy("cluster-1", "api", to_cluster_1())
        process = sim.spawn(proxy.dispatch())
        sim.run()
        record = process.value
        assert record.success is False
        assert record.latency_s < 1.0  # the profile's failure latency

    def test_blackhole_crash_hangs_without_deadline(self, sim, mesh):
        mesh.deployment("api").backend_in("cluster-1").crash("blackhole")
        proxy = mesh.client_proxy("cluster-1", "api", to_cluster_1())
        process = sim.spawn(proxy.dispatch())
        sim.run(until=60.0)
        assert process.is_alive  # parked forever: nothing ever answers

    def test_restart_releases_blackholed_requests(self, sim, mesh):
        backend = mesh.deployment("api").backend_in("cluster-1")
        backend.crash("blackhole")
        proxy = mesh.client_proxy("cluster-1", "api", to_cluster_1())
        process = sim.spawn(proxy.dispatch())
        sim.run(until=5.0)
        assert process.is_alive
        backend.restart()
        sim.run()
        record = process.value
        # The hung request completes as a failure, not a success.
        assert record.success is False
        assert record.end_s >= 5.0

    def test_crash_mode_validated(self, mesh):
        backend = mesh.deployment("api").backend_in("cluster-1")
        with pytest.raises(ConfigError):
            backend.replicas[0].crash("sideways")

    def test_picker_skips_down_replicas(self, sim, mesh):
        backend = mesh.deployment("api").backend_in("cluster-1")
        backend.replicas[0].crash("fail_fast")
        proxy = mesh.client_proxy("cluster-1", "api", to_cluster_1())
        for _ in range(4):
            process = sim.spawn(proxy.dispatch())
            sim.run()
            assert process.value.success is True  # replica 1 serves all


class TestRequestDeadline:
    def test_timeout_must_be_positive(self, mesh):
        with pytest.raises(MeshError, match="timeout"):
            mesh.client_proxy("cluster-1", "api", to_cluster_1(),
                              request_timeout_s=0.0)

    def test_blackhole_fails_at_deadline(self, sim, mesh):
        mesh.deployment("api").backend_in("cluster-1").crash("blackhole")
        proxy = mesh.client_proxy("cluster-1", "api", to_cluster_1(),
                                  request_timeout_s=0.5)
        process = sim.spawn(proxy.dispatch())
        sim.run()
        record = process.value
        assert record.success is False
        assert record.latency_s == pytest.approx(0.5, abs=0.01)
        assert proxy.timeouts == 1

    def test_timeout_recorded_as_failed_attempt_in_telemetry(self, sim, mesh):
        mesh.deployment("api").backend_in("cluster-1").crash("blackhole")
        proxy = mesh.client_proxy("cluster-1", "api", to_cluster_1(),
                                  request_timeout_s=0.5)
        sim.spawn(proxy.dispatch())
        sim.run()
        telemetry = proxy.telemetry["api/cluster-1"]
        assert telemetry.requests_total.value == 1
        assert telemetry.failures_total.value == 1
        # The abandoned attempt no longer counts as in flight for the
        # *client*: it got its (failure) answer at the deadline.
        assert telemetry.inflight.value == 0

    def test_fast_request_unaffected_by_deadline(self, sim, mesh):
        proxy = mesh.client_proxy("cluster-1", "api", to_cluster_1(),
                                  request_timeout_s=5.0)
        process = sim.spawn(proxy.dispatch())
        sim.run()
        assert process.value.success is True
        assert proxy.timeouts == 0

    def test_partitioned_link_fails_at_deadline(self, sim, mesh):
        mesh.network.partition("cluster-1", "cluster-2")
        proxy = mesh.client_proxy(
            "cluster-1", "api",
            StaticWeightBalancer({"api/cluster-2": 1.0}),
            request_timeout_s=0.5)
        process = sim.spawn(proxy.dispatch())
        sim.run()
        record = process.value
        assert record.success is False
        assert record.latency_s == pytest.approx(0.5, abs=0.01)

    def test_abandoned_call_does_not_abort_the_run(self, sim, mesh):
        # The replica answers (a failure) *after* the deadline: the
        # abandoned subprocess must not trip the simulator's unhandled
        # failure check.
        backend = mesh.deployment("api").backend_in("cluster-1")
        backend.crash("blackhole")
        proxy = mesh.client_proxy("cluster-1", "api", to_cluster_1(),
                                  request_timeout_s=0.5)
        process = sim.spawn(proxy.dispatch())
        sim.run(until=2.0)
        assert process.value.success is False
        backend.restart()  # releases the blackholed forward as a failure
        sim.run()  # must not raise


class TestDeadlineWithRetries:
    def test_each_attempt_gets_its_own_deadline(self, sim, mesh):
        mesh.deployment("api").backend_in("cluster-1").crash("blackhole")
        proxy = mesh.client_proxy("cluster-1", "api", to_cluster_1(),
                                  max_retries=2, request_timeout_s=0.5)
        process = sim.spawn(proxy.dispatch())
        sim.run()
        record = process.value
        assert record.success is False
        assert record.attempts == 3
        assert proxy.timeouts == 3
        assert record.latency_s == pytest.approx(1.5, abs=0.05)


class TestProxyEjection:
    def test_consecutive_failures_eject_and_reroute(self, sim, mesh):
        mesh.deployment("api").backend_in("cluster-1").crash("fail_fast")
        proxy = mesh.client_proxy(
            "cluster-1", "api",
            RoundRobinBalancer(["api/cluster-1", "api/cluster-2",
                                "api/cluster-3"]),
            outlier_ejection=OutlierEjectionConfig(consecutive_failures=2,
                                                   ejection_s=30.0))
        outcomes = []
        for _ in range(12):
            process = sim.spawn(proxy.dispatch())
            sim.run()
            outcomes.append(process.value)
        assert proxy.ejector.ejections >= 1
        # After the breaker trips, traffic avoids the dead backend.
        later = outcomes[6:]
        assert all(r.backend != "api/cluster-1" for r in later)
        assert all(r.success for r in later)

    def test_fails_open_when_everything_is_ejected(self, sim, mesh):
        mesh.deployment("api").backend_in("cluster-1").crash("fail_fast")
        proxy = mesh.client_proxy(
            "cluster-1", "api", to_cluster_1(),
            outlier_ejection=OutlierEjectionConfig(consecutive_failures=1,
                                                   ejection_s=60.0))
        for _ in range(4):
            process = sim.spawn(proxy.dispatch())
            sim.run()
        # Only ejected backends available: requests still go out (and
        # fail) instead of erroring or hanging in the pick loop.
        assert process.value.success is False
        assert proxy.ejector.ejections >= 1

    def test_ejection_off_by_default(self, mesh):
        proxy = mesh.client_proxy("cluster-1", "api", to_cluster_1())
        assert proxy.ejector is None
