"""Tests for consecutive-failure outlier ejection (circuit breaking)."""

import pytest

from repro.errors import ConfigError
from repro.mesh.ejection import OutlierEjectionConfig, OutlierEjector


def make_ejector(**kwargs):
    defaults = dict(consecutive_failures=3, ejection_s=10.0,
                    backoff_multiplier=2.0, max_ejection_s=40.0)
    defaults.update(kwargs)
    return OutlierEjector(["a", "b"], OutlierEjectionConfig(**defaults))


def fail(ejector, name, now, times):
    for _ in range(times):
        ejector.on_response(name, now, success=False)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            OutlierEjectionConfig(consecutive_failures=0)
        with pytest.raises(ConfigError):
            OutlierEjectionConfig(ejection_s=0.0)
        with pytest.raises(ConfigError):
            OutlierEjectionConfig(backoff_multiplier=0.5)
        with pytest.raises(ConfigError):
            OutlierEjectionConfig(ejection_s=10.0, max_ejection_s=5.0)


class TestClosedBreaker:
    def test_admits_by_default(self):
        ejector = make_ejector()
        assert ejector.admit("a", 0.0)
        assert not ejector.is_ejected("a", 0.0)

    def test_needs_consecutive_failures(self):
        ejector = make_ejector()
        fail(ejector, "a", 1.0, 2)
        ejector.on_response("a", 1.0, success=True)  # streak broken
        fail(ejector, "a", 2.0, 2)
        assert ejector.admit("a", 2.0)
        assert ejector.ejections == 0

    def test_trips_on_threshold(self):
        ejector = make_ejector()
        fail(ejector, "a", 1.0, 3)
        assert not ejector.admit("a", 2.0)
        assert ejector.is_ejected("a", 2.0)
        assert ejector.ejections == 1

    def test_breakers_are_per_backend(self):
        ejector = make_ejector()
        fail(ejector, "a", 1.0, 3)
        assert ejector.admit("b", 2.0)


class TestHalfOpenProbing:
    def test_single_probe_after_expiry(self):
        ejector = make_ejector()
        fail(ejector, "a", 0.0, 3)  # ejected until t=10
        assert not ejector.admit("a", 9.9)
        assert ejector.admit("a", 10.1)  # the probe slot
        assert not ejector.admit("a", 10.2)  # slot taken

    def test_probe_success_closes(self):
        ejector = make_ejector()
        fail(ejector, "a", 0.0, 3)
        assert ejector.admit("a", 11.0)
        ejector.on_response("a", 11.5, success=True)
        assert ejector.admit("a", 11.6)
        assert not ejector.is_ejected("a", 11.6)
        # A later trip starts from the base ejection again.
        fail(ejector, "a", 12.0, 3)
        assert not ejector.admit("a", 21.0)  # 12 + 10 = 22
        assert ejector.admit("a", 22.5)

    def test_probe_failure_reejects_with_backoff(self):
        ejector = make_ejector()
        fail(ejector, "a", 0.0, 3)  # open until 10
        assert ejector.admit("a", 11.0)
        ejector.on_response("a", 11.5, success=False)
        # Re-ejected for 2 x 10 = 20 s from t=11.5.
        assert not ejector.admit("a", 30.0)
        assert ejector.admit("a", 32.0)
        assert ejector.ejections == 2

    def test_backoff_is_capped(self):
        ejector = make_ejector()
        now = 0.0
        fail(ejector, "a", now, 3)
        for _ in range(5):  # 10 -> 20 -> 40 -> 40 -> 40 (cap)
            now = ejector._breakers["a"].ejected_until + 0.1
            assert ejector.admit("a", now)
            ejector.on_response("a", now, success=False)
        breaker = ejector._breakers["a"]
        assert breaker.ejected_until - now == pytest.approx(40.0)

    def test_stale_response_during_open_ignored(self):
        ejector = make_ejector()
        fail(ejector, "a", 0.0, 3)
        # A slow success from before the trip arrives while open: the
        # breaker stays open.
        ejector.on_response("a", 1.0, success=True)
        assert not ejector.admit("a", 1.0)

    def test_unknown_backend_gets_a_breaker(self):
        ejector = make_ejector()
        assert ejector.admit("late-addition", 0.0)
        fail(ejector, "late-addition", 1.0, 3)
        assert not ejector.admit("late-addition", 1.0)
