"""Fast engine vs. generator engine: record-for-record equivalence.

The fast request engine (:mod:`repro.mesh.fastdispatch`) must be
indistinguishable from the legacy one-process-per-request engine — not
statistically, but *exactly*: same :class:`RequestRecord` stream, same
controller weights, same fault log, for every scenario, algorithm, seed
and fault schedule. These tests run both engines on the same cell and
compare the full record dataclasses field for field.

Durations are short (the comparison is deterministic, not statistical)
but long enough that every scheduled fault fires *and* recovers inside
the measured window.
"""

from __future__ import annotations

import pytest

from repro.bench.coordinator import ScenarioBenchConfig, run_scenario_benchmark
from repro.faults.faults import (
    ClusterOutage,
    LinkDegradation,
    LinkPartition,
    ReplicaCrash,
)
from repro.mesh.proxy import OutlierEjectionConfig


def _deadline_retry_env() -> ScenarioBenchConfig:
    """A deadline/retry-heavy client config: tight per-attempt timeout,
    retries with backoff, and the outlier-ejection circuit breaker on."""
    return ScenarioBenchConfig(
        request_timeout_s=0.05,
        max_retries=2,
        retry_backoff_s=0.01,
        outlier_ejection=OutlierEjectionConfig(),
    )


def _run_both(scenario, algorithm, seed, duration_s, env=None, faults=None):
    fast = run_scenario_benchmark(
        scenario, algorithm, duration_s=duration_s, seed=seed,
        env=env, faults=faults, engine="fast")
    legacy = run_scenario_benchmark(
        scenario, algorithm, duration_s=duration_s, seed=seed,
        env=env, faults=faults, engine="process")
    return fast, legacy


def _assert_equivalent(fast, legacy):
    # RequestRecord is a plain dataclass: == compares every field,
    # including the floats bit-for-bit.
    assert fast.records == legacy.records
    assert fast.controller_weights == legacy.controller_weights
    assert fast.fault_log == legacy.fault_log
    assert fast.records, "equivalence on an empty run proves nothing"


class TestSeedSweep:
    """Same scenario, five seeds — the RNG consumption order must match."""

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_scenario1_l3(self, seed):
        _assert_equivalent(
            *_run_both("scenario-1", "l3", seed, duration_s=10.0))


class TestScenarioSweep:
    """Different traffic shapes and algorithms, one cell each."""

    @pytest.mark.parametrize("scenario,algorithm,seed", [
        ("scenario-4", "round-robin", 2),
        ("scenario-4", "c3", 2),
        ("scenario-4", "l3-peak", 2),
        ("failure-1", "p2c", 7),
    ])
    def test_engines_agree(self, scenario, algorithm, seed):
        _assert_equivalent(
            *_run_both(scenario, algorithm, seed, duration_s=10.0))


class TestFaultInjection:
    """Faults exercise the paths the fast engine rewrote most: blackholed
    replicas (gated grants), fail-fast outages, WAN partitions."""

    def test_replica_crash_and_cluster_outage(self):
        faults = [
            ReplicaCrash(service="api", cluster="cluster-1", at_s=5.0,
                         replica_index=0, duration_s=10.0,
                         mode="blackhole"),
            ClusterOutage(cluster="cluster-2", at_s=12.0, duration_s=6.0,
                          mode="fail_fast", service="api"),
        ]
        _assert_equivalent(*_run_both(
            "scenario-2", "l3", seed=3, duration_s=25.0,
            env=_deadline_retry_env(), faults=faults))

    def test_link_partition_and_degradation(self):
        faults = [
            LinkPartition(src="cluster-1", dst="cluster-2", at_s=8.0,
                          duration_s=5.0),
            LinkDegradation(src="cluster-1", dst="cluster-3", at_s=15.0,
                            duration_s=8.0, multiplier=3.0,
                            extra_delay_s=0.005),
        ]
        _assert_equivalent(*_run_both(
            "scenario-3", "l3", seed=5, duration_s=25.0,
            env=_deadline_retry_env(), faults=faults))


class TestDeadlineRetryHeavy:
    """failure-2 saturates a cluster; with a 50 ms deadline and retries the
    timeout/retry/ejection machinery dominates the request lifecycle."""

    def test_failure2_l3(self):
        _assert_equivalent(*_run_both(
            "failure-2", "l3", seed=9, duration_s=15.0,
            env=_deadline_retry_env()))


# --------------------------------------------------------------------- #
# The vector engine (numpy-chunked RNG banks + buffered telemetry) makes
# the same promise against the fast engine: bit-identical records,
# weights and fault logs, plus the same kernel event count (its inlined
# tail hops are counted back in). It needs the [fleet] extra.
# --------------------------------------------------------------------- #

_HAS_NUMPY = True
try:
    import numpy  # noqa: F401
except ImportError:  # pragma: no cover - the no-numpy CI job
    _HAS_NUMPY = False

requires_numpy = pytest.mark.skipif(
    not _HAS_NUMPY, reason="numpy not installed ([fleet] extra)")


def _run_vector_pair(scenario, algorithm, seed, duration_s, env=None,
                     faults=None):
    vector = run_scenario_benchmark(
        scenario, algorithm, duration_s=duration_s, seed=seed,
        env=env, faults=faults, engine="vector")
    fast = run_scenario_benchmark(
        scenario, algorithm, duration_s=duration_s, seed=seed,
        env=env, faults=faults, engine="fast")
    return vector, fast


def _assert_vector_equivalent(vector, fast):
    _assert_equivalent(vector, fast)
    # The vector engine replaces popped agenda events with inline hops;
    # the adjusted count must land exactly on the kernel's.
    assert vector.events_processed == fast.events_processed


@requires_numpy
class TestVectorEngineScenarios:
    """Every traffic shape, vector vs fast, one cell each."""

    @pytest.mark.parametrize("scenario", [
        "scenario-1", "scenario-2", "scenario-3", "scenario-4",
        "scenario-5",
    ])
    def test_vector_matches_fast(self, scenario):
        _assert_vector_equivalent(
            *_run_vector_pair(scenario, "l3", seed=2, duration_s=10.0))


@requires_numpy
class TestVectorEngineSweeps:
    @pytest.mark.parametrize("seed", [1, 3, 5])
    def test_seed_sweep(self, seed):
        _assert_vector_equivalent(*_run_vector_pair(
            "scenario-1", "l3", seed, duration_s=10.0))

    @pytest.mark.parametrize("algorithm", [
        "round-robin", "p2c", "c3", "l3-peak",
    ])
    def test_algorithm_sweep(self, algorithm):
        _assert_vector_equivalent(*_run_vector_pair(
            "scenario-4", algorithm, seed=2, duration_s=10.0))

    def test_failure_scenario_with_retries(self):
        # failure-1 has live failure probabilities: replicas leave the
        # banked z-queue path and failure draws interleave — the stream
        # alignment must survive anyway.
        _assert_vector_equivalent(*_run_vector_pair(
            "failure-1", "l3", seed=7, duration_s=15.0,
            env=_deadline_retry_env()))


@requires_numpy
class TestVectorEngineFaults:
    def test_fault_schedule(self):
        faults = [
            ReplicaCrash(service="api", cluster="cluster-1", at_s=5.0,
                         replica_index=0, duration_s=10.0,
                         mode="blackhole"),
            ClusterOutage(cluster="cluster-2", at_s=12.0, duration_s=6.0,
                          mode="fail_fast", service="api"),
        ]
        _assert_vector_equivalent(*_run_vector_pair(
            "scenario-2", "l3", seed=3, duration_s=25.0,
            env=_deadline_retry_env(), faults=faults))
