"""Tests for the client-retry extension (§5.2.1's missing piece)."""

import pytest

from repro.balancers.round_robin import RoundRobinBalancer
from repro.balancers.static_weights import StaticWeightBalancer
from repro.errors import MeshError
from repro.mesh.mesh import ServiceMesh
from repro.mesh.network import WanLink
from repro.workloads.profiles import constant_backend_profile

CLUSTERS = ["cluster-1", "cluster-2"]


def quiet_wan():
    return WanLink(base_delay_s=0.010, jitter_p99_ratio=1.0,
                   drift_amplitude=0.0, spike_prob=0.0)


@pytest.fixture
def mesh(sim, rng_registry):
    mesh = ServiceMesh(sim, rng_registry, clusters=CLUSTERS,
                       wan_link=quiet_wan())
    mesh.deploy_service("api", profiles={
        "cluster-1": constant_backend_profile(0.010, 0.010,
                                              failure_prob=1.0),
        "cluster-2": constant_backend_profile(0.010, 0.010,
                                              failure_prob=0.0),
    })
    return mesh


class TestValidation:
    def test_negative_retries_rejected(self, sim, mesh):
        with pytest.raises(MeshError):
            mesh.client_proxy(
                "cluster-1", "api",
                StaticWeightBalancer({"api/cluster-1": 1.0}),
                max_retries=-1)

    def test_negative_backoff_rejected(self, sim, mesh):
        with pytest.raises(MeshError):
            mesh.client_proxy(
                "cluster-1", "api",
                StaticWeightBalancer({"api/cluster-1": 1.0}),
                retry_backoff_s=-0.1)


class TestRetries:
    def test_no_retries_by_default(self, sim, mesh):
        proxy = mesh.client_proxy(
            "cluster-1", "api",
            StaticWeightBalancer({"api/cluster-1": 1.0}))
        process = sim.spawn(proxy.dispatch())
        sim.run()
        record = process.value
        assert not record.success
        assert record.attempts == 1

    def test_retry_can_land_on_healthy_backend(self, sim, mesh):
        # Round-robin alternates: first try hits the always-failing
        # cluster-1, the retry hits healthy cluster-2.
        proxy = mesh.client_proxy(
            "cluster-1", "api",
            RoundRobinBalancer(["api/cluster-1", "api/cluster-2"]),
            max_retries=1)
        process = sim.spawn(proxy.dispatch())
        sim.run()
        record = process.value
        assert record.success
        assert record.attempts == 2
        assert record.backend == "api/cluster-2"

    def test_retries_exhausted_reports_failure(self, sim, mesh):
        proxy = mesh.client_proxy(
            "cluster-1", "api",
            StaticWeightBalancer({"api/cluster-1": 1.0}),
            max_retries=3)
        process = sim.spawn(proxy.dispatch())
        sim.run()
        record = process.value
        assert not record.success
        assert record.attempts == 4  # 1 try + 3 retries

    def test_each_attempt_recorded_in_telemetry(self, sim, mesh):
        proxy = mesh.client_proxy(
            "cluster-1", "api",
            StaticWeightBalancer({"api/cluster-1": 1.0}),
            max_retries=2)
        process = sim.spawn(proxy.dispatch())
        sim.run()
        telemetry = proxy.telemetry["api/cluster-1"]
        assert telemetry.requests_total.value == 3
        assert telemetry.failures_total.value == 3

    def test_backoff_delays_retries(self, sim, mesh):
        proxy = mesh.client_proxy(
            "cluster-1", "api",
            StaticWeightBalancer({"api/cluster-1": 1.0}),
            max_retries=2, retry_backoff_s=1.0)
        process = sim.spawn(proxy.dispatch())
        sim.run()
        record = process.value
        # Three attempts (~0.06 s of work each) plus two 1 s backoffs.
        assert record.latency_s > 2.0

    def test_latency_spans_all_attempts(self, sim, mesh):
        proxy = mesh.client_proxy(
            "cluster-1", "api",
            RoundRobinBalancer(["api/cluster-1", "api/cluster-2"]),
            max_retries=1)
        process = sim.spawn(proxy.dispatch())
        sim.run()
        record = process.value
        # Two attempts, each ~10 ms service + 20 ms WAN RTT + overheads.
        assert record.latency_s > 0.055


class TestRetriesInBenchmark:
    def test_scenario_benchmark_with_retries_raises_success_rate(self):
        from repro.bench.coordinator import (
            ScenarioBenchConfig,
            run_scenario_benchmark,
        )

        base = ScenarioBenchConfig(warmup_s=10.0, drain_s=10.0)
        with_retries = ScenarioBenchConfig(
            warmup_s=10.0, drain_s=10.0, max_retries=2)
        plain = run_scenario_benchmark(
            "failure-1", "l3", duration_s=60.0, seed=3, env=base)
        retried = run_scenario_benchmark(
            "failure-1", "l3", duration_s=60.0, seed=3, env=with_retries)
        assert retried.success_rate > plain.success_rate + 0.02
        assert any(r.attempts > 1 for r in retried.records)
