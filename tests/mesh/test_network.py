"""Tests for the WAN latency model."""

import statistics

import pytest

from repro.errors import ConfigError
from repro.mesh.network import LOCAL_LINK, NetworkModel, WanLink


class TestWanLink:
    def test_validation(self):
        with pytest.raises(ConfigError):
            WanLink(base_delay_s=-1.0)
        with pytest.raises(ConfigError):
            WanLink(base_delay_s=0.01, jitter_p99_ratio=0.5)
        with pytest.raises(ConfigError):
            WanLink(base_delay_s=0.01, drift_amplitude=1.5)
        with pytest.raises(ConfigError):
            WanLink(base_delay_s=0.01, spike_prob=2.0)
        with pytest.raises(ConfigError):
            WanLink(base_delay_s=0.01, spike_multiplier=0.5)

    def test_zero_base_delay_is_always_zero(self, rng):
        link = WanLink(base_delay_s=0.0)
        assert link.delay(rng, 0.0) == 0.0

    def test_delays_are_positive(self, rng):
        link = WanLink(base_delay_s=0.010)
        assert all(link.delay(rng, t * 0.1) > 0 for t in range(1000))

    def test_median_near_base(self, rng):
        link = WanLink(base_delay_s=0.010, drift_amplitude=0.0,
                       spike_prob=0.0)
        samples = sorted(link.delay(rng, 0.0) for _ in range(10_000))
        median = samples[len(samples) // 2]
        assert 0.009 < median < 0.011

    def test_jitter_disabled_is_deterministic(self, rng):
        link = WanLink(base_delay_s=0.010, jitter_p99_ratio=1.0,
                       drift_amplitude=0.0, spike_prob=0.0)
        delays = {link.delay(rng, 5.0) for _ in range(100)}
        assert delays == {0.010}

    def test_drift_moves_median_over_time(self, rng):
        link = WanLink(base_delay_s=0.010, jitter_p99_ratio=1.0,
                       drift_amplitude=0.2, drift_period_s=100.0,
                       spike_prob=0.0)
        at_peak = link.delay(rng, 25.0)    # sin = 1
        at_trough = link.delay(rng, 75.0)  # sin = -1
        assert at_peak > 0.0115 and at_trough < 0.0085

    def test_spikes_multiply_delay(self, rng):
        link = WanLink(base_delay_s=0.010, jitter_p99_ratio=1.0,
                       drift_amplitude=0.0, spike_prob=1.0,
                       spike_multiplier=5.0)
        assert link.delay(rng, 0.0) == pytest.approx(0.050)


class TestNetworkModel:
    def test_full_mesh_default_links(self, rng):
        model = NetworkModel(["a", "b", "c"])
        assert model.link("a", "b").base_delay_s == 0.010
        assert model.link("a", "a") is LOCAL_LINK

    def test_duplicate_clusters_rejected(self):
        with pytest.raises(ConfigError):
            NetworkModel(["a", "a"])

    def test_unknown_cluster_rejected(self):
        model = NetworkModel(["a", "b"])
        with pytest.raises(ConfigError):
            model.link("a", "ghost")

    def test_set_link_symmetric(self):
        model = NetworkModel(["a", "b"])
        custom = WanLink(base_delay_s=0.5)
        model.set_link("a", "b", custom)
        assert model.link("a", "b") is custom
        assert model.link("b", "a") is custom

    def test_set_link_asymmetric(self):
        model = NetworkModel(["a", "b"])
        custom = WanLink(base_delay_s=0.5)
        model.set_link("a", "b", custom, symmetric=False)
        assert model.link("a", "b") is custom
        assert model.link("b", "a") is not custom

    def test_local_delay_much_smaller_than_wan(self, rng):
        model = NetworkModel(["a", "b"])
        local = statistics.mean(
            model.delay("a", "a", rng, 0.0) for _ in range(1000))
        wan = statistics.mean(
            model.delay("a", "b", rng, 0.0) for _ in range(1000))
        assert local * 5 < wan
