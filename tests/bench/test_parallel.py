"""The parallel sweep executor: ordering, isolation, crash handling."""

from __future__ import annotations

import os

import pytest

from repro.bench.parallel import (
    CACHE_ENV_VAR,
    Cell,
    CellFailed,
    CellOutcome,
    cell_cache_key,
    default_jobs,
    run_cells,
)
from repro.errors import ConfigError


def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"cell exploded on {x}")


def _slow_square(x):
    # Later cells finish *before* earlier ones under any honest pool;
    # the merge order must not care.
    import time

    time.sleep(0.2 if x == 0 else 0.0)
    return x * x


def _kill_worker(x):
    if x == 2:
        os._exit(13)  # simulate a segfault/OOM-kill, not an exception
    return x


def _cells(fn, values):
    return [Cell(id=f"cell-{v}", fn=fn, kwargs={"x": v}) for v in values]


class TestSerial:
    def test_values_and_order(self):
        outcomes = run_cells(_cells(_square, [3, 1, 2]), jobs=1)
        assert list(outcomes) == ["cell-3", "cell-1", "cell-2"]
        assert [o.value for o in outcomes.values()] == [9, 1, 4]
        assert all(o.ok for o in outcomes.values())

    def test_error_recorded_and_sweep_continues(self):
        outcomes = run_cells(_cells(_boom, [1]) + _cells(_square, [2]),
                             jobs=1)
        assert not outcomes["cell-1"].ok
        assert "cell exploded on 1" in outcomes["cell-1"].error
        assert outcomes["cell-2"].value == 4

    def test_unwrap_raises_cell_failed(self):
        outcome = run_cells(_cells(_boom, [7]), jobs=1)["cell-7"]
        with pytest.raises(CellFailed, match="cell-7"):
            outcome.unwrap()
        assert CellOutcome(cell_id="x", value=41).unwrap() == 41

    def test_duplicate_ids_rejected(self):
        cells = [Cell(id="same", fn=_square, kwargs={"x": 1}),
                 Cell(id="same", fn=_square, kwargs={"x": 2})]
        with pytest.raises(ConfigError, match="duplicate"):
            run_cells(cells, jobs=1)

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ConfigError):
            run_cells(_cells(_square, [1]), jobs=0)

    def test_empty_sweep(self):
        assert run_cells([], jobs=1) == {}

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1


class TestParallel:
    def test_matches_serial(self):
        cells = _cells(_square, list(range(8)))
        serial = run_cells(cells, jobs=1)
        parallel = run_cells(cells, jobs=4)
        assert list(serial) == list(parallel)
        assert ([o.value for o in serial.values()]
                == [o.value for o in parallel.values()])

    def test_merge_is_input_order_not_completion_order(self):
        outcomes = run_cells(_cells(_slow_square, [0, 1, 2, 3]), jobs=4)
        assert list(outcomes) == ["cell-0", "cell-1", "cell-2", "cell-3"]
        assert [o.value for o in outcomes.values()] == [0, 1, 4, 9]

    def test_error_in_one_cell_spares_the_rest(self):
        cells = (_cells(_square, [1]) + _cells(_boom, [9])
                 + _cells(_square, [3]))
        outcomes = run_cells(cells, jobs=2)
        assert outcomes["cell-1"].value == 1
        assert "cell exploded on 9" in outcomes["cell-9"].error
        assert outcomes["cell-3"].value == 9

    def test_worker_crash_recorded_and_sweep_completes(self):
        outcomes = run_cells(_cells(_kill_worker, [1, 2, 3, 4]), jobs=2)
        assert list(outcomes) == [f"cell-{v}" for v in (1, 2, 3, 4)]
        assert outcomes["cell-2"].error is not None
        assert "worker process died" in outcomes["cell-2"].error
        for survivor in (1, 3, 4):
            assert outcomes[f"cell-{survivor}"].value == survivor

    def test_jobs_none_uses_all_cpus(self):
        outcomes = run_cells(_cells(_square, [1, 2]), jobs=None)
        assert [o.value for o in outcomes.values()] == [1, 4]


_CALLS: list = []


def _counted_square(x):
    _CALLS.append(x)
    return x * x


def _typename(obj):
    return type(obj).__name__


class TestDiskCache:
    """The opt-in REPRO_BENCH_CACHE memoisation layer."""

    @pytest.fixture(autouse=True)
    def _reset_calls(self):
        _CALLS.clear()

    def test_key_depends_on_kwargs(self):
        a, b = _cells(_square, [1, 2])
        assert cell_cache_key(a) is not None
        assert cell_cache_key(a) == cell_cache_key(a)
        assert cell_cache_key(a) != cell_cache_key(b)

    def test_unserialisable_kwargs_are_uncacheable(self):
        cell = Cell(id="live", fn=_square, kwargs={"x": object()})
        assert cell_cache_key(cell) is None

    def test_hit_skips_the_run(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path))
        cells = _cells(_counted_square, [3])
        first = run_cells(cells, jobs=1)
        second = run_cells(cells, jobs=1)
        assert _CALLS == [3]  # second sweep served from disk
        assert first["cell-3"].value == second["cell-3"].value == 9

    def test_disabled_without_env_var(self, monkeypatch):
        monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
        cells = _cells(_counted_square, [3])
        run_cells(cells, jobs=1)
        run_cells(cells, jobs=1)
        assert _CALLS == [3, 3]

    def test_errors_are_retried_not_replayed(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path))
        cells = _cells(_boom, [5])
        assert not run_cells(cells, jobs=1)["cell-5"].ok
        assert not run_cells(cells, jobs=1)["cell-5"].ok
        assert list(tmp_path.iterdir()) == []  # nothing was cached

    def test_corrupt_entry_falls_back_to_running(self, tmp_path,
                                                 monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path))
        cell = _cells(_counted_square, [4])[0]
        key = cell_cache_key(cell)
        (tmp_path / f"{key}.pkl").write_bytes(b"not a pickle")
        outcomes = run_cells([cell], jobs=1)
        assert outcomes["cell-4"].value == 16
        assert _CALLS == [4]

    def test_uncacheable_cell_still_runs_with_cache_on(self, tmp_path,
                                                       monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path))
        plain = Cell(id="plain", fn=_square, kwargs={"x": 6})
        live = Cell(id="live", fn=_typename, kwargs={"obj": object()})
        assert cell_cache_key(live) is None
        outcomes = run_cells([plain, live], jobs=1)
        assert outcomes["plain"].value == 36
        assert outcomes["live"].value == "object"
