"""Determinism contract: golden digest + parallel/serial equivalence.

Two guarantees every kernel or telemetry optimization must keep:

1. A fixed-seed scenario run reproduces the committed golden digest —
   same request records, same controller weights, same percentiles, a
   byte-identical OTLP trace export. Any change to event ordering,
   float arithmetic or scrape timing flips the hash.
2. A sweep executed with ``jobs=4`` is byte-identical to the same sweep
   executed serially — per-cell seeding and the ordered merge make
   worker scheduling invisible.
"""

from __future__ import annotations

from repro.bench.coordinator import run_scenario_benchmark
from repro.bench.digest import digest_result, golden_digest
from repro.bench.parallel import Cell, run_cells

# SHA-256 of the fixed-seed reference run (scenario-1 / l3 / 30 s /
# seed 1, traces on). Recompute ONLY for an intentional behavior change:
#   PYTHONPATH=src python -c "from repro.bench.digest import golden_digest;
#   print(golden_digest())"
GOLDEN_DIGEST = (
    "5079b35ea955fa7d694348cfdfdc3a97160e5283727f651d6a555b221c375a43"
)


def test_fixed_seed_run_matches_golden_digest():
    assert golden_digest() == GOLDEN_DIGEST


def test_parallel_sweep_is_byte_identical_to_serial():
    cells = [
        Cell(id=f"{algorithm}/seed{seed}",
             fn=run_scenario_benchmark,
             kwargs={"scenario": "scenario-2", "algorithm": algorithm,
                     "duration_s": 10.0, "seed": seed})
        for algorithm in ("l3", "round-robin")
        for seed in (1, 2)
    ]
    serial = run_cells(cells, jobs=1)
    parallel = run_cells(cells, jobs=4)

    assert list(serial) == list(parallel)
    for cell_id in serial:
        assert (digest_result(serial[cell_id].unwrap())
                == digest_result(parallel[cell_id].unwrap())), cell_id
