"""Tests for result tables and comparison helpers."""

import pytest

from repro.bench.results import ComparisonTable, format_table


class TestComparisonTable:
    def test_add_and_metric(self):
        table = ComparisonTable("t")
        table.add("round-robin", p99_ms=100.0)
        table.add("l3", p99_ms=74.0)
        assert table.metric("l3", "p99_ms") == 74.0

    def test_duplicate_rejected(self):
        table = ComparisonTable("t")
        table.add("l3", p99_ms=1.0)
        with pytest.raises(ValueError):
            table.add("l3", p99_ms=2.0)

    def test_decrease_vs(self):
        table = ComparisonTable("t")
        table.add("round-robin", p99_ms=100.0)
        table.add("l3", p99_ms=74.0)
        assert table.decrease_vs("l3", "round-robin") == pytest.approx(0.26)

    def test_render_contains_rows_and_baseline_column(self):
        table = ComparisonTable("Fig X", baseline="round-robin")
        table.add("round-robin", p99_ms=100.0)
        table.add("l3", p99_ms=74.0)
        text = table.render()
        assert "Fig X" in text
        assert "l3" in text
        assert "-26.0%" in text


class TestFormatTable:
    def test_empty(self):
        assert "(no rows)" in format_table("t", {})

    def test_missing_metric_rendered_as_dash(self):
        text = format_table("t", {
            "a": {"p99_ms": 10.0},
            "b": {"success_pct": 99.0},
        })
        assert "-" in text

    def test_alignment_is_consistent(self):
        text = format_table("t", {
            "short": {"metric": 1.0},
            "a-much-longer-name": {"metric": 2.0},
        })
        lines = [l for l in text.splitlines() if l.strip()]
        header, separator = lines[1], lines[2]
        assert len(separator) >= len(header.rstrip()) - 2
