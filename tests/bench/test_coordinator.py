"""Tests for the benchmark coordinator (short runs)."""

import pytest

from repro.bench.coordinator import (
    BenchmarkResult,
    ScenarioBenchConfig,
    run_hotel_benchmark,
    run_scenario_benchmark,
)
from repro.errors import ConfigError

# Short but non-trivial runs keep this module fast (~ a few seconds).
DURATION_S = 30.0
ENV = ScenarioBenchConfig(warmup_s=10.0, drain_s=10.0)


@pytest.fixture(scope="module")
def rr_result():
    return run_scenario_benchmark(
        "scenario-1", "round-robin", duration_s=DURATION_S, seed=11, env=ENV)


class TestScenarioBenchmark:
    def test_produces_records(self, rr_result):
        assert rr_result.request_count > 100
        assert rr_result.scenario == "scenario-1"
        assert rr_result.algorithm == "round-robin"

    def test_latency_metrics_available(self, rr_result):
        assert 0 < rr_result.p50_ms < rr_result.p90_ms <= rr_result.p99_ms

    def test_success_rate_for_healthy_scenario(self, rr_result):
        assert rr_result.success_rate == 1.0

    def test_warmup_excluded(self, rr_result):
        assert all(
            r.intended_start_s >= ENV.warmup_s for r in rr_result.records)

    def test_deterministic_same_seed(self):
        a = run_scenario_benchmark(
            "scenario-2", "l3", duration_s=20.0, seed=5, env=ENV)
        b = run_scenario_benchmark(
            "scenario-2", "l3", duration_s=20.0, seed=5, env=ENV)
        assert a.request_count == b.request_count
        assert a.p99_ms == b.p99_ms
        assert a.controller_weights == b.controller_weights

    def test_different_seed_differs(self):
        a = run_scenario_benchmark(
            "scenario-2", "l3", duration_s=20.0, seed=5, env=ENV)
        b = run_scenario_benchmark(
            "scenario-2", "l3", duration_s=20.0, seed=6, env=ENV)
        assert a.p99_ms != b.p99_ms

    def test_l3_exposes_controller_weights(self):
        result = run_scenario_benchmark(
            "scenario-1", "l3", duration_s=20.0, seed=5, env=ENV)
        assert set(result.controller_weights) == {
            "api/cluster-1", "api/cluster-2", "api/cluster-3"}

    def test_round_robin_has_no_controller_weights(self, rr_result):
        assert rr_result.controller_weights == {}

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ConfigError):
            run_scenario_benchmark(
                "scenario-1", "psychic", duration_s=10.0, env=ENV)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigError):
            run_scenario_benchmark(
                "scenario-42", "l3", duration_s=10.0, env=ENV)

    def test_env_validation(self):
        with pytest.raises(ConfigError):
            ScenarioBenchConfig(replicas=0)
        with pytest.raises(ConfigError):
            ScenarioBenchConfig(warmup_s=-1.0)

    def test_round_robin_spreads_traffic_evenly(self, rr_result):
        from collections import Counter

        counts = Counter(r.backend for r in rr_result.records)
        values = sorted(counts.values())
        assert values[-1] - values[0] <= 2


class TestHotelBenchmark:
    def test_end_to_end(self):
        result = run_hotel_benchmark(
            "round-robin", rps=50.0, duration_s=30.0, seed=7, env=ENV)
        assert result.scenario == "hotel-reservation"
        assert result.request_count > 500
        assert result.success_rate == 1.0
        assert result.p99_ms > result.p50_ms > 0

    def test_deterministic(self):
        a = run_hotel_benchmark(
            "l3", rps=30.0, duration_s=20.0, seed=7, env=ENV)
        b = run_hotel_benchmark(
            "l3", rps=30.0, duration_s=20.0, seed=7, env=ENV)
        assert a.p99_ms == b.p99_ms


class TestBenchmarkResult:
    def test_empty_records_raise_on_percentile(self):
        result = BenchmarkResult(
            scenario="s", algorithm="a", seed=0, duration_s=1.0, records=[])
        with pytest.raises(ValueError):
            result.p99_ms

    def test_empty_records_success_rate_is_one(self):
        result = BenchmarkResult(
            scenario="s", algorithm="a", seed=0, duration_s=1.0, records=[])
        assert result.success_rate == 1.0
