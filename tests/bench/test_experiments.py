"""Tests for the per-figure experiment functions (tiny durations)."""

import pytest

from repro.bench import experiments


class TestTraceExperiments:
    def test_fig1_2_series_complete(self):
        experiment = experiments.fig1_2_trace_characteristics()
        for scenario in ("scenario-1", "scenario-2"):
            for cluster in ("cluster-1", "cluster-2", "cluster-3"):
                assert f"{scenario}/{cluster}/p50_ms" in experiment.series
                assert f"{scenario}/{cluster}/p99_ms" in experiment.series
            assert f"{scenario}/rps" in experiment.series
        assert "Fig. 1" in experiment.render()

    def test_fig6_series_complete(self):
        experiment = experiments.fig6_trace_characteristics()
        assert len(experiment.series) == 9  # 3 scenarios x 3 clusters

    def test_series_cover_full_trace(self):
        experiment = experiments.fig1_2_trace_characteristics(step_s=10.0)
        series = experiment.series["scenario-1/rps"]
        assert series[0][0] == 0.0
        assert series[-1][0] == 600.0


class TestFig4:
    def test_curve_points_and_bounds(self):
        experiment = experiments.fig4_rate_control_curves(points=21)
        for label in ("a:wb=2000", "b:wb=500"):
            series = experiment.series[label]
            assert len(series) == 21
            assert series[0][0] == pytest.approx(-1.0)
            assert series[-1][0] == pytest.approx(3.0)


class TestBenchmarkExperiments:
    """Each runnable experiment at toy scale — wiring, not results."""

    def test_fig8(self):
        experiment = experiments.fig8_ewma_vs_peakewma(
            duration_s=20.0, repetitions=1)
        assert set(experiment.table.rows) == {
            "round-robin", "l3-peak", "l3"}

    def test_fig9(self):
        experiment = experiments.fig9_hotel_reservation(
            rps=30.0, duration_s=20.0, repetitions=1)
        assert set(experiment.table.rows) == {"round-robin", "c3", "l3"}
        assert experiment.paper["l3"] == 68.8

    def test_fig10_single_scenario(self):
        out = experiments.fig10_scenario_comparison(
            scenarios=["scenario-5"], duration_s=20.0, repetitions=1)
        assert set(out) == {"scenario-5"}
        assert "round-robin" in out["scenario-5"].table.rows

    def test_fig11_12(self):
        out = experiments.fig11_12_failure_scenarios(
            duration_s=20.0, repetitions=1)
        assert set(out) == {"failure-1", "failure-2"}
        for experiment in out.values():
            for row in experiment.table.rows.values():
                assert "success_pct" in row

    def test_fig7(self):
        experiment = experiments.fig7_penalty_factor_sweep(
            penalties_s=(0.6,), duration_s=20.0, repetitions=1)
        assert "l3 P=0.6s" in experiment.table.rows
        assert "p99_dec_pct" in experiment.table.rows["l3 P=0.6s"]

    def test_ablation_rate_control(self):
        experiment = experiments.ablation_rate_control(
            duration_s=20.0, repetitions=1)
        assert set(experiment.table.rows) == {"l3", "l3-no-rate-control"}

    def test_ablation_inflight_exponent(self):
        experiment = experiments.ablation_inflight_exponent(
            exponents=(1.0, 2.0), duration_s=20.0, repetitions=1)
        assert set(experiment.table.rows) == {"k=1", "k=2"}

    def test_ablation_scrape_interval(self):
        experiment = experiments.ablation_scrape_interval(
            intervals_s=(5.0,), duration_s=20.0, repetitions=1)
        assert set(experiment.table.rows) == {"5s"}

    def test_repetitions_average(self):
        single = experiments.fig10_scenario_comparison(
            scenarios=["scenario-5"], duration_s=15.0, repetitions=1)
        double = experiments.fig10_scenario_comparison(
            scenarios=["scenario-5"], duration_s=15.0, repetitions=2)
        one = single["scenario-5"].table.rows["l3"]["p99_ms"]
        two = double["scenario-5"].table.rows["l3"]["p99_ms"]
        assert one != two  # second seed contributes
