"""Leaderboard math on synthetic scored grids (no simulation)."""

from repro.tournament.leaderboard import LEADERBOARD_METRICS, build_leaderboard
from repro.tournament.runner import CellScore, TournamentResult, check_contract


def make_result(scores: dict, algorithms=None) -> TournamentResult:
    if algorithms is None:
        algorithms = tuple(next(iter(scores.values())))
    return TournamentResult(
        algorithms=tuple(algorithms),
        scenarios=tuple(scores),
        duration_s=60.0, repetitions=1, seed0=1, scores=scores)


def score(p99, success=1.0, convergence=None) -> CellScore:
    return CellScore(p50_ms=p99 / 2, p99_ms=p99, success_rate=success,
                     requests=1000, convergence_s=convergence)


class TestBuildLeaderboard:
    def test_clear_winner_ranks_first(self):
        result = make_result({
            "s1": {"fast": score(10.0), "slow": score(50.0)},
            "s2": {"fast": score(20.0), "slow": score(60.0)},
        })
        board = build_leaderboard(result)
        assert board["ranking"][0] == "fast"
        assert board["metrics"]["p99_ms"]["wins"] == {"fast": 2, "slow": 0}
        assert board["metrics"]["p99_ms"]["win_rate"]["fast"] == 1.0
        assert board["head_to_head_p99"]["fast"]["slow"] == 2
        assert board["head_to_head_p99"]["slow"]["fast"] == 0

    def test_ties_share_the_win(self):
        result = make_result({
            "s1": {"a": score(10.0), "b": score(10.0)},
        })
        board = build_leaderboard(result)
        p99 = board["metrics"]["p99_ms"]
        assert p99["wins"] == {"a": 1, "b": 1}
        assert p99["scenarios_contested"] == 1
        # Strict-inequality head-to-head: a tie is no win either way.
        assert board["head_to_head_p99"]["a"]["b"] == 0
        assert board["head_to_head_p99"]["b"]["a"] == 0

    def test_convergence_contested_only_where_defined(self):
        result = make_result({
            "trace": {"a": score(10.0), "b": score(20.0)},
            "fault": {"a": score(10.0, convergence=15.0),
                      "b": score(20.0, convergence=5.0)},
        })
        board = build_leaderboard(result)
        conv = board["metrics"]["convergence_s"]
        assert conv["scenarios_contested"] == 1
        assert conv["wins"] == {"a": 0, "b": 1}

    def test_never_recovered_contests_but_cannot_win(self):
        result = make_result({
            "fault": {"a": score(10.0, convergence=None),
                      "b": score(20.0, convergence=30.0)},
        })
        board = build_leaderboard(result)
        conv = board["metrics"]["convergence_s"]
        assert conv["scenarios_contested"] == 1
        assert conv["wins"] == {"a": 0, "b": 1}

    def test_success_rate_wins_by_maximum(self):
        result = make_result({
            "s1": {"a": score(10.0, success=0.9),
                   "b": score(50.0, success=1.0)},
        })
        board = build_leaderboard(result)
        assert board["metrics"]["success_rate"]["wins"] == {"a": 0, "b": 1}

    def test_ranking_tie_breaks_deterministically(self):
        # Identical scores everywhere: ranking falls back to name order.
        result = make_result({
            "s1": {"zeta": score(10.0), "alpha": score(10.0)},
        })
        board = build_leaderboard(result)
        assert board["ranking"] == ["alpha", "zeta"]

    def test_metric_directions_as_documented(self):
        assert LEADERBOARD_METRICS == {
            "p99_ms": "lower",
            "success_rate": "higher",
            "convergence_s": "lower",
        }


class TestCheckContract:
    def test_passes_when_l3_beats_round_robin(self):
        result = make_result({
            "degraded-backend": {"l3": score(40.0),
                                 "round-robin": score(90.0)},
        })
        assert check_contract(result) == []

    def test_fails_when_l3_loses(self):
        result = make_result({
            "degraded-backend": {"l3": score(90.0),
                                 "round-robin": score(40.0)},
        })
        failures = check_contract(result)
        assert len(failures) == 1
        assert "did not beat" in failures[0]

    def test_missing_scenario_reported(self):
        result = make_result({
            "scenario-1": {"l3": score(10.0), "round-robin": score(20.0)},
        })
        failures = check_contract(result)
        assert failures and "degraded-backend" in failures[0]

    def test_missing_algorithms_reported(self):
        result = make_result({
            "degraded-backend": {"p2c": score(10.0)},
        })
        failures = check_contract(result)
        assert len(failures) == 2
