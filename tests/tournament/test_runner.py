"""End-to-end tournament runner tests on tiny real grids."""

import json

import pytest

from repro.errors import ConfigError
from repro.tournament.runner import (
    CellScore,
    _mean_scores,
    run_tournament,
    run_tournament_cell,
    tournament_json,
)

# Short enough for CI, long enough that the perturbation cells hold a
# complete fault window with a pre-fault baseline on either side.
DURATION_S = 24.0


@pytest.fixture(scope="module")
def tiny_result():
    return run_tournament(
        algorithms=["round-robin", "p2c"],
        scenarios=["scenario-1", "degraded-backend"],
        duration_s=DURATION_S, jobs=1)


class TestRunTournament:
    def test_grid_shape(self, tiny_result):
        assert tiny_result.algorithms == ("round-robin", "p2c")
        assert tiny_result.scenarios == ("scenario-1", "degraded-backend")
        for scenario in tiny_result.scenarios:
            for algorithm in tiny_result.algorithms:
                score = tiny_result.score(scenario, algorithm)
                assert score.requests > 50
                assert score.p50_ms <= score.p99_ms
                assert 0.0 <= score.success_rate <= 1.0

    def test_convergence_only_on_perturbed_cells(self, tiny_result):
        for algorithm in tiny_result.algorithms:
            assert tiny_result.score(
                "scenario-1", algorithm).convergence_s is None

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ConfigError, match="round-robin"):
            run_tournament(algorithms=["nope"], scenarios=["scenario-1"],
                           duration_s=DURATION_S)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigError, match="degraded-backend"):
            run_tournament(algorithms=["p2c"], scenarios=["nope"],
                           duration_s=DURATION_S)

    def test_bad_repetitions_rejected(self):
        with pytest.raises(ConfigError, match="repetitions"):
            run_tournament(algorithms=["p2c"], scenarios=["scenario-1"],
                           duration_s=DURATION_S, repetitions=0)

    def test_jobs_invariance_byte_identical(self, tiny_result):
        parallel = run_tournament(
            algorithms=["round-robin", "p2c"],
            scenarios=["scenario-1", "degraded-backend"],
            duration_s=DURATION_S, jobs=2)
        serial_blob = json.dumps(tournament_json(tiny_result), sort_keys=True)
        parallel_blob = json.dumps(tournament_json(parallel), sort_keys=True)
        assert serial_blob == parallel_blob

    def test_cell_matches_grid_entry(self, tiny_result):
        cell = run_tournament_cell(
            scenario_name="scenario-1", algorithm="p2c",
            duration_s=DURATION_S, seed=1)
        assert cell == tiny_result.score("scenario-1", "p2c")


class TestTournamentJson:
    def test_document_shape(self, tiny_result):
        doc = tournament_json(tiny_result)
        assert doc["schema"] == 1
        assert doc["config"]["algorithms"] == ["round-robin", "p2c"]
        assert doc["config"]["duration_s"] == DURATION_S
        assert set(doc["grid"]) == {"scenario-1", "degraded-backend"}
        for row in doc["grid"].values():
            assert set(row) == {"round-robin", "p2c"}
            for score in row.values():
                assert set(score) == {"p50_ms", "p99_ms", "success_rate",
                                      "requests", "convergence_s"}
        assert doc["leaderboard"]["ranking"]

    def test_document_is_json_roundtrippable(self, tiny_result):
        doc = tournament_json(tiny_result)
        assert json.loads(json.dumps(doc, sort_keys=True)) == doc

    def test_floats_rounded_for_committing(self, tiny_result):
        doc = tournament_json(tiny_result)
        for row in doc["grid"].values():
            for score in row.values():
                for value in score.values():
                    if isinstance(value, float):
                        assert value == round(value, 3)


class TestMeanScores:
    def test_averages_and_rounds(self):
        mean = _mean_scores([
            CellScore(p50_ms=10.0, p99_ms=100.0, success_rate=1.0,
                      requests=100, convergence_s=10.0),
            CellScore(p50_ms=20.0, p99_ms=200.0, success_rate=0.5,
                      requests=101, convergence_s=None),
        ])
        assert mean.p50_ms == 15.0
        assert mean.p99_ms == 150.0
        assert mean.success_rate == 0.75
        assert mean.requests == 100
        # Convergence averages over the repetitions that recovered.
        assert mean.convergence_s == 10.0

    def test_all_unrecovered_stays_none(self):
        mean = _mean_scores([
            CellScore(p50_ms=1.0, p99_ms=2.0, success_rate=1.0,
                      requests=10, convergence_s=None),
        ])
        assert mean.convergence_s is None
