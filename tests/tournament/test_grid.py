"""Tests for the tournament's scenario axis."""

import pytest

from repro.errors import ConfigError
from repro.tournament.grid import (
    PERTURBATION_SCENARIOS,
    TOURNAMENT_SCENARIO_NAMES,
    TRACE_SCENARIOS,
    select_scenarios,
    tournament_scenarios,
)
from repro.workloads.scenarios import SCENARIO_NAMES


class TestGrid:
    def test_seven_cells_in_declared_order(self):
        cells = tournament_scenarios(120.0)
        assert tuple(c.name for c in cells) == TOURNAMENT_SCENARIO_NAMES
        assert len(TOURNAMENT_SCENARIO_NAMES) == 7

    def test_trace_cells_are_real_scenarios(self):
        for name in TRACE_SCENARIOS:
            assert name in SCENARIO_NAMES

    def test_perturbation_cells_have_faults(self):
        cells = {c.name: c for c in tournament_scenarios(120.0)}
        for name in PERTURBATION_SCENARIOS:
            cell = cells[name]
            assert cell.perturbed
            assert cell.base is None
            assert cell.faults

    def test_trace_cells_have_no_fault_window(self):
        cells = {c.name: c for c in tournament_scenarios(120.0)}
        assert not cells["scenario-1"].perturbed
        with pytest.raises(ConfigError, match="no fault window"):
            cells["scenario-1"].fault_window(120.0)

    def test_fault_window_scales_with_duration(self):
        for duration in (40.0, 120.0, 600.0):
            cells = {c.name: c for c in tournament_scenarios(duration)}
            for name in PERTURBATION_SCENARIOS:
                start, end = cells[name].fault_window(duration)
                assert start == pytest.approx(duration * 0.375)
                assert end == pytest.approx(duration * 0.625)

    def test_select_preserves_request_order(self):
        cells = select_scenarios(60.0, ["outage", "scenario-3"])
        assert tuple(c.name for c in cells) == ("outage", "scenario-3")

    def test_select_unknown_lists_valid_set(self):
        with pytest.raises(ConfigError, match="degraded-backend"):
            select_scenarios(60.0, ["scenario-99"])

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ConfigError, match="positive"):
            tournament_scenarios(0.0)
