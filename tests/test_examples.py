"""Smoke tests: every example script runs end to end.

Examples are documentation that executes — these tests keep them honest.
The slower demos (autoscaling, cost_aware) have fixed internal durations
and are exercised through their underlying APIs elsewhere; here we run the
parameterisable ones at small scale.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str, timeout: float = 300.0):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout, check=False)


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py", "20")
        assert result.returncode == 0, result.stderr
        assert "round-robin" in result.stdout
        assert "l3" in result.stdout
        assert "final TrafficSplit weights" in result.stdout

    def test_hotel_reservation(self):
        result = run_example("hotel_reservation.py", "60", "30")
        assert result.returncode == 0, result.stderr
        assert "paper Fig. 9" in result.stdout
        assert "P50 over time" in result.stdout

    def test_failure_injection(self):
        result = run_example("failure_injection.py", "30")
        assert result.returncode == 0, result.stderr
        assert "penalty factor sweep" in result.stdout
        assert "dynamic penalty" in result.stdout
        # The fault-API demo ran its full crash → detect → reroute →
        # restart → re-balance cycle (the script asserts the traffic
        # shares internally; a failure would flip the return code).
        assert "fault injection API" in result.stdout
        assert "apply ClusterOutage" in result.stdout
        assert "revert ClusterOutage" in result.stdout
        assert "rerouted around the outage" in result.stdout

    def test_social_network(self):
        result = run_example("social_network.py", "60", "30")
        assert result.returncode == 0, result.stderr
        assert "full latency spectra" in result.stdout

    def test_live_demo(self):
        # Short real-socket run on a port range reserved for this test.
        result = run_example("live_demo.py", "4", "19880", timeout=60.0)
        assert result.returncode == 0, result.stderr
        assert "weight trajectory" in result.stdout
        assert "clean shutdown: True" in result.stdout

    def test_tournament_demo(self):
        result = run_example("tournament_demo.py", "12")
        assert result.returncode == 0, result.stderr
        assert "leaderboard" in result.stdout
        assert "head-to-head" in result.stdout
        assert "overall winner on this grid:" in result.stdout

    def test_custom_mesh(self):
        result = run_example("custom_mesh.py")
        assert result.returncode == 0, result.stderr
        assert "during eu-west degradation" in result.stdout
        # The degraded cluster's weight collapsed during the episode.
        lines = [l for l in result.stdout.splitlines()
                 if "during eu-west degradation" in l]
        assert lines


@pytest.mark.parametrize("name", [
    "quickstart.py", "hotel_reservation.py", "failure_injection.py",
    "custom_mesh.py", "autoscaling.py", "cost_aware.py",
    "social_network.py", "live_demo.py", "tournament_demo.py",
])
def test_example_compiles(name):
    """Every example at least byte-compiles (including the slow ones)."""
    source = (EXAMPLES / name).read_text(encoding="utf-8")
    compile(source, name, "exec")
