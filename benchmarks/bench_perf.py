"""Perf-trajectory baseline: kernel events/sec, requests/sec, sweep scaling.

Measures (1) the simulation kernel on one reference scenario cell —
events dispatched per wall-clock second and simulated requests per
wall-clock second — and (2) the end-to-end wall-clock of a small
multi-cell sweep at ``jobs=1`` versus ``jobs=<cpus>``. Results land in
``BENCH_perf.json`` at the repository root; the committed copy is the
baseline every future PR is measured against (CI fails on a >30 %
events/sec regression, see ``.github/workflows/ci.yml``).

Run it::

    python benchmarks/bench_perf.py                   # measure + write
    python benchmarks/bench_perf.py --check           # also compare with
                                                      # the committed file
    python benchmarks/bench_perf.py --duration 120    # bigger sample

The simulated workload is deterministic (fixed seed), so the *simulation*
is identical run to run — only the wall-clock varies with the host.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import json
import os
import pathlib
import pstats
import sys
import time

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.bench.coordinator import run_scenario_benchmark
from repro.bench.parallel import Cell, default_jobs, run_cells

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_perf.json"

# The reference cell: one fixed, moderately loaded scenario run.
REFERENCE_SCENARIO = "scenario-1"
REFERENCE_ALGORITHM = "l3"
REFERENCE_SEED = 1

# Regression bar for --check: fail if events/sec drops by more than this
# fraction versus the committed baseline.
DEFAULT_TOLERANCE = 0.30


def measure_reference(duration_s: float, repeat: int = 3,
                      engine: str = "fast") -> dict:
    """Serial reference runs; returns the kernel throughput numbers.

    The simulated work is identical every run (fixed seed), so wall-clock
    spread is pure host noise — the run is repeated and the *best* wall
    is reported, the standard defence against scheduler/neighbour
    interference on shared CI hosts. Every wall is recorded alongside so
    the noise level stays visible in the report.
    """
    walls = []
    result = None
    for _ in range(max(repeat, 1)):
        started = time.perf_counter()
        result = run_scenario_benchmark(
            REFERENCE_SCENARIO, REFERENCE_ALGORITHM, duration_s=duration_s,
            seed=REFERENCE_SEED, engine=engine)
        walls.append(time.perf_counter() - started)
    wall = min(walls)
    return {
        "scenario": REFERENCE_SCENARIO,
        "algorithm": REFERENCE_ALGORITHM,
        "seed": REFERENCE_SEED,
        "engine": engine,
        "duration_s": duration_s,
        "repeat": len(walls),
        "wall_clock_s": round(wall, 3),
        "wall_clock_all_s": [round(w, 3) for w in walls],
        "events_processed": result.events_processed,
        "requests": result.request_count,
        "events_per_sec": round(result.events_processed / wall, 1),
        "requests_per_sec": round(result.request_count / wall, 1),
    }


def profile_reference(duration_s: float, path: pathlib.Path,
                      top: int = 30) -> None:
    """Profile one reference run; write the top-N cumulative dump."""
    profiler = cProfile.Profile()
    profiler.enable()
    run_scenario_benchmark(
        REFERENCE_SCENARIO, REFERENCE_ALGORITHM, duration_s=duration_s,
        seed=REFERENCE_SEED)
    profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(top)
    stats.sort_stats("tottime").print_stats(top)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(buffer.getvalue(), encoding="utf-8")
    print(f"wrote profile dump to {path}")


def measure_sweep(duration_s: float, cells: int, jobs: int) -> dict:
    """Time the same multi-cell sweep at jobs=1 and jobs=N."""
    algorithms = ("round-robin", "c3", "l3")

    def sweep_cells():
        return [
            Cell(id=f"{REFERENCE_SCENARIO}/{algorithms[i % 3]}/seed{i}",
                 fn=run_scenario_benchmark,
                 kwargs={"scenario": REFERENCE_SCENARIO,
                         "algorithm": algorithms[i % 3],
                         "duration_s": duration_s, "seed": i + 1})
            for i in range(cells)
        ]

    timings = {}
    digests = {}
    for n in (1, jobs):
        started = time.perf_counter()
        outcomes = run_cells(sweep_cells(), jobs=n)
        timings[n] = time.perf_counter() - started
        digests[n] = [
            (o.cell_id, o.unwrap().request_count) for o in outcomes.values()
        ]
    if digests[1] != digests[jobs]:
        raise AssertionError(
            "parallel sweep diverged from serial sweep — determinism "
            "contract violated")
    cpus = os.cpu_count() or 1
    return {
        "cells": cells,
        "cell_duration_s": duration_s,
        "jobs": jobs,
        "cpus": cpus,
        # On a single-CPU host jobs=N only adds process overhead; a
        # "speedup" measured there is pure noise, so it is recorded as
        # null rather than as a misleading sub-1.0 number (--check
        # ignores the sweep in that case either way).
        "speedup_meaningful": cpus >= 2,
        "jobs1_wall_clock_s": round(timings[1], 3),
        "jobsN_wall_clock_s": round(timings[jobs], 3),
        "speedup": round(timings[1] / timings[jobs], 2)
        if cpus >= 2 and timings[jobs] > 0 else None,
    }


def check_regression(current: dict, baseline_path: pathlib.Path,
                     tolerance: float) -> list[str]:
    """Compare current throughput against the committed baseline.

    The sweep section is compared only when *both* runs were measured on
    a multi-CPU host (``speedup_meaningful``): a 1-CPU container cannot
    exhibit parallel speedup, only process overhead, so its numbers
    carry no regression signal.
    """
    if not baseline_path.exists():
        return [f"no committed baseline at {baseline_path}; skipping check"]
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    problems = []
    base_eps = baseline.get("reference", {}).get("events_per_sec")
    cur_eps = current["reference"]["events_per_sec"]
    if base_eps:
        floor = base_eps * (1.0 - tolerance)
        if cur_eps < floor:
            problems.append(
                f"events/sec regressed: {cur_eps:.0f} < {floor:.0f} "
                f"(baseline {base_eps:.0f}, tolerance {tolerance:.0%})")
    base_sweep = baseline.get("sweep", {})
    cur_sweep = current.get("sweep", {})
    if not cur_sweep.get("speedup_meaningful", False):
        if cur_sweep:
            problems.append(
                f"sweep measured with {cur_sweep.get('cpus', 1)} cpu(s); "
                "speedup comparison skipped (not a regression)")
        return problems
    base_speedup = base_sweep.get("speedup")
    cur_speedup = cur_sweep.get("speedup")
    if (base_sweep.get("speedup_meaningful") and base_speedup
            and cur_speedup is not None):
        floor = base_speedup * (1.0 - tolerance)
        if cur_speedup < floor:
            problems.append(
                f"sweep speedup regressed: {cur_speedup:.2f} < "
                f"{floor:.2f} (baseline {base_speedup:.2f}, "
                f"tolerance {tolerance:.0%})")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="kernel + sweep perf baseline (writes BENCH_perf.json)")
    parser.add_argument("--duration", type=float, default=60.0,
                        metavar="SECONDS",
                        help="measured seconds of the reference run "
                             "(default 60)")
    parser.add_argument("--repeat", type=int, default=3, metavar="N",
                        help="reference-run repetitions; the best wall "
                             "is reported (default 3)")
    parser.add_argument("--engine", default="fast",
                        choices=("fast", "process"),
                        help="request engine for the reference cell "
                             "(default fast)")
    parser.add_argument("--profile", action="store_true",
                        help="additionally profile one reference run and "
                             "write the cProfile top-30 dump to "
                             "benchmarks/_output/perf_profile.txt")
    parser.add_argument("--sweep-cells", type=int, default=4, metavar="N",
                        help="cells in the jobs=1 vs jobs=cpu sweep "
                             "(default 4)")
    parser.add_argument("--sweep-duration", type=float, default=30.0,
                        metavar="SECONDS",
                        help="measured seconds per sweep cell (default 30)")
    parser.add_argument("--jobs", type=int, default=0, metavar="N",
                        help="parallel side of the sweep comparison "
                             "(default 0 = one per CPU)")
    parser.add_argument("--output", default=str(BASELINE_PATH),
                        metavar="PATH",
                        help="where to write the JSON report "
                             "(default: BENCH_perf.json at the repo root)")
    parser.add_argument("--check", action="store_true",
                        help="fail (exit 1) if events/sec regressed more "
                             "than --tolerance vs the committed baseline")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="allowed fractional events/sec regression "
                             f"for --check (default {DEFAULT_TOLERANCE})")
    parser.add_argument("--skip-sweep", action="store_true",
                        help="measure only the reference cell")
    args = parser.parse_args(argv)

    jobs = args.jobs if args.jobs > 0 else default_jobs()
    report = {
        "schema": 1,
        "host": {"cpus": os.cpu_count(),
                 "python": sys.version.split()[0]},
        "reference": measure_reference(
            args.duration, repeat=args.repeat, engine=args.engine),
    }
    if not args.skip_sweep:
        report["sweep"] = measure_sweep(
            args.sweep_duration, args.sweep_cells, max(jobs, 2))
    if args.profile:
        profile_reference(
            args.duration,
            REPO_ROOT / "benchmarks" / "_output" / "perf_profile.txt")

    reference = report["reference"]
    print(f"reference cell: {reference['scenario']}/"
          f"{reference['algorithm']} ({reference['engine']} engine) "
          f"for {reference['duration_s']:g}s sim, "
          f"best of {reference['repeat']}")
    print(f"  events/sec     {reference['events_per_sec']:>12,.0f}")
    print(f"  requests/sec   {reference['requests_per_sec']:>12,.0f}")
    print(f"  wall-clock     {reference['wall_clock_s']:>11.3f}s")
    if "sweep" in report:
        sweep = report["sweep"]
        print(f"sweep: {sweep['cells']} cells x "
              f"{sweep['cell_duration_s']:g}s sim")
        print(f"  jobs=1         {sweep['jobs1_wall_clock_s']:>11.3f}s")
        print(f"  jobs={sweep['jobs']:<10}{sweep['jobsN_wall_clock_s']:>14.3f}s")
        if sweep["speedup"] is None:
            print(f"  speedup        {'n/a':>12}  "
                  f"({sweep['cpus']} cpu host)")
        else:
            print(f"  speedup        {sweep['speedup']:>12}x")

    problems = []
    if args.check:
        problems = check_regression(
            report, BASELINE_PATH, args.tolerance)
        for problem in problems:
            print(f"CHECK: {problem}", file=sys.stderr)

    pathlib.Path(args.output).write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    print(f"wrote {args.output}")
    return 1 if any("regressed" in p for p in problems) else 0


if __name__ == "__main__":
    sys.exit(main())
