"""Extension bench: the social-network application under all algorithms.

Beyond the paper's workloads — DeathStarBench's socialNetwork graph with
its deeper, write-fanning call chains. The reproducible shape matches the
hotel app's: latency-aware algorithms beat round-robin by keeping hops
cluster-local, and per-request P2C (no scrape delay) is at least
competitive with the TrafficSplit-level controllers.
"""

from __future__ import annotations

from conftest import FAST, run_once, save_output

from repro.bench.coordinator import run_social_benchmark
from repro.bench.results import ComparisonTable

DURATION_S = 60.0 if FAST else 180.0


def _run_comparison():
    table = ComparisonTable(
        "social-network P99 at 150 RPS", baseline="round-robin")
    for algorithm in ("round-robin", "c3", "l3", "p2c"):
        result = run_social_benchmark(
            algorithm, rps=150.0, duration_s=DURATION_S, seed=1)
        table.add(algorithm, p50_ms=result.p50_ms, p99_ms=result.p99_ms)
    return table


def test_social_network_comparison(benchmark):
    table = run_once(benchmark, _run_comparison)
    save_output("social_network", table.render())

    rows = table.rows
    rr = rows["round-robin"]
    for name in ("c3", "l3", "p2c"):
        assert rows[name]["p50_ms"] < rr["p50_ms"], name
        assert rows[name]["p99_ms"] < rr["p99_ms"] * 1.05, name
