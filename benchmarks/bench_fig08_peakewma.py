"""Fig. 8 — EWMA vs PeakEWMA filtering on scenario-4.

The paper finds both L3 variants beat round-robin on the wildest-tail
trace, with plain EWMA slightly ahead of PeakEWMA (805.7 / 590.4 / 577.1
ms). The benchmark reproduces the comparison and asserts the dominant
ordering (both variants < round-robin).
"""

from __future__ import annotations

from conftest import REPETITIONS, SCENARIO_DURATION_S, run_once, save_output

from repro.bench.experiments import fig8_ewma_vs_peakewma


def test_fig8_ewma_vs_peakewma(benchmark):
    experiment = run_once(
        benchmark, fig8_ewma_vs_peakewma,
        duration_s=SCENARIO_DURATION_S, repetitions=REPETITIONS)
    save_output("fig08_peakewma", experiment.render())

    rows = experiment.table.rows
    assert rows["l3"]["p99_ms"] < rows["round-robin"]["p99_ms"]
    assert rows["l3-peak"]["p99_ms"] < rows["round-robin"]["p99_ms"]
    # EWMA vs PeakEWMA differ by ~2 % in the paper — assert they are
    # within each other's ballpark rather than a strict (noisy) ordering.
    assert (abs(rows["l3"]["p99_ms"] - rows["l3-peak"]["p99_ms"])
            < 0.35 * rows["round-robin"]["p99_ms"])
