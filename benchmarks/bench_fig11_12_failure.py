"""Figs. 11 & 12 — latency and success rate under failure injection.

failure-1 (heavy failures, drops to 30 % success) and failure-2 (light,
~99 % with short dips). The paper's shape: L3 beats round-robin on P99 in
both; L3 recovers success rate on failure-1 (91.4 → 92.4 %) while C3 —
which does not optimise for success rate — is the worst of the three;
failure-2's success rates are flat for all.
"""

from __future__ import annotations

from conftest import REPETITIONS, SCENARIO_DURATION_S, run_once, save_output

from repro.bench.experiments import fig11_12_failure_scenarios


def test_fig11_12_failure_scenarios(benchmark):
    experiments = run_once(
        benchmark, fig11_12_failure_scenarios,
        duration_s=SCENARIO_DURATION_S, repetitions=REPETITIONS)
    save_output("fig11_12_failure", "\n\n".join(
        experiment.render() for experiment in experiments.values()))

    for name, experiment in experiments.items():
        rows = experiment.table.rows
        assert rows["l3"]["p99_ms"] < rows["round-robin"]["p99_ms"], name

    heavy = experiments["failure-1"].table.rows
    # Fig. 12a: L3's success rate beats both round-robin and C3; C3 (no
    # success-rate optimisation) is the worst.
    assert heavy["l3"]["success_pct"] > heavy["c3"]["success_pct"]
    assert heavy["l3"]["success_pct"] >= heavy["round-robin"]["success_pct"] - 0.1
    assert heavy["c3"]["success_pct"] <= heavy["round-robin"]["success_pct"] + 0.1

    light = experiments["failure-2"].table.rows
    # Fig. 12b: success rates are flat (within half a point of each other).
    values = [row["success_pct"] for row in light.values()]
    assert max(values) - min(values) < 0.5
