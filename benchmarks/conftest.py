"""Shared helpers for the per-figure benchmark suite.

Each figure benchmark runs its experiment exactly once under
pytest-benchmark (``rounds=1``) — the interesting output is the regenerated
figure data, not the harness's own wall-clock. Durations are paper-scale
by default; set ``REPRO_BENCH_FAST=1`` to run 120-second prefixes instead.

Rendered experiment outputs are written to ``benchmarks/_output/`` so they
can be diffed against EXPERIMENTS.md.
"""

from __future__ import annotations

import os
import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "_output"

FAST = os.environ.get("REPRO_BENCH_FAST", "") not in ("", "0")

# Scenario runs: full 10-minute trace, or a 2-minute prefix in fast mode.
SCENARIO_DURATION_S = 120.0 if FAST else 600.0
# Hotel runs: paper uses 20 minutes; 5 minutes reproduces the shape.
HOTEL_DURATION_S = 120.0 if FAST else 300.0
REPETITIONS = 1

# Worker processes for the sweep-based benchmarks (repro.bench.parallel).
# 0 means "one per CPU"; results are identical for every value — the
# executor merges cells by id in sweep order, never completion order.
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1")) or None


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its value."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


def save_output(name: str, text: str) -> None:
    """Persist a rendered experiment to benchmarks/_output/<name>.txt."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    path = OUTPUT_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")


@pytest.fixture(autouse=True)
def _print_figure_banner(request, capsys):
    yield
