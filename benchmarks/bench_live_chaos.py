"""Live chaos baseline: recovery, failover and survival over real sockets.

Runs the live localhost testbed through a scripted disaster and measures
how the real control plane rides it out:

- at 15 % of the run the **leader replica crashes** out of the HA lease
  election; the standby must take over within one lease TTL (a takeover
  is a *cold start* — the new leader's EWMAs begin at their defaults —
  which is why the crash precedes the outage: the bench measures
  failover and reroute separately instead of compounding them);
- at 30 % of the run one cluster **blackholes** (its server accepts
  connections and never answers — only the client deadline surfaces
  it); the freshly promoted leader must reroute around it;
- at 60 % of the run the cluster comes back.

Reported numbers (wall-clock seconds):

- ``recovery_s`` — outage start until L3's applied weights have moved
  >= 20 points off the blackholed cluster (the paper's §5.2.3 reroute);
- ``restore_s`` — revert until the cluster's share is back within 10
  points of uniform;
- ``failover_s`` — leader crash until the standby's lease takeover
  (bounded by the lease TTL);
- success rates overall, during the outage, and after the revert, for
  L3 and for the round-robin control (which cannot reroute and eats the
  outage at full price).

Results land in ``BENCH_live_chaos.json`` at the repository root; the
committed copy is the baseline. Timings are wall-clock and host-noisy,
so ``--check`` asserts the *behavioural* contract (rerouted, restored,
failed over, survived), never the raw seconds.

Run it::

    python benchmarks/bench_live_chaos.py             # measure + write
    python benchmarks/bench_live_chaos.py --check     # assert contract
    python benchmarks/bench_live_chaos.py --smoke     # short CI variant
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.live.harness import LiveConfig, LiveHarness, weight_points
from repro.workloads.profiles import BackendProfile, constant_series
from repro.workloads.scenarios import Scenario

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_live_chaos.json"

CLUSTERS = ("cluster-1", "cluster-2", "cluster-3")
FAULTED = "cluster-2"
FAULTED_BACKEND = f"api/{FAULTED}"
UNIFORM_SHARE = 100.0 / len(CLUSTERS)

# The behavioural contract --check asserts (matching the test suite's
# acceptance bars, with recovery margins for loaded hosts).
SHED_POINTS = 20.0      # reroute: >= this many points leave the cluster
RESTORE_POINTS = 15.0   # restore: share back within this of uniform


def uniform_scenario(base_s: float = 0.040) -> Scenario:
    profiles = {
        cluster: BackendProfile(
            median_latency_s=constant_series(base_s),
            p99_latency_s=constant_series(base_s * 3.0),
            failure_prob=constant_series(0.0))
        for cluster in CLUSTERS
    }
    return Scenario("chaos-uniform", 600.0, profiles, constant_series(80.0),
                    "three equal clusters, chaos-driven")


def chaos_timeline(duration_s: float) -> tuple[float, float, float]:
    """``(leader_crash, outage_start, outage_end)`` at 15/30/60 %."""
    return 0.15 * duration_s, 0.3 * duration_s, 0.6 * duration_s


def build_config(algorithm: str, duration_s: float, port_base: int,
                 lease_ttl_s: float) -> LiveConfig:
    crash_at, outage_start, outage_end = chaos_timeline(duration_s)
    spec = (f"cluster-outage@{outage_start:g}+{outage_end - outage_start:g}"
            f":cluster={FAULTED}:mode=blackhole")
    ha = 1
    if algorithm != "round-robin":
        # The leader dies before the outage: the standby that takes over
        # is the one that has to see the blackhole and reroute.
        spec += f" ; controller-crash@{crash_at:g}:replica=0"
        ha = 2
    return LiveConfig(
        algorithm=algorithm, duration_s=duration_s, port_base=port_base,
        seed=1, rps=80.0, scrape_interval_s=0.5, reconcile_interval_s=0.5,
        request_timeout_s=0.5, drain_s=3.0, lease_ttl_s=lease_ttl_s,
        ha_replicas=ha, faults=spec)


def success_rates(records, outage_start: float,
                  outage_end: float) -> dict:
    def rate(selection):
        selection = list(selection)
        if not selection:
            return None
        return round(sum(r.success for r in selection) / len(selection), 4)

    return {
        "overall": rate(records),
        "during_outage": rate(r for r in records
                              if outage_start <= r.start_s < outage_end),
        "after_revert": rate(r for r in records
                             if r.start_s >= outage_end + 1.0),
    }


def weight_timings(harness, outage_start: float,
                   outage_end: float) -> dict:
    """Reroute/restore timings out of the applied-weight trajectory."""
    shares = [(t, weight_points(w).get(FAULTED_BACKEND, 0.0))
              for t, w in harness.weight_history]
    recovery_s = None
    for t, share in shares:
        # The shed must land while the outage is still on to count.
        if outage_start <= t < outage_end \
                and share <= UNIFORM_SHARE - SHED_POINTS:
            recovery_s = round(t - outage_start, 3)
            break
    restore_s = None
    for t, share in shares:
        if t >= outage_end and share >= UNIFORM_SHARE - RESTORE_POINTS:
            restore_s = round(t - outage_end, 3)
            break
    min_share = min(
        (s for t, s in shares if outage_start <= t < outage_end),
        default=None)
    return {
        "weight_updates": len(shares),
        "faulted_min_share": (round(min_share, 2)
                              if min_share is not None else None),
        "recovery_s": recovery_s,
        "restore_s": restore_s,
    }


def failover_timing(harness, crash_at: float) -> dict:
    transitions = harness.lease_transitions
    takeover = next((t for t, _name in transitions if t > crash_at), None)
    return {
        "lease_transitions": [[round(t, 3), name]
                              for t, name in transitions],
        "failover_s": (round(takeover - crash_at, 3)
                       if takeover is not None else None),
    }


def run_chaos(algorithm: str, duration_s: float, port_base: int,
              lease_ttl_s: float) -> dict:
    crash_at, outage_start, outage_end = chaos_timeline(duration_s)
    harness = LiveHarness(
        uniform_scenario(),
        build_config(algorithm, duration_s, port_base, lease_ttl_s))
    result = harness.run()

    row = {
        "algorithm": algorithm,
        "duration_s": duration_s,
        "outage_window_s": [outage_start, outage_end],
        "requests": result.request_count,
        "success_rate": success_rates(result.records, outage_start,
                                      outage_end),
        "clean_shutdown": harness.clean_shutdown,
        "chaos_errors": harness.chaos_errors,
        "fault_log": [[round(t, 3), desc]
                      for t, desc in harness.fault_log],
    }
    if algorithm != "round-robin":
        row["leader_crash_at_s"] = crash_at
        row.update(weight_timings(harness, outage_start, outage_end))
        row.update(failover_timing(harness, crash_at))
        row["lease_ttl_s"] = lease_ttl_s
    return row


def check_contract(report: dict) -> list[str]:
    """The behavioural assertions --check enforces (not the timings)."""
    problems = []
    l3 = report["l3"]
    rr = report["round_robin"]
    for name, row in (("l3", l3), ("round-robin", rr)):
        if not row["clean_shutdown"]:
            problems.append(f"{name}: dirty shutdown")
        if row["chaos_errors"]:
            problems.append(f"{name}: chaos errors {row['chaos_errors']}")
    if l3["recovery_s"] is None:
        problems.append(
            f"l3 never shed {SHED_POINTS} points off the blackholed "
            f"cluster (min share {l3['faulted_min_share']})")
    if l3["restore_s"] is None:
        problems.append(
            "l3 never restored the cluster's share after the revert")
    if l3["failover_s"] is None:
        problems.append("the standby never took the lease over")
    elif l3["failover_s"] > l3["lease_ttl_s"] + 2.0:
        problems.append(
            f"failover took {l3['failover_s']}s, TTL is "
            f"{l3['lease_ttl_s']}s")
    l3_outage = l3["success_rate"]["during_outage"]
    rr_outage = rr["success_rate"]["during_outage"]
    if l3_outage is not None and rr_outage is not None \
            and l3_outage < rr_outage + 0.02:
        # Round-robin keeps spraying 1/3 of traffic into the blackhole
        # for the whole outage; a rerouting L3 must clearly beat it.
        problems.append(
            f"l3 did not survive the outage clearly better than "
            f"round-robin ({l3_outage} vs {rr_outage})")
    if (l3["success_rate"]["after_revert"] or 0.0) < 0.97:
        problems.append(
            f"l3 did not return to health after the revert: "
            f"{l3['success_rate']['after_revert']}")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="live chaos baseline (wall-clock, real sockets)")
    parser.add_argument("--duration", type=float, default=30.0,
                        help="wall-clock seconds per run (default 30)")
    parser.add_argument("--lease-ttl", type=float, default=2.0,
                        help="HA lease TTL (default 2)")
    parser.add_argument("--port-base", type=int, default=19900)
    parser.add_argument("--output", default=str(BASELINE_PATH),
                        help="where to write the JSON report "
                             "(default: BENCH_live_chaos.json at the "
                             "repo root)")
    parser.add_argument("--check", action="store_true",
                        help="fail (exit 1) unless the behavioural "
                             "contract holds (reroute, restore, "
                             "failover, clean exit)")
    parser.add_argument("--smoke", action="store_true",
                        help="short variant for CI (20 s per run — "
                             "shorter squeezes the failover and the "
                             "outage together and measures neither)")
    args = parser.parse_args(argv)

    duration = 20.0 if args.smoke else args.duration
    report = {
        "schema": 1,
        "host": {"cpus": os.cpu_count(),
                 "python": sys.version.split()[0]},
        "l3": run_chaos("l3", duration, args.port_base, args.lease_ttl),
        "round_robin": run_chaos("round-robin", duration,
                                 args.port_base + 64, args.lease_ttl),
    }

    l3 = report["l3"]
    print(f"l3 chaos run ({duration:g}s, outage "
          f"{l3['outage_window_s'][0]:g}-{l3['outage_window_s'][1]:g}s, "
          f"{l3['requests']} requests):")
    print(f"  reroute (>= {SHED_POINTS:g} points shed)   "
          f"{l3['recovery_s']}s")
    print(f"  restore (back to uniform-{RESTORE_POINTS:g})  "
          f"{l3['restore_s']}s")
    print(f"  leader failover               {l3['failover_s']}s "
          f"(ttl {l3['lease_ttl_s']:g}s)")
    print(f"  success during outage         "
          f"{l3['success_rate']['during_outage']} "
          f"(round-robin "
          f"{report['round_robin']['success_rate']['during_outage']})")

    problems = check_contract(report) if args.check else []
    for problem in problems:
        print(f"CHECK: {problem}", file=sys.stderr)

    pathlib.Path(args.output).write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    print(f"wrote {args.output}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
