"""Ablation benches for the design choices DESIGN.md calls out.

Beyond the paper's own figures: the rate controller's contribution, the
squared in-flight exponent in Eq. 4, and §4's 5-second scrape-interval
choice.
"""

from __future__ import annotations

from conftest import (
    BENCH_JOBS,
    REPETITIONS,
    SCENARIO_DURATION_S,
    run_once,
    save_output,
)

from repro.bench.experiments import (
    ablation_inflight_exponent,
    ablation_rate_control,
    ablation_retries,
    ablation_scrape_interval,
)


def test_ablation_rate_control(benchmark):
    experiment = run_once(
        benchmark, ablation_rate_control,
        duration_s=SCENARIO_DURATION_S, repetitions=REPETITIONS,
        jobs=BENCH_JOBS)
    save_output("ablation_rate_control", experiment.render())
    rows = experiment.table.rows
    # On the fluctuating-RPS scenario the rate controller must not make
    # things meaningfully worse (its job is stability, not raw latency).
    assert rows["l3"]["p99_ms"] <= rows["l3-no-rate-control"]["p99_ms"] * 1.15


def test_ablation_inflight_exponent(benchmark):
    experiment = run_once(
        benchmark, ablation_inflight_exponent,
        duration_s=SCENARIO_DURATION_S, repetitions=REPETITIONS,
        jobs=BENCH_JOBS)
    save_output("ablation_inflight_exponent", experiment.render())
    rows = experiment.table.rows
    # All exponents produce a functional balancer; the paper's k=2 must be
    # within 15 % of the best of the sweep.
    best = min(row["p99_ms"] for row in rows.values())
    assert rows["k=2"]["p99_ms"] <= best * 1.15


def test_ablation_retries(benchmark):
    experiment = run_once(
        benchmark, ablation_retries,
        duration_s=SCENARIO_DURATION_S, repetitions=REPETITIONS,
        jobs=BENCH_JOBS)
    save_output("ablation_retries", experiment.render())
    rows = experiment.table.rows
    # Retries convert failures into latency: success rises markedly.
    assert (rows["l3 retry-2"]["success_pct"]
            > rows["l3 no-retry"]["success_pct"] + 1.0)


def test_ablation_scrape_interval(benchmark):
    experiment = run_once(
        benchmark, ablation_scrape_interval,
        duration_s=SCENARIO_DURATION_S, repetitions=REPETITIONS,
        jobs=BENCH_JOBS)
    save_output("ablation_scrape_interval", experiment.render())
    rows = experiment.table.rows
    # Faster scraping reacts faster; 2.5 s must not be worse than 10 s by
    # more than noise (§4: shorter intervals give "a measurable
    # improvement" at higher Prometheus cost).
    assert rows["2.5s"]["p99_ms"] <= rows["10s"]["p99_ms"] * 1.10
