"""Fig. 4 — the rate-control algorithm's weight-adjustment curves.

Pure-function sweep of Algorithm 2 over relative change c in [-1, 3] for
(a) an above-average weight (w_b = 2000, w_mu = 1000) and (b) a
below-average weight (w_b = 500, w_mu = 1000), asserting every property
the paper describes for the curves.
"""

from __future__ import annotations

from conftest import run_once, save_output

from repro.bench.experiments import fig4_rate_control_curves


def test_fig4_rate_control_curves(benchmark):
    experiment = run_once(benchmark, fig4_rate_control_curves)
    save_output("fig04_rate_control", experiment.render())

    above = dict(experiment.series["a:wb=2000"])
    below = dict(experiment.series["b:wb=500"])

    # c = 0: weights untouched.
    assert above[0.0] == 2000.0
    assert below[0.0] == 500.0

    # RPS increase (c > 0): both converge asymptotically toward w_mu.
    assert 1000.0 < above[3.0] < 1100.0
    assert 900.0 < below[3.0] < 1000.0
    assert above[1.0] > above[3.0]  # monotone toward the mean
    assert below[1.0] < below[3.0]

    # RPS decrease (c < 0): above-average weights grow opportunistically,
    # below-average weights shrink.
    assert above[-0.5] > 2000.0
    assert above[-1.0] > above[-0.5]
    assert below[-0.5] < 500.0
    assert below[-1.0] < below[-0.5]

    # Fig. 4a: for c = -1 the boosted weight approaches 2*w_b - w_mu.
    assert above[-1.0] < 2.0 * 2000.0 - 1000.0
