"""Tracing overhead: what does span recording cost the simulation?

The ISSUE's acceptance bar is that a run with tracing *disabled* (no
tracer attached) stays within a few percent of the seed's wall-clock —
the data plane pays exactly one ``mesh.tracer is None`` check per
request. This benchmark times the same short scenario run four ways:

* ``off``       — no tracer attached (the baseline every other run in
  the repo uses);
* ``rate0``     — tracer attached, sample rate 0.0 (ids are drawn and
  hashed, every trace rejected);
* ``rate01``    — sample rate 0.1 (deterministic head sampling admits
  ~10 % of traces);
* ``rate1``     — sample rate 1.0 (every span of every request
  recorded).

It also asserts the determinism contract: two identically-seeded traced
runs export byte-identical OTLP JSON.

The rendered table lands in ``benchmarks/_output/tracing_overhead.txt``;
CI uploads it as a build artifact.
"""

from __future__ import annotations

import time

from conftest import save_output

from repro.bench.coordinator import run_scenario_benchmark
from repro.tracing import MeshTracer, TracingConfig, to_otlp

DURATION_S = 30.0
SCENARIO = "scenario-5"
SEED = 7


def _timed_run(sample_rate: float | None):
    tracer = None
    if sample_rate is not None:
        tracer = MeshTracer(TracingConfig(sample_rate=sample_rate))
    started = time.perf_counter()
    result = run_scenario_benchmark(
        SCENARIO, "l3", duration_s=DURATION_S, seed=SEED, tracer=tracer)
    elapsed = time.perf_counter() - started
    spans = len(tracer.recorder.finished_spans()) if tracer else 0
    return elapsed, result, spans


def test_tracing_overhead(benchmark):
    def measure():
        rows = {}
        for label, rate in (("off", None), ("rate0", 0.0),
                            ("rate01", 0.1), ("rate1", 1.0)):
            elapsed, result, spans = _timed_run(rate)
            rows[label] = (elapsed, result.request_count, spans)
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    baseline = rows["off"][0]
    lines = ["tracing overhead vs untraced baseline "
             f"({SCENARIO}, {DURATION_S:.0f}s, seed {SEED})",
             f"  {'mode':<8} {'seconds':>8} {'overhead':>9} "
             f"{'requests':>9} {'spans':>8}"]
    for label, (elapsed, requests, spans) in rows.items():
        overhead = (elapsed / baseline - 1.0) * 100.0
        lines.append(f"  {label:<8} {elapsed:>8.3f} {overhead:>+8.1f}% "
                     f"{requests:>9} {spans:>8}")
    text = "\n".join(lines)
    print()
    print(text)
    save_output("tracing_overhead", text)

    # Same seed and rate → identical request paths → identical spans.
    # (Wall-clock comparisons are too noisy to assert on in CI; the
    # determinism contract is the part a regression would silently break.)
    for (e0, r0, s0), (e1, r1, s1) in [(rows["off"], rows["rate0"])]:
        assert r0 == r1, "attaching a rate-0 tracer changed the run"
    assert rows["rate1"][2] > rows["rate01"][2] > 0


def test_traced_runs_are_byte_identical():
    import json

    exports = []
    for _ in range(2):
        tracer = MeshTracer(TracingConfig(sample_rate=0.1))
        run_scenario_benchmark(
            SCENARIO, "l3", duration_s=15.0, seed=SEED, tracer=tracer)
        exports.append(json.dumps(to_otlp(tracer.recorder), sort_keys=True))
    assert exports[0] == exports[1]
