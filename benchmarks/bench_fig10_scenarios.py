"""Fig. 10 — P99 comparison on the five TIER-like scenarios.

The paper reports L3 beating round-robin by 22/35/19/9/9 % and C3 by
8/9/11/5/3 % on scenario-1..5. The benchmark regenerates all five
comparisons and asserts the reproducible shape: L3 < C3 < round-robin on
P99 for the volatile scenarios, and L3 no worse than round-robin anywhere.
"""

from __future__ import annotations

from conftest import (
    BENCH_JOBS,
    REPETITIONS,
    SCENARIO_DURATION_S,
    run_once,
    save_output,
)

from repro.bench.experiments import fig10_scenario_comparison


def test_fig10_scenario_comparison(benchmark):
    experiments = run_once(
        benchmark, fig10_scenario_comparison,
        duration_s=SCENARIO_DURATION_S, repetitions=REPETITIONS,
        jobs=BENCH_JOBS)
    save_output("fig10_scenarios", "\n\n".join(
        experiment.render() for experiment in experiments.values()))

    for name, experiment in experiments.items():
        rows = experiment.table.rows
        rr = rows["round-robin"]["p99_ms"]
        l3 = rows["l3"]["p99_ms"]
        c3 = rows["c3"]["p99_ms"]
        # L3 never loses to round-robin.
        assert l3 <= rr * 1.02, f"{name}: L3 {l3:.1f} vs RR {rr:.1f}"
        # C3 sits between (within noise) — L3 at least matches it.
        assert l3 <= c3 * 1.06, f"{name}: L3 {l3:.1f} vs C3 {c3:.1f}"

    # The paper's largest gains are on the asymmetric scenarios 1-2.
    gain_1 = 1.0 - (experiments["scenario-1"].table.rows["l3"]["p99_ms"]
                    / experiments["scenario-1"].table.rows["round-robin"]["p99_ms"])
    gain_5 = 1.0 - (experiments["scenario-5"].table.rows["l3"]["p99_ms"]
                    / experiments["scenario-5"].table.rows["round-robin"]["p99_ms"])
    assert gain_1 > 0.05, f"scenario-1 gain too small: {gain_1:.3f}"
    assert gain_1 >= gain_5 - 0.05, "volatile scenarios gain most"
