"""Fleet-scale throughput baseline: fast engine vs the sharded bulk path.

Runs the committed reference fleet cell (120 clusters / ~1200 replica
endpoints, ``repro.workloads.fleet.FleetSpec()`` defaults) through

1. the single-core **fast** engine — the event-kernel baseline whose
   events/sec rate every other number is measured against;
2. the **sharded** bulk engine at ``jobs=1`` — the pure vectorization
   factor, no parallelism involved;
3. ``jobs=N`` on multi-CPU hosts — the sharding speedup on top.

The shard engine runs no event kernel, so its throughput is reported as
*equivalent* events/sec: the fast engine's event count for the same cell
divided by the shard wall-clock (uniform arrivals make the two runs
serve the identical request schedule). Shard-count invariance
(``jobs=1`` vs ``jobs=2`` byte-identity) is asserted on every run, like
``bench_perf.py`` asserts sweep determinism.

Results land in ``BENCH_fleet.json`` at the repository root; the
committed copy is the baseline ``--check`` compares against (CI fails on
a >30 % regression of the fast rate or the vectorization factor; the
sharding speedup is compared only between multi-CPU measurements, and
recorded as null on single-CPU hosts where it would be noise).

Run it::

    python benchmarks/bench_fleet.py                  # measure + write
    python benchmarks/bench_fleet.py --check          # compare with the
                                                      # committed file
    python benchmarks/bench_fleet.py --tournament     # also race the
                                                      # leaderboard top-3
                                                      # on the fleet cell
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.bench.coordinator import run_scenario_benchmark
from repro.bench.digest import digest_result
from repro.sim.shard import run_sharded_benchmark
from repro.workloads.fleet import FleetSpec, build_fleet_scenario

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_fleet.json"
TOURNAMENT_PATH = REPO_ROOT / "BENCH_tournament.json"

REFERENCE_SEED = 1
DEFAULT_TOLERANCE = 0.30

# How many leaderboard entries --tournament races on the fleet cell.
TOURNAMENT_TOP_N = 3


def _best_of(fn, repeat: int):
    """Run ``fn`` ``repeat`` times; return (result, best_wall, walls)."""
    walls = []
    result = None
    for _ in range(max(repeat, 1)):
        started = time.perf_counter()
        result = fn()
        walls.append(time.perf_counter() - started)
    return result, min(walls), walls


def measure_cell(spec: FleetSpec, seed: int, duration_s: float,
                 repeat: int, jobs: int) -> dict:
    """The three-way comparison on one fleet cell."""
    scenario = build_fleet_scenario(spec, seed=seed)
    topology = scenario.topology

    fast_result, fast_wall, fast_walls = _best_of(
        lambda: run_scenario_benchmark(
            scenario, "l3", duration_s=duration_s, seed=seed,
            engine="fast"),
        repeat)
    events = fast_result.events_processed

    shard1_result, shard1_wall, shard1_walls = _best_of(
        lambda: run_sharded_benchmark(
            scenario, "l3", duration_s=duration_s, seed=seed, jobs=1),
        repeat)

    # Shard-count invariance is part of the engine's contract: assert it
    # on every measurement, not only in the test suite.
    shard2_result = run_sharded_benchmark(
        scenario, "l3", duration_s=duration_s, seed=seed, jobs=2)
    if digest_result(shard2_result) != digest_result(shard1_result):
        raise AssertionError(
            "jobs=2 diverged from jobs=1 — shard determinism contract "
            "violated")

    cpus = os.cpu_count() or 1
    vectorization = fast_wall / shard1_wall if shard1_wall > 0 else None
    report = {
        "cell": {
            "scenario": scenario.name,
            "clusters": spec.clusters,
            "endpoints": topology.total_endpoints(),
            "duration_s": duration_s,
            "seed": seed,
            "measured_requests": len(shard1_result.records),
        },
        "fast": {
            "wall_clock_s": round(fast_wall, 3),
            "wall_clock_all_s": [round(w, 3) for w in fast_walls],
            "events_processed": events,
            "events_per_sec": round(events / fast_wall, 1),
            "requests": fast_result.request_count,
        },
        "shard_jobs1": {
            "wall_clock_s": round(shard1_wall, 3),
            "wall_clock_all_s": [round(w, 3) for w in shard1_walls],
            "requests": shard1_result.request_count,
            # The fast engine's event count over the shard wall: what the
            # kernel would have had to sustain to finish this fast.
            "equivalent_events_per_sec": round(events / shard1_wall, 1),
        },
        "vectorization_factor": round(vectorization, 2),
        "jobs1_vs_jobs2_digest": "identical",
    }

    # Sharding on top of vectorization — only meaningful with real CPUs.
    sharding = {
        "jobs": jobs,
        "cpus": cpus,
        "speedup_meaningful": cpus >= 2,
        "wall_clock_s": None,
        "speedup": None,
        "combined_factor": None,
    }
    if cpus >= 2 and jobs >= 2:
        _, shardn_wall, _ = _best_of(
            lambda: run_sharded_benchmark(
                scenario, "l3", duration_s=duration_s, seed=seed,
                jobs=jobs),
            repeat)
        sharding["wall_clock_s"] = round(shardn_wall, 3)
        if shardn_wall > 0:
            sharding["speedup"] = round(shard1_wall / shardn_wall, 2)
            sharding["combined_factor"] = round(
                fast_wall / shardn_wall, 2)
    report["sharding"] = sharding
    return report


def run_tournament(spec: FleetSpec, seed: int, duration_s: float) -> dict:
    """Race the committed leaderboard's top finishers on the fleet cell.

    The zoo balancers are per-request (not in ``SHARD_ALGORITHMS``), so
    they run through the **vector** engine — record-identical to the
    event kernel, numpy-chunked hot path.
    """
    ranking = []
    if TOURNAMENT_PATH.exists():
        doc = json.loads(TOURNAMENT_PATH.read_text(encoding="utf-8"))
        ranking = doc.get("leaderboard", {}).get("ranking", [])
    contenders = ranking[:TOURNAMENT_TOP_N] or ["ewma", "failover",
                                                "service-rate"]
    scenario = build_fleet_scenario(spec, seed=seed)
    rows = {}
    for algorithm in contenders:
        started = time.perf_counter()
        result = run_scenario_benchmark(
            scenario, algorithm, duration_s=duration_s, seed=seed,
            engine="vector")
        wall = time.perf_counter() - started
        latencies = result.latency_percentiles()
        rows[algorithm] = {
            "requests": result.request_count,
            "success_rate": round(result.success_rate, 4),
            "p50_ms": round(latencies.percentile(0.50) * 1000.0, 3),
            "p99_ms": round(latencies.percentile(0.99) * 1000.0, 3),
            "wall_clock_s": round(wall, 3),
        }
    return {
        "engine": "vector",
        "cell": scenario.name,
        "duration_s": duration_s,
        "seed": seed,
        "contenders": contenders,
        "rows": rows,
    }


def check_regression(current: dict, baseline_path: pathlib.Path,
                     tolerance: float) -> list[str]:
    """Compare against the committed baseline, like bench_perf.py.

    Rates and factors are compared only between runs of the *same* cell
    (scenario name match); the sharding speedup only when both sides
    were measured on multi-CPU hosts.
    """
    if not baseline_path.exists():
        return [f"no committed baseline at {baseline_path}; skipping check"]
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    if baseline.get("cell", {}).get("scenario") != \
            current["cell"]["scenario"]:
        return [
            f"baseline cell {baseline.get('cell', {}).get('scenario')!r} "
            f"differs from measured {current['cell']['scenario']!r}; "
            "skipping check"]
    problems = []
    pairs = [
        ("fast events/sec",
         baseline.get("fast", {}).get("events_per_sec"),
         current["fast"]["events_per_sec"]),
        ("equivalent events/sec (shard jobs=1)",
         baseline.get("shard_jobs1", {}).get("equivalent_events_per_sec"),
         current["shard_jobs1"]["equivalent_events_per_sec"]),
        ("vectorization factor",
         baseline.get("vectorization_factor"),
         current["vectorization_factor"]),
    ]
    base_sharding = baseline.get("sharding", {})
    cur_sharding = current.get("sharding", {})
    if base_sharding.get("speedup_meaningful") and \
            cur_sharding.get("speedup_meaningful"):
        pairs.append(("sharding speedup", base_sharding.get("speedup"),
                      cur_sharding.get("speedup")))
    elif not cur_sharding.get("speedup_meaningful", False):
        problems.append(
            f"measured with {cur_sharding.get('cpus', 1)} cpu(s); "
            "sharding speedup comparison skipped (not a regression)")
    for label, base, cur in pairs:
        if not base or cur is None:
            continue
        floor = base * (1.0 - tolerance)
        if cur < floor:
            problems.append(
                f"{label} regressed: {cur:.2f} < {floor:.2f} "
                f"(baseline {base:.2f}, tolerance {tolerance:.0%})")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="fleet-scale throughput baseline "
                    "(writes BENCH_fleet.json)")
    parser.add_argument("--clusters", type=int, default=0, metavar="N",
                        help="fleet size (default 0 = the reference "
                             "spec's 120)")
    parser.add_argument("--duration", type=float, default=600.0,
                        metavar="SECONDS",
                        help="measured simulated seconds (default 600)")
    parser.add_argument("--seed", type=int, default=REFERENCE_SEED)
    parser.add_argument("--repeat", type=int, default=3, metavar="N",
                        help="repetitions per engine; best wall reported "
                             "(default 3)")
    parser.add_argument("--jobs", type=int, default=0, metavar="N",
                        help="shard worker processes for the parallel "
                             "side (default 0 = one per CPU)")
    parser.add_argument("--output", default=str(BASELINE_PATH),
                        metavar="PATH",
                        help="where to write the JSON report "
                             "(default: BENCH_fleet.json at the repo "
                             "root)")
    parser.add_argument("--check", action="store_true",
                        help="fail (exit 1) on a >--tolerance regression "
                             "vs the committed baseline")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="allowed fractional regression for --check "
                             f"(default {DEFAULT_TOLERANCE})")
    parser.add_argument("--tournament", action="store_true",
                        help="also race the committed tournament "
                             f"leaderboard's top {TOURNAMENT_TOP_N} on "
                             "the fleet cell (vector engine) and record "
                             "per-algorithm latency")
    parser.add_argument("--tournament-duration", type=float,
                        default=120.0, metavar="SECONDS",
                        help="measured seconds per tournament run "
                             "(default 120)")
    args = parser.parse_args(argv)

    spec = FleetSpec() if args.clusters <= 0 else \
        FleetSpec(clusters=args.clusters,
                  duration_s=max(args.duration, 60.0))
    jobs = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)
    report = {
        "schema": 1,
        "host": {"cpus": os.cpu_count(),
                 "python": sys.version.split()[0]},
    }
    report.update(measure_cell(spec, args.seed, args.duration,
                               args.repeat, jobs))
    if args.tournament:
        report["tournament"] = run_tournament(
            spec, args.seed, args.tournament_duration)

    cell = report["cell"]
    fast = report["fast"]
    shard1 = report["shard_jobs1"]
    sharding = report["sharding"]
    print(f"cell: {cell['scenario']} ({cell['clusters']} clusters, "
          f"{cell['endpoints']} endpoints, {cell['duration_s']:g}s sim)")
    print(f"  fast engine       {fast['wall_clock_s']:>9.3f}s  "
          f"{fast['events_per_sec']:>12,.0f} events/sec")
    print(f"  shard jobs=1      {shard1['wall_clock_s']:>9.3f}s  "
          f"{shard1['equivalent_events_per_sec']:>12,.0f} equiv events/sec")
    print(f"  vectorization     {report['vectorization_factor']:>9.2f}x")
    if sharding["speedup"] is not None:
        print(f"  shard jobs={sharding['jobs']:<7}{sharding['wall_clock_s']:>11.3f}s  "
              f"speedup {sharding['speedup']}x, combined "
              f"{sharding['combined_factor']}x")
    else:
        print(f"  sharding speedup       n/a  "
              f"({sharding['cpus']} cpu host)")
    if "tournament" in report:
        print(f"tournament on {report['tournament']['cell']} "
              f"({report['tournament']['duration_s']:g}s, vector engine):")
        for algorithm, row in report["tournament"]["rows"].items():
            print(f"  {algorithm:<14} p50 {row['p50_ms']:>8.2f} ms   "
                  f"p99 {row['p99_ms']:>8.2f} ms   "
                  f"({row['requests']} requests)")

    problems = []
    if args.check:
        problems = check_regression(report, BASELINE_PATH, args.tolerance)
        for problem in problems:
            print(f"CHECK: {problem}", file=sys.stderr)

    pathlib.Path(args.output).write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    print(f"wrote {args.output}")
    return 1 if any("regressed" in p for p in problems) else 0


if __name__ == "__main__":
    sys.exit(main())
