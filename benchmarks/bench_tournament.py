"""Tournament baseline: the full algorithm × scenario grid, committed.

Runs the complete tournament — every registered balancer against every
grid cell (the five TIER-derived trace scenarios plus the
degraded-backend and outage perturbation cells) — through the
deterministic parallel sweep executor and writes the scored grid and
leaderboard to ``BENCH_tournament.json`` at the repository root. The
committed copy is the reference leaderboard: the simulation is a pure
function of (algorithms, scenarios, duration, seed), so the document is
byte-identical on any host at any ``--jobs`` value, and a diff in it
means an algorithm's behavior actually changed.

Run it::

    python benchmarks/bench_tournament.py                 # full baseline
    python benchmarks/bench_tournament.py --jobs 0        # all CPUs
    python benchmarks/bench_tournament.py --check         # + the L3-vs-RR
                                                          # P99 contract
    python benchmarks/bench_tournament.py --verify-jobs   # prove the
                                          # jobs-invariance on this host
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.tournament import (
    check_contract,
    render_leaderboard,
    run_tournament,
    tournament_json,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_tournament.json"

# Baseline grid defaults: every algorithm, every scenario, 120 measured
# seconds per cell, one seed. Long enough that the perturbation cells
# hold a 45 s fault with clean pre/post windows; short enough to rerun.
DEFAULT_DURATION_S = 120.0
DEFAULT_SEED = 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="balancer tournament baseline "
                    "(writes BENCH_tournament.json)")
    parser.add_argument("--duration", type=float,
                        default=DEFAULT_DURATION_S, metavar="SECONDS",
                        help="measured seconds per cell "
                             f"(default {DEFAULT_DURATION_S:g})")
    parser.add_argument("--repetitions", type=int, default=1, metavar="N",
                        help="seeds per cell, scores averaged (default 1)")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help=f"first seed (default {DEFAULT_SEED})")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (default 1 = serial; "
                             "0 = all CPUs; the document is identical "
                             "for every value)")
    parser.add_argument("--algorithms", nargs="+", default=None,
                        metavar="ALG",
                        help="restrict the algorithm axis (default: all)")
    parser.add_argument("--scenarios", nargs="+", default=None,
                        metavar="CELL",
                        help="restrict the scenario axis (default: all)")
    parser.add_argument("--output", default=str(BASELINE_PATH),
                        metavar="PATH",
                        help="where to write the JSON document (default: "
                             "BENCH_tournament.json at the repo root)")
    parser.add_argument("--check", action="store_true",
                        help="fail (exit 1) unless L3 beats round-robin "
                             "on P99 in the degraded-backend cell")
    parser.add_argument("--verify-jobs", action="store_true",
                        help="re-run the grid serially and assert the "
                             "document is byte-identical to the "
                             "parallel run")
    args = parser.parse_args(argv)

    started = time.perf_counter()
    result = run_tournament(
        algorithms=args.algorithms, scenarios=args.scenarios,
        duration_s=args.duration, repetitions=args.repetitions,
        seed0=args.seed, jobs=args.jobs if args.jobs > 0 else None)
    wall = time.perf_counter() - started
    document = tournament_json(result)
    blob = json.dumps(document, indent=2, sort_keys=True) + "\n"

    if args.verify_jobs and (args.jobs == 0 or args.jobs > 1):
        serial = tournament_json(run_tournament(
            algorithms=args.algorithms, scenarios=args.scenarios,
            duration_s=args.duration, repetitions=args.repetitions,
            seed0=args.seed, jobs=1))
        serial_blob = json.dumps(serial, indent=2, sort_keys=True) + "\n"
        if serial_blob != blob:
            print("VERIFY FAILED: serial and parallel documents differ",
                  file=sys.stderr)
            return 1
        print("verify-jobs OK: serial run is byte-identical")

    print(render_leaderboard(document["leaderboard"]))
    print(f"\n{len(result.algorithms)} algorithms x "
          f"{len(result.scenarios)} scenarios x "
          f"{result.repetitions} rep @ {result.duration_s:g}s "
          f"in {wall:.1f}s wall")

    failures = []
    if args.check:
        failures = check_contract(result)
        for failure in failures:
            print(f"CHECK FAILED: {failure}", file=sys.stderr)
        if not failures:
            print("check OK: l3 beat round-robin on degraded-backend P99")

    pathlib.Path(args.output).write_text(blob, encoding="utf-8")
    print(f"wrote {args.output}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
