"""Microbenchmarks of the control-path primitives.

These measure the per-operation cost of the pieces that run in the
production controller's hot path (the paper's Go operator uses <1.5 % of a
vCPU): EWMA updates, the weighting algorithm, rate control, histogram
observation and quantile queries, and the simulator's event throughput.
"""

from __future__ import annotations

import random

from repro.core.ewma import Ewma, PeakEwma, half_life_to_beta
from repro.core.rate_control import apply_rate_control
from repro.core.weighting import BackendSnapshot, WeightingConfig, compute_weights
from repro.sim.engine import Simulator
from repro.telemetry.histogram import LatencyHistogram


def test_ewma_observe_throughput(benchmark):
    def observe_many():
        ewma = Ewma(default=0.1, beta=half_life_to_beta(5.0))
        for i in range(1000):
            ewma.observe(0.05 + (i % 7) * 0.01, float(i))
        return ewma.value

    value = benchmark(observe_many)
    assert value > 0


def test_peak_ewma_observe_throughput(benchmark):
    def observe_many():
        ewma = PeakEwma(default=0.1, beta=half_life_to_beta(5.0))
        for i in range(1000):
            ewma.observe(0.05 + (i % 11) * 0.02, float(i))
        return ewma.value

    value = benchmark(observe_many)
    assert value > 0


def test_weighting_algorithm(benchmark):
    snapshots = [
        BackendSnapshot(f"backend-{i}", 0.01 * (i + 1), 0.99, 100.0, 2.0)
        for i in range(16)
    ]
    config = WeightingConfig()

    weights = benchmark(compute_weights, snapshots, config)
    assert len(weights) == 16


def test_rate_control_algorithm(benchmark):
    weights = {f"backend-{i}": 1000.0 + 100.0 * i for i in range(16)}

    adjusted = benchmark(apply_rate_control, weights, 200.0, 260.0)
    assert len(adjusted) == 16


def test_histogram_observe(benchmark):
    histogram = LatencyHistogram()
    rng = random.Random(7)
    samples = [rng.lognormvariate(-3.0, 0.8) for _ in range(1000)]

    def observe_many():
        for sample in samples:
            histogram.observe(sample)
        return histogram.count

    count = benchmark(observe_many)
    assert count > 0


def test_histogram_quantile(benchmark):
    histogram = LatencyHistogram()
    rng = random.Random(7)
    for _ in range(10_000):
        histogram.observe(rng.lognormvariate(-3.0, 0.8))

    p99 = benchmark(histogram.quantile, 0.99)
    assert p99 > 0


def test_full_reconcile_cycle(benchmark):
    """One complete controller reconcile over three backends.

    §4 reports the Go operator using under 1.5 % of a vCPU; the loop runs
    once per five seconds, so a reconcile in the tens of microseconds is
    far inside that envelope even in Python.
    """
    from repro.core.config import L3Config
    from repro.core.controller import L3Controller, MetricSample

    class Source:
        def collect(self, names, now, window_s, percentile):
            return {
                name: MetricSample(0.05 + i * 0.01, 0.99, 100.0, 2.0)
                for i, name in enumerate(names)
            }

    class Sink:
        def set_weights(self, weights, now):
            pass

    controller = L3Controller(
        ["svc/c1", "svc/c2", "svc/c3"], Source(), Sink(), L3Config())
    clock = {"now": 0.0}

    def reconcile_once():
        clock["now"] += 5.0
        return controller.reconcile(clock["now"])

    weights = benchmark(reconcile_once)
    assert len(weights) == 3


def test_simulator_event_throughput(benchmark):
    def run_events():
        sim = Simulator()
        counter = {"fired": 0}

        def tick():
            counter["fired"] += 1

        for i in range(10_000):
            sim.call_at(i * 0.001, tick)
        sim.run()
        return counter["fired"]

    fired = benchmark(run_events)
    assert fired == 10_000


def test_simulator_process_throughput(benchmark):
    def run_processes():
        sim = Simulator()

        def worker(sim):
            for _ in range(100):
                yield sim.timeout(0.01)

        for _ in range(100):
            sim.spawn(worker(sim))
        sim.run()
        return sim.now

    final = benchmark(run_processes)
    assert final > 0
