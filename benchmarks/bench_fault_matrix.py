"""Fault matrix — recovery time per fault type × balancing algorithm.

Sweeps every fault kind in :mod:`repro.faults` against L3, C3 and
round-robin on a steady scenario (flat latency/load, so the fault is the
only disturbance), and checks the robustness acceptance bar: under a
blackhole cluster outage with a 1-second request deadline, L3 sheds at
least 90 % of the faulted cluster's traffic and the tail recovers after
the heal.
"""

from __future__ import annotations

import pathlib
import sys

# Runnable as a plain script (python benchmarks/bench_fault_matrix.py)
# without an installed package: put src/ on the path first.
_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from conftest import BENCH_JOBS, FAST, run_once, save_output

from repro.bench.fault_matrix import render_fault_matrix, run_fault_matrix

# The matrix needs ~60 s of pre-fault baseline + 45 s fault + recovery
# tail; 180 s covers it, full mode doubles the recovery observation.
MATRIX_DURATION_S = 180.0 if FAST else 300.0


def test_fault_matrix(benchmark):
    matrix = run_once(
        benchmark, run_fault_matrix, duration_s=MATRIX_DURATION_S,
        jobs=BENCH_JOBS)
    save_output("fault_matrix", render_fault_matrix(matrix))

    for fault_name, row in matrix.items():
        for algorithm, cell in row.items():
            assert cell.result.request_count > 0, (fault_name, algorithm)

    blackhole = matrix["cluster-blackhole"]
    # Round-robin keeps spraying the dead cluster (~1/3 of traffic); L3
    # sheds at least 90 % of it within 3 reconcile intervals.
    assert blackhole["round-robin"].faulted_share_pct > 20.0
    assert blackhole["l3"].shed_share_pct < 10.0
    # With a 1 s deadline nothing hangs: every cell completes with a
    # measurable during-fault success rate, and L3 keeps most traffic
    # flowing around the outage.
    assert blackhole["l3"].fault_success_pct > 85.0
    # The tail comes back after the heal.
    assert blackhole["l3"].recovery_intervals is not None

    outage = matrix["cluster-outage"]
    assert outage["l3"].shed_share_pct < 10.0
    assert (outage["l3"].fault_success_pct
            > outage["round-robin"].fault_success_pct)


def main(argv=None) -> int:
    """Standalone sweep entry point.

    ``python benchmarks/bench_fault_matrix.py --jobs 4`` prints the exact
    same matrix as ``--jobs 1`` (the executor merges cells by id in sweep
    order), only faster — which makes this script a self-contained check
    of the parallel executor's determinism contract: diff the outputs.
    """
    import argparse
    import time

    parser = argparse.ArgumentParser(
        description="fault-type x algorithm recovery matrix")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (default 1 = serial; "
                             "0 = one per CPU)")
    parser.add_argument("--duration", type=float,
                        default=MATRIX_DURATION_S, metavar="SECONDS",
                        help="measured seconds per cell "
                             f"(default {MATRIX_DURATION_S:g})")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)

    started = time.perf_counter()
    matrix = run_fault_matrix(
        duration_s=args.duration, seed=args.seed,
        jobs=args.jobs if args.jobs > 0 else None)
    elapsed = time.perf_counter() - started
    print(render_fault_matrix(matrix))
    print(f"[{elapsed:.1f}s wall-clock at jobs={args.jobs}]",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
