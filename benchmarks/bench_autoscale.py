"""Elasticity benchmark: the cost-vs-P99 frontier + control-loop study.

Two committed measurements (``BENCH_autoscale.json`` at the repo root):

1. **Frontier** — the ``elastic-surge`` scenario under L3 in every
   capacity mode: ``fixed-min`` (the initial replica sets, never
   scaled), ``autoscale`` across a sweep of utilization targets, and
   ``fixed-max`` (every cluster pinned at the policy maximum). Each row
   reports tail latency *and* replica-seconds cost, tracing the curve an
   operator moves along by picking a setpoint.

   The **elasticity contract** — checked by ``--check`` and by CI — is
   that the scenario's configured target beats ``fixed-min`` on P99
   while costing fewer replica-seconds than ``fixed-max``: elasticity
   buys most of the latency of peak provisioning at a fraction of the
   cost.

2. **Interaction** — the ``elastic-outage`` scenario (a mid-run cluster
   outage with autoscaling on) under L3 vs round-robin: do the weight
   loop and the replica loop, reading the same scraped telemetry,
   amplify each other into oscillation? Reported as replica flaps,
   weight flaps, and how long after the outage heals both loops take to
   go quiet (:mod:`repro.autoscale.study` defines the estimators).

Run it::

    python benchmarks/bench_autoscale.py            # measure + write
    python benchmarks/bench_autoscale.py --check    # also verify the
                                                    # elasticity contract
    python benchmarks/bench_autoscale.py --smoke    # CI-sized run
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys

_SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.autoscale.study import run_elasticity_cell
from repro.bench.parallel import Cell, run_cells

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_autoscale.json"

REFERENCE_SEED = 1
DEFAULT_DURATION_S = 360.0
SMOKE_DURATION_S = 120.0
# Utilization setpoints the frontier sweeps (None = the scenario's own
# configured policy — the row the elasticity contract is checked on).
DEFAULT_TARGETS = (0.35, None, 0.65)

FRONTIER_SCENARIO = "elastic-surge"
INTERACTION_SCENARIO = "elastic-outage"
INTERACTION_ALGORITHMS = ("l3", "round-robin")


def _frontier_cells(duration_s: float, seed: int, targets) -> list[Cell]:
    cells = [Cell(id="fixed-min", fn=run_elasticity_cell,
                  kwargs={"scenario": FRONTIER_SCENARIO, "mode": "fixed-min",
                          "duration_s": duration_s, "seed": seed})]
    for target in targets:
        label = "autoscale" if target is None else f"autoscale@{target:g}"
        cells.append(Cell(id=label, fn=run_elasticity_cell,
                          kwargs={"scenario": FRONTIER_SCENARIO,
                                  "mode": "autoscale",
                                  "duration_s": duration_s, "seed": seed,
                                  "target": target}))
    cells.append(Cell(id="fixed-max", fn=run_elasticity_cell,
                      kwargs={"scenario": FRONTIER_SCENARIO,
                              "mode": "fixed-max",
                              "duration_s": duration_s, "seed": seed}))
    return cells


def _interaction_cells(duration_s: float, seed: int) -> list[Cell]:
    return [Cell(id=algorithm, fn=run_elasticity_cell,
                 kwargs={"scenario": INTERACTION_SCENARIO,
                         "mode": "autoscale", "algorithm": algorithm,
                         "duration_s": duration_s, "seed": seed})
            for algorithm in INTERACTION_ALGORITHMS]


def measure(duration_s: float, seed: int, targets, jobs: int) -> dict:
    """Run every cell (one process pool) and assemble the report."""
    cells = _frontier_cells(duration_s, seed, targets) \
        + [Cell(id=f"interaction/{c.id}", fn=c.fn, kwargs=c.kwargs)
           for c in _interaction_cells(duration_s, seed)]
    outcomes = run_cells(cells, jobs=jobs)
    rows = {key: outcome.unwrap() for key, outcome in outcomes.items()}

    frontier_rows = [rows[c.id] for c in
                     _frontier_cells(duration_s, seed, targets)]
    interaction_rows = {
        algorithm: rows[f"interaction/{algorithm}"]
        for algorithm in INTERACTION_ALGORITHMS}
    return {
        "schema": 1,
        "host": {"cpus": os.cpu_count(), "python": sys.version.split()[0]},
        "frontier": {
            "scenario": FRONTIER_SCENARIO,
            "algorithm": "l3",
            "duration_s": duration_s,
            "seed": seed,
            "rows": frontier_rows,
        },
        "interaction": {
            "scenario": INTERACTION_SCENARIO,
            "duration_s": duration_s,
            "seed": seed,
            "rows": interaction_rows,
        },
        "contract": elasticity_contract(frontier_rows),
    }


def elasticity_contract(frontier_rows) -> dict:
    """The headline claim, as recorded (and checked) booleans.

    The autoscale row is the scenario's own setpoint (``target`` None),
    the one an operator gets without tuning anything.
    """
    by_mode = {}
    for row in frontier_rows:
        if row["mode"] == "autoscale" and row["target"] is None:
            by_mode["autoscale"] = row
        elif row["mode"] in ("fixed-min", "fixed-max"):
            by_mode[row["mode"]] = row
    autoscale = by_mode["autoscale"]
    fixed_min = by_mode["fixed-min"]
    fixed_max = by_mode["fixed-max"]
    return {
        "autoscale_p99_ms": autoscale["p99_ms"],
        "fixed_min_p99_ms": fixed_min["p99_ms"],
        "autoscale_replica_seconds": autoscale["replica_seconds"],
        "fixed_max_replica_seconds": fixed_max["replica_seconds"],
        "p99_beats_fixed_min":
            autoscale["p99_ms"] < fixed_min["p99_ms"],
        "cost_below_fixed_max":
            autoscale["replica_seconds"] < fixed_max["replica_seconds"],
    }


def check_contract(report: dict) -> list[str]:
    """Violations of the elasticity contract in a measured report."""
    contract = report["contract"]
    problems = []
    if not contract["p99_beats_fixed_min"]:
        problems.append(
            f"autoscale P99 {contract['autoscale_p99_ms']:.1f} ms did not "
            f"beat fixed-min {contract['fixed_min_p99_ms']:.1f} ms")
    if not contract["cost_below_fixed_max"]:
        problems.append(
            f"autoscale cost {contract['autoscale_replica_seconds']:.0f} "
            f"replica-seconds not below fixed-max "
            f"{contract['fixed_max_replica_seconds']:.0f}")
    return problems


def _print_report(report: dict) -> None:
    frontier = report["frontier"]
    print(f"frontier: {frontier['scenario']} / {frontier['algorithm']} "
          f"({frontier['duration_s']:g}s sim, seed {frontier['seed']})")
    print(f"  {'mode':<16} {'p50 ms':>9} {'p99 ms':>9} {'ok %':>7} "
          f"{'replica-s':>10} {'events':>7}")
    for row in frontier["rows"]:
        mode = row["mode"] if row["target"] is None \
            else f"{row['mode']}@{row['target']:g}"
        print(f"  {mode:<16} {row['p50_ms']:>9.1f} {row['p99_ms']:>9.1f} "
              f"{row['success_rate'] * 100.0:>6.2f}% "
              f"{row['replica_seconds']:>10.0f} {row['scale_events']:>7}")
    interaction = report["interaction"]
    print(f"interaction: {interaction['scenario']} "
          f"({interaction['duration_s']:g}s sim)")
    for algorithm, row in interaction["rows"].items():
        settle = row.get("convergence_after_heal_s")
        settle_text = "n/a" if settle is None else f"{settle:.0f}s"
        print(f"  {algorithm:<14} p99 {row['p99_ms']:>8.1f} ms   "
              f"replica flaps {row['replica_flaps']:>2}   "
              f"weight flaps {row['weight_flaps']:>3}   "
              f"settled {settle_text} after heal")
    contract = report["contract"]
    print(f"contract: p99 {contract['autoscale_p99_ms']:.1f} ms vs "
          f"fixed-min {contract['fixed_min_p99_ms']:.1f} ms; cost "
          f"{contract['autoscale_replica_seconds']:.0f} vs fixed-max "
          f"{contract['fixed_max_replica_seconds']:.0f} replica-s")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="elasticity frontier + control-loop interaction "
                    "(writes BENCH_autoscale.json)")
    parser.add_argument("--duration", type=float,
                        default=DEFAULT_DURATION_S, metavar="SECONDS",
                        help="measured simulated seconds per cell "
                             f"(default {DEFAULT_DURATION_S:g})")
    parser.add_argument("--targets", type=float, nargs="*", default=None,
                        metavar="U",
                        help="utilization setpoints for the autoscale "
                             "sweep (the scenario's own policy is always "
                             "included)")
    parser.add_argument("--seed", type=int, default=REFERENCE_SEED)
    parser.add_argument("--jobs", type=int, default=0, metavar="N",
                        help="cell worker processes (default 0 = one "
                             "per CPU, capped at the cell count)")
    parser.add_argument("--output", default=str(BASELINE_PATH),
                        metavar="PATH",
                        help="where to write the JSON report (default: "
                             "BENCH_autoscale.json at the repo root)")
    parser.add_argument("--check", action="store_true",
                        help="fail (exit 1) if the measured run violates "
                             "the elasticity contract")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: shorter cells, the "
                             "configured setpoint only")
    args = parser.parse_args(argv)

    duration_s = args.duration
    targets = [None] + [t for t in (args.targets or DEFAULT_TARGETS)
                        if t is not None]
    if args.smoke:
        duration_s = min(duration_s, SMOKE_DURATION_S)
        targets = [None]
    jobs = args.jobs if args.jobs > 0 else (os.cpu_count() or 1)
    jobs = min(jobs, len(targets) + 4)  # frontier edges + interaction

    report = measure(duration_s, args.seed, targets, jobs)
    _print_report(report)

    problems = []
    if args.check:
        problems = check_contract(report)
        for problem in problems:
            print(f"CHECK: {problem}", file=sys.stderr)

    pathlib.Path(args.output).write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    print(f"wrote {args.output}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
