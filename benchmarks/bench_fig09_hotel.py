"""Fig. 9 — DeathStarBench hotel-reservation latency comparison.

Round-robin vs C3 vs L3 at 200 RPS across three clusters. The paper's
values are 93.0 / 88.3 / 68.8 ms P99; the reproducible *shape* is that
both latency-aware algorithms beat round-robin, L3 at least matching C3.
"""

from __future__ import annotations

from conftest import HOTEL_DURATION_S, REPETITIONS, run_once, save_output

from repro.bench.experiments import fig9_hotel_reservation


def test_fig9_hotel_reservation(benchmark):
    experiment = run_once(
        benchmark, fig9_hotel_reservation,
        duration_s=HOTEL_DURATION_S, repetitions=REPETITIONS)
    save_output("fig09_hotel", experiment.render())

    rows = experiment.table.rows
    rr = rows["round-robin"]["p99_ms"]
    assert rows["l3"]["p99_ms"] < rr
    assert rows["c3"]["p99_ms"] < rr
    # L3 at least matches C3 (paper: L3 clearly ahead; in simulation the
    # two are within a few percent — see EXPERIMENTS.md).
    assert rows["l3"]["p99_ms"] <= rows["c3"]["p99_ms"] * 1.05
    # The median gain is unambiguous: latency-aware routing keeps most
    # hops cluster-local.
    assert rows["l3"]["p50_ms"] < rows["round-robin"]["p50_ms"] * 0.85
