"""Figs. 1, 2 and 6 — the scenario trace characteristics.

These figures present the (synthetic equivalents of the) TIER Mobility
traces themselves: per-cluster P50/P99 latency over the 10-minute window
and the offered RPS. The benchmark regenerates every series and asserts
the published characteristics hold (median ranges, tail ranges, RPS
envelopes).
"""

from __future__ import annotations

from conftest import run_once, save_output

from repro.bench.experiments import (
    fig1_2_trace_characteristics,
    fig6_trace_characteristics,
)


def _series_range(points):
    values = [v for _t, v in points]
    return min(values), max(values)


def test_fig1_fig2_scenario_1_2_traces(benchmark):
    experiment = run_once(benchmark, fig1_2_trace_characteristics)
    save_output("fig01_02_traces", experiment.render())

    # scenario-1: medians 50-100 ms (cluster-2 spikes beyond), P99 well
    # above median, stable ~300 RPS.
    for cluster in ("cluster-1", "cluster-3"):
        low, high = _series_range(
            experiment.series[f"scenario-1/{cluster}/p50_ms"])
        assert low >= 40.0 and high <= 400.0
    _lo, c2_high = _series_range(
        experiment.series["scenario-1/cluster-2/p50_ms"])
    assert c2_high > 100.0, "cluster-2 median must spike (Fig. 1a)"
    rps_lo, rps_hi = _series_range(experiment.series["scenario-1/rps"])
    assert 270.0 <= rps_lo and rps_hi <= 330.0, "scenario-1 RPS is stable"

    # scenario-2: single-digit medians, P99 spiking over 2000 ms, RPS
    # fluctuating between ~50 and ~200.
    for cluster in ("cluster-1", "cluster-2", "cluster-3"):
        lo, hi = _series_range(
            experiment.series[f"scenario-2/{cluster}/p50_ms"])
        assert lo >= 2.0 and hi <= 15.0
    p99_max = max(
        _series_range(experiment.series[f"scenario-2/{c}/p99_ms"])[1]
        for c in ("cluster-1", "cluster-2", "cluster-3"))
    assert p99_max > 1000.0, "scenario-2 has >1 s P99 spikes (Fig. 1b)"
    rps_lo, rps_hi = _series_range(experiment.series["scenario-2/rps"])
    assert rps_lo >= 40.0 and rps_hi <= 210.0


def test_fig6_scenario_3_4_5_traces(benchmark):
    experiment = run_once(benchmark, fig6_trace_characteristics)
    save_output("fig06_traces", experiment.render())

    max_p99 = {
        name: max(
            _series_range(experiment.series[f"{name}/{c}/p99_ms"])[1]
            for c in ("cluster-1", "cluster-2", "cluster-3"))
        for name in ("scenario-3", "scenario-4", "scenario-5")
    }
    # Fig. 6: scenario-4 has the wildest tail, scenario-5 the calmest.
    assert max_p99["scenario-4"] > max_p99["scenario-3"] > max_p99["scenario-5"]
    assert max_p99["scenario-5"] < 500.0
    assert max_p99["scenario-4"] > 1500.0
