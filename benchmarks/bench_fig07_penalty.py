"""Fig. 7 — the penalty factor P's effect on success rate and latency.

Runs the failure-2 scenario (Fig. 7a's success-rate trace) with L3 at a
range of penalty factors and compares against round-robin, asserting the
paper's two trends: success rate rises (toward the best backend's ceiling)
and the percentile-latency decrease diminishes as P grows.
"""

from __future__ import annotations

from conftest import REPETITIONS, SCENARIO_DURATION_S, run_once, save_output

from repro.bench.experiments import fig7_penalty_factor_sweep


def test_fig7_penalty_factor_sweep(benchmark):
    experiment = run_once(
        benchmark, fig7_penalty_factor_sweep,
        penalties_s=(0.1, 0.6, 1.5),
        duration_s=SCENARIO_DURATION_S, repetitions=REPETITIONS)
    save_output("fig07_penalty", experiment.render())

    rows = experiment.table.rows
    low = rows["l3 P=0.1s"]
    high = rows["l3 P=1.5s"]

    # Success rate must not fall as P rises (trend of Fig. 7b); the gain
    # is small because failure-2's failures are light.
    assert high["success_pct"] >= low["success_pct"] - 0.05

    # Every L3 configuration beats round-robin on P99 for this scenario.
    for name, row in rows.items():
        if name == "round-robin":
            continue
        assert row["p99_ms"] < rows["round-robin"]["p99_ms"]

    # The latency advantage diminishes with larger P.
    assert high["p99_dec_pct"] <= low["p99_dec_pct"] + 2.0
