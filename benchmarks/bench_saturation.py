"""§5.3.1 prose experiment — the hotel app's ~1000 RPS saturation knee.

Not a numbered figure, but a concrete claim of the evaluation text: the
latency results are flat across the low-RPS range and rise when offered
load approaches the microservices' capacity (which is why the paper runs
Fig. 9 at 200 RPS).
"""

from __future__ import annotations

from conftest import FAST, run_once, save_output

from repro.bench.experiments import hotel_rps_saturation_sweep

RPS_VALUES = (200.0, 600.0, 1100.0) if FAST else (
    200.0, 400.0, 600.0, 800.0, 1000.0, 1200.0)
DURATION_S = 60.0 if FAST else 120.0


def test_hotel_saturation_knee(benchmark):
    experiment = run_once(
        benchmark, hotel_rps_saturation_sweep,
        rps_values=RPS_VALUES, duration_s=DURATION_S)
    save_output("saturation_sweep", experiment.render())

    rows = experiment.table.rows
    low = rows[f"{RPS_VALUES[0]:g} RPS"]["p99_ms"]
    comfortable = rows[f"{RPS_VALUES[1]:g} RPS"]["p99_ms"]
    high = rows[f"{RPS_VALUES[-1]:g} RPS"]["p99_ms"]

    # Flat across the comfortable range ("little to no changes") ...
    assert comfortable < low * 1.5
    # ... and a clear knee once offered load reaches the capacity the
    # deployment was sized for (~1000 RPS).
    assert high > low * 2.0
