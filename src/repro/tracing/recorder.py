"""Span recording: bounded storage, deterministic head sampling, contexts.

The paper's controller "exposes its internal state through Prometheus or
OpenTelemetry metrics" (§4) and its evaluation scenarios were *built from*
distributed-tracing spans (§5.1). This module is the recording side of
that loop for the simulated mesh: a :class:`MeshTracer` attached to a
:class:`~repro.mesh.mesh.ServiceMesh` makes every proxy emit per-request
spans into a bounded :class:`SpanRecorder`.

Design constraints, in order:

* **Off by default.** A mesh without a tracer pays one ``None`` check per
  request — paper fidelity and hot-path speed are untouched.
* **Deterministic.** Head sampling is a pure function of the trace id
  (a Knuth multiplicative hash), not an RNG draw: the same seed produces
  byte-identical exported traces run after run, and enabling tracing
  never perturbs the simulation's random streams.
* **Bounded.** The recorder stops accepting new traces beyond
  ``max_spans`` (dropping whole traces, never partial ones) so an
  arbitrarily long run cannot exhaust memory; ``dropped_traces`` counts
  what was lost.
"""

from __future__ import annotations

import itertools

from repro.errors import ConfigError
from repro.tracing.model import OK, TraceSpan

# Knuth's multiplicative hash constant (2^32 / phi); spreads sequential
# trace ids uniformly over [0, 2^32) for the sampling decision.
_HASH_MULTIPLIER = 2654435761
_HASH_SPACE = 1 << 32


def sample_decision(trace_id: int, sample_rate: float) -> bool:
    """Deterministic head-sampling decision for one trace id."""
    if sample_rate >= 1.0:
        return True
    if sample_rate <= 0.0:
        return False
    bucket = (trace_id * _HASH_MULTIPLIER) % _HASH_SPACE
    return bucket < sample_rate * _HASH_SPACE


class TracingConfig:
    """Tunables of one tracer.

    Args:
        sample_rate: fraction of traces recorded (head sampling, decided
            once per request at the root span). 1.0 records everything.
        max_spans: hard bound on stored spans; once a new trace would
            exceed it, that trace (and all later ones) is dropped whole.
    """

    def __init__(self, sample_rate: float = 1.0, max_spans: int = 1_000_000):
        if not 0.0 <= sample_rate <= 1.0:
            raise ConfigError(
                f"sample rate must be in [0, 1]: {sample_rate}")
        if max_spans < 1:
            raise ConfigError(f"max spans must be >= 1: {max_spans}")
        self.sample_rate = sample_rate
        self.max_spans = max_spans


class SpanRecorder:
    """Bounded in-memory span store.

    Spans are appended open (at ``start``) and mutated closed (at
    ``finish``); exporters read :attr:`spans` and skip open ones.
    """

    def __init__(self, max_spans: int = 1_000_000):
        self.max_spans = max_spans
        self.spans: list[TraceSpan] = []
        self.dropped_traces = 0
        # Traces admitted while under the bound keep recording their
        # remaining spans even if the bound is crossed mid-trace, so no
        # exported trace is ever truncated halfway.
        self._admitted: set[int] = set()

    def admit(self, trace_id: int) -> bool:
        """Whether a new trace may start recording (capacity check)."""
        if len(self.spans) >= self.max_spans:
            self.dropped_traces += 1
            return False
        self._admitted.add(trace_id)
        return True

    def add(self, span: TraceSpan) -> TraceSpan:
        """Append one open span (the trace must have been admitted)."""
        self.spans.append(span)
        return span

    def finished_spans(self) -> list[TraceSpan]:
        """All closed spans, in recording order."""
        return [span for span in self.spans if span.finished]

    def traces(self) -> dict[int, list[TraceSpan]]:
        """Closed spans grouped by trace id, insertion-ordered."""
        grouped: dict[int, list[TraceSpan]] = {}
        for span in self.spans:
            if span.finished:
                grouped.setdefault(span.trace_id, []).append(span)
        return grouped

    def __len__(self) -> int:
        return len(self.spans)


class TraceContext:
    """The propagated per-request tracing state.

    Carried along the request path (dispatch → attempt → WAN → replica);
    crossing a layer that starts child work derives a new context with
    :meth:`child` so spans opened there parent correctly even when many
    requests interleave inside the simulator.
    """

    __slots__ = ("tracer", "trace_id", "parent")

    def __init__(self, tracer: MeshTracer, trace_id: int,
                 parent: TraceSpan | None = None):
        self.tracer = tracer
        self.trace_id = trace_id
        self.parent = parent

    def child(self, parent: TraceSpan) -> TraceContext:
        """A context whose new spans parent under ``parent``."""
        return TraceContext(self.tracer, self.trace_id, parent)

    def start(self, name: str, kind: str, now: float,
              parent: TraceSpan | None = None,
              attributes: dict | None = None) -> TraceSpan:
        """Open a span at ``now`` (parent defaults to the context's)."""
        span = TraceSpan(
            trace_id=self.trace_id,
            span_id=self.tracer.next_span_id(),
            parent_id=(parent or self.parent).span_id
            if (parent or self.parent) is not None else None,
            name=name, kind=kind, start_s=now,
            attributes=attributes if attributes is not None else {})
        return self.tracer.recorder.add(span)

    def end(self, span: TraceSpan, now: float, status: str = OK) -> None:
        """Close ``span`` at ``now`` with the given status."""
        span.end_s = now
        span.status = status


class MeshTracer:
    """The per-run tracer: id allocation, sampling, the recorder.

    Attach to a mesh with ``mesh.tracer = MeshTracer(config)`` (or pass
    ``tracer=`` to the benchmark coordinator); proxies consult it on
    every dispatch. ``audit`` optionally points at the controller's
    :class:`~repro.tracing.audit.DecisionAuditLog` so data-plane attempt
    spans can stamp the decision id that routed them.
    """

    def __init__(self, config: TracingConfig | None = None):
        self.config = config or TracingConfig()
        self.recorder = SpanRecorder(self.config.max_spans)
        self._trace_ids = itertools.count(1)
        self._span_ids = itertools.count(1)
        self.audit = None

    def next_span_id(self) -> int:
        return next(self._span_ids)

    def trace(self) -> TraceContext | None:
        """Begin a new trace, or ``None`` if sampled out / over capacity.

        Trace ids are consumed even for unsampled requests, so the
        sampling decision for request *n* never depends on the sampling
        rate's history — rate 0.1 records exactly the traces whose ids
        it would pick out of a rate-1.0 run.
        """
        trace_id = next(self._trace_ids)
        if not sample_decision(trace_id, self.config.sample_rate):
            return None
        if not self.recorder.admit(trace_id):
            return None
        return TraceContext(self, trace_id)

    def decision_trace(self) -> TraceContext:
        """A context for a controller decision span (never sampled out).

        Reconciles happen a few times a minute, so the audit log is tiny
        and useless with holes: decision spans bypass both head sampling
        and the capacity bound (the reconcile cadence itself bounds
        them at one span per ``reconcile_interval_s``).
        """
        return TraceContext(self, next(self._trace_ids))
