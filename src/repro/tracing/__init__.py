"""Per-request distributed tracing for the simulated mesh.

The subsystem closes the paper's observability loop: the simulated data
plane emits OpenTelemetry-style spans for every leg of the request path
(client proxy → WAN → server queue → execution → response, including
retries, timeouts and outlier-ejection skips), the controller emits one
decision-audit span per reconcile, and the exporters write OTLP-style
JSON (which feeds back into :mod:`repro.workloads.spans`' §5.1 scenario
builder) or Chrome trace events (Perfetto-loadable). Off by default —
an untraced mesh pays one ``None`` check per request.

Quickstart::

    from repro import MeshTracer, TracingConfig, run_scenario_benchmark
    from repro.tracing import export_trace

    tracer = MeshTracer(TracingConfig(sample_rate=0.1))
    result = run_scenario_benchmark("scenario-1", "l3", duration_s=60.0,
                                    tracer=tracer)
    export_trace(tracer.recorder, "trace.json", fmt="otlp")
"""

from repro.tracing.audit import DecisionAuditLog, ReconcileDecision
from repro.tracing.export import (
    TRACE_FORMATS,
    export_trace,
    load_otlp,
    scenario_from_otlp,
    to_chrome,
    to_otlp,
    workload_spans,
)
from repro.tracing.model import SPAN_KINDS, TraceSpan
from repro.tracing.recorder import (
    MeshTracer,
    SpanRecorder,
    TraceContext,
    TracingConfig,
    sample_decision,
)

__all__ = [
    "DecisionAuditLog",
    "MeshTracer",
    "ReconcileDecision",
    "SPAN_KINDS",
    "SpanRecorder",
    "TRACE_FORMATS",
    "TraceContext",
    "TraceSpan",
    "TracingConfig",
    "export_trace",
    "load_otlp",
    "sample_decision",
    "scenario_from_otlp",
    "to_chrome",
    "to_otlp",
    "workload_spans",
]
