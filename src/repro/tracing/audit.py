"""The controller decision audit log.

The paper's operator exposes "information about the internal state of the
controller and algorithm ... enabling human operators and other systems to
infer the internal state at any point in time" (§4). Scraped gauges (see
:mod:`repro.core.introspection`) answer *what is the state now*; the audit
log answers the harder forensic question — *which decision routed this
request, and what inputs produced it*.

Attach a :class:`DecisionAuditLog` to an
:class:`~repro.core.controller.L3Controller` (``controller.audit = log``)
and every reconcile appends one :class:`ReconcileDecision` carrying its
inputs (the raw per-backend :class:`~repro.core.controller.MetricSample`
values and the post-filter EWMA states) and its outputs (raw and final
integer weights). When the log is also given a
:class:`~repro.tracing.recorder.MeshTracer`, each decision additionally
becomes an ``l3.reconcile`` span in the same recorder the data-plane
spans land in — and data-plane *attempt* spans stamp
``decision_id`` so the two sides join exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tracing.model import ERROR, INTERNAL, RECONCILE


@dataclass(frozen=True)
class ReconcileDecision:
    """One reconcile's full input → output record.

    Attributes:
        decision_id: monotonically increasing within one controller run;
            attempt spans reference it via the ``decision_id`` attribute.
        time_s: simulation time of the reconcile.
        backends: backend name → flat dict of that backend's inputs:
            the raw sample (``sample_latency_s``, ``sample_success_rate``,
            ``sample_rps``, ``sample_inflight``; absent when the backend
            returned no data) and the filtered state (``ewma_latency_s``,
            ``ewma_success_rate``, ``ewma_rps``, ``ewma_inflight``).
        raw_weights: Algorithm 1 output before rate control.
        weights: final integer weights pushed to the TrafficSplit.
        relative_change: the rate controller's input signal.
        total_rps: summed backend RPS of the window.
        error: set (and everything above empty) on a degraded reconcile.
    """

    decision_id: int
    time_s: float
    backends: dict = field(default_factory=dict)
    raw_weights: dict = field(default_factory=dict)
    weights: dict = field(default_factory=dict)
    relative_change: float = 0.0
    total_rps: float = 0.0
    error: str | None = None


class DecisionAuditLog:
    """Records every reconcile decision; optionally emits audit spans."""

    def __init__(self, tracer=None, prefix: str = "l3"):
        """Args:
            tracer: optional :class:`~repro.tracing.recorder.MeshTracer`;
                when given, each decision is also recorded as an
                ``l3.reconcile`` span.
            prefix: controller label carried on the spans (matches the
                introspection prefix so dashboards line up).
        """
        self.tracer = tracer
        self.prefix = prefix
        self.decisions: list[ReconcileDecision] = []

    @property
    def last_decision_id(self) -> int:
        """Id of the most recent decision (0 before the first one)."""
        return self.decisions[-1].decision_id if self.decisions else 0

    # ------------------------------------------------------------------ #
    # Controller-facing hooks (duck-typed; see L3Controller.audit)
    # ------------------------------------------------------------------ #

    def record_decision(self, now: float, samples: dict, states: dict,
                        raw_weights: dict, weights: dict,
                        relative_change: float, total_rps: float) -> None:
        """Append one successful reconcile.

        Args:
            now: reconcile time.
            samples: backend → :class:`MetricSample` or ``None``, exactly
                as the metrics source returned them.
            states: backend → :class:`BackendMetricState` *after* this
                reconcile's observe step.
            raw_weights / weights: Algorithm 1 output and the final
                integer weights.
            relative_change / total_rps: rate-controller signals.
        """
        backends = {}
        for name, state in states.items():
            row = {
                "ewma_latency_s": state.latency.value,
                "ewma_success_rate": state.success_rate.value,
                "ewma_rps": state.rps.value,
                "ewma_inflight": state.inflight.value,
            }
            sample = samples.get(name)
            if sample is not None:
                row.update(
                    sample_latency_s=sample.latency_s,
                    sample_success_rate=sample.success_rate,
                    sample_rps=sample.rps,
                    sample_inflight=sample.inflight,
                )
            backends[name] = row
        decision = ReconcileDecision(
            decision_id=len(self.decisions) + 1, time_s=now,
            backends=backends, raw_weights=dict(raw_weights),
            weights=dict(weights), relative_change=relative_change,
            total_rps=total_rps)
        self.decisions.append(decision)
        self._emit_span(decision)

    def record_degraded(self, now: float, error: str) -> None:
        """Append one failed (degraded-mode) reconcile."""
        decision = ReconcileDecision(
            decision_id=len(self.decisions) + 1, time_s=now, error=error)
        self.decisions.append(decision)
        self._emit_span(decision)

    # ------------------------------------------------------------------ #
    # Span emission
    # ------------------------------------------------------------------ #

    def _emit_span(self, decision: ReconcileDecision) -> None:
        if self.tracer is None:
            return
        attributes = {
            "controller": self.prefix,
            "decision_id": decision.decision_id,
            "relative_change": decision.relative_change,
            "total_rps": decision.total_rps,
        }
        for backend, row in decision.backends.items():
            for key, value in row.items():
                attributes[f"{backend}.{key}"] = value
        for backend, weight in decision.raw_weights.items():
            attributes[f"{backend}.raw_weight"] = weight
        for backend, weight in decision.weights.items():
            attributes[f"{backend}.weight"] = weight
        if decision.error is not None:
            attributes["error"] = decision.error
        ctx = self.tracer.decision_trace()
        span = ctx.start(RECONCILE, INTERNAL, decision.time_s,
                         attributes=attributes)
        ctx.end(span, decision.time_s,
                status=ERROR if decision.error is not None else "ok")
