"""Trace exporters and the §5.1 round-trip back into scenarios.

Two on-disk formats:

* **OTLP-style JSON** (``format="otlp"``): the OpenTelemetry protocol's
  JSON encoding (``resourceSpans`` → ``scopeSpans`` → ``spans`` with
  hex-encoded ids and nanosecond timestamps). This is the interchange
  format: :func:`workload_spans` turns it back into
  :class:`repro.workloads.spans.Span` trees, so a recorded simulation
  feeds straight into :func:`~repro.workloads.spans.scenario_from_spans`
  — the same methodology the paper applied to its production traces
  ("we excluded network delay spans ... focus solely on extracting
  service execution latency"), closing the
  simulate → trace → rebuild → re-simulate loop.
* **Chrome trace-event JSON** (``format="chrome"``): loadable in
  Perfetto (https://ui.perfetto.dev) or ``chrome://tracing`` for visual
  inspection — each trace renders as one track, the controller's
  ``l3.reconcile`` decisions as instant events on their own track.

All output is byte-deterministic: ids and timestamps are integers, keys
are sorted, and the recorder's content is a pure function of the seed.
"""

from __future__ import annotations

import json
import pathlib

from repro.errors import ConfigError
from repro.tracing import model
from repro.workloads.spans import NETWORK as WL_NETWORK
from repro.workloads.spans import SERVER as WL_SERVER
from repro.workloads.spans import Span as WorkloadSpan

TRACE_FORMATS = ("otlp", "chrome")

# OTLP SpanKind enum values (trace.proto).
_OTLP_KIND = {
    model.INTERNAL: 1,
    model.SERVER: 2,
    model.CLIENT: 3,
    # OTLP has no network kind; WAN spans export as CLIENT with the
    # original kind preserved in the "repro.kind" attribute.
    model.NETWORK: 3,
}

# OTLP Status.StatusCode: 1 = OK, 2 = ERROR.
_OTLP_STATUS = {model.OK: 1, model.ERROR: 2, model.TIMEOUT: 2}


def _otlp_value(value) -> dict:
    """One attribute value in OTLP's AnyValue JSON encoding."""
    if isinstance(value, bool):
        return {"boolValue": value}
    if isinstance(value, int):
        return {"intValue": str(value)}
    if isinstance(value, float):
        return {"doubleValue": value}
    return {"stringValue": str(value)}


def _otlp_attributes(attributes: dict) -> list:
    return [
        {"key": key, "value": _otlp_value(value)}
        for key, value in sorted(attributes.items())
    ]


def to_otlp(recorder) -> dict:
    """Encode a recorder's finished spans as an OTLP-JSON document."""
    spans = []
    for span in recorder.finished_spans():
        encoded = {
            "traceId": f"{span.trace_id:032x}",
            "spanId": f"{span.span_id:016x}",
            "name": span.name,
            "kind": _OTLP_KIND[span.kind],
            "startTimeUnixNano": str(int(round(span.start_s * 1e9))),
            "endTimeUnixNano": str(int(round(span.end_s * 1e9))),
            "attributes": _otlp_attributes(
                {**span.attributes, "repro.kind": span.kind,
                 "repro.status": span.status}),
            "status": {"code": _OTLP_STATUS[span.status]},
        }
        if span.parent_id is not None:
            encoded["parentSpanId"] = f"{span.parent_id:016x}"
        spans.append(encoded)
    return {
        "resourceSpans": [{
            "resource": {"attributes": _otlp_attributes(
                {"service.name": "repro-mesh"})},
            "scopeSpans": [{
                "scope": {"name": "repro.tracing"},
                "spans": spans,
            }],
        }],
    }


def to_chrome(recorder) -> dict:
    """Encode a recorder's finished spans as Chrome trace events.

    Data-plane traces get one thread (track) per trace id under pid 1;
    controller decisions render as instant events under pid 2, so the
    Perfetto timeline shows requests and the decisions that routed them
    on the same clock.
    """
    events = []
    for span in recorder.finished_spans():
        start_us = int(round(span.start_s * 1e6))
        duration_us = int(round(span.duration_s * 1e6))
        args = {key: str(value)
                for key, value in sorted(span.attributes.items())}
        args["status"] = span.status
        if span.name == model.RECONCILE:
            events.append({
                "name": span.name, "cat": span.kind, "ph": "i",
                "ts": start_us, "pid": 2, "tid": 1, "s": "g",
                "args": args,
            })
            continue
        events.append({
            "name": span.name, "cat": span.kind, "ph": "X",
            "ts": start_us, "dur": duration_us,
            "pid": 1, "tid": span.trace_id,
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def export_trace(recorder, path, fmt: str = "otlp") -> None:
    """Write a recorder's spans to ``path`` in the chosen format."""
    if fmt not in TRACE_FORMATS:
        raise ConfigError(
            f"trace format must be one of {TRACE_FORMATS}: {fmt!r}")
    document = to_otlp(recorder) if fmt == "otlp" else to_chrome(recorder)
    path = pathlib.Path(path)
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")


def load_otlp(path) -> dict:
    """Read an OTLP-JSON document written by :func:`export_trace`."""
    path = pathlib.Path(path)
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise ConfigError(f"not a valid OTLP-JSON file: {path}") from error


# --------------------------------------------------------------------- #
# The round trip: OTLP JSON -> workloads.spans.Span trees
# --------------------------------------------------------------------- #

def _decode_attributes(encoded: list) -> dict:
    out = {}
    for entry in encoded or ():
        value = entry.get("value", {})
        if "stringValue" in value:
            out[entry["key"]] = value["stringValue"]
        elif "intValue" in value:
            out[entry["key"]] = int(value["intValue"])
        elif "doubleValue" in value:
            out[entry["key"]] = value["doubleValue"]
        elif "boolValue" in value:
            out[entry["key"]] = value["boolValue"]
    return out


def _iter_otlp_spans(data: dict):
    for resource in data.get("resourceSpans", ()):
        for scope in resource.get("scopeSpans", ()):
            yield from scope.get("spans", ())


def workload_spans(data: dict, rebase: bool = True) -> list[WorkloadSpan]:
    """Convert an OTLP-JSON export into §5.1-style workload spans.

    Each data-plane *attempt* span becomes one ``server`` workload span
    (service latency as the client proxy observed it, attributed to the
    backend's cluster) with its WAN legs attached as direct ``network``
    children — exactly the tree shape
    :func:`repro.workloads.spans.execution_latencies` expects, so the
    network exclusion subtracts the simulated WAN transit and what
    remains is (proxy overhead +) queue + execution time.

    Args:
        data: document produced by :func:`to_otlp` / :func:`load_otlp`.
        rebase: shift timestamps so the earliest attempt starts at 0
            (benchmark exports carry the warm-up offset otherwise).
    """
    from repro.mesh.cluster import split_backend_name

    decoded = []
    for span in _iter_otlp_spans(data):
        attributes = _decode_attributes(span.get("attributes"))
        decoded.append({
            "trace_id": span["traceId"],
            "span_id": span["spanId"],
            "parent_id": span.get("parentSpanId"),
            "name": span["name"],
            "kind": attributes.get("repro.kind", ""),
            "start_s": int(span["startTimeUnixNano"]) / 1e9,
            "end_s": int(span["endTimeUnixNano"]) / 1e9,
            "attributes": attributes,
        })

    attempts = [s for s in decoded if s["name"] == model.ATTEMPT]
    if not attempts:
        return []
    offset = min(s["start_s"] for s in attempts) if rebase else 0.0

    out = []
    for attempt in attempts:
        backend = attempt["attributes"].get("backend")
        if not backend:
            continue
        service, cluster = split_backend_name(backend)
        out.append(WorkloadSpan(
            trace_id=attempt["trace_id"], span_id=attempt["span_id"],
            parent_id=None, service=service, cluster=cluster,
            start_s=attempt["start_s"] - offset,
            end_s=attempt["end_s"] - offset, kind=WL_SERVER))
    attempt_ids = {(s["trace_id"], s["span_id"]) for s in attempts}
    for span in decoded:
        if span["kind"] != model.NETWORK:
            continue
        if (span["trace_id"], span["parent_id"]) not in attempt_ids:
            continue
        out.append(WorkloadSpan(
            trace_id=span["trace_id"], span_id=span["span_id"],
            parent_id=span["parent_id"],
            service=span["attributes"].get("link", span["name"]),
            cluster=span["attributes"].get("dst", ""),
            start_s=span["start_s"] - offset,
            end_s=span["end_s"] - offset, kind=WL_NETWORK))
    return out


def scenario_from_otlp(data_or_path, service: str, duration_s: float,
                       bucket_s: float = 15.0, name: str | None = None):
    """Rebuild a runnable scenario from an OTLP-JSON trace export.

    The full loop: ``run_scenario_benchmark(..., tracer=...)`` →
    :func:`export_trace` → this function →
    ``run_scenario_benchmark(rebuilt, ...)``.
    """
    from repro.workloads.spans import scenario_from_spans

    data = data_or_path
    if not isinstance(data, dict):
        data = load_otlp(data_or_path)
    return scenario_from_spans(
        workload_spans(data), service, duration_s,
        bucket_s=bucket_s, name=name)
