"""The span model of the simulated mesh's distributed tracing.

One :class:`TraceSpan` records one timed segment of a request's journey,
mirroring the OpenTelemetry span shape (trace id / span id / parent id,
kind, wall-clock boundaries, free-form attributes, a status). The span
*names* are a closed vocabulary — each names one leg of the paper's
request path (client proxy send → WAN link → server proxy → replica queue
→ execution → response), plus the controller's reconcile decisions:

===================  ====================================================
``request``          root client span: one per dispatched request,
                     covering intended start to response (what the
                     paper's client-side proxy perceives).
``attempt``          one per try (retries create several); carries the
                     chosen backend, the attempt number, ejection skips
                     and the controller decision that routed it.
``retry.backoff``    the fixed client back-off between attempts.
``wan.send``         outbound network transit (client → server cluster).
``wan.recv``         inbound network transit (response coming back).
``server.queue``     waiting for a replica concurrency slot (FIFO queue).
``server.exec``      the replica actually executing (service time plus
                     any call-graph body).
``l3.reconcile``     one per controller reconcile — the decision audit
                     log (see :mod:`repro.tracing.audit`).
===================  ====================================================

Span kinds follow OpenTelemetry (``client`` / ``server`` / ``internal``)
with one addition: ``network``, the explicit WAN-delay spans §5.1 of the
paper excludes when deriving execution latency from production traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# Span kinds.
CLIENT = "client"
SERVER = "server"
INTERNAL = "internal"
NETWORK = "network"

SPAN_KINDS = (CLIENT, SERVER, INTERNAL, NETWORK)

# Span names (the request-path vocabulary above).
REQUEST = "request"
ATTEMPT = "attempt"
RETRY_BACKOFF = "retry.backoff"
WAN_SEND = "wan.send"
WAN_RECV = "wan.recv"
SERVER_QUEUE = "server.queue"
SERVER_EXEC = "server.exec"
RECONCILE = "l3.reconcile"

# Span statuses.
OK = "ok"
ERROR = "error"
TIMEOUT = "timeout"


@dataclass(slots=True)
class TraceSpan:
    """One recorded span.

    Attributes:
        trace_id: integer grouping all spans of one request (or one
            reconcile decision).
        span_id: unique within the run.
        parent_id: the parent span's id, or ``None`` for a root.
        name: one of the span-name vocabulary above.
        kind: one of :data:`SPAN_KINDS`.
        start_s: simulation time the span opened.
        end_s: simulation time the span closed; ``None`` while still
            open (exports skip open spans — e.g. a WAN leg abandoned by
            a client deadline, still "in flight" on a dead backend).
        attributes: free-form key → value annotations.
        status: ``"ok"``, ``"error"`` or ``"timeout"``.
    """

    trace_id: int
    span_id: int
    parent_id: int | None
    name: str
    kind: str
    start_s: float
    end_s: float | None = None
    attributes: dict = field(default_factory=dict)
    status: str = OK

    @property
    def finished(self) -> bool:
        """Whether the span has been closed."""
        return self.end_s is not None

    @property
    def duration_s(self) -> float:
        """Span duration; raises if the span is still open."""
        if self.end_s is None:
            raise ValueError(f"span {self.span_id} ({self.name}) is open")
        return self.end_s - self.start_s
