"""Parse compact autoscale policy specs (the CLI's ``--autoscale`` flag).

Grammar (whitespace around separators is ignored)::

    spec  := entry (";" entry)*
    entry := scope (":" key "=" value)*
    scope := "*" | cluster name

Keys map onto :class:`~repro.autoscale.policy.AutoscalePolicy` fields::

    metric       inflight | rps | p99
    target       setpoint (utilization / per-replica RPS / seconds)
    min, max     replica bounds
    interval     control-loop period, seconds
    lag          provisioning lag, seconds
    warmup       cold-start ramp length, seconds
    cold         cold-start service-time factor (>= 1)
    up-window    scale-up stabilization window, seconds
    down-window  scale-down stabilization window, seconds
    window       telemetry query window, seconds

Examples::

    *:target=0.5:max=8
    *:target=0.5:max=8:lag=20 ; cluster-2:max=2
    cluster-1:metric=rps:target=40:min=2:max=6

A ``*`` entry applies to every cluster; a named entry overrides the
wildcard's keys for that cluster (field-wise merge, like a Kubernetes
patch). Every structural problem raises
:class:`~repro.errors.AutoscaleSpecError` (a ``ConfigError``) **at parse
time** — unknown keys or clusters, bad numbers, inconsistent bounds —
mirroring the ``--faults`` grammar in :mod:`repro.faults.spec`.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.autoscale.policy import METRIC_NAMES, AutoscalePolicy
from repro.errors import AutoscaleSpecError, ConfigError

# spec key -> AutoscalePolicy field
_KEY_FIELDS = {
    "metric": "metric",
    "target": "target",
    "min": "min_replicas",
    "max": "max_replicas",
    "interval": "interval_s",
    "lag": "provisioning_lag_s",
    "warmup": "warmup_s",
    "cold": "cold_start_factor",
    "up-window": "scale_up_stabilization_s",
    "down-window": "scale_down_stabilization_s",
    "window": "window_s",
}

AUTOSCALE_SPEC_KEYS = tuple(sorted(_KEY_FIELDS))

_INT_FIELDS = ("min_replicas", "max_replicas")
_STR_FIELDS = ("metric",)


def _coerce(key: str, field: str, value: str):
    if field in _STR_FIELDS:
        if value not in METRIC_NAMES:
            raise AutoscaleSpecError(
                f"autoscale spec: metric must be one of {METRIC_NAMES}: "
                f"{value!r}")
        return value
    try:
        if field in _INT_FIELDS:
            return int(value)
        return float(value)
    except ValueError:
        raise AutoscaleSpecError(
            f"autoscale spec: {key} needs a number, got {value!r}"
        ) from None


def _parse_entry(entry: str) -> tuple[str, dict]:
    """One ``scope[:key=value...]`` entry -> (scope, field overrides)."""
    parts = entry.split(":")
    scope = parts[0].strip()
    if not scope:
        raise AutoscaleSpecError(
            f"autoscale spec: entry needs a scope ('*' or a cluster "
            f"name): {entry.strip()!r}")
    overrides: dict[str, typing.Any] = {}
    seen: set[str] = set()
    for pair in parts[1:]:
        key, eq, value = pair.partition("=")
        key = key.strip()
        if not eq or not key:
            raise AutoscaleSpecError(
                f"autoscale spec: expected key=value, got {pair.strip()!r}")
        field = _KEY_FIELDS.get(key)
        if field is None:
            raise AutoscaleSpecError(
                f"autoscale spec: unknown key {key!r}; accepted keys: "
                f"{AUTOSCALE_SPEC_KEYS}")
        if key in seen:
            raise AutoscaleSpecError(
                f"autoscale spec: duplicate key {key!r} in {entry.strip()!r}")
        seen.add(key)
        overrides[field] = _coerce(key, field, value.strip())
    return scope, overrides


def parse_autoscale_spec(spec: str,
                         clusters: typing.Collection[str],
                         ) -> dict[str, AutoscalePolicy]:
    """Parse a full ``;``-separated autoscale specification string.

    Args:
        spec: the ``--autoscale`` string.
        clusters: the topology's cluster names; named scopes outside this
            set are rejected at parse time.

    Returns:
        ``{cluster: AutoscalePolicy}`` for every cluster the spec covers
        (all of them when a ``*`` entry is present). Clusters the spec
        does not mention are absent — they keep their fixed replica sets.
    """
    entries = [entry for entry in spec.split(";") if entry.strip()]
    if not entries:
        raise AutoscaleSpecError(f"autoscale spec is empty: {spec!r}")
    known = set(clusters)
    wildcard: dict | None = None
    named: dict[str, dict] = {}
    for entry in entries:
        scope, overrides = _parse_entry(entry)
        if scope == "*":
            if wildcard is not None:
                raise AutoscaleSpecError(
                    "autoscale spec: duplicate '*' entry")
            wildcard = overrides
        else:
            if scope not in known:
                raise AutoscaleSpecError(
                    f"autoscale spec: unknown cluster {scope!r}; known "
                    f"clusters: {tuple(sorted(known))}")
            if scope in named:
                raise AutoscaleSpecError(
                    f"autoscale spec: duplicate entry for {scope!r}")
            named[scope] = overrides

    policies: dict[str, AutoscalePolicy] = {}
    covered = sorted(known) if wildcard is not None else sorted(named)
    for cluster in covered:
        overrides = dict(wildcard or {})
        overrides.update(named.get(cluster, {}))
        try:
            policies[cluster] = AutoscalePolicy(**overrides)
        except AutoscaleSpecError:
            raise
        except ConfigError as exc:
            raise AutoscaleSpecError(
                f"autoscale spec: {cluster}: {exc}") from exc
    return policies


def resolve_autoscale_policies(autoscale,
                               clusters: typing.Collection[str],
                               ) -> dict[str, AutoscalePolicy]:
    """Normalize the coordinator's ``autoscale`` argument.

    Accepts a single :class:`AutoscalePolicy` (applied to every
    cluster), a ``{cluster: policy}`` mapping (unknown clusters
    rejected), or a raw spec string (parsed against the topology).
    """
    if isinstance(autoscale, str):
        return parse_autoscale_spec(autoscale, clusters)
    if isinstance(autoscale, AutoscalePolicy):
        return {cluster: autoscale for cluster in sorted(clusters)}
    if isinstance(autoscale, dict):
        known = set(clusters)
        for cluster, policy in autoscale.items():
            if cluster not in known:
                raise AutoscaleSpecError(
                    f"autoscale: unknown cluster {cluster!r}; known "
                    f"clusters: {tuple(sorted(known))}")
            if not isinstance(policy, AutoscalePolicy):
                raise AutoscaleSpecError(
                    f"autoscale: {cluster} maps to {type(policy).__name__}, "
                    f"expected AutoscalePolicy")
        return dict(autoscale)
    raise AutoscaleSpecError(
        f"autoscale must be an AutoscalePolicy, a cluster mapping, or a "
        f"spec string: {type(autoscale).__name__}")


def describe_policies(policies: dict[str, AutoscalePolicy]) -> str:
    """One-line human summary of a resolved policy set (CLI output)."""
    parts = []
    for cluster in sorted(policies):
        policy = policies[cluster]
        fields = dataclasses.asdict(policy)
        defaults = dataclasses.asdict(AutoscalePolicy())
        diff = ":".join(
            f"{name}={value}" for name, value in fields.items()
            if value != defaults[name])
        parts.append(f"{cluster}({diff or 'defaults'})")
    return " ".join(parts)
