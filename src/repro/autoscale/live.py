"""Live-substrate autoscaling: wall-clock stepper + capacity target.

The live testbed models one cluster's whole deployment as a single
:class:`~repro.live.server.ReplicaServer` whose ``capacity`` semaphore
is the replica set's total concurrency. Scaling live therefore means
resizing that semaphore in replica-sized quanta:
:class:`LiveCapacityTarget` adapts the server to the autoscaler core's
target protocol (``replica_count`` = capacity units of
``capacity_per_replica`` slots each), and :class:`LiveAutoscaler` ticks
the shared clock-agnostic
:class:`~repro.autoscale.controller.BackendAutoscaler` from the harness
loop, mirroring the cadence pattern of
:class:`~repro.live.control.LiveControlLoop` — which also makes the
whole stack drivable by a :class:`~repro.live.clock.FakeClock` in unit
tests, with zero real sleeps.

The live substrate has no service-time dial, so cold-start warmup is a
no-op here (documented divergence from the simulated target: a live
"replica" is extra semaphore permits, instantly warm).
"""

from __future__ import annotations

from repro.errors import ConfigError


class LiveCapacityTarget:
    """Scales a :class:`~repro.live.server.ReplicaServer` in quanta.

    ``add_replica`` grows the server's concurrency by one unit of
    ``unit_capacity`` slots (effective immediately — the provisioning
    lag is modelled by the controller's pending pipeline, exactly as in
    the simulator); ``remove_replica`` shrinks it, with the retired
    slots drained lazily as in-flight requests finish.
    """

    def __init__(self, server, unit_capacity: int):
        if unit_capacity < 1:
            raise ConfigError(
                f"unit capacity must be >= 1: {unit_capacity}")
        if server.capacity % unit_capacity:
            raise ConfigError(
                f"server capacity {server.capacity} is not a multiple of "
                f"the replica unit {unit_capacity}")
        self.server = server
        self.unit_capacity = unit_capacity
        server.replica_units = server.capacity // unit_capacity

    @property
    def replica_count(self) -> int:
        return self.server.capacity // self.unit_capacity

    @property
    def capacity_per_replica(self) -> int:
        return self.unit_capacity

    def add_replica(self, now: float) -> None:
        del now
        self.server.set_capacity(self.server.capacity + self.unit_capacity)
        self.server.replica_units = self.replica_count

    def remove_replica(self, now: float) -> None:
        del now
        self.server.set_capacity(self.server.capacity - self.unit_capacity)
        self.server.replica_units = self.replica_count

    def tick_warmup(self, now: float) -> None:
        """No-op: live capacity units have no service-time dial."""
        del now


class LiveAutoscaler:
    """Ticks one autoscaler core at its policy interval, live.

    Same shape as :class:`~repro.live.control.LiveControlLoop`: the
    harness (or a FakeClock test) calls :meth:`tick` as often as it
    likes; the core's :meth:`~repro.autoscale.controller.
    BackendAutoscaler.step` runs only when the interval has elapsed.
    """

    def __init__(self, scaler, *, start_time: float = 0.0):
        self.scaler = scaler
        self._next_due = start_time + scaler.policy.interval_s

    def tick(self, now: float) -> bool:
        """Step the scaler if due; returns whether a step ran."""
        if now < self._next_due:
            return False
        self.scaler.step(now)
        self._next_due = now + self.scaler.policy.interval_s
        return True
