"""The original simple HPA loop (absorbed from ``repro.mesh.autoscaler``).

§3.2 motivates the rate controller by its interplay with cluster
autoscaling: on an RPS surge, spreading load "enables the cluster's
autoscaling mechanisms to promptly scale up the faster backends". This
class was the first cut of that interplay — a self-contained loop that
reads the backend's in-flight count *directly* (no telemetry pipeline)
and scales with a flat reaction delay and scale-down cooldown.

It remains as the minimal executable reference of the HPA formula; the
full co-simulation subsystem — telemetry-driven signals, provisioning
pipeline, stabilization windows, cold-start warmup, cost accounting —
is :class:`~repro.autoscale.controller.BackendAutoscaler`. Old imports
via ``repro.mesh.autoscaler`` keep working through a re-export shim.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError, Interrupted


@dataclass(frozen=True)
class AutoscalerConfig:
    """HPA-like tunables.

    Attributes:
        target_utilization: desired in-flight per replica-capacity ratio.
        min_replicas / max_replicas: replica-count bounds.
        interval_s: control-loop period.
        scale_up_delay_s: pod start-up time — new capacity becomes
            effective only after this long.
        scale_down_cooldown_s: minimum time between scale-downs (HPA's
            stabilisation window).
    """

    target_utilization: float = 0.5
    min_replicas: int = 1
    max_replicas: int = 10
    interval_s: float = 15.0
    scale_up_delay_s: float = 30.0
    scale_down_cooldown_s: float = 120.0

    def __post_init__(self):
        if not 0.0 < self.target_utilization <= 1.0:
            raise ConfigError(
                f"target utilization must be in (0, 1]: "
                f"{self.target_utilization}")
        if self.min_replicas < 1 or self.max_replicas < self.min_replicas:
            raise ConfigError(
                f"invalid replica bounds: [{self.min_replicas}, "
                f"{self.max_replicas}]")
        if self.interval_s <= 0:
            raise ConfigError(f"interval must be positive: {self.interval_s}")
        if self.scale_up_delay_s < 0 or self.scale_down_cooldown_s < 0:
            raise ConfigError("delays must be >= 0")


class Autoscaler:
    """Scales one backend's replica set toward a utilisation target."""

    def __init__(self, backend, config: AutoscalerConfig | None = None):
        """Args:
            backend: the :class:`~repro.mesh.service.Backend` to scale
                (duck-typed: ``replicas``, ``inflight``,
                ``add_replica``/``remove_replica``).
            config: tunables; defaults apply when omitted.
        """
        self.backend = backend
        self.config = config or AutoscalerConfig()
        self.scale_events: list[tuple[float, int]] = []
        self._last_scale_down: float = float("-inf")
        self._pending_up = 0

    @property
    def replica_count(self) -> int:
        return len(self.backend.replicas)

    def desired_replicas(self) -> int:
        """HPA formula: ceil(current * utilisation / target), bounded."""
        capacity = self.backend.replicas[0].server.capacity
        current = self.replica_count
        utilization = self.backend.inflight / max(current * capacity, 1)
        desired = math.ceil(
            current * utilization / self.config.target_utilization)
        desired = max(desired, self.config.min_replicas)
        return min(desired, self.config.max_replicas)

    def _scale_up(self, sim, count: int) -> None:
        """Add replicas after the pod start-up delay."""
        self._pending_up += count

        def start():
            for _ in range(count):
                if self.replica_count < self.config.max_replicas:
                    self.backend.add_replica()
                    self.scale_events.append((sim.now, +1))
            self._pending_up -= count

        sim.call_after(self.config.scale_up_delay_s, start)

    def _scale_down(self, sim, count: int) -> None:
        for _ in range(count):
            if self.replica_count > self.config.min_replicas:
                self.backend.remove_replica()
                self.scale_events.append((sim.now, -1))
        self._last_scale_down = sim.now

    def step(self, sim) -> None:
        """One control-loop evaluation."""
        desired = self.desired_replicas()
        effective = self.replica_count + self._pending_up
        if desired > effective:
            self._scale_up(sim, desired - effective)
        elif desired < self.replica_count:
            cooldown_over = (sim.now - self._last_scale_down
                             >= self.config.scale_down_cooldown_s)
            if cooldown_over:
                # Scale down one replica at a time — conservative, like
                # HPA's default behaviour policies.
                self._scale_down(sim, 1)

    def run(self, sim):
        """Generator process: evaluate every ``interval_s``."""
        try:
            while True:
                yield sim.timeout(self.config.interval_s)
                self.step(sim)
        except Interrupted:
            return
