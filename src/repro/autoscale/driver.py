"""Simulator wiring: run per-backend autoscalers inside a benchmark.

:class:`SimAutoscaleSet` builds one
:class:`~repro.autoscale.controller.BackendAutoscaler` per covered
cluster of a scenario deployment, exposes the ``replica_count`` gauge
and ``autoscale_events`` counter to the scraper under each backend's
``server|<backend>`` series (the same single-source names the live
``/metrics`` pages use — :mod:`repro.telemetry.names`), and spawns one
generator process per scaler so every control loop ticks at its policy's
own interval, concurrently with the weight controller's reconcile loop.

Strictly opt-in: a benchmark without autoscaling constructs none of
this — no processes, no RNG draws, no gauges — so the golden digest of
autoscale-off runs is byte-identical to pre-autoscale builds.
"""

from __future__ import annotations

from repro.autoscale.controller import BackendAutoscaler
from repro.autoscale.policy import AutoscalePolicy
from repro.autoscale.targets import SimBackendTarget
from repro.errors import Interrupted
from repro.telemetry import names as metric_names


class SimAutoscaleSet:
    """Every autoscaler of one simulated benchmark run.

    Attributes:
        scalers: ``{cluster: BackendAutoscaler}`` in sorted order.
        weight_samples: ``(time, {backend: weight})`` snapshots of the
            weight controller's TrafficSplit, taken at every scaler tick
            when a controller was attached — the raw series of the
            control-loop interaction study (weight flaps vs. replica
            flaps on the same signal).
    """

    def __init__(self, deployment, policies: dict[str, AutoscalePolicy],
                 source, scraper, *, controller=None, now: float = 0.0):
        """Args:
            deployment: the scenario's
                :class:`~repro.mesh.service.ServiceDeployment`.
            policies: ``{cluster: AutoscalePolicy}`` (clusters absent
                from the mapping keep fixed replica sets).
            source: :class:`~repro.telemetry.query.PromMetricsSource`
                over the run's store.
            scraper: the run's scraper; replica-count gauges and event
                counters are registered per scaled backend.
            controller: optional weight controller whose ``last_weights``
                are sampled at scaler ticks.
            now: cost-accounting start time.
        """
        self.scalers: dict[str, BackendAutoscaler] = {}
        self.controller = controller
        self.weight_samples: list[tuple[float, dict]] = []
        self._procs: list = []
        for cluster in sorted(policies):
            policy = policies[cluster]
            backend = deployment.backend_in(cluster)
            target = SimBackendTarget(
                backend, warmup_s=policy.warmup_s,
                cold_start_factor=policy.cold_start_factor)
            scaler = BackendAutoscaler(
                backend.name, target, policy, source, now=now)
            self.scalers[cluster] = scaler
            series = metric_names.server_series_name(backend.name)
            scraper.register_gauge(
                series, metric_names.REPLICA_COUNT,
                lambda t=target: t.replica_count)
            scraper.register_gauge(
                series, metric_names.AUTOSCALE_EVENTS,
                lambda s=scaler: s.events_total)

    def start(self, sim) -> None:
        """Spawn one control-loop process per scaler."""
        for cluster, scaler in self.scalers.items():
            self._procs.append(sim.spawn(
                self._loop(sim, scaler), name=f"autoscaler/{cluster}"))

    def stop(self, now: float) -> None:
        """Interrupt every loop and close the cost integrals."""
        for proc in self._procs:
            proc.interrupt()
        self._procs = []
        for scaler in self.scalers.values():
            scaler.finalize(now)

    def _loop(self, sim, scaler: BackendAutoscaler):
        try:
            while True:
                yield sim.timeout(scaler.policy.interval_s)
                scaler.step(sim.now)
                if self.controller is not None:
                    self.weight_samples.append(
                        (sim.now, dict(self.controller.last_weights)))
        except Interrupted:
            return

    # ------------------------------------------------- result readers -- #

    def event_log(self) -> list[tuple[float, str, int, int]]:
        """Merged ``(time, backend, delta, replicas_after)`` log."""
        merged = [
            (when, scaler.backend_name, delta, after)
            for scaler in self.scalers.values()
            for when, delta, after in scaler.events
        ]
        merged.sort(key=lambda item: (item[0], item[1]))
        return merged

    def replica_seconds(self) -> dict[str, float]:
        """Per-backend cost integrals."""
        return {scaler.backend_name: scaler.replica_seconds
                for scaler in self.scalers.values()}

    def final_replicas(self) -> dict[str, int]:
        """Per-backend replica counts at the end of the run."""
        return {scaler.backend_name: scaler.replica_count
                for scaler in self.scalers.values()}
