"""Elasticity study cells: cost-vs-latency frontier + loop interaction.

Module-level, picklable cell functions shared by the figure suite
(``repro figure elasticity``), the committed benchmark
(``benchmarks/bench_autoscale.py`` → ``BENCH_autoscale.json``) and the
CI smoke job, so every consumer measures the exact same thing:

* :func:`run_elasticity_cell` runs one elasticity scenario in one of
  three capacity modes — ``fixed-min`` (the scenario's initial replica
  sets, autoscaling off), ``autoscale`` (the policies as configured,
  optionally with an overridden utilization target), ``fixed-max``
  (every cluster pinned at the policy maximum, autoscaling off) — and
  returns a JSON-able summary. The elasticity contract is that the
  autoscaled run beats ``fixed-min`` on P99 while costing fewer
  replica-seconds than ``fixed-max``.
* :func:`count_weight_flaps` / :func:`count_replica_flaps` /
  :func:`convergence_after` quantify how the two control loops interact
  on the same telemetry — whether concurrent weight shifting and
  replica churn amplify each other into oscillation, and how long after
  an outage heals the system takes to settle.
"""

from __future__ import annotations

import dataclasses

from repro.bench.coordinator import (
    ScenarioBenchConfig,
    run_scenario_benchmark,
)
from repro.errors import ConfigError
from repro.workloads.scenarios import build_scenario

MODES = ("fixed-min", "autoscale", "fixed-max")

# Relative weight change below which a reconcile does not count as a
# direction flip (weight solvers jitter by a few parts per thousand).
_WEIGHT_FLAP_THRESHOLD = 0.10


def _mode_scenario(name: str, duration_s: float, mode: str,
                   target: float | None):
    """Build the scenario in one capacity mode; returns (scenario, max)."""
    scenario = build_scenario(name, duration_s)
    if scenario.autoscale is None:
        raise ConfigError(
            f"scenario {name!r} carries no autoscale policies; the "
            "elasticity study needs one of the elastic-* pair")
    policies = dict(scenario.autoscale)
    if target is not None:
        policies = {cluster: dataclasses.replace(policy, target=target)
                    for cluster, policy in policies.items()}
    max_replicas = {cluster: policy.max_replicas
                    for cluster, policy in policies.items()}
    if mode == "autoscale":
        return dataclasses.replace(scenario, autoscale=policies), max_replicas
    if mode == "fixed-min":
        return dataclasses.replace(scenario, autoscale=None), max_replicas
    if mode == "fixed-max":
        topology = dataclasses.replace(
            scenario.topology, replicas=max_replicas)
        return dataclasses.replace(
            scenario, autoscale=None, topology=topology), max_replicas
    raise ConfigError(f"mode must be one of {MODES}: {mode!r}")


def run_elasticity_cell(scenario: str = "elastic-surge",
                        mode: str = "autoscale",
                        algorithm: str = "l3",
                        duration_s: float = 360.0,
                        seed: int = 1,
                        target: float | None = None) -> dict:
    """One elasticity benchmark cell; JSON-able summary, cacheable.

    Fixed modes have no cost integral of their own, so their
    replica-seconds are the analytic ``replicas × run length`` (warm-up
    included, matching the autoscaled integral's span).
    """
    built, max_replicas = _mode_scenario(scenario, duration_s, mode, target)
    result = run_scenario_benchmark(
        built, algorithm, duration_s=duration_s, seed=seed)
    if mode == "autoscale":
        replica_seconds = result.total_replica_seconds
    else:
        replicas = built.topology.replicas
        span = ScenarioBenchConfig().warmup_s + duration_s
        replica_seconds = float(sum(replicas.values())) * span
    heal_s = None
    for fault in built.faults:
        if fault.duration_s is not None:
            ends = ScenarioBenchConfig().warmup_s + fault.at_s \
                + fault.duration_s
            heal_s = ends if heal_s is None else max(heal_s, ends)
    summary = {
        "scenario": scenario,
        "mode": mode,
        "algorithm": algorithm,
        "seed": seed,
        "target": target,
        "requests": result.request_count,
        "p50_ms": result.p50_ms,
        "p99_ms": result.p99_ms,
        "success_rate": result.success_rate,
        "replica_seconds": replica_seconds,
        "scale_events": len(result.autoscale_events),
        "replica_flaps": count_replica_flaps(result.autoscale_events),
        "weight_flaps": count_weight_flaps(result.weight_samples),
        "final_replicas": result.final_replicas,
    }
    if heal_s is not None:
        summary["convergence_after_heal_s"] = convergence_after(
            result.autoscale_events, result.weight_samples, heal_s)
    return summary


def count_replica_flaps(events) -> int:
    """Scaling direction reversals, summed over backends.

    A flap is a scale-up followed by a scale-down on the same backend
    (or vice versa) — the signature of the two control loops fighting.
    A clean surge response (N ups, then N downs after the surge) counts
    exactly one flap; oscillation counts many.
    """
    last_direction: dict[str, int] = {}
    flaps = 0
    for _when, backend, delta, _after in events:
        previous = last_direction.get(backend)
        if previous is not None and delta != previous:
            flaps += 1
        last_direction[backend] = delta
    return flaps


def count_weight_flaps(weight_samples) -> int:
    """Weight direction reversals beyond a 10 % dead-band, summed.

    Consumes the ``(time, {backend: weight})`` snapshots the autoscale
    driver records at scaler ticks. Small solver jitter is ignored; a
    flap is a materially increasing weight turning into a materially
    decreasing one (or vice versa) for the same backend.
    """
    last_weight: dict[str, float] = {}
    last_direction: dict[str, int] = {}
    flaps = 0
    for _when, weights in weight_samples:
        for backend, weight in weights.items():
            previous = last_weight.get(backend)
            last_weight[backend] = weight
            if previous is None or previous <= 0:
                continue
            if abs(weight - previous) / previous < _WEIGHT_FLAP_THRESHOLD:
                continue
            direction = 1 if weight > previous else -1
            if last_direction.get(backend, direction) != direction:
                flaps += 1
            last_direction[backend] = direction
    return flaps


def convergence_after(events, weight_samples, after_s: float) -> float:
    """Seconds past ``after_s`` until both control loops went quiet.

    The settle point is the later of: the last replica-set change, and
    the last materially-changed weight snapshot (10 % dead-band), at or
    after ``after_s``. Zero means both loops were already steady.
    """
    settled = after_s
    for when, _backend, _delta, _after in events:
        if when >= after_s:
            settled = max(settled, when)
    previous: dict[str, float] = {}
    for when, weights in weight_samples:
        changed = False
        for backend, weight in weights.items():
            last = previous.get(backend)
            if last is not None and last > 0 \
                    and abs(weight - last) / last >= _WEIGHT_FLAP_THRESHOLD:
                changed = True
            previous[backend] = weight
        if changed and when >= after_s:
            settled = max(settled, when)
    return settled - after_s
