"""Scalable replica-set targets the autoscaler core drives.

The :class:`~repro.autoscale.controller.BackendAutoscaler` manipulates a
*target* through four members — ``replica_count``,
``capacity_per_replica``, ``add_replica(now)`` / ``remove_replica(now)``
and ``tick_warmup(now)`` — so the same control loop scales a simulated
mesh backend (:class:`SimBackendTarget`), a live asyncio replica server
(:class:`~repro.autoscale.live.LiveCapacityTarget`), or a bare counter in
a unit test.
"""

from __future__ import annotations


class SimBackendTarget:
    """Scales a simulated :class:`~repro.mesh.service.Backend`.

    New replicas join the backend's round-robin endpoint set immediately
    on ``add_replica`` (the provisioning lag is the *controller's* model;
    by the time the controller admits, the pod is ready). A cold-start
    ramp is modelled through the replica's ``service_time_scale`` dial:
    a fresh replica runs ``cold_start_factor``× slower and ramps linearly
    to nominal speed over ``warmup_s`` (re-evaluated each control tick,
    so the ramp's granularity is the scaler interval). Removal retires
    the newest replica; its in-flight requests finish normally
    (connection draining) and its queued waiters are still served —
    capacity just stops being offered to new picks.
    """

    def __init__(self, backend, *, warmup_s: float = 0.0,
                 cold_start_factor: float = 1.0):
        self.backend = backend
        self.warmup_s = warmup_s
        self.cold_start_factor = cold_start_factor
        self._warming: list[tuple[object, float]] = []

    @property
    def replica_count(self) -> int:
        return len(self.backend.replicas)

    @property
    def capacity_per_replica(self) -> int:
        # Capacity is uniform within a backend; replicas[0] always
        # exists (the last replica can never be removed).
        return self.backend.replicas[0].server.capacity

    def add_replica(self, now: float):
        replica = self.backend.add_replica()
        if self.warmup_s > 0 and self.cold_start_factor > 1.0:
            replica.service_time_scale = self.cold_start_factor
            self._warming.append((replica, now))
        return replica

    def remove_replica(self, now: float) -> None:
        del now
        victim = self.backend.replicas[-1]
        self.backend.remove_replica()
        self._warming = [(r, t0) for r, t0 in self._warming
                         if r is not victim]

    def tick_warmup(self, now: float) -> None:
        """Advance every warming replica's service-rate ramp."""
        if not self._warming:
            return
        still_warming = []
        for replica, admitted_at in self._warming:
            progress = (now - admitted_at) / self.warmup_s
            if progress >= 1.0:
                replica.service_time_scale = 1.0
            else:
                replica.service_time_scale = (
                    self.cold_start_factor
                    - (self.cold_start_factor - 1.0) * progress)
                still_warming.append((replica, admitted_at))
        self._warming = still_warming
