"""The clock-agnostic autoscaler core: one control loop per backend.

:class:`BackendAutoscaler` is a pure ``step(now)`` state machine — it
holds no reference to the simulator or to wall clocks, so the same core
drives three substrates: the simulated benchmark coordinator
(:class:`~repro.autoscale.driver.SimAutoscaleSet` spawns one generator
per scaler), the live testbed (:class:`~repro.autoscale.live.LiveAutoscaler`
ticks it from the harness loop), and deterministic unit tests that call
``step`` with hand-picked timestamps.

Each step, in order:

1. **account** — integrate replica-seconds cost (running *and*
   provisioning replicas bill, as cloud capacity does from launch);
2. **admit** — replicas whose provisioning lag has elapsed join the
   endpoint set (the target's ``add_replica``), entering their cold-start
   warmup ramp;
3. **evaluate** — query the telemetry source for the policy's signal and
   compute the raw HPA recommendation
   ``ceil(load / per-replica setpoint)``, bounded to
   ``[min_replicas, max_replicas]``; no data in the window holds state
   (never scales on silence);
4. **stabilize** — scale *up* only to the smallest recommendation of the
   up-window, scale *down* only to the largest recommendation of the
   down-window (Kubernetes HPA stabilization semantics); scale-down
   first cancels still-provisioning replicas, then retires at most one
   running replica per evaluation.

The telemetry source is duck-typed
(:class:`~repro.telemetry.query.PromMetricsSource` in production):
``server_gauge(name, metric, now, window_s) -> float | None`` for the
``inflight`` signal and ``collect([name], now, window_s, percentile)``
for ``rps``/``p99``. The scale target is equally duck-typed — see
:mod:`repro.autoscale.targets`.
"""

from __future__ import annotations

import math
from collections import deque

from repro.autoscale.policy import AutoscalePolicy
from repro.telemetry import names as metric_names


class BackendAutoscaler:
    """Scales one backend's replica set toward a policy's setpoint.

    Attributes:
        events: ``(time, delta, replicas_after)`` per admitted (+1) or
            retired (-1) replica — capacity *changes*, so the list's
            length equals the ``autoscale_events`` counter exposed to
            the scraper.
        events_total: monotonic event counter (the scraped series).
        replica_seconds: cost integral ∫(running + provisioning) dt,
            accounted between steps and closed by :meth:`finalize`.
        cancelled: still-provisioning launches aborted by a scale-down
            recommendation before they joined the endpoint set.
    """

    def __init__(self, backend_name: str, target, policy: AutoscalePolicy,
                 source, *, now: float = 0.0):
        """Args:
            backend_name: telemetry name of the scaled backend
                (e.g. ``"api/cluster-2"``).
            target: scalable replica set (``replica_count``,
                ``capacity_per_replica``, ``add_replica(now)``,
                ``remove_replica(now)``, ``tick_warmup(now)``) — see
                :mod:`repro.autoscale.targets`.
            policy: the tunables.
            source: telemetry source (duck-typed, see module docstring).
            now: time the cost accounting starts from.
        """
        self.backend_name = backend_name
        self.target = target
        self.policy = policy
        self.source = source
        self.events: list[tuple[float, int, int]] = []
        self.events_total = 0
        self.replica_seconds = 0.0
        self.cancelled = 0
        self.last_desired: int | None = None
        self._pending: list[float] = []  # admission times, FIFO
        self._recommendations: deque[tuple[float, int]] = deque()
        self._accounted_to = now

    @property
    def replica_count(self) -> int:
        """Replicas currently serving traffic."""
        return self.target.replica_count

    @property
    def pending_count(self) -> int:
        """Replicas launched but still inside the provisioning lag."""
        return len(self._pending)

    def step(self, now: float) -> None:
        """One control-loop evaluation at time ``now``."""
        self._account(now)
        self._admit(now)
        self.target.tick_warmup(now)
        desired = self._desired(now)
        if desired is None:
            return  # no telemetry in the window: hold state
        self.last_desired = desired
        policy = self.policy
        recs = self._recommendations
        recs.append((now, desired))
        horizon = now - max(policy.scale_up_stabilization_s,
                            policy.scale_down_stabilization_s)
        while recs and recs[0][0] < horizon:
            recs.popleft()
        up_goal = min(d for t, d in recs
                      if t >= now - policy.scale_up_stabilization_s)
        down_goal = max(d for t, d in recs
                        if t >= now - policy.scale_down_stabilization_s)
        running = self.target.replica_count
        effective = running + len(self._pending)
        if up_goal > effective:
            for _ in range(up_goal - effective):
                self._pending.append(now + policy.provisioning_lag_s)
        elif down_goal < effective:
            # Cancel capacity that has not arrived yet first (free), then
            # retire at most one running replica per evaluation — HPA's
            # conservative scale-down behaviour.
            excess = effective - down_goal
            while self._pending and excess > 0:
                self._pending.pop()
                self.cancelled += 1
                excess -= 1
            if excess > 0 and running > policy.min_replicas:
                self.target.remove_replica(now)
                self.events_total += 1
                self.events.append((now, -1, self.target.replica_count))

    def finalize(self, now: float) -> None:
        """Close the replica-seconds integral at the end of the run."""
        self._account(now)

    # ------------------------------------------------------------------ #

    def _account(self, now: float) -> None:
        elapsed = now - self._accounted_to
        if elapsed > 0:
            billed = self.target.replica_count + len(self._pending)
            self.replica_seconds += elapsed * billed
            self._accounted_to = now

    def _admit(self, now: float) -> None:
        due = [ready_at for ready_at in self._pending if ready_at <= now]
        if not due:
            return
        self._pending = [r for r in self._pending if r > now]
        for _ in due:
            if self.target.replica_count >= self.policy.max_replicas:
                continue
            self.target.add_replica(now)
            self.events_total += 1
            self.events.append((now, +1, self.target.replica_count))

    def _desired(self, now: float) -> int | None:
        """Raw bounded recommendation, or None without telemetry."""
        policy = self.policy
        window = policy.query_window_s
        if policy.metric == "inflight":
            load = self.source.server_gauge(
                self.backend_name, metric_names.SERVER_QUEUE, now, window)
            if load is None:
                return None
            per_replica = policy.target * self.target.capacity_per_replica
            raw = math.ceil(load / per_replica)
        else:
            sample = self.source.collect(
                [self.backend_name], now, window, 0.99)[self.backend_name]
            if sample is None:
                return None
            if policy.metric == "rps":
                raw = math.ceil(sample.rps / policy.target)
            else:  # p99: proportional toward the latency setpoint
                if sample.latency_s is None:
                    return None
                raw = math.ceil(self.target.replica_count
                                * sample.latency_s / policy.target)
        return min(max(raw, policy.min_replicas), policy.max_replicas)
