"""Autoscale policies: the HPA-style tunables of one backend's scaler.

A policy says *what signal* to track (:data:`METRIC_NAMES`), *where the
setpoint is*, and *how cautiously* to move: replica bounds, the control
interval, the provisioning lag before a launched replica serves traffic,
the cold-start warmup ramp, and the scale-up/scale-down stabilization
windows that keep the scaler from flapping on a noisy signal.

Validation happens at construction (``ConfigError``), so a bad policy —
whether built in code, attached to a scenario, or parsed from the CLI's
``--autoscale`` spec (:mod:`repro.autoscale.spec`) — fails before any
simulation is wired up.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

# Telemetry signals a policy can track:
#   inflight — server-side queue occupancy (executing + queued) as a
#       fraction of replica capacity; ``target`` is the desired
#       utilization in (0, 1]. This is the signal the seed HPA used and
#       the one Kubernetes' resource-utilization HPA approximates.
#   rps — scraped request rate; ``target`` is the RPS one replica should
#       carry (the HPA "pods metric" shape).
#   p99 — windowed P99 latency; ``target`` is the latency setpoint in
#       seconds, scaled proportionally (an SLO-driven scaler).
METRIC_NAMES = ("inflight", "rps", "p99")


@dataclass(frozen=True)
class AutoscalePolicy:
    """Per-backend horizontal autoscaling tunables.

    Attributes:
        metric: tracked signal, one of :data:`METRIC_NAMES`.
        target: setpoint — utilization in (0, 1] for ``inflight``,
            per-replica RPS for ``rps``, seconds for ``p99``.
        min_replicas / max_replicas: replica-count bounds.
        interval_s: control-loop period.
        provisioning_lag_s: time between the scale-up decision and the
            new replica joining the endpoint set (pod scheduling + image
            pull + boot).
        warmup_s: cold-start ramp length — a freshly admitted replica
            starts slow and reaches nominal service rate this long after
            joining (0 disables the ramp).
        cold_start_factor: service-*time* multiplier at the moment of
            admission (2.0 = a cold replica is half speed), ramping
            linearly down to 1.0 over ``warmup_s``.
        scale_up_stabilization_s: scale up only to the *smallest* desired
            count recommended over this window (0, the Kubernetes
            default, reacts immediately).
        scale_down_stabilization_s: scale down only to the *largest*
            desired count recommended over this window — the HPA
            stabilization window that rides out transient dips.
        window_s: telemetry query window; ``None`` uses ``interval_s``.
    """

    metric: str = "inflight"
    target: float = 0.5
    min_replicas: int = 1
    max_replicas: int = 10
    interval_s: float = 15.0
    provisioning_lag_s: float = 30.0
    warmup_s: float = 0.0
    cold_start_factor: float = 1.0
    scale_up_stabilization_s: float = 0.0
    scale_down_stabilization_s: float = 60.0
    window_s: float | None = None

    def __post_init__(self):
        if self.metric not in METRIC_NAMES:
            raise ConfigError(
                f"autoscale metric must be one of {METRIC_NAMES}: "
                f"{self.metric!r}")
        if self.target <= 0:
            raise ConfigError(
                f"autoscale target must be positive: {self.target}")
        if self.metric == "inflight" and self.target > 1.0:
            raise ConfigError(
                f"inflight target is a utilization in (0, 1]: {self.target}")
        if self.min_replicas < 1 or self.max_replicas < self.min_replicas:
            raise ConfigError(
                f"invalid replica bounds: [{self.min_replicas}, "
                f"{self.max_replicas}]")
        if self.interval_s <= 0:
            raise ConfigError(
                f"autoscale interval must be positive: {self.interval_s}")
        if self.provisioning_lag_s < 0 or self.warmup_s < 0:
            raise ConfigError("autoscale delays must be >= 0")
        if self.cold_start_factor < 1.0:
            raise ConfigError(
                f"cold-start factor must be >= 1 (a cold replica is not "
                f"faster than a warm one): {self.cold_start_factor}")
        if (self.scale_up_stabilization_s < 0
                or self.scale_down_stabilization_s < 0):
            raise ConfigError("stabilization windows must be >= 0")
        if self.window_s is not None and self.window_s <= 0:
            raise ConfigError(
                f"telemetry window must be positive: {self.window_s}")

    @property
    def query_window_s(self) -> float:
        """Effective telemetry window of the scaler's queries."""
        return self.window_s if self.window_s is not None else self.interval_s
