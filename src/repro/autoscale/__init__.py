"""Telemetry-driven elasticity: HPA-style autoscaling over scraped metrics.

§3.2 of the paper motivates latency-aware load balancing partly by its
interplay with cluster autoscaling — spreading load toward faster
backends "enables the cluster's autoscaling mechanisms to promptly
scale up". This package closes that loop: per-cluster horizontal
autoscalers run *concurrently* with the L3/C3 weight controllers,
reading the same scraped telemetry (the server-side in-flight gauge,
RPS, P99), so the two control loops interact through the plant exactly
as they do in a real mesh — weights shift traffic, replicas change
capacity, both react to what the other did one scrape interval ago.

The core (:class:`~repro.autoscale.controller.BackendAutoscaler`) is a
clock-agnostic ``step(now)`` state machine with Kubernetes-HPA
semantics — provisioning lag, scale-up/down stabilization windows,
cold-start warmup, replica-seconds cost accounting — driven by three
substrates: simulated benchmarks (:class:`SimAutoscaleSet`), the live
socket testbed (:mod:`repro.autoscale.live`), and plain unit tests.
Policies come from :class:`AutoscalePolicy` or the CLI ``--autoscale``
spec grammar (:func:`parse_autoscale_spec`). Everything is strictly
opt-in: with no policy configured, no process, gauge, or RNG draw is
created and simulation digests are byte-identical to autoscale-free
builds.

The original minimal HPA loop absorbed from ``repro.mesh.autoscaler``
lives on in :mod:`repro.autoscale.hpa`; the elasticity benchmark cells
shared by the figure suite and CI live in :mod:`repro.autoscale.study`
(kept out of this namespace to avoid importing the bench stack at
package-import time).
"""

from repro.autoscale.controller import BackendAutoscaler
from repro.autoscale.driver import SimAutoscaleSet
from repro.autoscale.policy import METRIC_NAMES, AutoscalePolicy
from repro.autoscale.spec import (
    AUTOSCALE_SPEC_KEYS,
    describe_policies,
    parse_autoscale_spec,
    resolve_autoscale_policies,
)
from repro.autoscale.targets import SimBackendTarget

__all__ = [
    "AUTOSCALE_SPEC_KEYS",
    "AutoscalePolicy",
    "BackendAutoscaler",
    "METRIC_NAMES",
    "SimAutoscaleSet",
    "SimBackendTarget",
    "describe_policies",
    "parse_autoscale_spec",
    "resolve_autoscale_policies",
]
