"""Tournament execution: the grid, the scores, the deterministic sweep.

One tournament cell is one ``(scenario, algorithm, repetition)`` triple
run through :func:`repro.bench.coordinator.run_scenario_benchmark` and
reduced to a :class:`CellScore` — P99/P50, success rate, and (for the
perturbation cells) the convergence time after the fault heals, measured
with the fault matrix's recovery-bucket rule. Cells are independent, so
the whole grid fans out through :func:`repro.bench.parallel.run_cells`
with explicit per-cell seeds and an ordered merge: the result — and the
JSON document :func:`tournament_json` derives from it — is byte-identical
for every ``jobs`` value.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.balancers.factory import BALANCER_NAMES
from repro.bench.coordinator import ScenarioBenchConfig, run_scenario_benchmark
from repro.bench.fault_matrix import (
    RECOVERY_BUCKET_S,
    recovery_intervals,
    steady_scenario,
)
from repro.bench.parallel import Cell, run_cells
from repro.errors import ConfigError
from repro.tournament.grid import TournamentScenario, select_scenarios
from repro.tournament.leaderboard import build_leaderboard

# Round scores to this many decimals in the JSON document: enough to
# rank on, few enough that the committed baseline stays readable.
_JSON_DECIMALS = 3


@dataclass(frozen=True)
class CellScore:
    """What one tournament cell is judged on."""

    p50_ms: float
    p99_ms: float
    success_rate: float
    requests: int
    #: Seconds after the fault heals until a recovery bucket's P99 is
    #: back within tolerance of the pre-fault P99. ``None`` on the
    #: unperturbed trace cells — and on perturbed cells whose tail never
    #: recovered inside the measured period (ranked worst).
    convergence_s: float | None = None

    def metrics(self) -> dict:
        return {
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "success_rate": self.success_rate,
            "requests": self.requests,
            "convergence_s": self.convergence_s,
        }


@dataclass
class TournamentResult:
    """The scored grid plus the configuration that produced it."""

    algorithms: tuple
    scenarios: tuple
    duration_s: float
    repetitions: int
    seed0: int
    #: ``{scenario: {algorithm: CellScore}}`` averaged over repetitions.
    scores: dict = field(default_factory=dict)

    def score(self, scenario: str, algorithm: str) -> CellScore:
        return self.scores[scenario][algorithm]


def run_tournament_cell(scenario_name: str, algorithm: str,
                        duration_s: float, seed: int) -> CellScore:
    """Run one (scenario, algorithm) cell and reduce it to its scores.

    Module-level and JSON-kwarg-only: picklable for worker processes and
    cacheable under ``REPRO_BENCH_CACHE``.
    """
    [cell] = select_scenarios(duration_s, [scenario_name])
    env = ScenarioBenchConfig()
    if cell.base is None:
        scenario = steady_scenario(duration_s)
    else:
        scenario = cell.base
    result = run_scenario_benchmark(
        scenario, algorithm, duration_s=duration_s, seed=seed, env=env,
        faults=list(cell.faults))
    convergence_s = None
    if cell.perturbed:
        start, end = cell.fault_window(duration_s)
        # Fault times are measured-period-relative; records carry
        # absolute simulation time — shift by the warm-up.
        start += env.warmup_s
        end += env.warmup_s
        pre = [r.latency_s for r in result.records
               if r.intended_start_s < start]
        if pre:
            from repro.analysis.percentiles import exact_percentile

            intervals = recovery_intervals(
                result.records, end, exact_percentile(pre, 0.99))
            if intervals is not None:
                convergence_s = intervals * RECOVERY_BUCKET_S
    return CellScore(
        p50_ms=result.p50_ms,
        p99_ms=result.p99_ms,
        success_rate=result.success_rate,
        requests=result.request_count,
        convergence_s=convergence_s,
    )


def _mean_scores(scores: list[CellScore]) -> CellScore:
    """Average repetition scores (convergence over recovered reps only)."""
    n = len(scores)
    recovered = [s.convergence_s for s in scores
                 if s.convergence_s is not None]
    return CellScore(
        p50_ms=sum(s.p50_ms for s in scores) / n,
        p99_ms=sum(s.p99_ms for s in scores) / n,
        success_rate=sum(s.success_rate for s in scores) / n,
        requests=round(sum(s.requests for s in scores) / n),
        convergence_s=(sum(recovered) / len(recovered)
                       if recovered else None),
    )


def run_tournament(algorithms=None, scenarios=None,
                   duration_s: float = 120.0, repetitions: int = 1,
                   seed0: int = 1, jobs: int | None = 1) -> TournamentResult:
    """Race ``algorithms`` across ``scenarios`` and score every cell.

    Args:
        algorithms: balancer names (default: every registered algorithm).
        scenarios: tournament scenario names (default: the full grid).
        duration_s: measured seconds per cell.
        repetitions: seeds per cell; scores are averaged.
        seed0: first seed; repetition ``r`` runs with ``seed0 + r``.
        jobs: worker processes for the sweep (1 = serial, None = all
            CPUs); the result is identical for every value.
    """
    if algorithms is None:
        algorithms = BALANCER_NAMES
    unknown = [name for name in algorithms if name not in BALANCER_NAMES]
    if unknown:
        raise ConfigError(
            f"unknown balancer(s) {unknown}; expected a subset of "
            f"{BALANCER_NAMES}")
    if repetitions < 1:
        raise ConfigError(f"repetitions must be >= 1: {repetitions}")
    grid = select_scenarios(duration_s, scenarios)
    cells = []
    for cell in grid:
        for algorithm in algorithms:
            for rep in range(repetitions):
                cells.append(Cell(
                    id=f"{cell.name}/{algorithm}#rep{rep}",
                    fn=run_tournament_cell,
                    kwargs={"scenario_name": cell.name,
                            "algorithm": algorithm,
                            "duration_s": duration_s,
                            "seed": seed0 + rep}))
    outcomes = run_cells(cells, jobs=jobs)
    result = TournamentResult(
        algorithms=tuple(algorithms),
        scenarios=tuple(c.name for c in grid),
        duration_s=duration_s, repetitions=repetitions, seed0=seed0)
    for cell in grid:
        row = {}
        for algorithm in algorithms:
            reps = [outcomes[f"{cell.name}/{algorithm}#rep{r}"].unwrap()
                    for r in range(repetitions)]
            row[algorithm] = _mean_scores(reps)
        result.scores[cell.name] = row
    return result


def _round(value):
    if isinstance(value, float):
        return round(value, _JSON_DECIMALS)
    return value


def tournament_json(result: TournamentResult) -> dict:
    """The whole tournament as one deterministic JSON-able document.

    Contains nothing host- or wall-clock-dependent: the same
    configuration produces the byte-identical document on any machine at
    any ``jobs`` value.
    """
    return {
        "schema": 1,
        "config": {
            "algorithms": list(result.algorithms),
            "scenarios": list(result.scenarios),
            "duration_s": result.duration_s,
            "repetitions": result.repetitions,
            "seed0": result.seed0,
        },
        "grid": {
            scenario: {
                algorithm: {key: _round(value)
                            for key, value in score.metrics().items()}
                for algorithm, score in row.items()
            }
            for scenario, row in result.scores.items()
        },
        "leaderboard": build_leaderboard(result),
    }


def check_contract(result: TournamentResult) -> list[str]:
    """The CI smoke contract; returns failure descriptions (empty = pass).

    The claim under test is the paper's headline: under a degraded
    cross-cluster path, the latency-aware controller beats round-robin
    on client-perceived P99.
    """
    failures = []
    row = result.scores.get("degraded-backend")
    if row is None:
        return ["contract needs the 'degraded-backend' scenario in the grid"]
    for name in ("l3", "round-robin"):
        if name not in row:
            failures.append(f"contract needs algorithm {name!r} in the grid")
    if failures:
        return failures
    l3_p99 = row["l3"].p99_ms
    rr_p99 = row["round-robin"].p99_ms
    if not l3_p99 < rr_p99:
        failures.append(
            f"l3 did not beat round-robin on degraded-backend P99: "
            f"l3={l3_p99:.1f} ms vs round-robin={rr_p99:.1f} ms")
    return failures
