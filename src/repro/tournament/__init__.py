"""Tournament harness: race every registered balancer across scenarios.

The subsystem enumerates the balancer registry against a fixed scenario
grid (the five TIER-derived cells plus a degraded-backend and an outage
cell drawn from the fault matrix), runs the grid through the
deterministic parallel sweep executor, scores each cell on tail latency,
success rate and post-perturbation convergence time, and reduces the
scores to a leaderboard: per-metric win rates plus a P99 head-to-head
table, rendered as JSON and as ASCII tables. ``repro tournament`` is the
CLI front end; ``benchmarks/bench_tournament.py`` maintains the
committed baseline.
"""

from repro.tournament.grid import (
    TOURNAMENT_SCENARIO_NAMES,
    TournamentScenario,
    select_scenarios,
    tournament_scenarios,
)
from repro.tournament.leaderboard import (
    LEADERBOARD_METRICS,
    build_leaderboard,
    render_grid,
    render_leaderboard,
)
from repro.tournament.runner import (
    CellScore,
    TournamentResult,
    check_contract,
    run_tournament,
    run_tournament_cell,
    tournament_json,
)

__all__ = [
    "CellScore",
    "LEADERBOARD_METRICS",
    "TOURNAMENT_SCENARIO_NAMES",
    "TournamentResult",
    "TournamentScenario",
    "build_leaderboard",
    "check_contract",
    "render_grid",
    "render_leaderboard",
    "select_scenarios",
    "run_tournament",
    "run_tournament_cell",
    "tournament_json",
    "tournament_scenarios",
]
