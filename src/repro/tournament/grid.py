"""The tournament's scenario axis.

Seven cells. The first five are the paper's TIER-derived trace scenarios
verbatim (``scenario-1`` … ``scenario-5``): the balancers race on the
same cross-cluster latency skews the L3 evaluation uses. The last two
are *perturbation* cells built on the fault matrix's steady scenario —
flat profiles and flat load, so the injected disturbance is the only
signal — which is what makes a convergence-time score well-defined:

* ``degraded-backend`` — the client's WAN path to cluster-2 degrades
  sharply (20x one-way delay + 200 ms) mid-run, then heals. A
  latency-aware balancer sheds the cluster and re-admits it afterwards;
  this is the cell the CI ``--check`` contract (L3 beats round-robin on
  P99) runs on.
* ``outage`` — cluster-2 goes down fail-fast mid-run, then heals;
  success rate during the fault separates balancers that reroute from
  ones that keep feeding the dead cluster.

Fault timing scales with the cell duration (start at 3/8, heal at 5/8),
so a 60-second smoke run and the committed multi-minute baseline measure
the same three phases: converge, perturb, recover.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.fault_matrix import FAULT_CLUSTER, steady_scenario
from repro.errors import ConfigError
from repro.faults import ClusterOutage, LinkDegradation

# The five TIER-derived trace cells raced as-is.
TRACE_SCENARIOS = ("scenario-1", "scenario-2", "scenario-3", "scenario-4",
                   "scenario-5")

# The perturbation cells built on the steady scenario + fault matrix.
PERTURBATION_SCENARIOS = ("degraded-backend", "outage")

TOURNAMENT_SCENARIO_NAMES = TRACE_SCENARIOS + PERTURBATION_SCENARIOS

# Fault window as fractions of the measured duration: hit at 3/8, heal
# at 5/8 — leaving an equal pre-fault baseline and post-heal recovery
# window on both sides.
FAULT_START_FRACTION = 0.375
FAULT_DURATION_FRACTION = 0.25


@dataclass(frozen=True)
class TournamentScenario:
    """One column of the tournament grid.

    ``base`` is a built-in scenario name, or ``None`` for the steady
    scenario; ``perturbed`` marks the cells whose faults define a
    convergence-time score.
    """

    name: str
    base: str | None
    faults: tuple = ()
    perturbed: bool = False

    def fault_window(self, duration_s: float) -> tuple[float, float]:
        """(start, end) of the fault, measured-period-relative seconds."""
        if not self.perturbed:
            raise ConfigError(f"scenario {self.name!r} has no fault window")
        start = min(f.at_s for f in self.faults)
        end = max(f.at_s + (f.duration_s or 0.0) for f in self.faults)
        return start, end


def tournament_scenarios(duration_s: float) -> tuple[TournamentScenario, ...]:
    """The grid columns, fault windows scaled to ``duration_s``."""
    if duration_s <= 0:
        raise ConfigError(f"duration_s must be positive: {duration_s}")
    start = duration_s * FAULT_START_FRACTION
    length = duration_s * FAULT_DURATION_FRACTION
    cells = [TournamentScenario(name, base=name)
             for name in TRACE_SCENARIOS]
    cells.append(TournamentScenario(
        "degraded-backend", base=None, perturbed=True,
        faults=(LinkDegradation("cluster-1", FAULT_CLUSTER, at_s=start,
                                duration_s=length, multiplier=20.0,
                                extra_delay_s=0.200),)))
    cells.append(TournamentScenario(
        "outage", base=None, perturbed=True,
        faults=(ClusterOutage(FAULT_CLUSTER, at_s=start,
                              duration_s=length, mode="fail_fast"),)))
    return tuple(cells)


def select_scenarios(duration_s: float,
                     names=None) -> tuple[TournamentScenario, ...]:
    """The grid columns for ``names`` (None = the full grid), validated."""
    cells = tournament_scenarios(duration_s)
    if names is None:
        return cells
    by_name = {cell.name: cell for cell in cells}
    unknown = [name for name in names if name not in by_name]
    if unknown:
        raise ConfigError(
            f"unknown tournament scenario(s) {unknown}; expected a subset "
            f"of {TOURNAMENT_SCENARIO_NAMES}")
    return tuple(by_name[name] for name in names)
