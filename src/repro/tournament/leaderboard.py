"""Leaderboard reduction: per-metric win rates and a P99 head-to-head.

A tournament's scored grid is reduced two ways:

* **Per-metric win rates** — for each metric, every scenario column is a
  contest: the best value wins (ties share the win). The win rate is
  wins over scenarios contested, so it stays comparable across partial
  grids. ``convergence_s`` only exists on the perturbation cells; an
  algorithm whose tail never recovered holds a ``None`` — it contests
  the scenario (it ran) but cannot win it.
* **P99 head-to-head** — ``wins[a][b]`` counts scenarios where ``a``'s
  P99 is strictly below ``b``'s: the pairwise view that survives one
  algorithm being terrible on a single scenario.

The overall ranking orders algorithms by summed wins across metrics
(P99 first on ties, then name for determinism).
"""

from __future__ import annotations

#: metric -> direction; "lower" wins by minimum, "higher" by maximum.
LEADERBOARD_METRICS = {
    "p99_ms": "lower",
    "success_rate": "higher",
    "convergence_s": "lower",
}


def _metric_value(score, metric: str):
    value = score.metrics()[metric] if hasattr(score, "metrics") else (
        score[metric])
    return value


def _contest(row: dict, metric: str, direction: str) -> list[str]:
    """Winners of one scenario column on one metric (ties share)."""
    values = {alg: _metric_value(score, metric)
              for alg, score in row.items()}
    present = {alg: v for alg, v in values.items() if v is not None}
    if not present:
        return []
    best = (min if direction == "lower" else max)(present.values())
    return [alg for alg, v in present.items() if v == best]


def build_leaderboard(result) -> dict:
    """Reduce a :class:`~repro.tournament.runner.TournamentResult`.

    Returns a JSON-able document: per-metric wins / win rates, the P99
    head-to-head matrix, and the overall ranking.
    """
    algorithms = list(result.algorithms)
    metrics_doc = {}
    total_wins = {alg: 0 for alg in algorithms}
    for metric, direction in LEADERBOARD_METRICS.items():
        wins = {alg: 0 for alg in algorithms}
        contested = 0
        for row in result.scores.values():
            winners = _contest(row, metric, direction)
            if not winners:
                continue  # metric undefined on this scenario (no faults)
            contested += 1
            for alg in winners:
                wins[alg] += 1
        win_rate = {
            alg: (wins[alg] / contested if contested else 0.0)
            for alg in algorithms
        }
        metrics_doc[metric] = {
            "direction": direction,
            "scenarios_contested": contested,
            "wins": wins,
            "win_rate": {alg: round(rate, 3)
                         for alg, rate in win_rate.items()},
        }
        for alg in algorithms:
            total_wins[alg] += wins[alg]

    head_to_head = {
        a: {b: 0 for b in algorithms if b != a} for a in algorithms
    }
    for row in result.scores.values():
        p99 = {alg: _metric_value(score, "p99_ms")
               for alg, score in row.items()}
        for a in algorithms:
            for b in algorithms:
                if a != b and p99[a] < p99[b]:
                    head_to_head[a][b] += 1

    ranking = sorted(
        algorithms,
        key=lambda alg: (-total_wins[alg],
                         -metrics_doc["p99_ms"]["wins"][alg], alg))
    return {
        "metrics": metrics_doc,
        "head_to_head_p99": head_to_head,
        "total_wins": total_wins,
        "ranking": ranking,
    }


def render_grid(result) -> str:
    """The scored grid, one ASCII table per scenario."""
    from repro.bench.results import format_table

    sections = []
    for scenario, row in result.scores.items():
        rows = {alg: score.metrics() for alg, score in row.items()}
        baseline = "round-robin" if "round-robin" in rows else None
        sections.append(format_table(
            f"tournament — {scenario} ({result.duration_s:.0f}s, "
            f"{result.repetitions} rep)", rows, baseline=baseline))
    return "\n\n".join(sections)


def render_leaderboard(board: dict) -> str:
    """The leaderboard document as ASCII tables, ranking order."""
    from repro.bench.results import format_table

    ranking = board["ranking"]
    rows = {}
    for alg in ranking:
        row = {"total_wins": board["total_wins"][alg]}
        for metric, doc in board["metrics"].items():
            row[f"{metric} wins"] = doc["wins"][alg]
            row[f"{metric} rate"] = doc["win_rate"][alg]
        rows[alg] = row
    sections = [format_table("leaderboard — per-metric win rates "
                             "(ties share the win)", rows)]

    h2h = board["head_to_head_p99"]
    h2h_rows = {
        a: {b: ("-" if a == b else h2h[a][b]) for b in ranking}
        for a in ranking
    }
    sections.append(format_table(
        "head-to-head — scenarios won on P99 (row beats column)",
        h2h_rows))
    return "\n\n".join(sections)
