"""repro — reproduction of "L3: Latency-aware Load Balancing in Multi-Cluster
Service Mesh" (Middleware '24).

The package implements the L3 controller (EWMA/PeakEWMA filtering, the
weighting algorithm and the rate-control algorithm from the paper) together
with every substrate the paper's evaluation depends on: a discrete-event
simulator (:mod:`repro.sim`), a multi-cluster service-mesh data plane
(:mod:`repro.mesh`), a Prometheus-like telemetry pipeline
(:mod:`repro.telemetry`), the comparison balancers (:mod:`repro.balancers`),
synthetic equivalents of the paper's trace scenarios plus the
DeathStarBench hotel-reservation call graph (:mod:`repro.workloads`), and
the benchmark harness regenerating every figure (:mod:`repro.bench`), and
a live localhost testbed that runs the same controller stack against a
real networked mesh over asyncio sockets (:mod:`repro.live`), and
telemetry-driven per-cluster autoscaling co-simulated with the weight
controllers (:mod:`repro.autoscale`).

Quickstart::

    from repro import run_scenario_benchmark

    result = run_scenario_benchmark(scenario="scenario-1", algorithm="l3",
                                    duration_s=120.0, seed=7)
    print(result.p99_ms, result.success_rate)
"""

from repro.autoscale import AutoscalePolicy, parse_autoscale_spec
from repro.bench.coordinator import (
    BenchmarkResult,
    ScenarioBenchConfig,
    run_callgraph_benchmark,
    run_hotel_benchmark,
    run_scenario_benchmark,
    run_social_benchmark,
)
from repro.core.config import L3Config
from repro.core.controller import L3Controller, MetricSample
from repro.core.cost import CostConfig
from repro.core.ewma import Ewma, PeakEwma, half_life_to_beta
from repro.core.rate_control import apply_rate_control, relative_change
from repro.core.weighting import (
    BackendSnapshot,
    WeightingConfig,
    compute_weights,
)
from repro.core.introspection import ControllerIntrospection
from repro.core.leader import ControllerReplica, LeaseLock
from repro.balancers.factory import BALANCER_NAMES, make_balancer
from repro.faults import (
    ClusterOutage,
    ControllerPause,
    Fault,
    FaultInjector,
    LinkDegradation,
    LinkPartition,
    ReplicaCrash,
    ReplicaRestart,
    ScrapeOutage,
    parse_fault_spec,
)
from repro.live.harness import LiveConfig, LiveHarness, run_live
from repro.mesh.ejection import OutlierEjectionConfig
from repro.tracing import (
    DecisionAuditLog,
    MeshTracer,
    TracingConfig,
    export_trace,
    scenario_from_otlp,
)
from repro.workloads.scenarios import SCENARIO_NAMES, build_scenario
from repro.workloads.traceio import load_scenario, save_scenario

__version__ = "1.0.0"

__all__ = [
    "AutoscalePolicy",
    "BALANCER_NAMES",
    "BackendSnapshot",
    "BenchmarkResult",
    "ClusterOutage",
    "ControllerIntrospection",
    "ControllerPause",
    "ControllerReplica",
    "CostConfig",
    "DecisionAuditLog",
    "Ewma",
    "Fault",
    "FaultInjector",
    "L3Config",
    "L3Controller",
    "LeaseLock",
    "LinkDegradation",
    "LinkPartition",
    "LiveConfig",
    "LiveHarness",
    "MeshTracer",
    "MetricSample",
    "OutlierEjectionConfig",
    "PeakEwma",
    "ReplicaCrash",
    "ReplicaRestart",
    "SCENARIO_NAMES",
    "ScenarioBenchConfig",
    "ScrapeOutage",
    "TracingConfig",
    "WeightingConfig",
    "apply_rate_control",
    "build_scenario",
    "compute_weights",
    "export_trace",
    "half_life_to_beta",
    "load_scenario",
    "make_balancer",
    "parse_autoscale_spec",
    "parse_fault_spec",
    "relative_change",
    "run_callgraph_benchmark",
    "run_hotel_benchmark",
    "run_live",
    "run_scenario_benchmark",
    "run_social_benchmark",
    "save_scenario",
    "scenario_from_otlp",
    "__version__",
]
