"""Time-varying workload profiles.

The paper's TIER Mobility scenarios are published only as time series of
per-cluster median/P99 latency, RPS and success rate (Figs. 1, 2, 6, 7a).
We model each series as a piecewise-linear function of time and sample
request latencies from a log-normal distribution pinned to the current
median and P99 (§3.1 observes network latency is well characterised by a
log-normal).
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.sim.rng import NV_MAGICCONST, Z_P99


class PiecewiseSeries:
    """A piecewise-linear, optionally periodic, function of time.

    Control points are ``(time_s, value)`` pairs. Between points the value
    is linearly interpolated; outside the range it clamps to the edge
    values, unless ``period_s`` is given, in which case time wraps (so a
    10-minute trace can drive an arbitrarily long run).
    """

    __slots__ = ("_times", "_values", "period_s", "_constant", "_seg")

    def __init__(self, points, period_s: float | None = None):
        pts = sorted((float(t), float(v)) for t, v in points)
        if not pts:
            raise ConfigError("a series needs at least one control point")
        times = [t for t, _v in pts]
        if len(set(times)) != len(times):
            raise ConfigError("duplicate control-point times")
        if period_s is not None and period_s <= times[-1]:
            raise ConfigError(
                f"period {period_s} must exceed the last point {times[-1]}")
        self._times = times
        self._values = [v for _t, v in pts]
        self.period_s = period_s
        # A one-point series is the same value everywhere (with or
        # without a period) — the common case for constant RPS and
        # failure-probability profiles, queried once or more per request.
        self._constant = len(times) == 1
        # Cached interior segment index for value_at: queries arrive in
        # (nearly) monotone time order, so the segment found last time
        # almost always still contains the next query — one compare
        # instead of a bisect.
        self._seg = 1 if len(times) > 1 else 0

    def value_at(self, now: float) -> float:
        """The interpolated series value at time ``now``."""
        if self._constant:
            return self._values[0]
        period = self.period_s
        t = now if period is None else now % period
        times, values = self._times, self._values
        if t <= times[0]:
            # With a period, the gap from the last point back to the first
            # wraps around; interpolate across the seam.
            if period is not None:
                return self._wrap_interpolate(t)
            return values[0]
        if t >= times[-1]:
            if period is not None:
                return self._wrap_interpolate(t)
            return values[-1]
        # The invariant mirrors bisect_right exactly (left edge closed,
        # right edge open), so a cache hit lands in the very segment a
        # bisect would — including queries exactly on a control point.
        index = self._seg
        if not times[index - 1] <= t < times[index]:
            index = bisect.bisect_right(times, t)
            self._seg = index
        t0, t1 = times[index - 1], times[index]
        v0, v1 = values[index - 1], values[index]
        return v0 + (v1 - v0) * (t - t0) / (t1 - t0)

    def _wrap_interpolate(self, t: float) -> float:
        """Interpolate across the period seam (last point → first point)."""
        t_last, v_last = self._times[-1], self._values[-1]
        t_first, v_first = self._times[0], self._values[0]
        gap = (self.period_s - t_last) + t_first
        if gap <= 0:
            return v_first
        offset = t - t_last if t >= t_last else (self.period_s - t_last) + t
        return v_last + (v_first - v_last) * offset / gap

    def points(self) -> list[tuple[float, float]]:
        """The control points as ``(time_s, value)`` pairs, time-sorted.

        The public accessor for serialisers and exporters (trace I/O,
        span exporters) — callers must not reach into the internal
        parallel arrays.
        """
        return list(zip(self._times, self._values))

    def max_value(self) -> float:
        """Upper bound of the series (max of control values)."""
        return max(self._values)

    def min_value(self) -> float:
        """Lower bound of the series (min of control values)."""
        return min(self._values)


def constant_series(value: float) -> PiecewiseSeries:
    """A series that is ``value`` forever."""
    return PiecewiseSeries([(0.0, value)])


@dataclass
class BackendProfile:
    """Time-varying behaviour of one backend (service deployment).

    Attributes:
        median_latency_s: series of the service-time median.
        p99_latency_s: series of the service-time 99th percentile.
        failure_prob: series of per-request failure probability in [0, 1].
        failure_latency_s: fixed latency of a failed request (clients of a
            failing service typically see fast errors or timeouts; constant
            keeps the model simple and is configurable per scenario).
    """

    median_latency_s: PiecewiseSeries
    p99_latency_s: PiecewiseSeries
    failure_prob: PiecewiseSeries
    failure_latency_s: float = 0.05

    def sample_service_time(self, rng, now: float) -> float:
        """Draw one service time from the current log-normal distribution."""
        series = self.median_latency_s
        median = series._values[0] if series._constant else series.value_at(now)
        if median < 1e-6:
            median = 1e-6
        series = self.p99_latency_s
        p99 = series._values[0] if series._constant else series.value_at(now)
        # sample_lognormal() and the stdlib's lognormvariate /
        # normalvariate (Kinderman–Monahan) are inlined — one draw per
        # request executed, three Python frames otherwise. Identical
        # float operation order keeps the draws bit-identical.
        if p99 <= median:
            return median
        mu = math.log(median)
        sigma = (math.log(p99) - mu) / Z_P99
        rand = rng.random
        while True:
            u1 = rand()
            u2 = 1.0 - rand()
            z = NV_MAGICCONST * (u1 - 0.5) / u2
            if z * z / 4.0 <= -math.log(u2):
                break
        return math.exp(mu + z * sigma)

    def sample_failure(self, rng, now: float) -> bool:
        """Whether this request fails, per the current failure probability."""
        series = self.failure_prob
        prob = series._values[0] if series._constant else series.value_at(now)
        if prob <= 0.0:
            return False
        return rng.random() < prob


def scaled_series(multiplier: PiecewiseSeries, base: float) -> PiecewiseSeries:
    """``base * multiplier(t)`` as a new series (same points and period)."""
    points = [(t, v * base) for t, v in multiplier.points()]
    return PiecewiseSeries(points, period_s=multiplier.period_s)


def pulse_series(rng, duration_s: float, *, spacing_s: float = 10.0,
                 pulse_prob: float = 0.08, pulse_lo: float = 2.0,
                 pulse_hi: float = 5.0, base: float = 1.0,
                 period_s: float | None = None) -> PiecewiseSeries:
    """A multiplier series that is ``base`` with occasional raised pulses.

    Models transient degradation episodes (noisy neighbours, throttling):
    each control point independently enters a pulse with ``pulse_prob``,
    holding a multiplier drawn from ``[pulse_lo, pulse_hi]``.
    """
    if duration_s <= 0:
        raise ConfigError(f"duration must be positive: {duration_s}")
    n = max(int(duration_s / spacing_s), 2)
    values = []
    for _ in range(n):
        if rng.random() < pulse_prob:
            values.append(base * rng.uniform(pulse_lo, pulse_hi))
        else:
            values.append(base)
    points = [(i * spacing_s, v) for i, v in enumerate(values)]
    return PiecewiseSeries(points, period_s=period_s or duration_s)


def constant_backend_profile(median_s: float, p99_s: float,
                             failure_prob: float = 0.0) -> BackendProfile:
    """A backend whose behaviour never changes — handy for tests."""
    return BackendProfile(
        median_latency_s=constant_series(median_s),
        p99_latency_s=constant_series(p99_s),
        failure_prob=constant_series(failure_prob),
    )
