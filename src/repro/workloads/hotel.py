"""The DeathStarBench hotel-reservation application (paper §5.1, Fig. 9).

Eight microservices plus their caches and databases, modelled after the
hotelReservation benchmark of the DeathStarBench suite: a frontend fans
out to search (which consults geo and rate in parallel), profile,
recommendation, user and reservation services; rate, profile and
reservation read through memcached with MongoDB fall-through; geo,
recommendation and user hit MongoDB directly.

The request mix follows the suite's wrk2 script: ~60 % hotel searches,
~39 % recommendations, ~0.5 % user logins, ~0.5 % reservations.

Caches and databases are stateful and therefore cluster-local
(``local_only``); every *stateless* service-to-service hop is balanced
between clusters by the algorithm under test — matching the paper's setup
where "outgoing requests from any of the microservices to other
microservices are distributed within all clusters according to the load
balancing algorithm".

Service times are synthetic (the suite's real times depend on hardware)
but sized so that, with the paper's ~10 ms inter-cluster delay, the
end-to-end P99 lands in the same double-digit-millisecond regime as
Fig. 9, and replica capacities are sized so the system saturates around
1000 total RPS, as §5.3.1 reports for the paper's environment.
"""

from __future__ import annotations

import typing

from repro.workloads.profiles import PiecewiseSeries, pulse_series
from repro.workloads.callgraph import (
    CachedRead,
    CallGraphApp,
    EndpointSpec,
    ParallelCalls,
    ServiceSpec,
    deploy_callgraph_services,
)

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.mesh.mesh import ServiceMesh

# --------------------------------------------------------------------- #
# Service inventory
# --------------------------------------------------------------------- #


def hotel_service_specs() -> dict[str, ServiceSpec]:
    """The hotel-reservation services, caches, and databases."""
    ms = 1e-3
    # Sub-millisecond to low-millisecond compute: the suite's Go services
    # are fast, so the ~10 ms inter-cluster delay dominates each remote
    # hop — that dominance is what latency-aware routing exploits.
    specs = [
        # The frontend is pinned to the client's cluster (3 replicas serve
        # *all* offered load); 12 concurrent requests per replica at
        # ~30 ms end-to-end hold time puts its saturation near 1000 RPS —
        # where §5.3.1 reports the suite saturating at the paper's scale.
        ServiceSpec("frontend", 0.5 * ms, 1.5 * ms,
                    replica_capacity=12),
        ServiceSpec("search", 0.5 * ms, 1.5 * ms, replica_capacity=4, stages=(
            ParallelCalls(("geo", "rate")),
        )),
        ServiceSpec("geo", 0.8 * ms, 2.5 * ms, replica_capacity=4, stages=(
            ParallelCalls(("mongodb-geo",)),
        )),
        ServiceSpec("rate", 0.5 * ms, 1.5 * ms, replica_capacity=4, stages=(
            CachedRead("memcached-rate", "mongodb-rate", hit_prob=0.8),
        )),
        ServiceSpec("profile", 0.5 * ms, 1.5 * ms, replica_capacity=4, stages=(
            CachedRead("memcached-profile", "mongodb-profile", hit_prob=0.9),
        )),
        ServiceSpec("recommendation", 0.7 * ms, 2.0 * ms, replica_capacity=4, stages=(
            ParallelCalls(("mongodb-recommendation",)),
        )),
        ServiceSpec("user", 0.3 * ms, 1.0 * ms, replica_capacity=4, stages=(
            ParallelCalls(("mongodb-user",)),
        )),
        ServiceSpec("reservation", 0.5 * ms, 1.5 * ms, replica_capacity=4, stages=(
            CachedRead("memcached-reservation", "mongodb-reservation",
                       hit_prob=0.7),
        )),
        # Stateful tier: cluster-local, fast caches, document DBs with
        # heavier tails (the paper notes a slow database can add an order
        # of magnitude more latency than the WAN — the tails below give
        # the P99 its database component).
        ServiceSpec("memcached-rate", 0.1 * ms, 0.3 * ms, local_only=True,
                    replica_capacity=64),
        ServiceSpec("memcached-profile", 0.1 * ms, 0.3 * ms, local_only=True,
                    replica_capacity=64),
        ServiceSpec("memcached-reservation", 0.1 * ms, 0.3 * ms,
                    local_only=True, replica_capacity=64),
        ServiceSpec("mongodb-geo", 1.0 * ms, 3.0 * ms, local_only=True),
        ServiceSpec("mongodb-rate", 1.0 * ms, 3.0 * ms, local_only=True),
        ServiceSpec("mongodb-profile", 1.0 * ms, 3.0 * ms, local_only=True),
        ServiceSpec("mongodb-recommendation", 1.0 * ms, 3.0 * ms,
                    local_only=True),
        ServiceSpec("mongodb-user", 0.8 * ms, 2.5 * ms, local_only=True),
        ServiceSpec("mongodb-reservation", 1.2 * ms, 4.0 * ms,
                    local_only=True),
    ]
    return {spec.name: spec for spec in specs}


def hotel_endpoints() -> tuple[EndpointSpec, ...]:
    """The wrk2 mixed-workload request types and their weights."""
    return (
        EndpointSpec("search-hotel", 60.0, stages=(
            ParallelCalls(("search",)),
            ParallelCalls(("profile",)),
        )),
        EndpointSpec("recommend", 39.0, stages=(
            ParallelCalls(("recommendation",)),
            ParallelCalls(("profile",)),
        )),
        EndpointSpec("user-login", 0.5, stages=(
            ParallelCalls(("user",)),
        )),
        EndpointSpec("reserve", 0.5, stages=(
            ParallelCalls(("user",)),
            ParallelCalls(("reservation",)),
        )),
    )


def hotel_cluster_noise(clusters, duration_s: float = 1800.0,
                        seed: int = 0x407E1) -> dict:
    """Per-cluster transient degradation episodes for the hotel deployment.

    EC2 clusters are not steady: noisy neighbours and CPU throttling cause
    intermittent, *tail-heavy* slowdowns — the median barely moves while
    the P99 inflates severely (the §5.3.1 environment where tail-driven
    weighting pays off). Each cluster gets an independent pulse train:
    pulses multiply the P99 by 4-9x and the median by ~2-3.4x,
    enough to drive transient queue build-up at moderate utilisation.
    """
    import random

    rng = random.Random(seed)
    noise = {}
    for cluster in clusters:
        p99_mult = pulse_series(
            rng, duration_s, spacing_s=15.0, pulse_prob=0.10,
            pulse_lo=4.0, pulse_hi=9.0)
        # The median pulses at the same instants, much more mildly.
        median_mult = PiecewiseSeries(
            [(t, 1.0 + (v - 1.0) * 0.30) for t, v in p99_mult.points()],
            period_s=p99_mult.period_s)
        noise[cluster] = (median_mult, p99_mult)
    return noise


def build_hotel_application(mesh: "ServiceMesh", client_cluster: str,
                            balancer_factory, rng,
                            with_cluster_noise: bool = True) -> CallGraphApp:
    """Deploy the hotel-reservation app on ``mesh`` and return it.

    Args:
        mesh: target mesh (services are deployed into every cluster).
        client_cluster: where the benchmark client runs (requests enter
            the cluster-local frontend, as in the paper).
        balancer_factory: ``f(service, backend_names, source_cluster) ->
            Balancer`` for the stateless multi-cluster hops.
        rng: random stream for the endpoint mix and cache hits.
        with_cluster_noise: apply the per-cluster transient degradation
            episodes of :func:`hotel_cluster_noise` (on by default; turn
            off for a perfectly steady environment).
    """
    specs = hotel_service_specs()
    noise = (hotel_cluster_noise(list(mesh.clusters))
             if with_cluster_noise else None)
    deploy_callgraph_services(mesh, specs, cluster_noise=noise)
    return CallGraphApp(
        mesh, specs, hotel_endpoints(), root_service="frontend",
        client_cluster=client_cluster, balancer_factory=balancer_factory,
        rng=rng)
