"""Open-loop load generation (the paper uses wrk2, a constant-throughput
client with correct latency recording).

Open loop means the request schedule never waits for responses: each
request is dispatched as its own simulation process at its *intended* send
time, and latency is measured from that intended time — so a slow backend
cannot slow the load down and thereby hide its own badness (the
coordinated-omission artefact wrk2 exists to fix).
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.workloads.profiles import PiecewiseSeries, constant_series

_ARRIVALS = ("uniform", "poisson")


class OpenLoopLoadGenerator:
    """Generates requests against a dispatch target at a (time-varying) rate.

    Args:
        target: anything with a ``dispatch(intended_start_s)`` simulation
            generator returning a
            :class:`~repro.mesh.request.RequestRecord` (a
            :class:`~repro.mesh.proxy.ClientProxy`, or a call-graph app
            entry point).
        rps: offered load; a float or a :class:`PiecewiseSeries`.
        rng: private random stream (Poisson gaps).
        records: list that completed request records are appended to.
        arrival: ``"uniform"`` for wrk2-style constant spacing,
            ``"poisson"`` for exponential inter-arrivals.
    """

    def __init__(self, target, rps, rng, records: list,
                 arrival: str = "uniform"):
        if arrival not in _ARRIVALS:
            raise ConfigError(
                f"arrival must be one of {_ARRIVALS}: {arrival!r}")
        if isinstance(rps, (int, float)):
            rps = constant_series(float(rps))
        if not isinstance(rps, PiecewiseSeries):
            raise ConfigError(f"rps must be a number or series: {rps!r}")
        self.target = target
        self.rps = rps
        self.rng = rng
        self.records = records
        self.arrival = arrival
        self.generated = 0

    def _gap(self, now: float) -> float:
        series = self.rps
        rate = series._values[0] if series._constant else series.value_at(now)
        if rate < 1e-9:
            rate = 1e-9
        if self.arrival == "poisson":
            return self.rng.expovariate(rate)
        return 1.0 / rate

    def _one_request(self, intended_start: float):
        record = yield from self.target.dispatch(intended_start)
        self.records.append(record)

    def run(self, sim, duration_s: float):
        """Generator process emitting requests for ``duration_s`` seconds.

        In-flight requests at the deadline are left to complete on their
        own; only requests *started* within the window are generated.
        """
        if duration_s <= 0:
            raise ConfigError(f"duration must be positive: {duration_s}")
        deadline = sim.now + duration_s
        while True:
            gap = self._gap(sim.now)
            if sim.now + gap >= deadline:
                return
            yield sim.timeout(gap)
            intended = sim.now
            sim.spawn(self._one_request(intended),
                      name=f"request-{self.generated}")
            self.generated += 1

    def start_fast(self, sim, duration_s: float, dispatcher) -> None:
        """Drive the same schedule through a callback dispatcher.

        The fast-path twin of :meth:`run`: instead of one generator
        process yielding a fresh timeout per arrival, a
        :class:`_FastArrivals` driver pre-draws inter-arrival gaps in
        chunks from the same private random stream (same draws, same
        order — the schedule is a pure function of the load series and
        the stream) and emits each arrival as one pooled callback.

        Args:
            dispatcher: a callback-mode request engine — anything with
                ``dispatch(intended_start_s)`` (non-generator) and a
                ``fast`` :class:`~repro.sim.fastpath.FastPath`, i.e. a
                :class:`~repro.mesh.fastdispatch.FastRequestEngine`.
        """
        if duration_s <= 0:
            raise ConfigError(f"duration must be positive: {duration_s}")
        _FastArrivals(self, sim, dispatcher, duration_s)


class _FastArrivals:
    """Chunked pre-drawn open-loop arrivals for the fast-path engine.

    Event-order mirror of :meth:`OpenLoopLoadGenerator.run`: one delay-0
    bootstrap hop (the spawned process's bootstrap event), then per
    arrival the request's dispatch hop enters the agenda *before* the
    next arrival's timeout — the generator loop's exact insertion order,
    so heap tie-breaks are unchanged.

    Gap values are identical too: the trajectory ``t += gap(t)`` uses the
    same float accumulation the simulator clock performs, so every
    ``rps.value_at`` query and every Poisson draw sees the exact times
    the generator engine would, just drawn ``CHUNK`` at a time instead of
    one per wakeup. The terminal draw that crosses the deadline is
    consumed and discarded, as the generator's final loop iteration does.
    """

    CHUNK = 1024

    __slots__ = ("loadgen", "sim", "dispatcher", "duration_s", "deadline",
                 "_sched", "_gap_of", "_gaps", "_index", "_trajectory_t",
                 "_exhausted", "_boot_cb", "_tick_cb")

    def __init__(self, loadgen, sim, dispatcher, duration_s: float):
        self.loadgen = loadgen
        self.sim = sim
        self.dispatcher = dispatcher
        self.duration_s = duration_s
        self.deadline = 0.0
        self._sched = dispatcher.fast.pool.schedule
        # A vector engine may supply a batched gap sampler (numpy block
        # draws, bit-identical to the scalar stream); everything else
        # uses the loadgen's scalar _gap.
        maker = getattr(dispatcher, "make_gap_sampler", None)
        gap_of = maker(loadgen) if maker is not None else None
        self._gap_of = loadgen._gap if gap_of is None else gap_of
        self._gaps: list = []
        self._index = 0
        self._trajectory_t = 0.0
        self._exhausted = False
        self._boot_cb = self._boot
        self._tick_cb = self._tick
        # Mirror of the loadgen process's bootstrap event.
        self._sched(0.0, self._boot_cb)

    def _boot(self) -> None:
        now = self.sim.now
        self.deadline = now + self.duration_s
        self._trajectory_t = now
        self._schedule_next()

    def _refill(self) -> None:
        gap_of = self._gap_of
        t = self._trajectory_t
        deadline = self.deadline
        gaps = self._gaps
        gaps.clear()
        self._index = 0
        for _ in range(self.CHUNK):
            gap = gap_of(t)
            if t + gap >= deadline:
                # The generator draws this terminal gap and returns
                # without using it; consuming it keeps the stream aligned.
                self._exhausted = True
                break
            t = t + gap
            gaps.append(gap)
        self._trajectory_t = t

    def _schedule_next(self) -> None:
        if self._index >= len(self._gaps):
            if self._exhausted:
                return
            self._refill()
            if self._index >= len(self._gaps):
                return
        gap = self._gaps[self._index]
        self._index += 1
        self._sched(gap, self._tick_cb)

    def _tick(self) -> None:
        # sim.now is exactly the scheduled arrival time: the agenda stores
        # now + gap, the same accumulation _refill performed.
        self.dispatcher.dispatch(self.sim.now)
        self.loadgen.generated += 1
        # _schedule_next() inlined — this hop fires once per request.
        index = self._index
        gaps = self._gaps
        if index >= len(gaps):
            if self._exhausted:
                return
            self._refill()
            index = 0
            gaps = self._gaps
            if not gaps:
                return
        self._index = index + 1
        self._sched(gaps[index], self._tick_cb)
