"""Open-loop load generation (the paper uses wrk2, a constant-throughput
client with correct latency recording).

Open loop means the request schedule never waits for responses: each
request is dispatched as its own simulation process at its *intended* send
time, and latency is measured from that intended time — so a slow backend
cannot slow the load down and thereby hide its own badness (the
coordinated-omission artefact wrk2 exists to fix).
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.workloads.profiles import PiecewiseSeries, constant_series

_ARRIVALS = ("uniform", "poisson")


class OpenLoopLoadGenerator:
    """Generates requests against a dispatch target at a (time-varying) rate.

    Args:
        target: anything with a ``dispatch(intended_start_s)`` simulation
            generator returning a
            :class:`~repro.mesh.request.RequestRecord` (a
            :class:`~repro.mesh.proxy.ClientProxy`, or a call-graph app
            entry point).
        rps: offered load; a float or a :class:`PiecewiseSeries`.
        rng: private random stream (Poisson gaps).
        records: list that completed request records are appended to.
        arrival: ``"uniform"`` for wrk2-style constant spacing,
            ``"poisson"`` for exponential inter-arrivals.
    """

    def __init__(self, target, rps, rng, records: list,
                 arrival: str = "uniform"):
        if arrival not in _ARRIVALS:
            raise ConfigError(
                f"arrival must be one of {_ARRIVALS}: {arrival!r}")
        if isinstance(rps, (int, float)):
            rps = constant_series(float(rps))
        if not isinstance(rps, PiecewiseSeries):
            raise ConfigError(f"rps must be a number or series: {rps!r}")
        self.target = target
        self.rps = rps
        self.rng = rng
        self.records = records
        self.arrival = arrival
        self.generated = 0

    def _gap(self, now: float) -> float:
        rate = max(self.rps.value_at(now), 1e-9)
        if self.arrival == "poisson":
            return self.rng.expovariate(rate)
        return 1.0 / rate

    def _one_request(self, intended_start: float):
        record = yield from self.target.dispatch(intended_start)
        self.records.append(record)

    def run(self, sim, duration_s: float):
        """Generator process emitting requests for ``duration_s`` seconds.

        In-flight requests at the deadline are left to complete on their
        own; only requests *started* within the window are generated.
        """
        if duration_s <= 0:
            raise ConfigError(f"duration must be positive: {duration_s}")
        deadline = sim.now + duration_s
        while True:
            gap = self._gap(sim.now)
            if sim.now + gap >= deadline:
                return
            yield sim.timeout(gap)
            intended = sim.now
            sim.spawn(self._one_request(intended),
                      name=f"request-{self.generated}")
            self.generated += 1
