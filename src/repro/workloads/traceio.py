"""Scenario serialization: save and load traces as JSON.

The paper's scenarios are recordings of production traffic; this module
makes ours behave the same way — a :class:`Scenario` round-trips through a
plain JSON document, so users can export the synthetic traces, edit them,
or feed in their own production captures (the TIER Mobility substitution
path documented in DESIGN.md).
"""

from __future__ import annotations

import dataclasses
import json
import pathlib

from repro.errors import ConfigError
from repro.workloads.profiles import BackendProfile, PiecewiseSeries
from repro.workloads.scenarios import Scenario

FORMAT_VERSION = 1


def _series_to_dict(series: PiecewiseSeries) -> dict:
    points = series.points()
    return {
        "times": [t for t, _v in points],
        "values": [v for _t, v in points],
        "period_s": series.period_s,
    }


def _series_from_dict(data: dict) -> PiecewiseSeries:
    times = data.get("times")
    values = data.get("values")
    if not isinstance(times, list) or not isinstance(values, list):
        raise ConfigError("series needs 'times' and 'values' lists")
    if len(times) != len(values):
        raise ConfigError(
            f"series length mismatch: {len(times)} times, "
            f"{len(values)} values")
    return PiecewiseSeries(zip(times, values), period_s=data.get("period_s"))


def _topology_to_dict(topology) -> dict:
    doc = {
        "replicas": dict(topology.replicas),
        "capacities": dict(topology.capacities),
        # JSON keys must be strings; encode the directed pair as "src dst"
        # (cluster names cannot contain spaces in this codebase).
        "links": {f"{src} {dst}": dataclasses.asdict(link)
                  for (src, dst), link in topology.links.items()},
    }
    # Full FleetTopology instances carry fleet-generator metadata; the
    # minimal elasticity topologies carry only the three keys above.
    client_cluster = getattr(topology, "client_cluster", None)
    if client_cluster is not None:
        doc["client_cluster"] = client_cluster
        doc["zipf_weight"] = dict(topology.zipf_weight)
        doc["rps_share"] = dict(topology.rps_share)
    return doc


def _topology_from_dict(data: dict):
    # Imported here: fleet.py imports scenarios.py, and this module is
    # the only traceio→fleet edge, so a module-level import would be a
    # needless import-order hazard.
    from repro.mesh.network import WanLink
    from repro.workloads.fleet import FleetTopology
    from repro.workloads.scenarios import _ElasticTopology

    links = {}
    for pair, link_data in data["links"].items():
        src, _, dst = pair.partition(" ")
        if not dst:
            raise ConfigError(f"malformed link pair: {pair!r}")
        links[(src, dst)] = WanLink(**link_data)
    replicas = {k: int(v) for k, v in data["replicas"].items()}
    capacities = {k: int(v) for k, v in data["capacities"].items()}
    if data.get("client_cluster") is None:
        return _ElasticTopology(
            replicas=replicas, capacities=capacities, links=links)
    return FleetTopology(
        replicas=replicas,
        capacities=capacities,
        links=links,
        zipf_weight=dict(data["zipf_weight"]),
        rps_share=dict(data["rps_share"]),
        client_cluster=data["client_cluster"],
    )


def _autoscale_to_dict(policies: dict) -> dict:
    return {cluster: dataclasses.asdict(policy)
            for cluster, policy in policies.items()}


def _autoscale_from_dict(data: dict) -> dict:
    from repro.autoscale.policy import AutoscalePolicy

    policies = {}
    for cluster, fields in data.items():
        try:
            policies[cluster] = AutoscalePolicy(**fields)
        except TypeError as error:
            raise ConfigError(
                f"bad autoscale policy for {cluster!r}: {error}") from None
    return policies


def scenario_to_dict(scenario: Scenario) -> dict:
    """Serialise a scenario to a JSON-compatible dict."""
    doc = {
        "format_version": FORMAT_VERSION,
        "name": scenario.name,
        "duration_s": scenario.duration_s,
        "description": scenario.description,
        "rps": _series_to_dict(scenario.rps),
        "clusters": {
            cluster: {
                "median_latency_s": _series_to_dict(
                    profile.median_latency_s),
                "p99_latency_s": _series_to_dict(profile.p99_latency_s),
                "failure_prob": _series_to_dict(profile.failure_prob),
                "failure_latency_s": profile.failure_latency_s,
            }
            for cluster, profile in scenario.cluster_profiles.items()
        },
    }
    if scenario.topology is not None:
        doc["topology"] = _topology_to_dict(scenario.topology)
    if scenario.autoscale is not None:
        doc["autoscale"] = _autoscale_to_dict(scenario.autoscale)
    if scenario.faults:
        from repro.faults import fault_to_dict

        doc["faults"] = [fault_to_dict(fault) for fault in scenario.faults]
    return doc


def scenario_from_dict(data: dict) -> Scenario:
    """Rebuild a scenario from :func:`scenario_to_dict` output."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ConfigError(
            f"unsupported trace format version: {version!r} "
            f"(expected {FORMAT_VERSION})")
    clusters = data.get("clusters")
    if not clusters:
        raise ConfigError("a scenario needs at least one cluster")
    profiles = {}
    for cluster, profile_data in clusters.items():
        profiles[cluster] = BackendProfile(
            median_latency_s=_series_from_dict(
                profile_data["median_latency_s"]),
            p99_latency_s=_series_from_dict(profile_data["p99_latency_s"]),
            failure_prob=_series_from_dict(profile_data["failure_prob"]),
            failure_latency_s=profile_data.get("failure_latency_s", 0.05),
        )
    topology_data = data.get("topology")
    autoscale_data = data.get("autoscale")
    faults = []
    if data.get("faults"):
        from repro.faults import fault_from_dict

        faults = [fault_from_dict(entry) for entry in data["faults"]]
    return Scenario(
        name=data["name"],
        duration_s=float(data["duration_s"]),
        cluster_profiles=profiles,
        rps=_series_from_dict(data["rps"]),
        description=data.get("description", ""),
        faults=faults,
        topology=(None if topology_data is None
                  else _topology_from_dict(topology_data)),
        autoscale=(None if autoscale_data is None
                   else _autoscale_from_dict(autoscale_data)),
    )


def save_scenario(scenario: Scenario, path) -> None:
    """Write a scenario to ``path`` as JSON."""
    path = pathlib.Path(path)
    path.write_text(
        json.dumps(scenario_to_dict(scenario), indent=2) + "\n",
        encoding="utf-8")


def load_scenario(path) -> Scenario:
    """Load a scenario saved by :func:`save_scenario`."""
    path = pathlib.Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise ConfigError(f"not a valid trace file: {path}") from error
    return scenario_from_dict(data)
