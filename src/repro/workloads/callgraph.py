"""Generic microservice call-graph execution over the mesh.

A call-graph application is a set of services, each with its own compute
time and a sequence of *stages* it runs while serving a request: a stage
either fans out to downstream services in parallel, or performs a cached
read (hit the cache, fall through to the database on a miss). Entry points
(endpoints) define per-request-type flows at the root service, selected by
weight — modelling a wrk2 script's request mix.

Every service-to-service hop goes through a client-side proxy, so every
hop is load-balanced between clusters by the algorithm under test — except
services marked ``local_only`` (stateful caches/databases), which pin to
the caller's cluster, as the paper's deployment does implicitly by having
stateful backends per cluster.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.balancers.static_weights import StaticWeightBalancer
from repro.errors import ConfigError, MeshError
from repro.mesh.cluster import backend_name
from repro.workloads.profiles import constant_backend_profile


@dataclass(frozen=True)
class ParallelCalls:
    """One stage: call these services concurrently, wait for all."""

    services: tuple[str, ...]

    def __post_init__(self):
        if not self.services:
            raise ConfigError("a parallel stage needs at least one service")


@dataclass(frozen=True)
class CachedRead:
    """One stage: read through a cache with fall-through to a database."""

    cache: str
    db: str
    hit_prob: float = 0.8

    def __post_init__(self):
        if not 0.0 <= self.hit_prob <= 1.0:
            raise ConfigError(f"hit prob must be in [0, 1]: {self.hit_prob}")


@dataclass(frozen=True)
class ServiceSpec:
    """Static description of one microservice.

    Attributes:
        name: service name.
        cpu_median_s / cpu_p99_s: the service's own compute time
            distribution (log-normal pinned at these percentiles).
        stages: downstream work performed while serving a request.
        local_only: pin calls to this service to the caller's cluster
            (stateful caches and databases).
        replicas: replicas per cluster.
        replica_capacity: concurrent requests per replica — the lever that
            creates saturation at high RPS (paper §5.3.1: ~1000 RPS
            saturates the hotel services at their scale).
    """

    name: str
    cpu_median_s: float
    cpu_p99_s: float
    stages: tuple = ()
    local_only: bool = False
    replicas: int = 3
    replica_capacity: int = 16


@dataclass(frozen=True)
class EndpointSpec:
    """One request type of the workload mix (a wrk2 script branch)."""

    name: str
    weight: float
    stages: tuple

    def __post_init__(self):
        if self.weight <= 0:
            raise ConfigError(f"endpoint weight must be > 0: {self.weight}")


class CallGraphApp:
    """A deployed call-graph application bound to one client cluster.

    Implements the load-generator target protocol (``dispatch``): each
    dispatched request picks an endpoint by weight, enters the root
    service in the client's cluster, and flows through the graph with
    every non-local hop balanced by the algorithm under test.
    """

    def __init__(self, mesh, services: dict[str, ServiceSpec],
                 endpoints, root_service: str, client_cluster: str,
                 balancer_factory, rng):
        """Args:
            mesh: a :class:`~repro.mesh.mesh.ServiceMesh` with every
                service in ``services`` already deployed.
            services: service name → spec.
            endpoints: iterable of :class:`EndpointSpec`.
            root_service: where requests enter (pinned to client cluster,
                as the paper's benchmark client hits the cluster-local
                frontend).
            client_cluster: the cluster the benchmark client runs in.
            balancer_factory: ``f(service, backend_names, source_cluster)
                -> Balancer`` building the multi-cluster balancer for one
                (destination service, source cluster) pair — each cluster
                runs its own controller instance, as the paper intends.
            rng: private random stream (endpoint mix, cache hits).
        """
        self.mesh = mesh
        self.services = dict(services)
        self.endpoints = list(endpoints)
        if not self.endpoints:
            raise ConfigError("an application needs at least one endpoint")
        if root_service not in self.services:
            raise ConfigError(f"unknown root service: {root_service!r}")
        self.root_service = root_service
        self.client_cluster = client_cluster
        self.rng = rng
        self._endpoint_total = sum(e.weight for e in self.endpoints)
        self._balancer_factory = balancer_factory
        self._shared_balancers: dict[str, object] = {}
        self._proxies: dict[tuple[str, str], object] = {}
        self.balancers: list = []

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #

    def _balancer_for(self, service: str, source_cluster: str):
        spec = self.services.get(service)
        if spec is None:
            raise MeshError(f"call to undeclared service {service!r}")
        if spec.local_only or service == self.root_service:
            # Pinned: the root is entered locally; stateful services are
            # always the caller's cluster-local instance.
            pin = source_cluster if spec.local_only else self.client_cluster
            return StaticWeightBalancer({backend_name(service, pin): 1.0})
        key = (service, source_cluster)
        balancer = self._shared_balancers.get(key)
        if balancer is None:
            names = self.mesh.deployment(service).backend_names()
            balancer = self._balancer_factory(service, names, source_cluster)
            self._shared_balancers[key] = balancer
            self.balancers.append(balancer)
        return balancer

    def _proxy(self, source_cluster: str, service: str):
        key = (source_cluster, service)
        proxy = self._proxies.get(key)
        if proxy is None:
            proxy = self.mesh.client_proxy(
                source_cluster, service,
                self._balancer_for(service, source_cluster))
            self._proxies[key] = proxy
        return proxy

    def prewire(self) -> None:
        """Eagerly create every proxy the graph can use.

        Proxies are otherwise created on first use; telemetry must be
        registered with the scraper *before* traffic flows, so benchmark
        set-up calls this right after construction.
        """
        clusters = list(self.mesh.clusters)
        self._proxy(self.client_cluster, self.root_service)
        for service, spec in self.services.items():
            if service == self.root_service:
                continue
            for cluster in clusters:
                self._proxy(cluster, service)

    def start(self, sim) -> None:
        """Start all balancer control loops (L3/C3 reconcilers)."""
        for balancer in self.balancers:
            balancer.start(sim)

    def stop(self) -> None:
        for balancer in self.balancers:
            balancer.stop()

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def _pick_endpoint(self) -> EndpointSpec:
        threshold = self.rng.random() * self._endpoint_total
        running = 0.0
        for endpoint in self.endpoints:
            running += endpoint.weight
            if threshold < running:
                return endpoint
        return self.endpoints[-1]

    def dispatch(self, intended_start_s: float | None = None):
        """Run one request of the weighted endpoint mix end to end."""
        endpoint = self._pick_endpoint()
        record = yield from self._call(
            self.root_service, self.client_cluster,
            stages_override=endpoint.stages,
            intended_start_s=intended_start_s)
        return record

    def _call(self, service: str, source_cluster: str,
              stages_override=None, intended_start_s=None):
        """Invoke ``service`` from ``source_cluster`` through its proxy."""
        spec = self.services[service]
        stages = spec.stages if stages_override is None else stages_override

        def body_factory(target_cluster: str):
            if not stages:
                return None
            return lambda: self._run_stages(stages, target_cluster)

        proxy = self._proxy(source_cluster, service)
        record = yield from proxy.dispatch(
            intended_start_s=intended_start_s, body_factory=body_factory)
        return record

    def _run_stages(self, stages, cluster: str):
        """Execute a service body: its downstream stages, in order."""
        sim = self.mesh.sim
        ok = True
        for stage in stages:
            if isinstance(stage, ParallelCalls):
                if len(stage.services) == 1:
                    record = yield from self._call(
                        stage.services[0], cluster)
                    ok = ok and record.success
                else:
                    procs = [
                        sim.spawn(self._call(child, cluster),
                                  name=f"call/{child}")
                        for child in stage.services
                    ]
                    yield sim.all_of(procs)
                    ok = ok and all(p.value.success for p in procs)
            elif isinstance(stage, CachedRead):
                record = yield from self._call(stage.cache, cluster)
                ok = ok and record.success
                if self.rng.random() >= stage.hit_prob:
                    record = yield from self._call(stage.db, cluster)
                    ok = ok and record.success
            else:
                raise ConfigError(f"unknown stage type: {stage!r}")
        return ok


def deploy_callgraph_services(mesh, services: dict[str, ServiceSpec],
                              cluster_noise: dict | None = None) -> None:
    """Deploy every service of a call graph into every mesh cluster.

    Args:
        mesh: target mesh.
        services: specs to deploy.
        cluster_noise: optional cluster → ``(median_series, p99_series)``
            multiplier pair applied to every service in that cluster —
            models transient per-cluster degradation (noisy neighbours,
            CPU throttling) that inflates the tail more than the median,
            the condition §5.3.1's latency-aware gains rely on.
    """
    from repro.workloads.profiles import BackendProfile, scaled_series

    clusters = list(mesh.clusters)
    cluster_noise = cluster_noise or {}
    for spec in services.values():
        profiles = {}
        for cluster in clusters:
            noise = cluster_noise.get(cluster)
            if noise is None:
                profiles[cluster] = constant_backend_profile(
                    spec.cpu_median_s, spec.cpu_p99_s)
            else:
                median_mult, p99_mult = noise
                profiles[cluster] = BackendProfile(
                    median_latency_s=scaled_series(
                        median_mult, spec.cpu_median_s),
                    p99_latency_s=scaled_series(p99_mult, spec.cpu_p99_s),
                    failure_prob=constant_backend_profile(
                        spec.cpu_median_s, spec.cpu_p99_s).failure_prob,
                )
        mesh.deploy_service(
            spec.name, profiles=profiles,
            replicas=spec.replicas,
            replica_capacity=spec.replica_capacity)
