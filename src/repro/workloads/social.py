"""The DeathStarBench social-network application (second workload app).

The paper evaluates on the suite's hotel-reservation application; the
suite's larger socialNetwork graph is included here as an additional
workload for the harness — its deeper, write-heavy call chains (compose
post → fan-out to timelines) exercise the call-graph engine and the
balancers harder than the hotel app's read-mostly mix.

Modelled after the suite's socialNetwork: a frontend (nginx) drives
compose-post, read-home-timeline and read-user-timeline endpoints over a
graph of 11 stateless services plus Redis/Memcached/MongoDB stateful
tiers (cluster-local, as all stateful services are).

The default request mix follows the suite's mixed workload: 60 % home
timeline reads, 30 % user timeline reads, 10 % compose.
"""

from __future__ import annotations

import typing

from repro.workloads.callgraph import (
    CachedRead,
    CallGraphApp,
    EndpointSpec,
    ParallelCalls,
    ServiceSpec,
    deploy_callgraph_services,
)

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.mesh.mesh import ServiceMesh


def social_service_specs() -> dict[str, ServiceSpec]:
    """The social-network services, caches and stores."""
    ms = 1e-3
    specs = [
        ServiceSpec("nginx", 0.3 * ms, 1.0 * ms, replica_capacity=16),
        # --- compose path -------------------------------------------- #
        ServiceSpec("compose-post", 0.8 * ms, 2.5 * ms, replica_capacity=6,
                    stages=(
                        ParallelCalls(("unique-id", "media", "user",
                                       "text")),
                        ParallelCalls(("post-storage",)),
                        ParallelCalls(("user-timeline",
                                       "write-home-timeline")),
                    )),
        ServiceSpec("unique-id", 0.2 * ms, 0.6 * ms, replica_capacity=6),
        ServiceSpec("media", 0.5 * ms, 1.5 * ms, replica_capacity=6),
        ServiceSpec("user", 0.3 * ms, 1.0 * ms, replica_capacity=6, stages=(
            CachedRead("memcached-user", "mongodb-user", hit_prob=0.95),
        )),
        ServiceSpec("text", 0.5 * ms, 1.5 * ms, replica_capacity=6, stages=(
            ParallelCalls(("url-shorten", "user-mention")),
        )),
        ServiceSpec("url-shorten", 0.3 * ms, 1.0 * ms, replica_capacity=6),
        ServiceSpec("user-mention", 0.3 * ms, 1.0 * ms, replica_capacity=6,
                    stages=(
                        CachedRead("memcached-user", "mongodb-user",
                                   hit_prob=0.9),
                    )),
        ServiceSpec("write-home-timeline", 0.4 * ms, 1.2 * ms,
                    replica_capacity=6, stages=(
                        ParallelCalls(("social-graph",)),
                        ParallelCalls(("redis-home-timeline",)),
                    )),
        ServiceSpec("social-graph", 0.4 * ms, 1.2 * ms, replica_capacity=6,
                    stages=(
                        CachedRead("redis-social-graph",
                                   "mongodb-social-graph", hit_prob=0.9),
                    )),
        # --- read paths ---------------------------------------------- #
        ServiceSpec("home-timeline", 0.4 * ms, 1.2 * ms, replica_capacity=6,
                    stages=(
                        ParallelCalls(("redis-home-timeline",)),
                        ParallelCalls(("post-storage",)),
                    )),
        ServiceSpec("user-timeline", 0.4 * ms, 1.2 * ms, replica_capacity=6,
                    stages=(
                        CachedRead("redis-user-timeline",
                                   "mongodb-user-timeline", hit_prob=0.8),
                        ParallelCalls(("post-storage",)),
                    )),
        ServiceSpec("post-storage", 0.4 * ms, 1.2 * ms, replica_capacity=8,
                    stages=(
                        CachedRead("memcached-post", "mongodb-post",
                                   hit_prob=0.85),
                    )),
        # --- stateful tier (cluster-local) ---------------------------- #
        ServiceSpec("redis-home-timeline", 0.15 * ms, 0.4 * ms,
                    local_only=True, replica_capacity=32),
        ServiceSpec("redis-user-timeline", 0.15 * ms, 0.4 * ms,
                    local_only=True, replica_capacity=32),
        ServiceSpec("redis-social-graph", 0.15 * ms, 0.4 * ms,
                    local_only=True, replica_capacity=32),
        ServiceSpec("memcached-user", 0.1 * ms, 0.3 * ms, local_only=True,
                    replica_capacity=32),
        ServiceSpec("memcached-post", 0.1 * ms, 0.3 * ms, local_only=True,
                    replica_capacity=32),
        ServiceSpec("mongodb-user", 1.0 * ms, 3.5 * ms, local_only=True),
        ServiceSpec("mongodb-post", 1.2 * ms, 4.0 * ms, local_only=True),
        ServiceSpec("mongodb-social-graph", 1.0 * ms, 3.5 * ms,
                    local_only=True),
        ServiceSpec("mongodb-user-timeline", 1.2 * ms, 4.0 * ms,
                    local_only=True),
    ]
    return {spec.name: spec for spec in specs}


def social_endpoints() -> tuple[EndpointSpec, ...]:
    """The suite's mixed workload: reads dominate, composes fan out."""
    return (
        EndpointSpec("read-home-timeline", 60.0, stages=(
            ParallelCalls(("home-timeline",)),
        )),
        EndpointSpec("read-user-timeline", 30.0, stages=(
            ParallelCalls(("user-timeline",)),
        )),
        EndpointSpec("compose-post", 10.0, stages=(
            ParallelCalls(("compose-post",)),
        )),
    )


def build_social_application(mesh: "ServiceMesh", client_cluster: str,
                             balancer_factory, rng) -> CallGraphApp:
    """Deploy the social-network app on ``mesh`` and return it."""
    specs = social_service_specs()
    deploy_callgraph_services(mesh, specs)
    return CallGraphApp(
        mesh, specs, social_endpoints(), root_service="nginx",
        client_cluster=client_cluster, balancer_factory=balancer_factory,
        rng=rng)
