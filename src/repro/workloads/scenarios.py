"""Synthetic equivalents of the paper's TIER Mobility trace scenarios.

The original traces are proprietary production data; the paper publishes
their *shape* — per-cluster median/P99 latency series (Figs. 1 and 6), RPS
envelopes (Fig. 2), and failure characteristics (Fig. 7a, §5.3.2 prose).
Each scenario below is synthesised to match every published
characteristic; each is generated from a fixed internal seed so
``scenario-1`` is the *same* deterministic trace in every run, exactly as
a recorded trace would be. DESIGN.md documents the substitution.

Published characteristics reproduced:

=============  ====================================================
scenario-1     median 50–100 ms (cluster-2 spikes to ~350 ms), P99
               100–950 ms, very stable ~300 RPS; strong inter-cluster
               asymmetry (one backend's median often above the
               others' P99).
scenario-2     median 3–9 ms, P99 10–100 ms with intermittent spikes
               above 2000 ms, RPS fluctuating 50–200.
scenario-3     P99 up to ~2000 ms with irregular peaks, stable median.
scenario-4     the most fluctuating tail: P99 spikes up to ~5000 ms.
scenario-5     calm: stable median (σ≈6 ms), P99 up to ~300 ms.
failure-1      scenario-1 latency + heavy failure injection: average
               success 91.4 %, per-cluster drops down to 30 %.
failure-2      scenario-2 latency + light failure injection: average
               success ~98.5 %, mostly ≈99 %, short ≤5 pp drops; the
               best backend averages 99.8 %.
elastic-surge  elasticity pair, part 1 (§3.2 autoscaling interplay):
               stable latency, a 5x RPS surge mid-trace, small fixed
               replica sets, and a per-cluster autoscale policy — the
               surge saturates the fixed-minimum fleet unless the
               autoscalers add capacity through their provisioning
               lag and cold-start warmup.
elastic-outage elasticity pair, part 2: a Fig-11-style full cluster
               outage under steady load; the survivors' in-flight
               gauges jump past the setpoint, so the weight
               controller's failover and the survivors' scale-up
               co-respond to the same telemetry.
=============  ====================================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.workloads.profiles import (
    BackendProfile,
    PiecewiseSeries,
    constant_backend_profile,
    constant_series,
)

CLUSTERS = ("cluster-1", "cluster-2", "cluster-3")

SCENARIO_NAMES = (
    "scenario-1", "scenario-2", "scenario-3", "scenario-4", "scenario-5",
    "failure-1", "failure-2", "elastic-surge", "elastic-outage",
)

# Paper trace length: randomly selected 10-minute periods (§2).
TRACE_PERIOD_S = 600.0

# Control-point spacing of the synthesised series.
_POINT_SPACING_S = 15.0


@dataclass
class Scenario:
    """One benchmark scenario: per-cluster behaviour plus offered load.

    Attributes:
        name: scenario identifier.
        duration_s: natural trace length (series wrap beyond it).
        cluster_profiles: cluster name → backend behaviour profile.
        rps: offered load series of the benchmark client.
        description: one-line summary of the published shape.
        faults: :class:`~repro.faults.base.Fault` list injected when the
            scenario runs through the benchmark coordinator; fault times
            are relative to the measured period. The built-in paper
            scenarios carry none (their failures live in the profiles'
            success-rate traces); custom resilience scenarios attach real
            faults here.
        topology: optional :class:`~repro.workloads.fleet.FleetTopology`
            describing per-cluster replica counts, capacities, and WAN
            links. ``None`` (the paper scenarios) means the coordinator's
            uniform defaults apply. Typed loosely to keep this module free
            of a fleet import.
        autoscale: optional per-cluster elasticity —
            ``{cluster: AutoscalePolicy}`` — applied when the scenario
            runs through the benchmark coordinator. ``None`` (every
            paper scenario) means fixed replica sets and a run whose
            event stream is byte-identical to autoscale-free builds.
    """

    name: str
    duration_s: float
    cluster_profiles: dict[str, BackendProfile]
    rps: PiecewiseSeries
    description: str = ""
    faults: list = field(default_factory=list)
    topology: object | None = None
    autoscale: dict | None = None

    def clusters(self) -> list[str]:
        return sorted(self.cluster_profiles)


def _bounded_walk(rng: random.Random, lo: float, hi: float, n_points: int,
                  smoothness: float = 0.35) -> list[float]:
    """A mean-reverting random walk of ``n_points`` values inside [lo, hi]."""
    mid = (lo + hi) / 2.0
    span = (hi - lo) / 2.0
    value = rng.uniform(lo, hi)
    out = []
    for _ in range(n_points):
        pull = (mid - value) * 0.2
        value += pull + rng.gauss(0.0, span * smoothness)
        value = min(max(value, lo), hi)
        out.append(value)
    return out


def _series(values, spacing_s: float = _POINT_SPACING_S,
            period_s: float = TRACE_PERIOD_S) -> PiecewiseSeries:
    points = [(i * spacing_s, v) for i, v in enumerate(values)]
    return PiecewiseSeries(points, period_s=period_s)


def _with_spikes(rng: random.Random, values, spike_prob: float,
                 multiplier_lo: float, multiplier_hi: float) -> list[float]:
    """Randomly multiply single control points (intermittent peaks)."""
    out = list(values)
    for i in range(len(out)):
        if rng.random() < spike_prob:
            out[i] *= rng.uniform(multiplier_lo, multiplier_hi)
    return out


def _n_points(duration_s: float) -> int:
    return max(int(duration_s / _POINT_SPACING_S), 2)


def _latency_profile(rng: random.Random, *, median_range, p99_ratio_range,
                     median_spike=(0.0, 1.0, 1.0), p99_spike=(0.0, 1.0, 1.0),
                     p99_peaks_s=None,
                     duration_s: float = TRACE_PERIOD_S) -> BackendProfile:
    """Build one cluster's latency profile.

    Args:
        rng: scenario-private RNG.
        median_range: (lo, hi) seconds for the median walk.
        p99_ratio_range: (lo, hi) multiplier of median giving the P99 walk.
        median_spike / p99_spike: (prob, mult_lo, mult_hi) spike injection.
        p99_peaks_s: optional (count, lo_s, hi_s) — guaranteed P99 peaks at
            random points, matching figures whose traces show definite
            spikes of a published height (e.g. Fig. 1b's >2000 ms).
        duration_s: trace length.
    """
    n = _n_points(duration_s)
    medians = _bounded_walk(rng, *median_range, n)
    medians = _with_spikes(rng, medians, *median_spike)
    ratios = _bounded_walk(rng, *p99_ratio_range, n)
    p99s = [m * r for m, r in zip(medians, ratios)]
    p99s = _with_spikes(rng, p99s, *p99_spike)
    if p99_peaks_s is not None:
        count, lo_s, hi_s = p99_peaks_s
        for index in rng.sample(range(n), min(count, n)):
            p99s[index] = rng.uniform(lo_s, hi_s)
    p99s = [max(p, m) for p, m in zip(p99s, medians)]
    return BackendProfile(
        median_latency_s=_series(medians, period_s=duration_s),
        p99_latency_s=_series(p99s, period_s=duration_s),
        failure_prob=constant_series(0.0),
    )


def _failure_series(rng: random.Random, *, base_rate_range, drop_prob,
                    drop_depth_range, drop_points=(2, 4),
                    duration_s: float = TRACE_PERIOD_S) -> PiecewiseSeries:
    """Per-request failure probability with intermittent deep drops.

    A "drop" (success-rate outage) holds for 2–4 consecutive control
    points (30–60 s) — outages are sustained episodes, long enough for a
    feedback controller with a ~15–20 s reaction loop to respond to, as
    the real incidents behind the paper's failure traces would be.
    """
    n = _n_points(duration_s)
    rates = _bounded_walk(rng, *base_rate_range, n)
    i = 0
    while i < n:
        if rng.random() < drop_prob:
            depth = rng.uniform(*drop_depth_range)
            span = rng.randint(*drop_points)
            for j in range(i, min(i + span, n)):
                rates[j] = depth
            i += span
        else:
            i += 1
    return _series([min(max(r, 0.0), 1.0) for r in rates],
                   period_s=duration_s)


# --------------------------------------------------------------------- #
# Scenario builders (one per published trace)
# --------------------------------------------------------------------- #

def _build_scenario_1(duration_s: float) -> Scenario:
    rng = random.Random(0xC1A551)
    profiles = {}
    for cluster in CLUSTERS:
        spiky = cluster == "cluster-2"  # Fig. 1a: cluster-2 median spikes
        profiles[cluster] = _latency_profile(
            rng,
            median_range=(0.050, 0.100),
            p99_ratio_range=(2.0, 9.0),
            median_spike=(0.12 if spiky else 0.02, 2.0, 3.5),
            p99_spike=(0.15, 1.2, 1.8),
            duration_s=duration_s,
        )
    rps = _series(
        _bounded_walk(rng, 285.0, 315.0, _n_points(duration_s), 0.15),
        period_s=duration_s)
    return Scenario(
        "scenario-1", duration_s, profiles, rps,
        "median 50-100 ms with cluster-2 spikes; P99 100-950 ms; ~300 RPS")


def _build_scenario_2(duration_s: float) -> Scenario:
    rng = random.Random(0xC1A552)
    profiles = {}
    for cluster in CLUSTERS:
        profiles[cluster] = _latency_profile(
            rng,
            median_range=(0.003, 0.009),
            p99_ratio_range=(3.0, 12.0),
            p99_spike=(0.05, 8.0, 20.0),
            p99_peaks_s=(2, 2.0, 2.4),  # intermittent spikes over 2000 ms
            duration_s=duration_s,
        )
    rps = _series(
        _bounded_walk(rng, 50.0, 200.0, _n_points(duration_s), 0.5),
        period_s=duration_s)
    return Scenario(
        "scenario-2", duration_s, profiles, rps,
        "median 3-9 ms; P99 10-100 ms with spikes over 2000 ms; RPS 50-200")


def _build_scenario_3(duration_s: float) -> Scenario:
    rng = random.Random(0xC1A553)
    profiles = {}
    for cluster in CLUSTERS:
        profiles[cluster] = _latency_profile(
            rng,
            median_range=(0.040, 0.070),
            p99_ratio_range=(3.0, 8.0),
            p99_spike=(0.08, 3.0, 6.0),
            p99_peaks_s=(1, 1.6, 2.0),  # irregular peaks toward 2 s
            duration_s=duration_s,
        )
    rps = _series(
        _bounded_walk(rng, 140.0, 180.0, _n_points(duration_s), 0.2),
        period_s=duration_s)
    return Scenario(
        "scenario-3", duration_s, profiles, rps,
        "stable median; P99 peaks up to ~2000 ms")


def _build_scenario_4(duration_s: float) -> Scenario:
    rng = random.Random(0xC1A554)
    profiles = {}
    for cluster in CLUSTERS:
        profiles[cluster] = _latency_profile(
            rng,
            median_range=(0.040, 0.080),
            p99_ratio_range=(3.0, 10.0),
            p99_spike=(0.12, 4.0, 9.0),
            p99_peaks_s=(2, 3.5, 5.0),  # the most fluctuating tail (~5 s)
            duration_s=duration_s,
        )
    rps = _series(
        _bounded_walk(rng, 80.0, 140.0, _n_points(duration_s), 0.4),
        period_s=duration_s)
    return Scenario(
        "scenario-4", duration_s, profiles, rps,
        "highest tail fluctuation; P99 spikes up to ~5000 ms")


def _build_scenario_5(duration_s: float) -> Scenario:
    rng = random.Random(0xC1A555)
    profiles = {}
    for cluster in CLUSTERS:
        profiles[cluster] = _latency_profile(
            rng,
            median_range=(0.028, 0.040),  # σ of medians ≈ 6 ms (paper)
            p99_ratio_range=(2.5, 6.0),
            p99_spike=(0.05, 1.3, 2.0),  # calm: P99 stays under ~300 ms
            duration_s=duration_s,
        )
    rps = _series(
        _bounded_walk(rng, 230.0, 270.0, _n_points(duration_s), 0.15),
        period_s=duration_s)
    return Scenario(
        "scenario-5", duration_s, profiles, rps,
        "calm trace: stable median, P99 below ~300 ms")


def _build_failure_1(duration_s: float) -> Scenario:
    base = _build_scenario_1(duration_s)
    rng = random.Random(0xFA1101)
    profiles = {}
    for cluster, profile in base.cluster_profiles.items():
        profiles[cluster] = BackendProfile(
            median_latency_s=profile.median_latency_s,
            p99_latency_s=profile.p99_latency_s,
            # Average success 91.4 % with per-cluster drops down to 30 %.
            failure_prob=_failure_series(
                rng, base_rate_range=(0.02, 0.12), drop_prob=0.06,
                drop_depth_range=(0.4, 0.7), duration_s=duration_s),
            failure_latency_s=profile.failure_latency_s,
        )
    return Scenario(
        "failure-1", duration_s, profiles, base.rps,
        "scenario-1 latency + heavy failures (avg 91.4 %, drops to 30 %)")


def _build_failure_2(duration_s: float) -> Scenario:
    base = _build_scenario_2(duration_s)
    rng = random.Random(0xFA1102)
    profiles = {}
    # Fig. 7a / §5.3.2: ~99 % most of the time, short drops of at most
    # 5 pp; the best backend averages 99.8 % — make cluster-3 the healthy
    # one so the success-rate ceiling the paper discusses exists.
    failure_params = {
        "cluster-1": dict(base_rate_range=(0.005, 0.03), drop_prob=0.05,
                          drop_depth_range=(0.04, 0.08)),
        "cluster-2": dict(base_rate_range=(0.005, 0.035), drop_prob=0.06,
                          drop_depth_range=(0.05, 0.10)),
        "cluster-3": dict(base_rate_range=(0.001, 0.004), drop_prob=0.01,
                          drop_depth_range=(0.01, 0.02)),
    }
    for cluster, profile in base.cluster_profiles.items():
        profiles[cluster] = BackendProfile(
            median_latency_s=profile.median_latency_s,
            p99_latency_s=profile.p99_latency_s,
            failure_prob=_failure_series(
                rng, duration_s=duration_s, **failure_params[cluster]),
            failure_latency_s=profile.failure_latency_s,
        )
    return Scenario(
        "failure-2", duration_s, profiles, base.rps,
        "scenario-2 latency + light failures (avg ~98.5 %, best 99.8 %)")


# ------------------------------------------------------------------- #
# Elasticity pair (repro.autoscale): weights x replicas co-simulation
# ------------------------------------------------------------------- #

@dataclass(frozen=True)
class _ElasticTopology:
    """Small fixed fleet for the elasticity scenarios.

    Duck-types the three :class:`~repro.workloads.fleet.FleetTopology`
    attributes the coordinator reads (``replicas``, ``capacities``,
    ``links``) without importing the fleet generator here.
    """

    replicas: dict[str, int]
    capacities: dict[str, int]
    links: dict = field(default_factory=dict)


def _elastic_profiles(duration_s: float) -> dict[str, BackendProfile]:
    """Identical stable latency everywhere: queueing is the only signal.

    Log-normal with median 80 ms / P99 240 ms gives a mean service time
    of ~89 ms, so offered-load arithmetic (Erlangs vs. replica slots) is
    exact and the elasticity contract in ``BENCH_autoscale.json`` is a
    property of the autoscaler, not of latency-trace noise.
    """
    del duration_s  # constant profiles have no trace to scale
    return {cluster: constant_backend_profile(0.080, 0.240)
            for cluster in CLUSTERS}


def _build_elastic_surge(duration_s: float) -> Scenario:
    from repro.autoscale.policy import AutoscalePolicy

    # 5x surge through the middle of the trace. At the 600 RPS plateau
    # each cluster carries ~200 RPS x ~89 ms ≈ 17.9 Erlangs against the
    # fixed-minimum 2x8 = 16 slots: saturated unless the autoscaler adds
    # replicas (max 6x8 = 48 slots). At the 120 RPS shoulders, ~3.6
    # Erlangs sit far below the 0.5 setpoint, so the scale-down path
    # (stabilization window, pending cancellation) is exercised too.
    rps = PiecewiseSeries(
        [(0.0, 120.0), (0.25 * duration_s, 120.0),
         (0.35 * duration_s, 600.0), (0.60 * duration_s, 600.0),
         (0.70 * duration_s, 120.0)],
        period_s=duration_s)
    policy = AutoscalePolicy(
        metric="inflight", target=0.5, min_replicas=2, max_replicas=6,
        interval_s=15.0, provisioning_lag_s=20.0, warmup_s=15.0,
        cold_start_factor=2.0, scale_down_stabilization_s=60.0,
        window_s=15.0)
    return Scenario(
        "elastic-surge", duration_s, _elastic_profiles(duration_s), rps,
        "stable latency; 5x RPS surge mid-trace; per-cluster autoscaling",
        topology=_ElasticTopology(
            replicas={c: 2 for c in CLUSTERS},
            capacities={c: 8 for c in CLUSTERS}),
        autoscale={cluster: policy for cluster in CLUSTERS})


def _build_elastic_outage(duration_s: float) -> Scenario:
    from repro.autoscale.policy import AutoscalePolicy
    from repro.faults.faults import ClusterOutage

    # Steady 360 RPS over 3x3x8 slots is comfortable (~10.7 Erlangs per
    # cluster). When cluster-2 drops out (Fig-11 style fail-fast outage
    # through the middle quarter of the trace), the survivors absorb
    # ~16 Erlangs each — past the 0.45 x 8 = 3.6 per-replica setpoint —
    # so the weight controller's failover and the survivors' scale-up
    # react to the same scraped gauges at the same time.
    rps = constant_series(360.0)
    policy = AutoscalePolicy(
        metric="inflight", target=0.45, min_replicas=3, max_replicas=6,
        interval_s=15.0, provisioning_lag_s=20.0, warmup_s=15.0,
        cold_start_factor=2.0, scale_down_stabilization_s=60.0,
        window_s=15.0)
    outage = ClusterOutage(
        cluster="cluster-2", at_s=0.35 * duration_s,
        duration_s=0.25 * duration_s, mode="fail_fast")
    return Scenario(
        "elastic-outage", duration_s, _elastic_profiles(duration_s), rps,
        "steady load; full cluster-2 outage; failover + scale-up co-respond",
        faults=[outage],
        topology=_ElasticTopology(
            replicas={c: 3 for c in CLUSTERS},
            capacities={c: 8 for c in CLUSTERS}),
        autoscale={cluster: policy for cluster in CLUSTERS})


_BUILDERS = {
    "scenario-1": _build_scenario_1,
    "scenario-2": _build_scenario_2,
    "scenario-3": _build_scenario_3,
    "scenario-4": _build_scenario_4,
    "scenario-5": _build_scenario_5,
    "failure-1": _build_failure_1,
    "failure-2": _build_failure_2,
    "elastic-surge": _build_elastic_surge,
    "elastic-outage": _build_elastic_outage,
}


def build_scenario(name: str,
                   duration_s: float = TRACE_PERIOD_S) -> Scenario:
    """Build the named scenario trace.

    Args:
        name: one of :data:`SCENARIO_NAMES`.
        duration_s: trace length; the paper's traces are 10 minutes, but
            benchmarks may use shorter (the series are generated at the
            same per-15 s granularity, so a 2-minute trace has the same
            character as the 10-minute one).
    """
    builder = _BUILDERS.get(name)
    if builder is None:
        raise ConfigError(
            f"unknown scenario {name!r}; expected one of {SCENARIO_NAMES}")
    if duration_s <= 0:
        raise ConfigError(f"duration must be positive: {duration_s}")
    return builder(duration_s)
