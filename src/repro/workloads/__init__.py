"""Workloads: time-varying profiles, TIER-like scenarios, load generators,
and the DeathStarBench hotel-reservation call graph."""

from repro.workloads.profiles import (
    BackendProfile,
    PiecewiseSeries,
    constant_series,
)
from repro.workloads.scenarios import (
    SCENARIO_NAMES,
    Scenario,
    build_scenario,
)
from repro.workloads.loadgen import OpenLoopLoadGenerator
from repro.workloads.hotel import build_hotel_application
from repro.workloads.social import build_social_application
from repro.workloads.callgraph import CallGraphApp, EndpointSpec, ServiceSpec
from repro.workloads.spans import Span, scenario_from_spans
from repro.workloads.traceio import load_scenario, save_scenario

__all__ = [
    "BackendProfile",
    "CallGraphApp",
    "EndpointSpec",
    "OpenLoopLoadGenerator",
    "PiecewiseSeries",
    "SCENARIO_NAMES",
    "Scenario",
    "ServiceSpec",
    "Span",
    "build_hotel_application",
    "build_scenario",
    "build_social_application",
    "constant_series",
    "load_scenario",
    "save_scenario",
    "scenario_from_spans",
]
