"""Building scenarios from distributed-tracing spans (paper §5.1).

The paper constructed its test scenarios from production traces: "we
gathered latency traces generated via distributed tracing. We recognized
that these traces encompass network delay ... so we excluded network
delay spans from the traces. As a result, we focus solely on extracting
service execution latency data."

This module reproduces that methodology: given a set of spans (the
OpenTelemetry-style ``trace_id``/``span_id``/``parent_id`` tree), it

1. computes each server span's *execution* latency by subtracting its
   direct network-delay child spans,
2. buckets execution latencies over the trace window and derives
   per-bucket median/P99 series,
3. derives the request-rate series from span counts,
4. assembles a ready-to-run :class:`~repro.workloads.scenarios.Scenario`.

So a user with real tracing data can drive the benchmark harness with
their own workload instead of the synthetic TIER equivalents.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass

from repro.analysis.percentiles import exact_percentile
from repro.errors import ConfigError
from repro.workloads.profiles import BackendProfile, PiecewiseSeries
from repro.workloads.scenarios import Scenario

# Span kinds: server spans carry service execution; network spans are the
# delay segments the paper excludes.
SERVER = "server"
NETWORK = "network"


@dataclass(frozen=True)
class Span:
    """One distributed-tracing span.

    Attributes:
        trace_id: groups the spans of one request.
        span_id: unique within the trace.
        parent_id: the parent span's id, or None for the root.
        service: emitting service (for network spans: the link label).
        cluster: cluster the span executed in.
        start_s / end_s: span boundaries in trace time.
        kind: ``"server"`` or ``"network"``.
    """

    trace_id: str
    span_id: str
    parent_id: str | None
    service: str
    cluster: str
    start_s: float
    end_s: float
    kind: str = SERVER

    def __post_init__(self):
        if self.end_s < self.start_s:
            raise ConfigError(
                f"span {self.span_id} ends before it starts")
        if self.kind not in (SERVER, NETWORK):
            raise ConfigError(f"unknown span kind: {self.kind!r}")

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


def execution_latencies(spans) -> list:
    """Per server span: ``(service, cluster, start_s, execution_s)``.

    Execution latency is the span's duration minus its *direct* network
    children — the §5.1 exclusion. Nested server children are *not*
    subtracted: the paper measures each service's observed latency
    (which includes waiting on downstream work), only stripping the WAN
    segments that would double-count topology-dependent delay.
    """
    spans = list(spans)
    children = defaultdict(list)
    for span in spans:
        if span.parent_id is not None:
            children[(span.trace_id, span.parent_id)].append(span)
    out = []
    for span in spans:
        if span.kind != SERVER:
            continue
        network_time = sum(
            child.duration_s
            for child in children[(span.trace_id, span.span_id)]
            if child.kind == NETWORK)
        execution = max(span.duration_s - network_time, 0.0)
        out.append((span.service, span.cluster, span.start_s, execution))
    return out


def _bucket_midpoint(index: int, bucket_s: float,
                     duration_s: float) -> float:
    """Midpoint of a bucket, honouring a truncated final bucket.

    The last bucket may be cut short by ``duration_s``; its control
    point must stay inside the series period or
    :class:`PiecewiseSeries` rejects it.
    """
    return (index * bucket_s + min((index + 1) * bucket_s, duration_s)) / 2.0


def _bucketed_series(samples, duration_s: float, bucket_s: float,
                     quantile: float) -> PiecewiseSeries:
    """Per-bucket quantile of (start, value) samples, as a series.

    Empty buckets inherit the previous bucket's value (a gap in traffic
    does not mean the service got faster).
    """
    n_buckets = max(int(math.ceil(duration_s / bucket_s)), 1)
    buckets = defaultdict(list)
    for start, value in samples:
        # Clamp to the last *real* bucket: spans at (or past) duration_s
        # would otherwise land one bucket beyond the series — a control
        # point outside the period, which PiecewiseSeries rejects.
        index = min(int(start / bucket_s), n_buckets - 1)
        buckets[index].append(value)
    points = []
    previous = None
    for index in range(n_buckets):
        values = buckets.get(index)
        if values:
            previous = exact_percentile(values, quantile)
        if previous is not None:
            points.append((_bucket_midpoint(index, bucket_s, duration_s),
                           previous))
    if not points:
        raise ConfigError("no samples to build a series from")
    return PiecewiseSeries(points, period_s=duration_s)


def profile_from_spans(spans, service: str, cluster: str,
                       duration_s: float,
                       bucket_s: float = 15.0) -> BackendProfile:
    """One cluster's backend profile for ``service`` from span data."""
    samples = [
        (start, execution)
        for svc, clu, start, execution in execution_latencies(spans)
        if svc == service and clu == cluster
    ]
    if not samples:
        raise ConfigError(
            f"no server spans for {service!r} in {cluster!r}")
    positive = [(s, max(v, 1e-6)) for s, v in samples]
    return BackendProfile(
        median_latency_s=_bucketed_series(
            positive, duration_s, bucket_s, 0.50),
        p99_latency_s=_bucketed_series(
            positive, duration_s, bucket_s, 0.99),
        failure_prob=PiecewiseSeries([(0.0, 0.0)]),
    )


def scenario_from_spans(spans, service: str, duration_s: float,
                        bucket_s: float = 15.0,
                        name: str | None = None) -> Scenario:
    """Assemble a runnable scenario for ``service`` from span data.

    The per-cluster latency profiles come from the execution latencies;
    the offered-load series comes from the rate of root server spans of
    ``service`` across all clusters.
    """
    spans = list(spans)
    clusters = sorted({
        span.cluster for span in spans
        if span.kind == SERVER and span.service == service
    })
    if not clusters:
        raise ConfigError(f"no server spans for service {service!r}")
    profiles = {
        cluster: profile_from_spans(
            spans, service, cluster, duration_s, bucket_s)
        for cluster in clusters
    }
    arrivals = [
        (span.start_s, 1.0) for span in spans
        if span.kind == SERVER and span.service == service
    ]
    last_bucket = max(int(math.ceil(duration_s / bucket_s)), 1) - 1
    counts = defaultdict(int)
    for start, _one in arrivals:
        counts[min(int(start / bucket_s), last_bucket)] += 1
    rps_points = [
        (_bucket_midpoint(index, bucket_s, duration_s), count / bucket_s)
        for index, count in sorted(counts.items())
    ]
    return Scenario(
        name=name or f"spans:{service}",
        duration_s=duration_s,
        cluster_profiles=profiles,
        rps=PiecewiseSeries(rps_points, period_s=duration_s),
        description=f"built from {len(spans)} spans of {service!r}",
    )
