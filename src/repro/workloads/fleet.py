"""Fleet-scale scenario generation: hundreds of clusters from one seed.

The paper's evaluation stops at three clusters; the fleet generator
synthesises topologies of 100s of clusters / 1000s of replica endpoints
with heterogeneous capacity, zipf-skewed per-cluster offered load, and a
pairwise WAN latency matrix — all drawn from a single seeded RNG, so one
``(spec, seed)`` pair is one deterministic fleet forever.

The output is an ordinary :class:`~repro.workloads.scenarios.Scenario`
(every balancer, fault spec, and figure runs on it unchanged) carrying an
optional :class:`FleetTopology` that records what the three-cluster
scenarios left implicit: per-cluster replica counts, per-replica
capacities, the WAN link matrix, and the zipf load/capacity shares. The
benchmark coordinator honours the topology when present; the sharded
engine partitions clusters along it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.mesh.network import WanLink
from repro.workloads.profiles import PiecewiseSeries
from repro.workloads.scenarios import (
    Scenario,
    _bounded_walk,
    _latency_profile,
    _n_points,
    _series,
)

# Stream of fleet seeds is namespaced away from the scenario seeds
# (0xC1A551...) so a fleet never collides with a paper trace.
_FLEET_SEED_SALT = 0xF1EE7


@dataclass(frozen=True)
class FleetTopology:
    """Per-cluster structure of a generated fleet.

    Attributes:
        replicas: cluster name → replica count (zipf-skewed capacity).
        capacities: cluster name → per-replica concurrency capacity.
        links: ``(src, dst)`` directed cluster pair → WAN link; generated
            symmetrically, local pairs omitted (the mesh's local link
            applies).
        zipf_weight: cluster name → the zipf pmf value its capacity was
            drawn from (what the chi-square property test checks against).
        rps_share: cluster name → zipf-skewed share of the offered load
            attributed to that cluster's user population (sums to 1.0).
        client_cluster: the cluster the benchmark client lives in.
    """

    replicas: dict[str, int]
    capacities: dict[str, int]
    links: dict[tuple[str, str], WanLink]
    zipf_weight: dict[str, float]
    rps_share: dict[str, float]
    client_cluster: str

    def total_endpoints(self) -> int:
        """Total replica endpoints across the fleet."""
        return sum(self.replicas.values())


@dataclass(frozen=True)
class FleetSpec:
    """Parameters of a generated fleet.

    The defaults build the committed ``BENCH_fleet.json`` reference cell:
    120 clusters, ≥1000 replica endpoints, heterogeneous capacity.
    """

    clusters: int = 120
    duration_s: float = 600.0
    total_rps: float = 3000.0
    # Zipf exponent of the capacity / load skew (s > 0; s ≈ 1 is the
    # classic web-traffic skew).
    zipf_exponent: float = 0.9
    # Every cluster gets at least min_replicas; the remaining replica
    # budget (replica_budget_per_cluster × clusters) is dealt out by
    # zipf-weighted sampling — hot clusters grow large, the tail stays
    # small.
    min_replicas: int = 2
    replica_budget_per_cluster: int = 8
    capacity_choices: tuple[int, ...] = (16, 32, 64, 128)
    # One-way WAN base delay range between cluster pairs.
    wan_delay_range_s: tuple[float, float] = (0.002, 0.080)
    # Latency character of the per-cluster profiles (scenario-2-like:
    # fast medians, occasionally spiky tails).
    median_range_s: tuple[float, float] = (0.004, 0.060)
    p99_ratio_range: tuple[float, float] = (2.0, 8.0)

    def validate(self) -> None:
        if self.clusters < 2:
            raise ConfigError(
                f"a fleet needs at least 2 clusters: {self.clusters}")
        if self.duration_s <= 0:
            raise ConfigError(
                f"fleet duration must be positive: {self.duration_s}")
        if self.total_rps <= 0:
            raise ConfigError(
                f"fleet total_rps must be positive: {self.total_rps}")
        if self.zipf_exponent <= 0:
            raise ConfigError(
                f"zipf exponent must be positive: {self.zipf_exponent}")
        if self.min_replicas < 1:
            raise ConfigError(
                f"min_replicas must be >= 1: {self.min_replicas}")
        if self.replica_budget_per_cluster < 0:
            raise ConfigError(
                "replica budget must be >= 0: "
                f"{self.replica_budget_per_cluster}")
        if not self.capacity_choices:
            raise ConfigError("capacity_choices must be non-empty")
        lo, hi = self.wan_delay_range_s
        if lo < 0 or hi < lo:
            raise ConfigError(
                f"invalid wan delay range: {self.wan_delay_range_s}")


def _cluster_names(count: int) -> list[str]:
    return [f"cluster-{i}" for i in range(1, count + 1)]


def _zipf_pmf(rng: random.Random, names: list[str],
              exponent: float) -> dict[str, float]:
    """Zipf pmf over ``names`` with ranks assigned by a seeded shuffle.

    Ranks are shuffled rather than following name order so "cluster-1"
    (where the client lives) is not systematically the hottest cluster.
    """
    ranks = list(range(1, len(names) + 1))
    rng.shuffle(ranks)
    raw = {name: 1.0 / (rank ** exponent)
           for name, rank in zip(names, ranks)}
    total = sum(raw.values())
    return {name: weight / total for name, weight in raw.items()}


def _deal_zipf_counts(rng: random.Random, pmf: dict[str, float],
                      draws: int) -> dict[str, int]:
    """Deal ``draws`` units to clusters by sampling the zipf pmf.

    Sampling (rather than rounding expected values) is what gives the
    chi-square property test a real multinomial to check.
    """
    names = list(pmf)
    cum = []
    running = 0.0
    for name in names:
        running += pmf[name]
        cum.append(running)
    counts = dict.fromkeys(names, 0)
    for _ in range(draws):
        u = rng.random() * running
        lo, hi = 0, len(cum) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if u < cum[mid]:
                hi = mid
            else:
                lo = mid + 1
        counts[names[lo]] += 1
    return counts


def build_fleet_scenario(spec: FleetSpec | None = None, *,
                         seed: int = 1) -> Scenario:
    """Generate one deterministic fleet-scale :class:`Scenario`.

    The same ``(spec, seed)`` always yields a byte-identical scenario
    (the property tests pickle two builds and compare). The returned
    scenario carries a :class:`FleetTopology`; the benchmark coordinator
    deploys per-cluster replica counts, capacities, and WAN links from it
    instead of the uniform three-cluster defaults.
    """
    if spec is None:
        spec = FleetSpec()
    spec.validate()
    rng = random.Random((_FLEET_SEED_SALT << 32) ^ seed)
    names = _cluster_names(spec.clusters)

    # --- capacity: zipf-dealt replica counts + heterogeneous slots ----- #
    zipf_weight = _zipf_pmf(rng, names, spec.zipf_exponent)
    budget = spec.replica_budget_per_cluster * spec.clusters
    dealt = _deal_zipf_counts(rng, zipf_weight, budget)
    replicas = {name: spec.min_replicas + dealt[name] for name in names}
    capacities = {name: rng.choice(spec.capacity_choices) for name in names}

    # --- offered load: zipf shares over a gently walking total --------- #
    rps_share = _zipf_pmf(rng, names, spec.zipf_exponent)
    walk = _bounded_walk(rng, 0.85 * spec.total_rps, 1.15 * spec.total_rps,
                         _n_points(spec.duration_s), smoothness=0.2)
    rps = _series(walk, period_s=spec.duration_s)

    # --- WAN latency matrix -------------------------------------------- #
    links: dict[tuple[str, str], WanLink] = {}
    lo, hi = spec.wan_delay_range_s
    for i, src in enumerate(names):
        for dst in names[i + 1:]:
            link = WanLink(base_delay_s=rng.uniform(lo, hi))
            links[(src, dst)] = link
            links[(dst, src)] = link

    # --- per-cluster service behaviour --------------------------------- #
    profiles = {}
    for name in names:
        profiles[name] = _latency_profile(
            rng,
            median_range=spec.median_range_s,
            p99_ratio_range=spec.p99_ratio_range,
            p99_spike=(0.02, 3.0, 10.0),
            duration_s=spec.duration_s)

    topology = FleetTopology(
        replicas=replicas,
        capacities=capacities,
        links=links,
        zipf_weight=zipf_weight,
        rps_share=rps_share,
        client_cluster=names[0],
    )
    return Scenario(
        name=f"fleet-{spec.clusters}x{topology.total_endpoints()}-s{seed}",
        duration_s=spec.duration_s,
        cluster_profiles=profiles,
        rps=rps,
        description=(
            f"generated fleet: {spec.clusters} clusters, "
            f"{topology.total_endpoints()} replica endpoints, "
            f"zipf(s={spec.zipf_exponent}) capacity/load skew"),
        topology=topology,
    )


def fleet_rps_series(scenario: Scenario, cluster: str) -> PiecewiseSeries:
    """The offered-load series attributed to one cluster's users."""
    topology = scenario.topology
    if topology is None:
        raise ConfigError(f"scenario {scenario.name!r} has no topology")
    share = topology.rps_share.get(cluster)
    if share is None:
        raise ConfigError(f"unknown cluster {cluster!r}")
    points = scenario.rps.points()
    return PiecewiseSeries(
        ((t, v * share) for t, v in points),
        period_s=scenario.rps.period_s)
