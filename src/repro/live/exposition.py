"""Prometheus text exposition: emit and parse the scrape metric set.

The live testbed's ``/metrics`` endpoints render exactly the metric
names the simulated scraper stores (:mod:`repro.telemetry.names`), one
Prometheus *text exposition format* family per metric, with the
time-series name (vantage point + backend, e.g.
``"cluster-1|api/cluster-2"``) carried in the ``series`` label — series
names contain ``|`` and ``/``, which are invalid in Prometheus metric
names but fine in label values.

:func:`parse_exposition` is the inverse: it turns a scraped text page
back into ``{series_name: {metric_name: value}}`` ready to append into a
:class:`~repro.telemetry.timeseries.TimeSeriesStore` — histogram bucket
lines collapse into the same cumulative-count tuples
:meth:`~repro.telemetry.histogram.LatencyHistogram.cumulative_counts`
produces, so :class:`~repro.telemetry.query.PromMetricsSource` cannot
tell a live scrape from a simulated one. The emit→parse round-trip is
pinned against the simulated scraper in ``tests/live/test_exposition.py``.
"""

from __future__ import annotations

import math

from repro.errors import TelemetryError
from repro.telemetry import names


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _unescape_label(value: str) -> str:
    out = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"\\": "\\", '"': '"', "n": "\n"}.get(nxt, nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _fmt(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    # repr keeps full precision; integral floats print without the noise.
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _sample(metric: str, series: str, value: float,
            le: str | None = None) -> str:
    labels = f'{names.SERIES_LABEL}="{_escape_label(series)}"'
    if le is not None:
        labels += f',le="{le}"'
    return f"{metric}{{{labels}}} {_fmt(value)}"


def render_exposition(targets, gauges=(), bucket_bounds=None) -> str:
    """Render scrape targets as one Prometheus text page.

    Args:
        targets: iterable of per-backend telemetry bundles — the same
            duck type :class:`~repro.telemetry.scraper.Scraper` snapshots
            (``scrape_name``/``backend_name``, counter ``.value``s,
            histogram ``cumulative_counts()``/``sum``/``count``, inflight
            gauge).
        gauges: iterable of ``(series_name, metric_name, read)`` custom
            gauges, mirroring ``Scraper.register_gauge``.
        bucket_bounds: histogram ladder of the bundles; defaults to each
            histogram's own ``bounds``.
    """
    lines: list[str] = []

    counters: list[str] = []
    histograms: dict[str, list[str]] = {
        family: [] for family in names.HISTOGRAM_FAMILIES.values()}
    gauge_lines: dict[str, list[str]] = {
        metric: [] for metric in names.GAUGE_METRICS}

    for telemetry in targets:
        series = getattr(telemetry, "scrape_name", None) or \
            telemetry.backend_name
        counters.append(_sample(
            names.REQUESTS_TOTAL, series, telemetry.requests_total.value))
        counters.append(_sample(
            names.FAILURES_TOTAL, series, telemetry.failures_total.value))
        for store_metric, family in names.HISTOGRAM_FAMILIES.items():
            histogram = (telemetry.success_latency
                         if store_metric == names.SUCCESS_LATENCY_BUCKETS
                         else telemetry.failure_latency)
            bounds = bucket_bounds or histogram.bounds
            cumulative = histogram.cumulative_counts()
            if len(cumulative) != len(bounds) + 1:
                raise TelemetryError(
                    f"{family}: {len(cumulative)} buckets for "
                    f"{len(bounds)} bounds")
            out = histograms[family]
            for bound, count in zip(bounds, cumulative):
                out.append(_sample(f"{family}_bucket", series, count,
                                   le=_fmt(bound)))
            out.append(_sample(f"{family}_bucket", series,
                               cumulative[-1], le="+Inf"))
            out.append(_sample(f"{family}_sum", series, histogram.sum))
            out.append(_sample(f"{family}_count", series, histogram.count))
        gauge_lines[names.INFLIGHT].append(_sample(
            names.INFLIGHT, series, telemetry.inflight.value))

    for series, metric, read in gauges:
        if metric not in gauge_lines:
            gauge_lines[metric] = []
        gauge_lines[metric].append(_sample(metric, series, float(read())))

    if counters:
        lines.append(f"# TYPE {names.REQUESTS_TOTAL} counter")
        lines.append(f"# TYPE {names.FAILURES_TOTAL} counter")
        lines.extend(counters)
    for family, family_lines in histograms.items():
        if family_lines:
            lines.append(f"# TYPE {family} histogram")
            lines.extend(family_lines)
    for metric, metric_lines in gauge_lines.items():
        if metric_lines:
            # Custom entries may carry counter metrics (e.g. the
            # autoscaler's event counter travels through the same
            # register_gauge-style hook); type them honestly.
            kind = ("counter" if metric in names.COUNTER_METRICS
                    else "gauge")
            lines.append(f"# TYPE {metric} {kind}")
            lines.extend(metric_lines)
    return "\n".join(lines) + "\n"


def _parse_labels(text: str) -> dict[str, str]:
    labels: dict[str, str] = {}
    i = 0
    while i < len(text):
        eq = text.index("=", i)
        name = text[i:eq].strip().lstrip(",").strip()
        if text[eq + 1] != '"':
            raise TelemetryError(f"unquoted label value in {text!r}")
        j = eq + 2
        raw = []
        while j < len(text):
            ch = text[j]
            if ch == "\\":
                raw.append(text[j:j + 2])
                j += 2
                continue
            if ch == '"':
                break
            raw.append(ch)
            j += 1
        else:
            raise TelemetryError(f"unterminated label value in {text!r}")
        labels[name] = _unescape_label("".join(raw))
        i = j + 1
    return labels


def _parse_value(text: str) -> float:
    text = text.strip()
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    try:
        return float(text)
    except ValueError as exc:
        raise TelemetryError(f"bad sample value: {text!r}") from exc


# Exposition metric name → store metric name for the scalar families.
_SCALARS = {name: name for name in
            names.COUNTER_METRICS + names.GAUGE_METRICS}
for _family, (_sum_name, _count_name) in names.HISTOGRAM_SUM_COUNT.items():
    _SCALARS[f"{_family}_sum"] = _sum_name
    _SCALARS[f"{_family}_count"] = _count_name

_BUCKETS = {f"{family}_bucket": store
            for store, family in names.HISTOGRAM_FAMILIES.items()}


def parse_exposition(text: str) -> dict[str, dict[str, object]]:
    """Parse one text page into ``{series: {store_metric: value}}``.

    Histogram ``_bucket`` lines are collapsed into cumulative-count
    tuples in ascending ``le`` order (``+Inf`` last) — the exact value
    shape the simulated scraper appends. Metric families outside the
    scrape set (e.g. ``failure_latency_sum``) are ignored, as a real
    Prometheus ignores series no rule selects.
    """
    samples: dict[str, dict[str, object]] = {}
    buckets: dict[tuple[str, str], list[tuple[float, float]]] = {}

    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        brace = line.find("{")
        if brace < 0:
            raise TelemetryError(f"sample without labels: {line!r}")
        metric = line[:brace]
        end = line.rfind("}")
        if end < brace:
            raise TelemetryError(f"malformed labels: {line!r}")
        labels = _parse_labels(line[brace + 1:end])
        series = labels.get(names.SERIES_LABEL)
        if series is None:
            raise TelemetryError(
                f"sample without a {names.SERIES_LABEL!r} label: {line!r}")
        value = _parse_value(line[end + 1:])

        store_metric = _SCALARS.get(metric)
        if store_metric is not None:
            samples.setdefault(series, {})[store_metric] = value
            continue
        bucket_metric = _BUCKETS.get(metric)
        if bucket_metric is not None:
            le = labels.get("le")
            if le is None:
                raise TelemetryError(f"bucket without le: {line!r}")
            buckets.setdefault((series, bucket_metric), []).append(
                (_parse_value(le), value))
            continue
        # Unknown family: not part of the scrape set.

    for (series, store_metric), entries in buckets.items():
        entries.sort(key=lambda pair: pair[0])
        counts = tuple(count for _le, count in entries)
        for earlier, later in zip(counts, counts[1:]):
            if later < earlier:
                raise TelemetryError(
                    f"non-cumulative histogram for {series}/{store_metric}")
        samples.setdefault(series, {})[store_metric] = counts
    return samples
