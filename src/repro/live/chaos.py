"""Wall-clock fault injection against the live testbed (chaos harness).

The simulator's fault vocabulary (:mod:`repro.faults.faults`) is written
against an injector facade — ``mesh.deployment(...).backend_in(...)``,
``mesh.network.partition(...)``, ``require_scraper().pause(...)`` — not
against the simulator itself. This module supplies that facade over the
*live* substrate, so the exact same frozen :class:`~repro.faults.base.Fault`
dataclasses (and therefore the exact same ``--faults`` spec strings)
drive real asyncio servers:

- replica / cluster faults close or blackhole the
  :class:`~repro.live.server.ReplicaServer` listeners and re-bind them
  on recovery;
- link faults shape the client-side path through a
  :class:`LiveLinkShaper` the proxy traverses before opening a socket;
- scrape faults break the ``/metrics`` pages themselves (500s or
  accept-then-stall), so the outage happens on the wire where the
  :class:`~repro.live.scrape.HttpScraper` actually feels it;
- controller faults pause the reconcile loop or crash one
  :class:`~repro.core.leader.ControllerReplica` out of the lease
  election.

:class:`LiveFaultInjector` runs the schedule as an asyncio task on the
run clock. ``Fault.apply``/``revert`` are synchronous by contract, so
facade methods *defer* their async work (listener close, port re-bind)
onto the injector, which awaits it immediately after each action — the
fault's effect is complete before the injector sleeps toward the next
event. A fault that cannot run (e.g. ``controller-crash`` without HA
replicas) is logged into :attr:`LiveFaultInjector.errors` and the
schedule continues: a chaos run should report a broken experiment, not
die half-way with ports still bound.
"""

from __future__ import annotations

import asyncio
import itertools
import typing

from repro.errors import ConfigError, MeshError, ReproError
from repro.faults.base import Fault, FaultInjector
from repro.mesh.cluster import split_backend_name
from repro.mesh.replica import DOWN_MODES


class LiveLinkShaper:
    """Client-side link shaping: partitions and degradations by pair.

    The simulator shapes delay inside its network model; on localhost
    there is no network to shape, so the proxy calls
    :meth:`traverse` before opening each connection and the shaper
    inserts the fault there. Directed pairs, symmetric by default —
    the same semantics as ``mesh.network``:

    - a *degraded* pair sleeps ``base_delay_s * (multiplier - 1) +
      extra_delay_s`` per attempt (the inflation a real link would add
      on top of its base propagation delay);
    - a *partitioned* pair hangs until the client's deadline fires —
      healing the partition does not resurrect attempts already stuck
      on it, matching the simulated network. Teardown calls
      :meth:`release` so stuck attempts fail fast instead of leaking.
    """

    def __init__(self, base_delay_s: float = 0.0):
        if base_delay_s < 0:
            raise ConfigError(
                f"base link delay must be >= 0: {base_delay_s}")
        self.base_delay_s = base_delay_s
        self._partitioned: set[tuple[str, str]] = set()
        self._degraded: dict[tuple[str, str], tuple[float, float]] = {}
        self._gate = asyncio.Event()
        self.traversals = 0
        self.dropped = 0

    def _pairs(self, src: str, dst: str,
               symmetric: bool) -> list[tuple[str, str]]:
        return [(src, dst), (dst, src)] if symmetric else [(src, dst)]

    def partition(self, src: str, dst: str, symmetric: bool = True) -> None:
        self._partitioned.update(self._pairs(src, dst, symmetric))

    def heal_partition(self, src: str, dst: str,
                       symmetric: bool = True) -> None:
        self._partitioned.difference_update(self._pairs(src, dst, symmetric))

    def degrade(self, src: str, dst: str, multiplier: float = 1.0,
                extra_delay_s: float = 0.0, symmetric: bool = True) -> None:
        for pair in self._pairs(src, dst, symmetric):
            self._degraded[pair] = (multiplier, extra_delay_s)

    def heal_degradation(self, src: str, dst: str,
                         symmetric: bool = True) -> None:
        for pair in self._pairs(src, dst, symmetric):
            self._degraded.pop(pair, None)

    def partitioned(self, src: str, dst: str) -> bool:
        return (src, dst) in self._partitioned

    def extra_delay_s(self, src: str, dst: str) -> float:
        """Seconds of injected delay for one traversal of ``src → dst``."""
        entry = self._degraded.get((src, dst))
        if entry is None:
            return 0.0
        multiplier, extra = entry
        return self.base_delay_s * (multiplier - 1.0) + extra

    async def traverse(self, src: str, dst: str) -> None:
        """One attempt crossing the link; raises MeshError when dropped."""
        self.traversals += 1
        delay = self.extra_delay_s(src, dst)
        if delay > 0:
            await asyncio.sleep(delay)
        if (src, dst) in self._partitioned:
            self.dropped += 1
            # Hang like a real partition: nothing answers, only the
            # client's deadline (or teardown's release) ends the wait.
            await self._gate.wait()
            raise MeshError(f"link {src} -> {dst} is partitioned")

    def release(self) -> None:
        """Fail every stuck traversal fast (teardown; not a heal)."""
        self._gate.set()


class _LiveBackendFacade:
    """One ReplicaServer wearing the simulated backend's fault surface.

    A live server stands in for a whole cluster-local deployment, so it
    is both the backend (``crash``/``restart`` — what ClusterOutage
    touches) and its only replica (``.replicas[0]`` — what ReplicaCrash
    indexes). Async server work is deferred onto the injector.
    """

    def __init__(self, name: str, server, injector: "LiveFaultInjector"):
        self.name = name
        self.server = server
        self._injector = injector
        self.replicas = [self]

    def crash(self, mode: str = "fail_fast") -> None:
        if mode not in DOWN_MODES:
            raise MeshError(
                f"down mode must be one of {DOWN_MODES}: {mode!r}")
        self._injector.defer(self.server.crash(mode))

    def restart(self) -> None:
        self._injector.defer(self.server.restart())


class _LiveDeploymentFacade:
    """The one-service deployment view over the cluster → backend map."""

    def __init__(self, service: str, backends: dict[str, _LiveBackendFacade]):
        self.service = service
        self.backends = backends

    def backend_in(self, cluster: str) -> _LiveBackendFacade:
        backend = self.backends.get(cluster)
        if backend is None:
            raise ConfigError(
                f"service {self.service!r} has no backend in cluster "
                f"{cluster!r}; clusters: {tuple(sorted(self.backends))}")
        return backend


class _LiveMeshFacade:
    """Just enough of ServiceMesh's surface for the fault vocabulary."""

    def __init__(self, deployment: _LiveDeploymentFacade,
                 network: LiveLinkShaper):
        self._deployment = deployment
        self.network = network

    def services(self) -> list[str]:
        return [self._deployment.service]

    def deployment(self, name: str) -> _LiveDeploymentFacade:
        if name != self._deployment.service:
            raise ConfigError(
                f"unknown service {name!r}; the live testbed runs "
                f"{self._deployment.service!r}")
        return self._deployment


class _LiveScrapeFacade:
    """Scrape outages, live: break every /metrics page on the wire.

    The simulator pauses the scraper; here the outage happens where a
    real one would — the exposition endpoints stop answering (500s) or
    stop answering *at all* (stall), and the running
    :class:`~repro.live.scrape.HttpScraper` fails its fetches.
    """

    def __init__(self, servers: typing.Sequence):
        self.servers = list(servers)

    def pause(self, mode: str = "error") -> None:
        for server in self.servers:
            server.fail_metrics(mode)

    def resume(self) -> None:
        for server in self.servers:
            server.restore_metrics()


class LiveFaultInjector(FaultInjector):
    """Runs a fault schedule against the live testbed on the run clock.

    Reuses the simulator injector's helper surface (``backends_in``,
    ``require_*``) over live facades; scheduling is wall-clock — an
    asyncio task sleeps toward each event and executes it, awaiting any
    deferred server work before moving on.

    Args:
        service: the service the testbed runs (``SCENARIO_SERVICE``).
        servers: backend name → :class:`~repro.live.server.ReplicaServer`.
        network: the :class:`LiveLinkShaper` the proxy traverses.
        clock: zero-argument callable, seconds since the run started.
        metrics_server: the proxy-side exposition server, included in
            scrape outages alongside every replica server.
        controllers: reconcile controllers (``pause()``/``resume()``).
        replicas: HA :class:`~repro.core.leader.ControllerReplica` list.
        sleep: async sleep (injectable for socket-free tests).
    """

    def __init__(self, service: str, servers: dict, network: LiveLinkShaper,
                 clock, metrics_server=None,
                 controllers: typing.Sequence = (),
                 replicas: typing.Sequence = (), sleep=None):
        backends: dict[str, _LiveBackendFacade] = {}
        for name, server in servers.items():
            _service, cluster = split_backend_name(name)
            backends[cluster] = _LiveBackendFacade(name, server, self)
        self.mesh = _LiveMeshFacade(
            _LiveDeploymentFacade(service, backends), network)
        scrape_servers = list(servers.values())
        if metrics_server is not None:
            scrape_servers.append(metrics_server)
        self.scraper = _LiveScrapeFacade(scrape_servers)
        self.controllers = [c for c in controllers if c is not None]
        self.replicas = list(replicas)
        self.clock = clock
        self.log: list[tuple[float, str]] = []
        self.errors: list[str] = []
        self._sleep = sleep or asyncio.sleep
        self._deferred: list = []
        self._seq = itertools.count()
        # (due_s, rank, seq, action, fault); reverts outrank applies at
        # equal times so back-to-back windows hand over cleanly.
        self._events: list[tuple[float, int, int, str, Fault]] = []

    # ------------------------------------------------------- scheduling #

    def schedule(self, fault: Fault, offset_s: float = 0.0) -> None:
        """Register one fault's apply (and revert) on the run clock."""
        fault.validate()
        start = offset_s + fault.at_s
        self._events.append((start, 1, next(self._seq), "apply", fault))
        duration = getattr(fault, "duration_s", None)
        if duration is not None:
            self._events.append(
                (start + duration, 0, next(self._seq), "revert", fault))

    def record(self, description: str) -> None:
        """Append one line to the fault log at the current run time."""
        self.log.append((self.clock(), description))

    # -------------------------------------------------- deferred server #

    def defer(self, coro) -> None:
        """Queue async work a synchronous ``Fault.apply`` cannot await."""
        self._deferred.append(coro)

    async def _flush(self) -> None:
        while self._deferred:
            coros, self._deferred = self._deferred, []
            for coro in coros:
                await coro

    def close(self) -> None:
        """Drop un-flushed deferred work (cancelled before it ran)."""
        for coro in self._deferred:
            coro.close()
        self._deferred.clear()

    # --------------------------------------------------------- running #

    async def run(self) -> None:
        """Execute the whole schedule; returns when the last event ran.

        A fault that cannot run logs an ``ERROR`` line and the schedule
        continues — chaos runs report broken experiments instead of
        abandoning the testbed mid-run.
        """
        for due, _rank, _seq, action, fault in sorted(self._events):
            delay = due - self.clock()
            if delay > 0:
                await self._sleep(delay)
            try:
                getattr(fault, action)(self)
                await self._flush()
            except ReproError as exc:
                self.errors.append(f"{action} {fault}: {exc}")
                self.record(f"ERROR {action} {fault}: {exc}")
            else:
                self.record(f"{action} {fault}")
