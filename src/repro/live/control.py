"""The live control-plane driver: reconciles on wall-clock time.

The controllers themselves (:class:`~repro.core.controller.L3Controller`,
:class:`~repro.balancers.c3.C3Controller`) are substrate-agnostic —
``reconcile(now)`` is a pure metrics→weights cycle. On the simulator a
generator process supplies the cadence; here an asyncio task does. In HA
mode the loop steps several :class:`~repro.core.leader.ControllerReplica`
instances competing over one wall-clock
:class:`~repro.core.leader.LeaseLock`; only the lease holder reconciles,
exactly the paper's lease-based leader election.
"""

from __future__ import annotations

import asyncio

from repro.core.leader import ControllerReplica, LeaseLock
from repro.errors import ConfigError


class ControllerStepper:
    """Adapts a bare controller to the ``step(now)`` interface.

    Honours the controller's ``paused`` flag (fault injection:
    controller-pause stalls the loop without killing it), mirroring what
    the simulator's run loop does.
    """

    def __init__(self, controller):
        self.controller = controller

    def step(self, now: float) -> bool:
        if getattr(self.controller, "paused", False):
            return False
        self.controller.reconcile(now)
        return True


class LiveControlLoop:
    """Ticks a set of steppers every ``interval_s`` of wall-clock time."""

    def __init__(self, steppers, clock, interval_s: float):
        """Args:
            steppers: objects with ``step(now) -> bool`` — bare
                controllers wrapped in :class:`ControllerStepper`, or
                :class:`~repro.core.leader.ControllerReplica` instances
                sharing a lease.
            clock: zero-argument callable, seconds since the run started.
            interval_s: reconcile cadence.
        """
        if interval_s <= 0:
            raise ConfigError(
                f"reconcile interval must be positive: {interval_s}")
        self.steppers = list(steppers)
        self.clock = clock
        self.interval_s = interval_s
        self.ticks = 0

    def tick(self, now: float | None = None) -> int:
        """Step every stepper once; returns how many reconciled."""
        if now is None:
            now = self.clock()
        return sum(1 for stepper in self.steppers if stepper.step(now))

    async def run(self) -> None:
        """Tick forever on the configured cadence (cancel to stop)."""
        while True:
            await asyncio.sleep(self.interval_s)
            self.tick()
            self.ticks += 1


def ha_replicas(controllers, lease_ttl_s: float, clock,
                ) -> tuple[LeaseLock, list[ControllerReplica]]:
    """Build HA replicas over one shared wall-clock lease.

    Each controller instance becomes one replica; they share the metrics
    source and the weight sink, so whichever holds the lease drives the
    split — the paper's multi-replica operator deployment.
    """
    lease = LeaseLock(ttl_s=lease_ttl_s, clock=clock)
    return lease, [
        ControllerReplica(f"replica-{i}", controller, lease)
        for i, controller in enumerate(controllers)
    ]
