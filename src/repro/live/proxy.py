"""The live client-side proxy: weighted routing over real sockets.

Mirrors :class:`repro.mesh.proxy.ClientProxy`'s data-plane semantics on
the asyncio substrate: every attempt is a fresh balancer decision
filtered through the (optional) outlier ejector with the same bounded
fail-open re-draw loop, per-attempt deadlines abandon the in-flight call
(the socket closes; whatever the server was doing keeps happening),
retries back off between attempts, and each attempt is individually
recorded into the same :class:`~repro.telemetry.metrics.BackendTelemetry`
bundles — scoped by source cluster — that the ``/metrics`` endpoint
exposes, so L3's success-rate and latency signals see exactly what a
sidecar would report.

The transport is injectable: the default :class:`HttpTransport` opens a
TCP connection per attempt; tests substitute an async callable to cover
routing, retry, timeout and telemetry paths without sockets or sleeps.
"""

from __future__ import annotations

import asyncio
import itertools

from repro.errors import MeshError
from repro.live import httpwire
from repro.mesh.cluster import split_backend_name
from repro.mesh.ejection import OutlierEjectionConfig, OutlierEjector
from repro.mesh.request import RequestRecord
from repro.telemetry.metrics import BackendTelemetry
from repro.telemetry.names import scoped_series_name


class HttpTransport:
    """One HTTP request per call; success is a 2xx response."""

    def __init__(self, path: str = "/work"):
        self.path = path

    async def __call__(self, host: str, port: int) -> bool:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(httpwire.request_bytes("GET", self.path,
                                                f"{host}:{port}"))
            await writer.drain()
            first, headers = await httpwire.read_head(reader)
            status = httpwire.parse_status_line(first)
            length = httpwire.content_length(headers)
            if length > 0:
                await reader.readexactly(length)
            return 200 <= status < 300
        finally:
            await httpwire.close_writer(writer)


class LiveProxy:
    """Routes one service's outgoing traffic from one source cluster."""

    def __init__(self, source_cluster: str, service: str,
                 backends: dict[str, tuple[str, int]], picker, rng, clock,
                 max_retries: int = 0, retry_backoff_s: float = 0.0,
                 retry_backoff_multiplier: float = 1.0,
                 retry_backoff_max_s: float | None = None,
                 retry_jitter: bool = False,
                 request_timeout_s: float | None = None,
                 outlier_ejection: OutlierEjectionConfig | None = None,
                 transport=None, link=None):
        """Args:
            source_cluster: cluster this proxy lives in (telemetry scope).
            service: destination service name.
            backends: backend name → ``(host, port)`` address.
            picker: anything with ``pick(rng, now) -> backend`` — a
                :class:`~repro.live.split.LiveTrafficSplit` kept fresh by
                a controller, or a per-request balancer such as
                :class:`~repro.balancers.round_robin.RoundRobinBalancer`.
            rng: private random stream (weighted picks and backoff
                jitter; the jitter draw happens only when enabled, so
                the default configuration leaves the stream untouched).
            clock: zero-argument callable, seconds since the run started.
            max_retries / retry_backoff_s / request_timeout_s /
            outlier_ejection: the resilience knobs of the simulated
                proxy, with identical semantics.
            retry_backoff_multiplier: growth factor per retry; attempt
                ``n`` waits ``retry_backoff_s * multiplier**(n-1)``.
                The default 1.0 keeps the historical constant backoff.
            retry_backoff_max_s: cap on any single backoff sleep
                (``None`` = uncapped).
            retry_jitter: full jitter — each sleep is drawn uniformly
                from ``[0, computed delay]``, decorrelating retry storms
                when a backend dies under concurrent load.
            transport: async ``f(host, port) -> success`` (defaults to
                :class:`HttpTransport`); raising ``OSError`` or
                :class:`~repro.errors.MeshError` counts as a failed
                attempt, as does the per-attempt deadline expiring.
            link: optional :class:`~repro.live.chaos.LiveLinkShaper`
                traversed before each attempt's transport — the chaos
                harness's partition/degradation insertion point. The
                traversal shares the attempt's deadline, so a
                partitioned link turns into a client timeout.
        """
        if not backends:
            raise MeshError("LiveProxy needs at least one backend")
        if max_retries < 0:
            raise MeshError(f"max retries must be >= 0: {max_retries}")
        if retry_backoff_s < 0:
            raise MeshError(f"retry backoff must be >= 0: {retry_backoff_s}")
        if retry_backoff_multiplier < 1.0:
            raise MeshError(
                f"backoff multiplier must be >= 1: "
                f"{retry_backoff_multiplier}")
        if retry_backoff_max_s is not None and retry_backoff_max_s <= 0:
            raise MeshError(
                f"backoff cap must be positive: {retry_backoff_max_s}")
        if request_timeout_s is not None and request_timeout_s <= 0:
            raise MeshError(
                f"request timeout must be positive: {request_timeout_s}")
        self.source_cluster = source_cluster
        self.service = service
        self.backends = dict(backends)
        self.picker = picker
        self.rng = rng
        self.clock = clock
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        self.retry_backoff_multiplier = retry_backoff_multiplier
        self.retry_backoff_max_s = retry_backoff_max_s
        self.retry_jitter = retry_jitter
        self.request_timeout_s = request_timeout_s
        self.transport = transport or HttpTransport()
        self.link = link
        self.timeouts = 0
        self._request_ids = itertools.count()
        self.telemetry: dict[str, BackendTelemetry] = {
            name: BackendTelemetry(
                name, scrape_name=scoped_series_name(source_cluster, name))
            for name in self.backends
        }
        self.ejector: OutlierEjector | None = None
        if outlier_ejection is not None:
            self.ejector = OutlierEjector(list(self.backends),
                                          outlier_ejection)

    def telemetry_bundles(self) -> list[BackendTelemetry]:
        """The per-backend bundles, for the /metrics exposition page."""
        return list(self.telemetry.values())

    async def dispatch(self, intended_start_s: float | None = None,
                       ) -> RequestRecord:
        """Process one request end to end; returns a RequestRecord."""
        start = self.clock()
        if intended_start_s is None:
            intended_start_s = start
        request_id = next(self._request_ids)

        attempts = 0
        while True:
            attempts += 1
            success, backend_name = await self._attempt()
            if success or attempts > self.max_retries:
                break
            delay = self.backoff_delay(attempts)
            if delay > 0:
                await asyncio.sleep(delay)

        return RequestRecord(
            request_id=request_id,
            service=self.service,
            source_cluster=self.source_cluster,
            backend=backend_name,
            intended_start_s=intended_start_s,
            start_s=start,
            end_s=self.clock(),
            success=success,
            attempts=attempts,
        )

    def backoff_delay(self, attempt: int) -> float:
        """Sleep before the retry after failed attempt number ``attempt``.

        Capped exponential backoff with optional full jitter: the base
        delay grows by ``retry_backoff_multiplier`` per attempt, is
        clamped to ``retry_backoff_max_s``, and — with jitter on — the
        actual sleep is uniform over ``[0, delay]`` so simultaneous
        retriers spread out instead of hammering in lockstep. The
        defaults (multiplier 1, no cap, no jitter) reproduce the
        original constant ``retry_backoff_s`` exactly, without touching
        the rng stream.
        """
        delay = self.retry_backoff_s
        if delay <= 0:
            return 0.0
        delay *= self.retry_backoff_multiplier ** (attempt - 1)
        if self.retry_backoff_max_s is not None:
            delay = min(delay, self.retry_backoff_max_s)
        if self.retry_jitter:
            delay = self.rng.uniform(0.0, delay)
        return delay

    async def _send(self, host: str, port: int, backend_name: str) -> bool:
        """One transport call, shaped by the chaos link when present."""
        if self.link is not None:
            _service, dst = split_backend_name(backend_name)
            await self.link.traverse(self.source_cluster, dst)
        return await self.transport(host, port)

    async def _attempt(self) -> tuple[bool, str]:
        """One attempt: pick, send, record — the per-try telemetry unit."""
        start = self.clock()
        backend_name = self._pick_backend(start)
        telemetry = self.telemetry.get(backend_name)
        if telemetry is None:
            raise MeshError(
                f"picker chose unknown backend {backend_name!r} "
                f"for service {self.service!r}")
        host, port = self.backends[backend_name]

        telemetry.on_request_sent()
        on_sent = getattr(self.picker, "on_request_sent", None)
        if on_sent is not None:
            on_sent(backend_name, start)
        success = False
        try:
            if self.request_timeout_s is None:
                success = await self._send(host, port, backend_name)
            else:
                success = await asyncio.wait_for(
                    self._send(host, port, backend_name),
                    self.request_timeout_s)
        except (asyncio.TimeoutError, TimeoutError):
            self.timeouts += 1
        except (OSError, MeshError, asyncio.IncompleteReadError):
            pass

        now = self.clock()
        telemetry.on_response(now - start, success)
        on_response = getattr(self.picker, "on_response", None)
        if on_response is not None:
            on_response(backend_name, now, now - start, success)
        if self.ejector is not None:
            self.ejector.on_response(backend_name, now, success)
        return success, backend_name

    def _pick_backend(self, now: float) -> str:
        """Picker choice filtered through the ejector, failing open.

        The same bounded re-draw loop as the simulated proxy: if every
        draw is ejected, send anyway — blackholing all traffic on a local
        breaker's say-so would be worse than probing a dead backend.
        """
        backend_name = self.picker.pick(self.rng, now)
        if self.ejector is None or self.ejector.admit(backend_name, now):
            return backend_name
        for _ in range(3 * len(self.backends)):
            candidate = self.picker.pick(self.rng, now)
            if self.ejector.admit(candidate, now):
                return candidate
        return backend_name
