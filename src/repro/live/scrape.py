"""The live scrape loop: HTTP /metrics pages into the TimeSeriesStore.

The wall-clock twin of :class:`repro.telemetry.scraper.Scraper`: every
``interval_s`` it fetches each target's ``/metrics`` page over a real
socket, parses the Prometheus text exposition
(:mod:`repro.live.exposition`) and appends every sample into the shared
:class:`~repro.telemetry.timeseries.TimeSeriesStore` at one capture
timestamp — after which :class:`~repro.telemetry.query.PromMetricsSource`
and the controller run unchanged.

A target that fails to answer simply contributes no samples that round
(counted in :attr:`failed_scrapes`); sustained failure starves the
window queries into returning ``None``, which is the controller's
decay-toward-default path — the same behaviour a real Prometheus outage
produces.
"""

from __future__ import annotations

import asyncio

from repro.errors import TelemetryError
from repro.live import httpwire
from repro.live.exposition import parse_exposition
from repro.telemetry.timeseries import TimeSeriesStore


async def fetch_metrics(host: str, port: int, timeout_s: float = 2.0) -> str:
    """GET /metrics from one target; returns the page text."""

    async def _get() -> str:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(httpwire.request_bytes("GET", "/metrics",
                                                f"{host}:{port}"))
            await writer.drain()
            first, headers = await httpwire.read_head(reader)
            status = httpwire.parse_status_line(first)
            if status != 200:
                raise TelemetryError(
                    f"{host}:{port}/metrics answered {status}")
            length = httpwire.content_length(headers)
            body = await reader.readexactly(length) if length > 0 else \
                await reader.read()
            return body.decode("utf-8")
        finally:
            await httpwire.close_writer(writer)

    return await asyncio.wait_for(_get(), timeout_s)


class HttpScraper:
    """Periodically scrapes HTTP exposition targets into a store."""

    def __init__(self, store: TimeSeriesStore, targets, clock,
                 interval_s: float = 1.0, fetch=None):
        """Args:
            store: destination time-series store.
            targets: iterable of ``(host, port)`` exposition endpoints.
            clock: zero-argument callable, seconds since the run started.
            interval_s: scrape cadence.
            fetch: async ``f(host, port) -> page text`` (defaults to
                :func:`fetch_metrics`); tests inject a fake to scrape
                without sockets.
        """
        if interval_s <= 0:
            raise TelemetryError(f"scrape interval must be positive: "
                                 f"{interval_s}")
        self.store = store
        self.targets = list(targets)
        self.clock = clock
        self.interval_s = interval_s
        self._fetch = fetch or fetch_metrics
        self.scrape_count = 0
        self.failed_scrapes = 0

    async def scrape_once(self, now: float | None = None) -> int:
        """Scrape every target once; returns how many targets answered.

        All samples of one round share a single capture timestamp (the
        round's start), keeping per-series appends time-ordered even when
        target fetches straddle the next clock tick.
        """
        if now is None:
            now = self.clock()
        answered = 0
        for host, port in self.targets:
            try:
                text = await self._fetch(host, port)
                samples = parse_exposition(text)
            except (OSError, TelemetryError, asyncio.TimeoutError,
                    TimeoutError, asyncio.IncompleteReadError,
                    UnicodeDecodeError):
                self.failed_scrapes += 1
                continue
            for series, metrics in samples.items():
                for metric, value in metrics.items():
                    self.store.series(series, metric).append(now, value)
            answered += 1
        self.scrape_count += 1
        return answered

    async def run(self) -> None:
        """Scrape forever on the configured cadence (cancel to stop)."""
        while True:
            await asyncio.sleep(self.interval_s)
            await self.scrape_once()
