"""The live scrape loop: HTTP /metrics pages into the TimeSeriesStore.

The wall-clock twin of :class:`repro.telemetry.scraper.Scraper`: every
``interval_s`` it fetches each target's ``/metrics`` page over a real
socket, parses the Prometheus text exposition
(:mod:`repro.live.exposition`) and appends every sample into the shared
:class:`~repro.telemetry.timeseries.TimeSeriesStore` at one capture
timestamp — after which :class:`~repro.telemetry.query.PromMetricsSource`
and the controller run unchanged.

A target that fails to answer simply contributes no samples that round
(counted in :attr:`failed_scrapes`); sustained failure starves the
window queries into returning ``None``, which is the controller's
decay-toward-default path — the same behaviour a real Prometheus outage
produces.
"""

from __future__ import annotations

import asyncio

from repro.errors import TelemetryError
from repro.live import httpwire
from repro.live.exposition import parse_exposition
from repro.telemetry.timeseries import TimeSeriesStore


async def fetch_metrics(host: str, port: int, timeout_s: float = 2.0) -> str:
    """GET /metrics from one target; returns the page text."""

    async def _get() -> str:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(httpwire.request_bytes("GET", "/metrics",
                                                f"{host}:{port}"))
            await writer.drain()
            first, headers = await httpwire.read_head(reader)
            status = httpwire.parse_status_line(first)
            if status != 200:
                raise TelemetryError(
                    f"{host}:{port}/metrics answered {status}")
            length = httpwire.content_length(headers)
            body = await reader.readexactly(length) if length > 0 else \
                await reader.read()
            return body.decode("utf-8")
        finally:
            await httpwire.close_writer(writer)

    return await asyncio.wait_for(_get(), timeout_s)


class HttpScraper:
    """Periodically scrapes HTTP exposition targets into a store."""

    def __init__(self, store: TimeSeriesStore, targets, clock,
                 interval_s: float = 1.0, fetch=None):
        """Args:
            store: destination time-series store.
            targets: iterable of ``(host, port)`` exposition endpoints.
            clock: zero-argument callable, seconds since the run started.
            interval_s: scrape cadence.
            fetch: async ``f(host, port) -> page text`` (defaults to
                :func:`fetch_metrics`); tests inject a fake to scrape
                without sockets.
        """
        if interval_s <= 0:
            raise TelemetryError(f"scrape interval must be positive: "
                                 f"{interval_s}")
        self.store = store
        self.targets = list(targets)
        self.clock = clock
        self.interval_s = interval_s
        self._fetch = fetch or fetch_metrics
        self.scrape_count = 0
        self.failed_scrapes = 0
        self.stale_drops = 0
        self._last_stamp: dict[tuple[str, int], float] = {}

    async def _scrape_target(self, host: str, port: int,
                             now: float) -> bool:
        try:
            samples = parse_exposition(await self._fetch(host, port))
        except (OSError, TelemetryError, asyncio.TimeoutError,
                TimeoutError, asyncio.IncompleteReadError,
                UnicodeDecodeError):
            self.failed_scrapes += 1
            return False
        key = (host, port)
        if self._last_stamp.get(key, float("-inf")) > now:
            # This fetch outlived its round (a stalled connection that
            # finally answered) and a newer round has already landed for
            # the target; appending would go back in time. Drop it —
            # exactly what Prometheus does with samples older than the
            # series head.
            self.stale_drops += 1
            return False
        self._last_stamp[key] = now
        for series, metrics in samples.items():
            for metric, value in metrics.items():
                self.store.series(series, metric).append(now, value)
        return True

    async def scrape_once(self, now: float | None = None) -> int:
        """Scrape every target once; returns how many targets answered.

        Targets are fetched concurrently (as Prometheus does) and each
        target's samples land in the store the moment its fetch
        completes, all stamped with the round's start time — a stalled
        target (a blackholed replica holds its ``/metrics`` connection
        open along with everything else) burns only its own fetch
        timeout and cannot delay or date the round's healthy samples.
        """
        if now is None:
            now = self.clock()
        results = await asyncio.gather(
            *(self._scrape_target(host, port, now)
              for host, port in self.targets))
        self.scrape_count += 1
        return sum(results)

    async def run(self) -> None:
        """Scrape forever on the configured cadence (cancel to stop).

        Rounds fire on the cadence regardless of how long the previous
        round takes: each round runs as its own task, so one stalled
        target cannot starve the controller of everyone else's fresh
        telemetry (the fetch timeout bounds how many rounds overlap).
        """
        rounds: set[asyncio.Task] = set()
        try:
            while True:
                await asyncio.sleep(self.interval_s)
                round_task = asyncio.ensure_future(self.scrape_once())
                rounds.add(round_task)
                round_task.add_done_callback(rounds.discard)
        finally:
            for round_task in list(rounds):
                round_task.cancel()
            if rounds:
                await asyncio.gather(*rounds, return_exceptions=True)
