"""The live localhost testbed: the real L3 control plane over sockets.

Runs the **unmodified** controller stack — ``L3Controller``,
``PromMetricsSource``, ``TimeSeriesStore`` — against a real networked
mesh on localhost: asyncio HTTP replica servers whose latency/failure
behaviour follows the same :class:`~repro.workloads.profiles.BackendProfile`
schedules the simulator uses, a client-side weighted proxy speaking the
``mesh`` data-plane semantics over TCP, a Prometheus text-exposition
``/metrics`` endpoint, an HTTP scrape loop, and an open-loop load
generator. The simulation validates the control algorithm against a
model; the live harness validates it against the realities a model hides
(scheduling jitter, socket teardown, wall-clock scrape skew).
DESIGN.md §5e states the parity contract between the two substrates.

:mod:`repro.live.chaos` adds wall-clock fault injection on top: the same
``--faults`` vocabulary the simulator uses, executed against the running
testbed (listeners close and re-bind, links partition, /metrics pages
break, controller replicas crash out of the lease election). DESIGN.md
§5f states the live failure model and the failover contract.
"""

from repro.live.chaos import LiveFaultInjector, LiveLinkShaper
from repro.live.clock import FakeClock, WallClock
from repro.live.control import ControllerStepper, LiveControlLoop, ha_replicas
from repro.live.exposition import parse_exposition, render_exposition
from repro.live.harness import (
    LIVE_ALGORITHMS,
    LiveConfig,
    LiveHarness,
    live_c3_config,
    live_l3_config,
    run_live,
    weight_points,
)
from repro.live.loadgen import LiveLoadGenerator
from repro.live.proxy import HttpTransport, LiveProxy
from repro.live.scrape import HttpScraper, fetch_metrics
from repro.live.server import MetricsServer, ReplicaServer, start_http_server
from repro.live.split import LiveTrafficSplit

__all__ = [
    "LIVE_ALGORITHMS",
    "ControllerStepper",
    "FakeClock",
    "HttpScraper",
    "HttpTransport",
    "LiveConfig",
    "LiveControlLoop",
    "LiveFaultInjector",
    "LiveHarness",
    "LiveLinkShaper",
    "LiveLoadGenerator",
    "LiveProxy",
    "LiveTrafficSplit",
    "MetricsServer",
    "ReplicaServer",
    "WallClock",
    "fetch_metrics",
    "ha_replicas",
    "live_c3_config",
    "live_l3_config",
    "parse_exposition",
    "render_exposition",
    "run_live",
    "start_http_server",
    "weight_points",
]
