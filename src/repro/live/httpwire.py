"""Minimal HTTP/1.1 over asyncio streams — just enough for the testbed.

The live testbed deliberately speaks plain HTTP over real sockets (that
is its point: exercising the control plane against OS-level networking,
scheduling jitter and concurrency), but it must not pull in any HTTP
framework the container may not have. This module is the shared wire
layer: request/response serialisation and parsing used by the replica
servers, the metrics endpoints and the client-side proxy transport.

Connections are one-request-per-connection (``Connection: close``): the
testbed's request rates are modest, localhost connection setup is cheap,
and per-request connections make abandoning a timed-out attempt trivial
— closing the socket is the cancellation, exactly like a client tearing
down a TCP connection mid-request.
"""

from __future__ import annotations

import asyncio

from repro.errors import MeshError

# A request/status line plus a handful of headers; anything bigger is not
# something this testbed ever sends.
_MAX_HEADER_BYTES = 16384

_REASONS = {200: "OK", 404: "Not Found", 500: "Internal Server Error",
            503: "Service Unavailable"}


async def read_head(reader: asyncio.StreamReader) -> tuple[str, list[str]]:
    """Read one request or response head (first line + header lines).

    Returns ``(first_line, header_lines)``; raises :class:`MeshError` on
    EOF before a complete head or on an oversized head.
    """
    head = await reader.readuntil(b"\r\n\r\n")
    if len(head) > _MAX_HEADER_BYTES:
        raise MeshError("HTTP head too large")
    lines = head.decode("latin-1").split("\r\n")
    first, headers = lines[0], [line for line in lines[1:] if line]
    if not first:
        raise MeshError("empty HTTP head")
    return first, headers


def parse_request_line(line: str) -> tuple[str, str]:
    """``"GET /work HTTP/1.1"`` → ``("GET", "/work")``."""
    parts = line.split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise MeshError(f"malformed request line: {line!r}")
    return parts[0], parts[1]


def parse_status_line(line: str) -> int:
    """``"HTTP/1.1 200 OK"`` → ``200``."""
    parts = line.split(" ", 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/"):
        raise MeshError(f"malformed status line: {line!r}")
    try:
        return int(parts[1])
    except ValueError as exc:
        raise MeshError(f"malformed status code: {line!r}") from exc


def content_length(headers: list[str]) -> int:
    """The Content-Length header value, or 0 when absent."""
    for header in headers:
        name, _sep, value = header.partition(":")
        if name.strip().lower() == "content-length":
            try:
                return int(value.strip())
            except ValueError as exc:
                raise MeshError(f"bad Content-Length: {value!r}") from exc
    return 0


def response_bytes(status: int, body: bytes,
                   content_type: str = "text/plain") -> bytes:
    """Serialise one ``Connection: close`` HTTP response."""
    reason = _REASONS.get(status, "Unknown")
    head = (f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n")
    return head.encode("latin-1") + body


def request_bytes(method: str, path: str, host: str) -> bytes:
    """Serialise one ``Connection: close`` HTTP request (no body)."""
    return (f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}\r\n"
            f"Connection: close\r\n\r\n").encode("latin-1")


async def close_writer(writer: asyncio.StreamWriter) -> None:
    """Close a stream writer, swallowing teardown races.

    A peer that already reset the connection (an abandoned, timed-out
    attempt) makes ``wait_closed`` raise; shutdown must not care.
    """
    try:
        writer.close()
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
