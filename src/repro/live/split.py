"""A wall-clock TrafficSplit: the live proxy's weighted routing table.

Mirrors :class:`repro.mesh.traffic_split.TrafficSplit` (SMI semantics:
non-negative integer weights, proportional picks, all-zero fallback to
uniform) but lives outside the simulator: ``set_weights`` — the
:class:`repro.core.controller.WeightSink` protocol — applies immediately,
because on the live substrate the control loop's own HTTP scrape cadence
and reconcile interval already provide the propagation latency the
simulator has to model explicitly.

Every applied update is appended to :attr:`history`, giving the weight
trajectory the live demo prints and the smoke tests assert on.
"""

from __future__ import annotations

from repro.errors import ConfigError, MeshError


class LiveTrafficSplit:
    """Weighted backend selection driven by a controller, on wall clock."""

    def __init__(self, service: str, backend_names):
        names = list(backend_names)
        if not names:
            raise ConfigError("LiveTrafficSplit needs at least one backend")
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate backends: {names}")
        self.service = service
        self._weights: dict[str, int] = {name: 1 for name in names}
        self._total = len(names)
        self.update_count = 0
        # (now, weights) per applied update — the weight trajectory.
        self.history: list[tuple[float, dict[str, int]]] = []

    @property
    def weights(self) -> dict[str, int]:
        """The currently active weights (a copy)."""
        return dict(self._weights)

    def backend_names(self) -> list[str]:
        return list(self._weights)

    def set_weights(self, weights: dict[str, int], now: float) -> None:
        """Apply new weights (the controller's WeightSink protocol).

        Unknown backends are rejected; omitted backends keep their
        current weight — the same contract as the simulated TrafficSplit.
        """
        for name, weight in weights.items():
            if name not in self._weights:
                raise MeshError(
                    f"unknown backend {name!r} in split {self.service!r}")
            if weight < 0 or int(weight) != weight:
                raise MeshError(
                    f"weights must be non-negative integers: {name}={weight}")
        self._weights.update({name: int(w) for name, w in weights.items()})
        self._total = sum(self._weights.values())
        self.update_count += 1
        self.history.append((now, dict(self._weights)))

    def pick(self, rng, now: float | None = None) -> str:
        """Pick a backend proportionally to the active weights.

        The ``now`` parameter exists so the split satisfies the same
        ``pick(rng, now)`` shape as :class:`repro.balancers.base.Balancer`
        implementations — the live proxy treats both interchangeably.
        """
        total = self._total
        if total <= 0:
            names = list(self._weights)
            return names[rng.randrange(len(names))]
        threshold = rng.random() * total
        running = 0.0
        for name, weight in self._weights.items():
            running += weight
            if threshold < running:
                return name
        return next(reversed(self._weights))
