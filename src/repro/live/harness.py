"""LiveHarness: the real L3 control plane over a real networked mesh.

Boots N "clusters" as asyncio HTTP replica servers on localhost ports
(latency/failure behaviour driven by the scenario's
:class:`~repro.workloads.profiles.BackendProfile` schedules), routes an
open-loop load through a client-side weighted proxy, exposes the proxy's
telemetry on a Prometheus text ``/metrics`` endpoint, scrapes it over
HTTP into the existing :class:`~repro.telemetry.timeseries.TimeSeriesStore`,
and runs the **unmodified** :class:`~repro.core.controller.L3Controller`
(or the C3 adaptation, or plain round-robin) against it for a wall-clock
duration — one controller implementation, two substrates.

The run returns the same :class:`~repro.bench.coordinator.BenchmarkResult`
the simulation coordinator emits, so every report/analysis path works on
live results unchanged. Shutdown is graceful: the load generator stops
first, in-flight requests get a bounded drain, control loops are
cancelled, listeners close — and the harness records whether anything
leaked (:attr:`LiveHarness.leaked_tasks`, checked by the CI smoke job).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field, replace

from repro.balancers.c3 import C3Config, C3Controller
from repro.balancers.round_robin import RoundRobinBalancer
from repro.bench.coordinator import SCENARIO_SERVICE, BenchmarkResult
from repro.core.config import L3Config
from repro.core.controller import L3Controller
from repro.errors import ConfigError, FaultSpecError
from repro.faults.base import Fault
from repro.faults.spec import parse_fault_spec, validate_fault_spec
from repro.live.chaos import LiveFaultInjector, LiveLinkShaper
from repro.live.clock import WallClock
from repro.live.control import ControllerStepper, LiveControlLoop, ha_replicas
from repro.live.exposition import render_exposition
from repro.live.loadgen import LiveLoadGenerator
from repro.live.proxy import LiveProxy
from repro.live.scrape import HttpScraper
from repro.live.server import MetricsServer, ReplicaServer
from repro.live.split import LiveTrafficSplit
from repro.mesh.cluster import backend_name as make_backend_name
from repro.sim.rng import RngRegistry
from repro.telemetry.query import PromMetricsSource
from repro.telemetry.timeseries import TimeSeriesStore
from repro.workloads.scenarios import Scenario, build_scenario

# Algorithms the live harness can run. The per-request in-proxy policies
# (p2c, failover) are omitted: the live testbed exists to exercise the
# *controller* path (metrics → weights → split).
LIVE_ALGORITHMS = ("round-robin", "l3", "l3-peak", "c3")

# The paper's control cadence (reconcile every 5 s, 10 s windows) assumes
# multi-minute runs; live smoke runs last tens of seconds, so the default
# cadence scales the whole loop down proportionally from this reference.
_PAPER_INTERVAL_S = 5.0


def live_l3_config(reconcile_interval_s: float,
                   base: L3Config | None = None,
                   scrape_interval_s: float | None = None) -> L3Config:
    """An L3Config with the paper's loop proportionally re-timed.

    Every time constant of the control loop (windows, EWMA half-lives,
    staleness horizon) scales by ``reconcile_interval_s / 5 s``, so a
    1-second live cadence behaves like the paper's 5-second loop does
    over a 5x longer run. Non-temporal tunables are taken from ``base``.

    When ``scrape_interval_s`` is given, the metrics window is floored
    at **three** scrape intervals: ``rate()`` needs two samples inside
    the trailing window, and on the wall clock a round's samples land
    up to one interval after the tick that scheduled them (sleep drift,
    concurrent fetches), so the simulator's exactly-two-intervals
    minimum flaps between one and two visible samples live.
    """
    factor = reconcile_interval_s / _PAPER_INTERVAL_S
    base = base or L3Config()
    window_s = base.metrics_window_s * factor
    if scrape_interval_s is not None:
        window_s = max(window_s, 3.0 * scrape_interval_s)
    return replace(
        base,
        reconcile_interval_s=reconcile_interval_s,
        metrics_window_s=window_s,
        latency_half_life_s=base.latency_half_life_s * factor,
        inflight_half_life_s=base.inflight_half_life_s * factor,
        success_half_life_s=base.success_half_life_s * factor,
        rps_half_life_s=base.rps_half_life_s * factor,
        staleness_s=base.staleness_s * factor,
    )


def live_c3_config(reconcile_interval_s: float,
                   scrape_interval_s: float | None = None) -> C3Config:
    """A C3Config re-timed the same way as :func:`live_l3_config`."""
    factor = reconcile_interval_s / _PAPER_INTERVAL_S
    base = C3Config()
    window_s = base.metrics_window_s * factor
    if scrape_interval_s is not None:
        window_s = max(window_s, 3.0 * scrape_interval_s)
    return C3Config(
        reconcile_interval_s=reconcile_interval_s,
        metrics_window_s=window_s,
        latency_half_life_s=base.latency_half_life_s * factor,
        queue_half_life_s=base.queue_half_life_s * factor,
    )


def weight_points(weights: dict[str, int]) -> dict[str, float]:
    """Weights normalised to shares of 100 ("weight points")."""
    total = sum(weights.values())
    if total <= 0:
        share = 100.0 / max(len(weights), 1)
        return {name: share for name in weights}
    return {name: 100.0 * w / total for name, w in weights.items()}


@dataclass
class LiveConfig:
    """Environment knobs of one live run."""

    algorithm: str = "l3"
    duration_s: float = 30.0
    port_base: int = 18080
    host: str = "127.0.0.1"
    client_cluster: str = "cluster-1"
    seed: int = 1
    # Offered load; None uses the scenario's own RPS series (typically
    # hundreds of RPS — heavier than a CI smoke run needs).
    rps: float | None = 100.0
    scrape_interval_s: float = 1.0
    reconcile_interval_s: float = 1.0
    l3_config: L3Config | None = None
    replica_capacity: int = 64
    max_retries: int = 0
    retry_backoff_s: float = 0.0
    # Live runs default to a bounded per-attempt deadline: a wedged
    # localhost socket must not hang a CI job.
    request_timeout_s: float | None = 5.0
    outlier_ejection: object | None = None
    # Controller replicas; > 1 runs lease-based HA (satellite of §4).
    ha_replicas: int = 1
    lease_ttl_s: float = 3.0
    drain_s: float = 5.0
    arrival: str = "uniform"
    # Chaos: a --faults spec string or a parsed Fault list; times are
    # seconds into the run. None runs fault-free (no shaper, no task).
    faults: object = None
    # Backoff shape of the proxy's retries (defaults: constant, as ever).
    retry_backoff_multiplier: float = 1.0
    retry_backoff_max_s: float | None = None
    retry_jitter: bool = False

    def __post_init__(self):
        if self.algorithm not in LIVE_ALGORITHMS:
            raise ConfigError(
                f"algorithm must be one of {LIVE_ALGORITHMS}: "
                f"{self.algorithm!r}")
        if self.duration_s <= 0:
            raise ConfigError(
                f"duration must be positive: {self.duration_s}")
        for name in ("scrape_interval_s", "reconcile_interval_s",
                     "lease_ttl_s"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        if self.drain_s < 0:
            raise ConfigError(f"drain_s must be >= 0: {self.drain_s}")
        if self.ha_replicas < 1:
            raise ConfigError(
                f"ha_replicas must be >= 1: {self.ha_replicas}")
        if not 0 < self.port_base < 65536 - 256:
            raise ConfigError(f"port_base out of range: {self.port_base}")


@dataclass
class _LiveParts:
    """Everything the boot phase wires together (torn down in reverse)."""

    servers: dict[str, ReplicaServer] = field(default_factory=dict)
    metrics_server: MetricsServer | None = None
    proxy: LiveProxy | None = None
    split: LiveTrafficSplit | None = None
    controllers: list = field(default_factory=list)
    replicas: list = field(default_factory=list)
    lease: object | None = None
    scraper: HttpScraper | None = None
    control: LiveControlLoop | None = None
    loadgen: LiveLoadGenerator | None = None
    shaper: LiveLinkShaper | None = None
    injector: LiveFaultInjector | None = None


class LiveHarness:
    """Orchestrates one live run end to end."""

    def __init__(self, scenario: str | Scenario,
                 config: LiveConfig | None = None):
        if isinstance(scenario, str):
            scenario = build_scenario(scenario)
        self.scenario = scenario
        self.config = config or LiveConfig()
        self.clock = None
        self.records: list = []
        self.parts = _LiveParts()
        # Post-run shutdown accounting, read by the CLI and CI smoke job.
        self.leaked_tasks: list[str] = []
        self.ports: list[int] = []

    # ------------------------------------------------------------- boot #

    def _parse_faults(self) -> list[Fault]:
        """The run's fault schedule, validated against this topology.

        Spec strings and pre-built fault lists both go through
        :func:`~repro.faults.spec.validate_fault_spec` with the
        scenario's clusters and the harness's service, plus the live
        substrate's own constraints — controller-crash needs HA mode
        and an existing replica index, and each live backend has
        exactly one (process-level) replica — so a schedule that cannot
        run fails before a single port is bound.
        """
        from repro.faults.faults import ControllerCrash, ControllerPause

        config = self.config
        if config.faults is None:
            return []
        clusters = set(self.scenario.clusters())
        services = {SCENARIO_SERVICE}
        if isinstance(config.faults, str):
            faults = parse_fault_spec(config.faults, clusters=clusters,
                                      services=services)
        else:
            faults = list(config.faults)
            validate_fault_spec(faults, clusters=clusters,
                                services=services)
        for fault in faults:
            if isinstance(fault, (ControllerCrash, ControllerPause)) \
                    and config.algorithm == "round-robin":
                raise FaultSpecError(
                    f"fault spec: {fault} targets the controller, but "
                    f"round-robin runs without one")
            if isinstance(fault, ControllerCrash):
                if config.ha_replicas < 2:
                    raise FaultSpecError(
                        f"fault spec: {fault} needs HA mode "
                        f"(ha_replicas > 1); got {config.ha_replicas}")
                if fault.replica_index >= config.ha_replicas:
                    raise FaultSpecError(
                        f"fault spec: {fault} names replica "
                        f"{fault.replica_index}, but only "
                        f"{config.ha_replicas} run")
            index = getattr(fault, "replica_index", None)
            if not isinstance(fault, ControllerCrash) and index:
                raise FaultSpecError(
                    f"fault spec: {fault} names replica {index}, but "
                    f"each live backend is a single server (index 0)")
        return faults

    def _backend_addresses(self) -> list[str]:
        return [make_backend_name(SCENARIO_SERVICE, cluster)
                for cluster in self.scenario.clusters()]

    async def _boot_servers(self, rng: RngRegistry) -> dict[str, tuple]:
        """Start one replica server per cluster; returns name → address."""
        config = self.config
        addresses: dict[str, tuple[str, int]] = {}
        next_port = config.port_base
        for cluster in self.scenario.clusters():
            name = make_backend_name(SCENARIO_SERVICE, cluster)
            server = ReplicaServer(
                name, self.scenario.cluster_profiles[cluster],
                rng.stream(f"live-server-{cluster}"), self.clock,
                host=config.host, capacity=config.replica_capacity)
            port = await server.start(next_port)
            self.parts.servers[name] = server
            addresses[name] = (config.host, port)
            self.ports.append(port)
            next_port = port + 1
        return addresses

    def _build_control_plane(self, backend_names, store: TimeSeriesStore):
        """Picker + controllers for the configured algorithm."""
        config = self.config
        if config.algorithm == "round-robin":
            return RoundRobinBalancer(backend_names), []

        split = LiveTrafficSplit(SCENARIO_SERVICE, backend_names)
        self.parts.split = split
        source = PromMetricsSource(store, scope=config.client_cluster)

        def build_controller():
            if config.algorithm == "c3":
                return C3Controller(
                    list(backend_names), source, split,
                    config=live_c3_config(config.reconcile_interval_s,
                                          config.scrape_interval_s))
            l3 = live_l3_config(config.reconcile_interval_s,
                                base=config.l3_config,
                                scrape_interval_s=config.scrape_interval_s)
            l3 = replace(l3, use_peak_ewma=(config.algorithm == "l3-peak"))
            return L3Controller(list(backend_names), source, split,
                                config=l3, start_time=0.0)

        controllers = [build_controller()
                       for _ in range(config.ha_replicas)]
        return split, controllers

    # -------------------------------------------------------------- run #

    def run(self) -> BenchmarkResult:
        """Synchronous entry point: boot, run, tear down, report."""
        return asyncio.run(self.run_async())

    async def run_async(self) -> BenchmarkResult:
        config = self.config
        self.clock = self.clock or WallClock()
        rng = RngRegistry(config.seed)
        store = TimeSeriesStore()
        faults = self._parse_faults()

        addresses = await self._boot_servers(rng)
        backend_names = list(addresses)
        picker, controllers = self._build_control_plane(
            backend_names, store)
        self.parts.controllers = controllers

        shaper = LiveLinkShaper() if faults else None
        self.parts.shaper = shaper
        proxy = LiveProxy(
            config.client_cluster, SCENARIO_SERVICE, addresses,
            picker, rng.stream("live-proxy"), self.clock,
            max_retries=config.max_retries,
            retry_backoff_s=config.retry_backoff_s,
            retry_backoff_multiplier=config.retry_backoff_multiplier,
            retry_backoff_max_s=config.retry_backoff_max_s,
            retry_jitter=config.retry_jitter,
            request_timeout_s=config.request_timeout_s,
            outlier_ejection=config.outlier_ejection,
            link=shaper)
        self.parts.proxy = proxy

        metrics_server = MetricsServer(
            lambda: render_exposition(proxy.telemetry_bundles()),
            host=config.host)
        metrics_port = await metrics_server.start(
            max(self.ports, default=config.port_base) + 1)
        self.parts.metrics_server = metrics_server
        self.ports.append(metrics_port)

        targets = [(config.host, metrics_port)] + list(addresses.values())
        scraper = HttpScraper(store, targets, self.clock,
                              interval_s=config.scrape_interval_s)
        self.parts.scraper = scraper

        control = None
        if controllers:
            if config.ha_replicas > 1:
                lease, replicas = ha_replicas(
                    controllers, config.lease_ttl_s, self.clock)
                self.parts.lease = lease
                self.parts.replicas = replicas
                steppers = replicas
            else:
                steppers = [ControllerStepper(controllers[0])]
            control = LiveControlLoop(steppers, self.clock,
                                     config.reconcile_interval_s)
        self.parts.control = control

        rps = self.scenario.rps if config.rps is None else config.rps
        loadgen = LiveLoadGenerator(
            proxy, rps, rng.stream("live-loadgen"), self.records,
            self.clock, arrival=config.arrival)
        self.parts.loadgen = loadgen

        chaos_task = None
        if faults:
            injector = LiveFaultInjector(
                SCENARIO_SERVICE, self.parts.servers, shaper, self.clock,
                metrics_server=metrics_server, controllers=controllers,
                replicas=self.parts.replicas)
            injector.schedule_all(faults)
            self.parts.injector = injector
            chaos_task = asyncio.ensure_future(injector.run())
            chaos_task.set_name("chaos-injector")

        scrape_task = asyncio.ensure_future(scraper.run())
        control_task = (asyncio.ensure_future(control.run())
                        if control is not None else None)
        try:
            await loadgen.run(config.duration_s)
        finally:
            await self._shutdown(scrape_task, control_task, chaos_task)
        return self._result()

    async def _shutdown(self, scrape_task, control_task,
                        chaos_task=None) -> None:
        """Drain in-flight requests, stop loops, release ports.

        The chaos injector dies first — no new faults land mid-teardown
        — and everything it stalled (blackholed handlers, broken
        /metrics pages, partitioned links) is released, so requests
        parked on injected silence resolve during the drain instead of
        showing up in the leak report. A run that ends with a replica
        still crashed must exit as clean as a fault-free one.
        """
        config = self.config
        if chaos_task is not None:
            chaos_task.cancel()
            await asyncio.gather(chaos_task, return_exceptions=True)
        if self.parts.injector is not None:
            self.parts.injector.close()
        if self.parts.shaper is not None:
            self.parts.shaper.release()
        for server in self.parts.servers.values():
            server.release_stalls()
        if self.parts.metrics_server is not None:
            self.parts.metrics_server.release_stalls()
        loadgen = self.parts.loadgen
        if loadgen is not None and loadgen.inflight:
            _done, pending = await asyncio.wait(
                set(loadgen.inflight), timeout=config.drain_s)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)

        background = [t for t in (scrape_task, control_task)
                      if t is not None]
        for task in background:
            task.cancel()
        await asyncio.gather(*background, return_exceptions=True)

        if self.parts.metrics_server is not None:
            await self.parts.metrics_server.stop()
        for server in self.parts.servers.values():
            await server.stop()

        current = asyncio.current_task()
        self.leaked_tasks = sorted(
            task.get_name() for task in asyncio.all_tasks()
            if task is not current and not task.done())

    # ----------------------------------------------------------- report #

    @property
    def clean_shutdown(self) -> bool:
        """True when teardown left no running tasks behind."""
        return not self.leaked_tasks

    @property
    def weight_history(self) -> list[tuple[float, dict[str, int]]]:
        """The split's applied-weight trajectory (empty for round-robin)."""
        split = self.parts.split
        return list(split.history) if split is not None else []

    @property
    def fault_log(self) -> list[tuple[float, str]]:
        """Applied/reverted faults as ``(run_time_s, description)``."""
        injector = self.parts.injector
        return list(injector.log) if injector is not None else []

    @property
    def chaos_errors(self) -> list[str]:
        """Faults that could not run (misconfigured experiments)."""
        injector = self.parts.injector
        return list(injector.errors) if injector is not None else []

    @property
    def lease_transitions(self) -> list[tuple[float, str]]:
        """Leadership changes as ``(run_time_s, replica_name)`` (HA)."""
        lease = self.parts.lease
        return list(lease.transitions) if lease is not None else []

    def final_weights(self) -> dict[str, int]:
        """The last weights the leader pushed (empty for round-robin)."""
        for controller in self.parts.controllers:
            if controller.last_weights:
                return dict(controller.last_weights)
        return {}

    def _result(self) -> BenchmarkResult:
        return BenchmarkResult(
            scenario=self.scenario.name,
            algorithm=self.config.algorithm,
            seed=self.config.seed,
            duration_s=self.config.duration_s,
            records=list(self.records),
            controller_weights=self.final_weights(),
        )


def run_live(scenario: str | Scenario, algorithm: str = "l3",
             duration_s: float = 30.0, port_base: int = 18080,
             seed: int = 1, faults: object = None,
             config: LiveConfig | None = None,
             ) -> tuple[BenchmarkResult, LiveHarness]:
    """Convenience wrapper: build a harness, run it, return both.

    ``config`` overrides the individual keyword arguments when given.
    """
    if config is None:
        config = LiveConfig(algorithm=algorithm, duration_s=duration_s,
                            port_base=port_base, seed=seed, faults=faults)
    harness = LiveHarness(scenario, config)
    return harness.run(), harness
