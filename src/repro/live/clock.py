"""Wall-clock time for the live testbed.

The simulator's convention is "seconds since the run started, starting at
0.0"; every reusable component (EWMAs, the controller, the lease lock,
the time-series store) takes ``now`` floats in that frame. The live
testbed keeps the convention by measuring monotonic wall-clock time
relative to the harness boot — so :class:`~repro.core.controller.L3Controller`
and :class:`~repro.telemetry.query.PromMetricsSource` run unchanged on
either substrate.

Tests that must not sleep use a plain ``lambda: t`` (or
:class:`FakeClock`) wherever a clock is expected.
"""

from __future__ import annotations

import time


class WallClock:
    """Monotonic seconds since construction (the live run's time origin)."""

    __slots__ = ("_t0",)

    def __init__(self):
        self._t0 = time.monotonic()

    def __call__(self) -> float:
        return time.monotonic() - self._t0


class FakeClock:
    """A manually-advanced clock for deterministic, sleep-free tests."""

    __slots__ = ("now",)

    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> float:
        """Move time forward and return the new reading."""
        self.now += seconds
        return self.now
