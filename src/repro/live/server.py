"""asyncio HTTP replica servers whose behaviour follows a BackendProfile.

One :class:`ReplicaServer` stands in for a whole cluster-local deployment
of the service: ``GET /work`` holds a bounded concurrency slot (the
replica-capacity semantics of :mod:`repro.mesh.replica`), sleeps the
service time sampled from the profile's current log-normal distribution,
and answers 200 or 500 per the profile's failure schedule — the failure
decision is drawn when execution starts and failed requests occupy the
server for the profile's (fast) failure latency, mirroring the simulated
replica's semantics. ``GET /metrics`` serves the server-side queue gauge
in Prometheus text format under the ``server|<backend>`` series name, the
feedback channel the C3 adaptation reads.

:class:`MetricsServer` is the proxy-side twin: a bare ``/metrics``
endpoint over a render callable.

Both servers bind with port-collision retry (:func:`start_http_server`)
and shut down gracefully: the listener closes first, in-flight handlers
get a bounded drain, stragglers are cancelled.

Both are also chaos targets (:mod:`repro.live.chaos`): a
:class:`ReplicaServer` can :meth:`~ReplicaServer.crash` in the
simulator's two down modes — ``fail_fast`` closes the listener so new
connections are refused at the OS level, ``blackhole`` keeps accepting
but never answers — and :meth:`~ReplicaServer.restart` re-binds the
same port. Any server's ``/metrics`` page can be failed independently
(:meth:`~_HttpServerBase.fail_metrics`: 500s or accept-then-stall), the
live face of a scrape outage. Stalled handlers park on an internal gate
that teardown and restarts release, so a chaos run never strands tasks.
"""

from __future__ import annotations

import asyncio
import errno

from repro.errors import MeshError
from repro.faults.faults import SCRAPE_OUTAGE_MODES
from repro.live import httpwire
from repro.live.exposition import render_exposition
from repro.mesh.replica import DOWN_MODES
from repro.telemetry import names as metric_names

# How many consecutive ports to try before giving up on a bind.
PORT_RETRY_SPAN = 64


async def start_http_server(handler, host: str, port: int,
                            max_tries: int = PORT_RETRY_SPAN,
                            ) -> tuple[asyncio.Server, int]:
    """Bind an asyncio server, walking past ports already in use.

    Returns ``(server, bound_port)``; raises :class:`MeshError` when all
    ``max_tries`` consecutive ports are taken.
    """
    for offset in range(max_tries):
        candidate = port + offset
        try:
            server = await asyncio.start_server(handler, host, candidate)
        except OSError as exc:
            if exc.errno in (errno.EADDRINUSE, errno.EACCES):
                continue
            raise
        return server, candidate
    raise MeshError(
        f"no free port in [{port}, {port + max_tries}) on {host}")


class _HttpServerBase:
    """Common listener lifecycle: bind, track handlers, drain, close."""

    def __init__(self, host: str = "127.0.0.1"):
        self.host = host
        self.port: int | None = None
        self._server: asyncio.Server | None = None
        self._handlers: set[asyncio.Task] = set()
        # Injected /metrics failure (scrape outage): None, "error", "stall".
        self.metrics_fail_mode: str | None = None
        # Handlers told to stall (blackhole / stalled scrapes) park here;
        # restarts and teardown release them so no task is left behind.
        self._stall_gate = asyncio.Event()
        self._stopped = False

    async def start(self, port: int) -> int:
        """Bind (with collision retry) and return the actual port."""
        if self._server is not None:
            raise MeshError("server already started")
        self._server, self.port = await start_http_server(
            self._handle_connection, self.host, port)
        return self.port

    async def stop(self, drain_s: float = 2.0) -> None:
        """Stop listening, drain in-flight handlers, cancel stragglers."""
        self._stopped = True
        self.release_stalls()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._handlers:
            done, pending = await asyncio.wait(
                set(self._handlers), timeout=drain_s)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        self._handlers.clear()

    # ----------------------------------------- chaos hooks (scrapes) -- #

    def fail_metrics(self, mode: str = "error") -> None:
        """Break this server's /metrics page (live scrape outage)."""
        if mode not in SCRAPE_OUTAGE_MODES:
            raise MeshError(
                f"metrics fail mode must be one of {SCRAPE_OUTAGE_MODES}: "
                f"{mode!r}")
        self.metrics_fail_mode = mode

    def restore_metrics(self) -> None:
        """Heal the /metrics page; stalled scrape handlers finish (500)."""
        self.metrics_fail_mode = None
        self.release_stalls()

    def release_stalls(self) -> None:
        """Unpark every stalled handler (they answer an error and close).

        The clients those handlers were serving have long since timed
        out; releasing just lets the handler tasks finish instead of
        leaking into the harness's shutdown report.
        """
        gate, self._stall_gate = self._stall_gate, asyncio.Event()
        gate.set()

    async def _stalled(self) -> None:
        """Park the current handler until the next release."""
        await self._stall_gate.wait()

    async def _metrics_page(self, render) -> tuple[int, bytes]:
        """Serve /metrics through the injected failure mode, if any."""
        mode = self.metrics_fail_mode
        if mode == "stall":
            await self._stalled()
        if mode is not None:
            return 500, b"scrape outage injected\n"
        return 200, render().encode("utf-8")

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        try:
            try:
                first, _headers = await httpwire.read_head(reader)
                _method, path = httpwire.parse_request_line(first)
            except (MeshError, asyncio.IncompleteReadError,
                    asyncio.LimitOverrunError, ConnectionError):
                return
            status, body = await self._respond(path)
            writer.write(httpwire.response_bytes(status, body))
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                pass
        finally:
            await httpwire.close_writer(writer)

    async def _respond(self, path: str) -> tuple[int, bytes]:
        raise NotImplementedError  # pragma: no cover - abstract


class ReplicaServer(_HttpServerBase):
    """One backend deployment: profile-driven work plus a /metrics page."""

    def __init__(self, backend_name: str, profile, rng, clock,
                 host: str = "127.0.0.1", capacity: int = 64):
        """Args:
            backend_name: mesh-style backend name (``"api/cluster-2"``).
            profile: :class:`~repro.workloads.profiles.BackendProfile`
                driving service times and failures.
            rng: private ``random.Random`` stream.
            clock: zero-argument callable, seconds since the run started
                (profiles are functions of run time, not absolute time).
            host: bind address.
            capacity: concurrent requests actually executing; the rest
                queue, which is what the server_queue gauge measures.
        """
        super().__init__(host)
        if capacity < 1:
            raise MeshError(f"capacity must be >= 1: {capacity}")
        self.backend_name = backend_name
        self.profile = profile
        self.rng = rng
        self.clock = clock
        self.capacity = capacity
        self._slots = asyncio.Semaphore(capacity)
        # Permits to retire lazily after a capacity shrink: instead of
        # releasing its slot, a finishing request pays one unit of debt.
        self._capacity_debt = 0
        # How many logical replicas this deployment currently stands in
        # for — the live replica_count gauge. A live autoscaler
        # (repro.autoscale.live.LiveCapacityTarget) resizes capacity in
        # replica-sized quanta and keeps this in step.
        self.replica_units = 1
        # Requests executing or queued — the server-side feedback gauge.
        self.inflight = 0
        self.requests_served = 0
        self.failures_served = 0
        # Injected down state (None = up); see crash()/restart().
        self.down_mode: str | None = None
        self.crash_count = 0
        self.restart_count = 0

    # ------------------------------------------- chaos hooks (crash) -- #

    async def crash(self, mode: str = "fail_fast") -> None:
        """Take the replica down (live fault injection).

        ``fail_fast`` closes the listener: new connections are refused
        at the OS level (ECONNREFUSED — the platform's "pod is gone"),
        while already-accepted requests finish. ``blackhole`` keeps the
        listener: connections are accepted, bytes are read, and nothing
        ever answers — only a client-side deadline turns the silence
        into a signal.
        """
        if mode not in DOWN_MODES:
            raise MeshError(
                f"down mode must be one of {DOWN_MODES}: {mode!r}")
        self.down_mode = mode
        self.crash_count += 1
        if mode == "fail_fast" and self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def restart(self) -> None:
        """Bring a crashed replica back up (re-bind the same port).

        Handlers stalled on a blackhole are released — their clients
        already timed out, so they answer into closed sockets and exit.
        Re-binding walks past a stolen port like :meth:`start` does; the
        original port is free in practice because this server owned it.
        """
        self.down_mode = None
        self.restart_count += 1
        self.release_stalls()
        if not self._stopped and self._server is None \
                and self.port is not None:
            self._server, self.port = await start_http_server(
                self._handle_connection, self.host, self.port)

    async def _respond(self, path: str) -> tuple[int, bytes]:
        if self.down_mode == "blackhole":
            # Accept-then-stall: hold the connection open, answer only
            # once a restart (or teardown) releases the gate — by which
            # time the client is gone.
            await self._stalled()
            return 503, b"replica down\n"
        if path == "/metrics":
            return await self._metrics_page(self.render_metrics)
        if path != "/work":
            return 404, b"not found\n"
        return await self._work()

    def set_capacity(self, capacity: int) -> None:
        """Resize the concurrency limit (live horizontal scaling).

        Growth releases fresh permits immediately; shrinkage takes
        effect as in-flight requests drain — each finishing request
        retires one over-quota slot instead of releasing it, so nothing
        already executing is interrupted (connection draining).
        """
        if capacity < 1:
            raise MeshError(f"capacity must be >= 1: {capacity}")
        delta = capacity - self.capacity
        self.capacity = capacity
        if delta > 0:
            # Growth first pays down any outstanding retirement debt.
            settled = min(self._capacity_debt, delta)
            self._capacity_debt -= settled
            for _ in range(delta - settled):
                self._slots.release()
        else:
            self._capacity_debt += -delta

    async def _work(self) -> tuple[int, bytes]:
        self.inflight += 1
        await self._slots.acquire()
        try:
            now = self.clock()
            if self.profile.sample_failure(self.rng, now):
                await asyncio.sleep(self.profile.failure_latency_s)
                self.failures_served += 1
                return 500, b"injected failure\n"
            service_time = self.profile.sample_service_time(self.rng, now)
            await asyncio.sleep(service_time)
            self.requests_served += 1
            return 200, b"ok\n"
        finally:
            if self._capacity_debt > 0:
                self._capacity_debt -= 1
            else:
                self._slots.release()
            self.inflight -= 1

    def render_metrics(self) -> str:
        """The server-side gauge page (series ``server|<backend>``)."""
        series = metric_names.server_series_name(self.backend_name)
        return render_exposition(
            targets=(),
            gauges=[(series, metric_names.SERVER_QUEUE,
                     lambda: self.inflight),
                    (series, metric_names.REPLICA_COUNT,
                     lambda: self.replica_units)])


class MetricsServer(_HttpServerBase):
    """A bare /metrics endpoint serving a render callable's output."""

    def __init__(self, render, host: str = "127.0.0.1"):
        """Args:
            render: zero-argument callable returning the exposition text.
            host: bind address.
        """
        super().__init__(host)
        self.render = render

    async def _respond(self, path: str) -> tuple[int, bytes]:
        if path != "/metrics":
            return 404, b"not found\n"
        return await self._metrics_page(self.render)
