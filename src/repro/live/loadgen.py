"""Open-loop load generation on wall-clock time.

The live twin of :class:`repro.workloads.loadgen.OpenLoopLoadGenerator`:
arrival times follow the (time-varying) RPS schedule regardless of how
slowly responses come back — each request runs as its own asyncio task
and latency is measured from the *intended* send time, so a slow backend
cannot slow the load down and hide its own badness (the
coordinated-omission correction wrk2 popularised). When the event loop
falls behind the schedule (a burst of slow callbacks), the generator
does not sleep for already-due arrivals: it fires them immediately,
back-to-back, preserving the open-loop schedule as closely as the host
allows.
"""

from __future__ import annotations

import asyncio

from repro.errors import ConfigError
from repro.workloads.profiles import PiecewiseSeries, constant_series

_ARRIVALS = ("uniform", "poisson")


class LiveLoadGenerator:
    """Schedules open-loop requests against a live proxy."""

    def __init__(self, proxy, rps, rng, records: list, clock,
                 arrival: str = "uniform"):
        """Args:
            proxy: anything with an async
                ``dispatch(intended_start_s) -> RequestRecord``.
            rps: offered load; a float or a :class:`PiecewiseSeries`.
            rng: private random stream (Poisson gaps).
            records: list completed request records are appended to.
            clock: zero-argument callable, seconds since the run started.
            arrival: ``"uniform"`` (wrk2-style spacing) or ``"poisson"``.
        """
        if arrival not in _ARRIVALS:
            raise ConfigError(
                f"arrival must be one of {_ARRIVALS}: {arrival!r}")
        if isinstance(rps, (int, float)):
            rps = constant_series(float(rps))
        if not isinstance(rps, PiecewiseSeries):
            raise ConfigError(f"rps must be a number or series: {rps!r}")
        self.proxy = proxy
        self.rps = rps
        self.rng = rng
        self.records = records
        self.clock = clock
        self.arrival = arrival
        self.generated = 0
        # In-flight request tasks, for the harness's drain phase.
        self.inflight: set[asyncio.Task] = set()

    def _gap(self, now: float) -> float:
        rate = max(self.rps.value_at(now), 1e-9)
        if self.arrival == "poisson":
            return self.rng.expovariate(rate)
        return 1.0 / rate

    async def _one_request(self, intended_start: float) -> None:
        record = await self.proxy.dispatch(intended_start)
        self.records.append(record)

    async def run(self, duration_s: float) -> None:
        """Emit requests for ``duration_s`` seconds, then return.

        In-flight requests at the deadline keep running in their own
        tasks (tracked in :attr:`inflight` for the harness to drain).
        """
        if duration_s <= 0:
            raise ConfigError(f"duration must be positive: {duration_s}")
        start = self.clock()
        deadline = start + duration_s
        # The intended-arrival trajectory: advance by the schedule's
        # gaps, sleeping only for the portion still in the future.
        t = start
        while True:
            gap = self._gap(t)
            t += gap
            if t >= deadline:
                return
            delay = t - self.clock()
            if delay > 0:
                await asyncio.sleep(delay)
            task = asyncio.ensure_future(self._one_request(t))
            self.inflight.add(task)
            task.add_done_callback(self.inflight.discard)
            self.generated += 1
