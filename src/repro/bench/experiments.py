"""One experiment per table/figure of the paper's evaluation (§5).

Every public function regenerates the data behind one figure and returns a
structure holding both the measured values and, where the paper reports
concrete numbers, the paper's values for side-by-side comparison. Each has
a matching module under ``benchmarks/``; EXPERIMENTS.md records the
paper-vs-measured comparison produced by these functions.

Durations default to paper scale (10-minute scenario runs, three
repetitions); pass smaller values for quick runs — the scenario traces are
fixed 10-minute recordings regardless, so shorter runs measure a prefix.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from repro.analysis.stats import relative_decrease
from repro.bench.coordinator import run_hotel_benchmark, run_scenario_benchmark
from repro.bench.parallel import Cell, run_cells
from repro.bench.results import ComparisonTable
from repro.core.config import L3Config
from repro.core.rate_control import adjust_weight
from repro.core.weighting import WeightingConfig
from repro.workloads.scenarios import TRACE_PERIOD_S, build_scenario

ALGORITHMS = ("round-robin", "c3", "l3")

# Paper-reported values (ms / percent), used for the EXPERIMENTS.md tables.
PAPER_FIG9_P99_MS = {"round-robin": 93.0, "c3": 88.3, "l3": 68.8}
PAPER_FIG10_P99_MS = {
    "scenario-1": {"round-robin": 459.4, "c3": 391.2, "l3": 359.6},
    "scenario-2": {"round-robin": 115.4, "c3": 82.4, "l3": 74.7},
    "scenario-3": {"round-robin": 513.3, "c3": 464.9, "l3": 415.0},
    "scenario-4": {"round-robin": 563.7, "c3": 538.0, "l3": 512.7},
    "scenario-5": {"round-robin": 116.4, "c3": 109.2, "l3": 105.7},
}
PAPER_FIG8_P99_MS = {"round-robin": 805.7, "l3-peak": 590.4, "l3": 577.1}
PAPER_FIG11_P99_MS = {
    "failure-1": {"round-robin": 447.5, "c3": 364.2, "l3": 364.9},
    "failure-2": {"round-robin": 117.2, "c3": 84.6, "l3": 76.2},
}
PAPER_FIG12_SUCCESS_PCT = {
    "failure-1": {"round-robin": 91.4, "c3": 91.1, "l3": 92.4},
    "failure-2": {"round-robin": 98.6, "c3": 98.5, "l3": 98.6},
}


@dataclass
class SeriesExperiment:
    """A figure that is a set of named time series (Figs. 1, 2, 4, 6)."""

    figure: str
    title: str
    series: dict = field(default_factory=dict)

    def render(self) -> str:
        lines = [f"{self.figure}: {self.title}"]
        for name, points in self.series.items():
            head = ", ".join(f"({t:.0f}s, {v:.1f})" for t, v in points[:4])
            lines.append(f"  {name}: {len(points)} points [{head} ...]")
        return "\n".join(lines)


@dataclass
class BarExperiment:
    """A figure that is a bar comparison, with paper values attached."""

    figure: str
    title: str
    table: ComparisonTable
    paper: dict = field(default_factory=dict)

    def render(self) -> str:
        out = [self.table.render()]
        if self.paper:
            out.append(f"paper reports: {self.paper}")
        return "\n".join(out)


def _summarize(results) -> dict:
    """Average the headline metrics over one row's repetition results."""
    return {
        "p50_ms": statistics.mean(r.p50_ms for r in results),
        "p90_ms": statistics.mean(r.p90_ms for r in results),
        "p99_ms": statistics.mean(r.p99_ms for r in results),
        "success_rate": statistics.mean(r.success_rate for r in results),
    }


def _sweep_rows(rows, repetitions: int, seed0: int,
                jobs: int | None = 1) -> dict:
    """Run every (row × repetition) cell of a figure sweep.

    Args:
        rows: ``[(label, runner, kwargs), ...]`` — one table row each;
            ``runner(seed=..., **kwargs)`` must return a
            :class:`~repro.bench.coordinator.BenchmarkResult`.
        repetitions: seeds per row (``seed0 + rep``), averaged.
        jobs: worker processes for the sweep (1 = serial, None = CPUs).
            The independent cells are merged back in row order, so the
            returned metrics are identical for every value of ``jobs``.

    Returns:
        ``{label: {"p50_ms": ..., "p90_ms": ..., "p99_ms": ...,
        "success_rate": ...}}`` in row order.
    """
    cells = [
        Cell(id=f"{label}#rep{rep}", fn=runner,
             kwargs={**kwargs, "seed": seed0 + rep})
        for label, runner, kwargs in rows
        for rep in range(repetitions)
    ]
    outcomes = run_cells(cells, jobs=jobs)
    return {
        label: _summarize([
            outcomes[f"{label}#rep{rep}"].unwrap()
            for rep in range(repetitions)
        ])
        for label, _runner, _kwargs in rows
    }




# --------------------------------------------------------------------- #
# Fig. 1 and Fig. 2 — scenario-1/2 trace characteristics
# --------------------------------------------------------------------- #

def fig1_2_trace_characteristics(scenarios=("scenario-1", "scenario-2"),
                                 step_s: float = 10.0) -> SeriesExperiment:
    """Figs. 1 & 2: per-cluster P50/P99 latency and RPS of the traces.

    These figures show the *input traces* themselves (TIER Mobility
    captures); our equivalent renders the synthetic scenarios' latency and
    RPS series on the paper's 10-minute axis.
    """
    experiment = SeriesExperiment(
        "Fig. 1 + Fig. 2",
        "scenario trace characteristics (per-cluster P50/P99 ms, RPS)")
    times = [i * step_s for i in range(int(TRACE_PERIOD_S / step_s) + 1)]
    for name in scenarios:
        scenario = build_scenario(name)
        for cluster, profile in sorted(scenario.cluster_profiles.items()):
            experiment.series[f"{name}/{cluster}/p50_ms"] = [
                (t, profile.median_latency_s.value_at(t) * 1000.0)
                for t in times
            ]
            experiment.series[f"{name}/{cluster}/p99_ms"] = [
                (t, profile.p99_latency_s.value_at(t) * 1000.0)
                for t in times
            ]
        experiment.series[f"{name}/rps"] = [
            (t, scenario.rps.value_at(t)) for t in times
        ]
    return experiment


# --------------------------------------------------------------------- #
# Fig. 4 — rate-control adjustment curves
# --------------------------------------------------------------------- #

def fig4_rate_control_curves(points: int = 81) -> SeriesExperiment:
    """Fig. 4: output weight vs relative change for Algorithm 2.

    (a) ``w_b = 2000 > w_mu = 1000``; (b) ``w_b = 500 < w_mu = 1000``;
    swept over relative change c in [-1, 3].
    """
    experiment = SeriesExperiment(
        "Fig. 4", "rate-control weight adjustment (Algorithm 2)")
    changes = [-1.0 + 4.0 * i / (points - 1) for i in range(points)]
    for label, weight in (("a:wb=2000", 2000.0), ("b:wb=500", 500.0)):
        experiment.series[label] = [
            (c, adjust_weight(weight, 1000.0, c)) for c in changes
        ]
    return experiment


# --------------------------------------------------------------------- #
# Fig. 6 — scenario-3/4/5 trace characteristics
# --------------------------------------------------------------------- #

def fig6_trace_characteristics(step_s: float = 10.0) -> SeriesExperiment:
    """Fig. 6: per-cluster P99 latency of scenario-3/4/5."""
    experiment = SeriesExperiment(
        "Fig. 6", "scenario-3/4/5 P99 latency traces (ms)")
    times = [i * step_s for i in range(int(TRACE_PERIOD_S / step_s) + 1)]
    for name in ("scenario-3", "scenario-4", "scenario-5"):
        scenario = build_scenario(name)
        for cluster, profile in sorted(scenario.cluster_profiles.items()):
            experiment.series[f"{name}/{cluster}/p99_ms"] = [
                (t, profile.p99_latency_s.value_at(t) * 1000.0)
                for t in times
            ]
    return experiment


# --------------------------------------------------------------------- #
# Fig. 7 — penalty factor sweep on failure-2
# --------------------------------------------------------------------- #

def fig7_penalty_factor_sweep(
        penalties_s=(0.1, 0.3, 0.6, 1.0, 1.5),
        duration_s: float = TRACE_PERIOD_S, repetitions: int = 2,
        seed0: int = 1, jobs: int | None = 1) -> BarExperiment:
    """Fig. 7b: success rate and percentile-latency decrease vs penalty P.

    Runs failure-2 with round-robin as the baseline and L3 at each penalty
    value; reports the success rate and the relative P50/P90/P99 decrease
    of L3 over round-robin (the paper repeats each run twice).
    """
    table = ComparisonTable(
        "Fig. 7b: penalty factor sweep on failure-2", baseline="round-robin")
    rows = [("round-robin", run_scenario_benchmark,
             {"algorithm": "round-robin", "scenario": "failure-2",
              "duration_s": duration_s})]
    for penalty in penalties_s:
        config = L3Config(weighting=WeightingConfig(penalty_s=penalty))
        rows.append((f"l3 P={penalty:g}s", run_scenario_benchmark,
                     {"algorithm": "l3", "scenario": "failure-2",
                      "duration_s": duration_s, "l3_config": config}))
    metrics = _sweep_rows(rows, repetitions, seed0, jobs=jobs)
    baseline = metrics["round-robin"]
    table.add("round-robin", **{
        "p99_ms": baseline["p99_ms"],
        "success_pct": baseline["success_rate"] * 100.0,
    })
    for label, _runner, _kwargs in rows[1:]:
        result = metrics[label]
        table.add(label, **{
            "p99_ms": result["p99_ms"],
            "success_pct": result["success_rate"] * 100.0,
            "p50_dec_pct": relative_decrease(
                baseline["p50_ms"], result["p50_ms"]) * 100.0,
            "p90_dec_pct": relative_decrease(
                baseline["p90_ms"], result["p90_ms"]) * 100.0,
            "p99_dec_pct": relative_decrease(
                baseline["p99_ms"], result["p99_ms"]) * 100.0,
        })
    return BarExperiment("Fig. 7b", "penalty factor sweep", table)


# --------------------------------------------------------------------- #
# Fig. 8 — EWMA vs PeakEWMA on scenario-4
# --------------------------------------------------------------------- #

def fig8_ewma_vs_peakewma(duration_s: float = TRACE_PERIOD_S,
                          repetitions: int = 3, seed0: int = 1,
                          jobs: int | None = 1) -> BarExperiment:
    """Fig. 8: P99 of round-robin vs L3-PeakEWMA vs L3-EWMA on scenario-4."""
    table = ComparisonTable(
        "Fig. 8: EWMA vs PeakEWMA on scenario-4", baseline="round-robin")
    rows = [
        (algorithm, run_scenario_benchmark,
         {"algorithm": algorithm, "scenario": "scenario-4",
          "duration_s": duration_s})
        for algorithm in ("round-robin", "l3-peak", "l3")
    ]
    for label, result in _sweep_rows(rows, repetitions, seed0,
                                     jobs=jobs).items():
        table.add(label, p99_ms=result["p99_ms"])
    return BarExperiment(
        "Fig. 8", "EWMA vs PeakEWMA", table, paper=PAPER_FIG8_P99_MS)


# --------------------------------------------------------------------- #
# Fig. 9 — DeathStarBench hotel reservation
# --------------------------------------------------------------------- #

def fig9_hotel_reservation(rps: float = 200.0,
                           duration_s: float = 1200.0,
                           repetitions: int = 3, seed0: int = 1,
                           jobs: int | None = 1) -> BarExperiment:
    """Fig. 9: hotel-reservation P99 under RR / C3 / L3 at 200 RPS."""
    table = ComparisonTable(
        "Fig. 9: hotel-reservation P99 at 200 RPS", baseline="round-robin")
    rows = [
        (algorithm, run_hotel_benchmark,
         {"algorithm": algorithm, "rps": rps, "duration_s": duration_s})
        for algorithm in ALGORITHMS
    ]
    for label, result in _sweep_rows(rows, repetitions, seed0,
                                     jobs=jobs).items():
        table.add(label, p50_ms=result["p50_ms"],
                  p99_ms=result["p99_ms"])
    return BarExperiment(
        "Fig. 9", "hotel reservation", table, paper=PAPER_FIG9_P99_MS)


# --------------------------------------------------------------------- #
# Fig. 10 — the five TIER scenarios
# --------------------------------------------------------------------- #

def fig10_scenario_comparison(scenarios=None,
                              duration_s: float = TRACE_PERIOD_S,
                              repetitions: int = 3, seed0: int = 1,
                              jobs: int | None = 1) -> dict:
    """Fig. 10: P99 of RR / C3 / L3 on scenario-1..5.

    Returns a dict scenario → :class:`BarExperiment`. The full
    (scenario × algorithm × seed) grid is one flat cell sweep, so
    ``jobs`` parallelizes across scenarios as well as algorithms.
    """
    scenarios = scenarios or [f"scenario-{i}" for i in range(1, 6)]
    rows = [
        (f"{name}/{algorithm}", run_scenario_benchmark,
         {"algorithm": algorithm, "scenario": name,
          "duration_s": duration_s})
        for name in scenarios
        for algorithm in ALGORITHMS
    ]
    metrics = _sweep_rows(rows, repetitions, seed0, jobs=jobs)
    out = {}
    for name in scenarios:
        table = ComparisonTable(
            f"Fig. 10 ({name}): P99 comparison", baseline="round-robin")
        for algorithm in ALGORITHMS:
            table.add(algorithm,
                      p99_ms=metrics[f"{name}/{algorithm}"]["p99_ms"])
        out[name] = BarExperiment(
            f"Fig. 10 ({name})", name, table,
            paper=PAPER_FIG10_P99_MS.get(name, {}))
    return out


# --------------------------------------------------------------------- #
# Fig. 11 + Fig. 12 — failure scenarios
# --------------------------------------------------------------------- #

def fig11_12_failure_scenarios(duration_s: float = TRACE_PERIOD_S,
                               repetitions: int = 3, seed0: int = 1,
                               jobs: int | None = 1) -> dict:
    """Figs. 11 & 12: P99 and success rate on failure-1/failure-2.

    Returns a dict scenario → :class:`BarExperiment` whose rows carry both
    the P99 (Fig. 11) and the success rate (Fig. 12).
    """
    names = ("failure-1", "failure-2")
    rows = [
        (f"{name}/{algorithm}", run_scenario_benchmark,
         {"algorithm": algorithm, "scenario": name,
          "duration_s": duration_s})
        for name in names
        for algorithm in ALGORITHMS
    ]
    metrics = _sweep_rows(rows, repetitions, seed0, jobs=jobs)
    out = {}
    for name in names:
        table = ComparisonTable(
            f"Fig. 11/12 ({name}): P99 and success rate",
            baseline="round-robin")
        for algorithm in ALGORITHMS:
            result = metrics[f"{name}/{algorithm}"]
            table.add(algorithm, p99_ms=result["p99_ms"],
                      success_pct=result["success_rate"] * 100.0)
        out[name] = BarExperiment(
            f"Fig. 11/12 ({name})", name, table,
            paper={
                "p99_ms": PAPER_FIG11_P99_MS[name],
                "success_pct": PAPER_FIG12_SUCCESS_PCT[name],
            })
    return out


# --------------------------------------------------------------------- #
# Ablations (beyond the paper; design-choice validation)
# --------------------------------------------------------------------- #

def ablation_rate_control(scenario: str = "scenario-2",
                          duration_s: float = TRACE_PERIOD_S,
                          repetitions: int = 2, seed0: int = 1,
                          jobs: int | None = 1) -> BarExperiment:
    """Rate controller on vs off (Algorithm 2's contribution)."""
    table = ComparisonTable(
        f"Ablation: rate control on/off ({scenario})", baseline="l3")
    rows = [
        (label, run_scenario_benchmark,
         {"algorithm": "l3", "scenario": scenario, "duration_s": duration_s,
          "l3_config": L3Config(rate_control_enabled=enabled)})
        for label, enabled in (("l3", True), ("l3-no-rate-control", False))
    ]
    for label, result in _sweep_rows(rows, repetitions, seed0,
                                     jobs=jobs).items():
        table.add(label, p99_ms=result["p99_ms"])
    return BarExperiment("Ablation", "rate control", table)


def ablation_inflight_exponent(scenario: str = "scenario-1",
                               exponents=(0.0, 1.0, 2.0, 3.0),
                               duration_s: float = TRACE_PERIOD_S,
                               repetitions: int = 2, seed0: int = 1,
                               jobs: int | None = 1) -> BarExperiment:
    """Eq. 4's squared (R_i + 1) term vs other exponents."""
    table = ComparisonTable(
        f"Ablation: (R_i+1)^k exponent ({scenario})")
    rows = [
        (f"k={exponent:g}", run_scenario_benchmark,
         {"algorithm": "l3", "scenario": scenario, "duration_s": duration_s,
          "l3_config": L3Config(
              weighting=WeightingConfig(inflight_exponent=exponent))})
        for exponent in exponents
    ]
    for label, result in _sweep_rows(rows, repetitions, seed0,
                                     jobs=jobs).items():
        table.add(label, p99_ms=result["p99_ms"])
    return BarExperiment("Ablation", "in-flight exponent", table)


def hotel_rps_saturation_sweep(rps_values=(200.0, 400.0, 600.0, 800.0,
                                           1000.0, 1200.0),
                               duration_s: float = 120.0,
                               algorithm: str = "l3",
                               seed: int = 1) -> BarExperiment:
    """§5.3.1 prose: the hotel app saturates around 1000 RPS.

    "We ran the benchmark with different RPS with little to no changes in
    the results. At around 1000 RPS we approached the saturation points of
    some of the microservices ... which led to an increase in latency."
    This sweep reproduces that knee: P99 stays flat across the low-RPS
    range and rises steeply as offered load approaches the deployment's
    capacity.
    """
    table = ComparisonTable(
        f"Saturation sweep: hotel-reservation under {algorithm}")
    for rps in rps_values:
        result = run_hotel_benchmark(
            algorithm, rps=rps, duration_s=duration_s, seed=seed)
        table.add(f"{rps:g} RPS",
                  p50_ms=result.p50_ms, p99_ms=result.p99_ms)
    return BarExperiment(
        "§5.3.1", "hotel saturation sweep", table)


def ablation_retries(scenario: str = "failure-1",
                     duration_s: float = TRACE_PERIOD_S,
                     repetitions: int = 2, seed0: int = 1,
                     jobs: int | None = 1) -> BarExperiment:
    """Client retries vs the paper's no-retry benchmarks (§5.2.1).

    The paper's L_est formula assumes clients retry failed requests but
    its benchmarks do not retry "for simplicity"; it conjectures that with
    retries "the effect of P ... might not be as strong". This ablation
    runs the heavy-failure scenario with and without retries and shows
    (a) retries convert failures into latency, raising success rate, and
    (b) retried failures make Eq. 3's retry model *actual* rather than
    hypothetical.
    """
    from repro.bench.coordinator import ScenarioBenchConfig

    table = ComparisonTable(
        f"Ablation: client retries ({scenario})", baseline="l3 no-retry")
    rows = [
        (label, run_scenario_benchmark,
         {"algorithm": "l3", "scenario": scenario, "duration_s": duration_s,
          "env": ScenarioBenchConfig(max_retries=retries)})
        for label, retries in (("l3 no-retry", 0), ("l3 retry-2", 2))
    ]
    for label, result in _sweep_rows(rows, repetitions, seed0,
                                     jobs=jobs).items():
        table.add(label,
                  p99_ms=result["p99_ms"],
                  success_pct=result["success_rate"] * 100.0)
    return BarExperiment("Ablation", "client retries", table)


def ablation_scrape_interval(scenario: str = "scenario-2",
                             intervals_s=(2.5, 5.0, 10.0),
                             duration_s: float = TRACE_PERIOD_S,
                             repetitions: int = 2, seed0: int = 1,
                             jobs: int | None = 1) -> BarExperiment:
    """§4's 5 s scrape-interval choice: data freshness vs overhead."""
    from repro.bench.coordinator import ScenarioBenchConfig

    table = ComparisonTable(
        f"Ablation: scrape interval ({scenario})")
    rows = [
        (f"{interval:g}s", run_scenario_benchmark,
         {"algorithm": "l3", "scenario": scenario, "duration_s": duration_s,
          "env": ScenarioBenchConfig(scrape_interval_s=interval),
          "l3_config": L3Config(
              reconcile_interval_s=interval,
              metrics_window_s=2.0 * interval)})
        for interval in intervals_s
    ]
    for label, result in _sweep_rows(rows, repetitions, seed0,
                                     jobs=jobs).items():
        table.add(label, p99_ms=result["p99_ms"])
    return BarExperiment("Ablation", "scrape interval", table)


def fig_elasticity(duration_s: float = 360.0, seed0: int = 1,
                   jobs: int | None = 1) -> BarExperiment:
    """Elasticity frontier: autoscaling vs the fixed-capacity corners.

    Runs the ``elastic-surge`` scenario under L3 in three capacity modes
    (see :mod:`repro.autoscale.study`): the fixed-minimum fleet
    saturates through the surge, the fixed-maximum fleet pays for idle
    replicas through the shoulders, and the autoscaled fleet should sit
    between them on *both* axes — lower P99 than fixed-min, fewer
    replica-seconds than fixed-max. ``BENCH_autoscale.json`` pins this
    contract; the figure renders it.
    """
    from repro.autoscale.study import MODES, run_elasticity_cell

    cells = [
        Cell(id=mode, fn=run_elasticity_cell,
             kwargs={"scenario": "elastic-surge", "mode": mode,
                     "algorithm": "l3", "duration_s": duration_s,
                     "seed": seed0})
        for mode in MODES
    ]
    outcomes = run_cells(cells, jobs=jobs)
    table = ComparisonTable(
        f"elasticity: elastic-surge under l3 ({duration_s:.0f}s)",
        baseline="fixed-min")
    for mode in MODES:
        row = outcomes[mode].unwrap()
        table.add(mode,
                  p50_ms=row["p50_ms"], p99_ms=row["p99_ms"],
                  success_pct=row["success_rate"] * 100.0,
                  replica_seconds=row["replica_seconds"],
                  scale_events=row["scale_events"])
    return BarExperiment(
        "Elasticity", "cost vs latency: autoscale between the fixed corners",
        table)
