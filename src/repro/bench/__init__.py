"""The benchmark harness: coordinator, per-figure experiments, reporting."""

from repro.bench.coordinator import (
    BenchmarkResult,
    ScenarioBenchConfig,
    run_hotel_benchmark,
    run_scenario_benchmark,
)
from repro.bench.parallel import Cell, CellFailed, CellOutcome, run_cells
from repro.bench.results import ComparisonTable, format_table

__all__ = [
    "BenchmarkResult",
    "Cell",
    "CellFailed",
    "CellOutcome",
    "ComparisonTable",
    "ScenarioBenchConfig",
    "format_table",
    "run_cells",
    "run_hotel_benchmark",
    "run_scenario_benchmark",
]
