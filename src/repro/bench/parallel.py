"""Parallel sweep execution over independent benchmark cells.

Every figure in the paper is a sweep over independent (scenario ×
algorithm × seed) cells — each cell builds its own simulator, its own RNG
registry from its own seed, and shares no state with any other cell. That
makes sweeps embarrassingly parallel, and this module is the one place
that exploits it: :func:`run_cells` shards a list of :class:`Cell`\\ s
across worker processes and merges the results back **by cell id, in the
input order** — never by completion order — so a parallel sweep is
byte-identical to the serial one.

Determinism contract:

* *Per-cell seeding* — a cell's kwargs carry its seed explicitly; workers
  receive the cell verbatim and derive nothing from worker identity,
  scheduling order, or wall-clock.
* *Ordered merge* — the returned mapping preserves the input cell order
  regardless of which worker finished first (dict insertion order is the
  iteration order downstream table builders rely on).
* *Failure isolation* — a cell that raises (or whose worker process dies)
  becomes a recorded :class:`CellOutcome` error; the sweep continues and
  every other cell still completes.

``jobs=1`` (the default everywhere) bypasses multiprocessing entirely and
runs the cells inline, preserving the pre-parallel behavior exactly —
including exception *recording* semantics, so serial and parallel runs
are comparable error-for-error.
"""

from __future__ import annotations

import os
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.errors import ConfigError


@dataclass(frozen=True)
class Cell:
    """One independent unit of sweep work.

    Attributes:
        id: unique key the result is merged under (e.g.
            ``"scenario-1/l3/seed3"``).
        fn: a module-level callable (must be picklable for ``jobs > 1``).
        kwargs: keyword arguments, including the cell's own seed.
    """

    id: str
    fn: object
    kwargs: dict = field(default_factory=dict)


@dataclass
class CellOutcome:
    """What one cell produced: a value, or a recorded error."""

    cell_id: str
    value: object = None
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def unwrap(self):
        """The cell's value; raises :class:`CellFailed` on a recorded error."""
        if self.error is not None:
            raise CellFailed(
                f"sweep cell {self.cell_id!r} failed:\n{self.error}")
        return self.value


class CellFailed(RuntimeError):
    """Raised by :meth:`CellOutcome.unwrap` for a cell that errored."""


def default_jobs() -> int:
    """Worker count for ``jobs=None``: one per available CPU."""
    return max(os.cpu_count() or 1, 1)


def _run_cell(cell: Cell) -> CellOutcome:
    """Execute one cell, converting any exception into a recorded error."""
    try:
        return CellOutcome(cell_id=cell.id, value=cell.fn(**cell.kwargs))
    except Exception:  # noqa: BLE001 - the sweep must survive any cell
        return CellOutcome(cell_id=cell.id, error=traceback.format_exc())


def run_cells(cells, jobs: int | None = 1) -> dict[str, CellOutcome]:
    """Run independent sweep cells, optionally across worker processes.

    Args:
        cells: iterable of :class:`Cell`; ids must be unique.
        jobs: worker processes. ``1`` runs inline (no multiprocessing at
            all — the exact pre-parallel code path); ``None`` means one
            worker per CPU. Results are identical for every value.

    Returns:
        ``{cell.id: CellOutcome}`` in input-cell order.
    """
    cells = list(cells)
    seen: set[str] = set()
    for cell in cells:
        if cell.id in seen:
            raise ConfigError(f"duplicate sweep cell id: {cell.id!r}")
        seen.add(cell.id)
    if jobs is None:
        jobs = default_jobs()
    if jobs < 1:
        raise ConfigError(f"jobs must be >= 1 (or None for all CPUs): {jobs}")

    if jobs == 1 or len(cells) <= 1:
        outcomes = {cell.id: _run_cell(cell) for cell in cells}
    else:
        outcomes = _run_cells_in_pool(cells, min(jobs, len(cells)))
    # Ordered merge: input order, not completion order.
    return {cell.id: outcomes[cell.id] for cell in cells}


def _run_cells_in_pool(cells, jobs: int) -> dict[str, CellOutcome]:
    """Fan cells out over a process pool, surviving worker crashes.

    Python-level exceptions never escape a worker (``_run_cell`` records
    them in place), so a broken pool here means a worker process itself
    died (OOM-kill, segfault, interpreter abort). A dying worker breaks
    the whole pool — every in-flight future fails with it, and the crash
    cannot be attributed to one cell from the wreckage. So on the rare
    crash path, each unfinished cell is re-run in its own single-worker
    pool: innocents that were merely pending complete normally, and a
    cell that reproducibly kills its worker is pinned as the culprit and
    recorded as an error — the sweep always completes.
    """
    outcomes: dict[str, CellOutcome] = {}
    pool_broke = _pool_pass(cells, jobs, outcomes)
    if pool_broke:
        for cell in cells:
            if cell.id in outcomes:
                continue
            solo: dict[str, CellOutcome] = {}
            _pool_pass([cell], 1, solo)
            outcomes[cell.id] = solo.get(cell.id) or CellOutcome(
                cell_id=cell.id,
                error="worker process died while running this cell")
    return outcomes


def _pool_pass(cells, jobs: int, outcomes: dict) -> bool:
    """One executor lifetime; returns True if the pool broke (crash)."""
    broke = False
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = [(pool.submit(_run_cell, cell), cell) for cell in cells]
        for future, cell in futures:
            try:
                outcome = future.result()
            except BrokenProcessPool:
                broke = True
                continue
            except Exception:  # noqa: BLE001 - e.g. unpicklable result
                outcomes[cell.id] = CellOutcome(
                    cell_id=cell.id, error=traceback.format_exc())
                continue
            outcomes[outcome.cell_id] = outcome
    return broke
