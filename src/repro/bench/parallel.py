"""Parallel sweep execution over independent benchmark cells.

Every figure in the paper is a sweep over independent (scenario ×
algorithm × seed) cells — each cell builds its own simulator, its own RNG
registry from its own seed, and shares no state with any other cell. That
makes sweeps embarrassingly parallel, and this module is the one place
that exploits it: :func:`run_cells` shards a list of :class:`Cell`\\ s
across worker processes and merges the results back **by cell id, in the
input order** — never by completion order — so a parallel sweep is
byte-identical to the serial one.

Determinism contract:

* *Per-cell seeding* — a cell's kwargs carry its seed explicitly; workers
  receive the cell verbatim and derive nothing from worker identity,
  scheduling order, or wall-clock.
* *Ordered merge* — the returned mapping preserves the input cell order
  regardless of which worker finished first (dict insertion order is the
  iteration order downstream table builders rely on).
* *Failure isolation* — a cell that raises (or whose worker process dies)
  becomes a recorded :class:`CellOutcome` error; the sweep continues and
  every other cell still completes.

``jobs=1`` (the default everywhere) bypasses multiprocessing entirely and
runs the cells inline, preserving the pre-parallel behavior exactly —
including exception *recording* semantics, so serial and parallel runs
are comparable error-for-error.

On-disk cell cache (opt-in): setting ``REPRO_BENCH_CACHE=<dir>`` makes
:func:`run_cells` memoise successful cell outcomes under ``<dir>``, keyed
by a content digest of the cell's work — the callable's qualified name
plus its full kwargs (scenario, algorithm, seed, duration, …) and the
package version. Since a cell is a pure function of its kwargs, a hit is
byte-identical to a re-run *for unchanged code*; the cache is meant for
iterating on analysis/plotting layers above a fixed sweep, and a stale
directory is the user's to delete. Errors are never cached, and any
cache-layer failure (unpicklable value, unwritable directory, corrupt
entry) silently falls back to just running the cell.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.errors import ConfigError

CACHE_ENV_VAR = "REPRO_BENCH_CACHE"


@dataclass(frozen=True)
class Cell:
    """One independent unit of sweep work.

    Attributes:
        id: unique key the result is merged under (e.g.
            ``"scenario-1/l3/seed3"``).
        fn: a module-level callable (must be picklable for ``jobs > 1``).
        kwargs: keyword arguments, including the cell's own seed.
    """

    id: str
    fn: object
    kwargs: dict = field(default_factory=dict)


@dataclass
class CellOutcome:
    """What one cell produced: a value, or a recorded error."""

    cell_id: str
    value: object = None
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def unwrap(self):
        """The cell's value; raises :class:`CellFailed` on a recorded error."""
        if self.error is not None:
            raise CellFailed(
                f"sweep cell {self.cell_id!r} failed:\n{self.error}")
        return self.value


class CellFailed(RuntimeError):
    """Raised by :meth:`CellOutcome.unwrap` for a cell that errored."""


def default_jobs() -> int:
    """Worker count for ``jobs=None``: one per available CPU."""
    return max(os.cpu_count() or 1, 1)


def _run_cell(cell: Cell) -> CellOutcome:
    """Execute one cell, converting any exception into a recorded error."""
    try:
        return CellOutcome(cell_id=cell.id, value=cell.fn(**cell.kwargs))
    except Exception:  # noqa: BLE001 - the sweep must survive any cell
        return CellOutcome(cell_id=cell.id, error=traceback.format_exc())


# --------------------------------------------------------------------- #
# On-disk cell cache (REPRO_BENCH_CACHE)
# --------------------------------------------------------------------- #

def cell_cache_key(cell: Cell) -> str | None:
    """Content digest identifying one cell's work, or ``None``.

    Covers the callable's qualified name, every kwarg (the seed,
    scenario, algorithm and duration all live there) and the package
    version. Cells whose kwargs are not JSON-representable (live
    objects, callables) are uncacheable and return ``None``.
    """
    from repro import __version__

    fn = cell.fn
    ident = (f"{getattr(fn, '__module__', '?')}."
             f"{getattr(fn, '__qualname__', repr(fn))}")
    try:
        blob = json.dumps(
            {"v": __version__, "fn": ident, "kwargs": cell.kwargs},
            sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError):
        return None
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# Distinguishes "no cache entry" from a legitimately-``None`` cached value.
_CACHE_MISS = object()


def _cache_load(cache_dir: str, key: str):
    """The cached value for ``key``, or ``_CACHE_MISS``."""
    path = os.path.join(cache_dir, f"{key}.pkl")
    try:
        with open(path, "rb") as fh:
            return pickle.load(fh)
    except (OSError, pickle.PickleError, EOFError, AttributeError,
            ImportError, MemoryError):
        return _CACHE_MISS


def _cache_store(cache_dir: str, key: str, outcome: CellOutcome) -> None:
    if not outcome.ok:
        return  # errors are retried, never replayed
    path = os.path.join(cache_dir, f"{key}.pkl")
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        os.makedirs(cache_dir, exist_ok=True)
        with open(tmp, "wb") as fh:
            pickle.dump(outcome.value, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)  # atomic: readers never see a partial file
    except (OSError, pickle.PickleError):
        try:
            os.unlink(tmp)
        except OSError:
            pass


def run_cells(cells, jobs: int | None = 1) -> dict[str, CellOutcome]:
    """Run independent sweep cells, optionally across worker processes.

    Args:
        cells: iterable of :class:`Cell`; ids must be unique.
        jobs: worker processes. ``1`` runs inline (no multiprocessing at
            all — the exact pre-parallel code path); ``None`` means one
            worker per CPU. Results are identical for every value.

    Returns:
        ``{cell.id: CellOutcome}`` in input-cell order.
    """
    cells = list(cells)
    seen: set[str] = set()
    for cell in cells:
        if cell.id in seen:
            raise ConfigError(f"duplicate sweep cell id: {cell.id!r}")
        seen.add(cell.id)
    if jobs is None:
        jobs = default_jobs()
    if jobs < 1:
        raise ConfigError(f"jobs must be >= 1 (or None for all CPUs): {jobs}")

    # Opt-in on-disk cache: satisfy what we can from disk, run the rest.
    cache_dir = os.environ.get(CACHE_ENV_VAR)
    cached: dict[str, CellOutcome] = {}
    keys: dict[str, str] = {}
    pending = cells
    if cache_dir:
        pending = []
        for cell in cells:
            key = cell_cache_key(cell)
            if key is None:
                pending.append(cell)
                continue
            keys[cell.id] = key
            value = _cache_load(cache_dir, key)
            if value is _CACHE_MISS:
                pending.append(cell)
            else:
                cached[cell.id] = CellOutcome(cell_id=cell.id, value=value)

    if jobs == 1 or len(pending) <= 1:
        outcomes = {cell.id: _run_cell(cell) for cell in pending}
    else:
        outcomes = _run_cells_in_pool(pending, min(jobs, len(pending)))

    if cache_dir:
        for cell_id, outcome in outcomes.items():
            key = keys.get(cell_id)
            if key is not None:
                _cache_store(cache_dir, key, outcome)
        outcomes.update(cached)
    # Ordered merge: input order, not completion order.
    return {cell.id: outcomes[cell.id] for cell in cells}


def _run_cells_in_pool(cells, jobs: int) -> dict[str, CellOutcome]:
    """Fan cells out over a process pool, surviving worker crashes.

    Python-level exceptions never escape a worker (``_run_cell`` records
    them in place), so a broken pool here means a worker process itself
    died (OOM-kill, segfault, interpreter abort). A dying worker breaks
    the whole pool — every in-flight future fails with it, and the crash
    cannot be attributed to one cell from the wreckage. So on the rare
    crash path, each unfinished cell is re-run in its own single-worker
    pool: innocents that were merely pending complete normally, and a
    cell that reproducibly kills its worker is pinned as the culprit and
    recorded as an error — the sweep always completes.
    """
    outcomes: dict[str, CellOutcome] = {}
    pool_broke = _pool_pass(cells, jobs, outcomes)
    if pool_broke:
        for cell in cells:
            if cell.id in outcomes:
                continue
            solo: dict[str, CellOutcome] = {}
            _pool_pass([cell], 1, solo)
            outcomes[cell.id] = solo.get(cell.id) or CellOutcome(
                cell_id=cell.id,
                error="worker process died while running this cell")
    return outcomes


def _pool_pass(cells, jobs: int, outcomes: dict) -> bool:
    """One executor lifetime; returns True if the pool broke (crash)."""
    broke = False
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = [(pool.submit(_run_cell, cell), cell) for cell in cells]
        for future, cell in futures:
            try:
                outcome = future.result()
            except BrokenProcessPool:
                broke = True
                continue
            except Exception:  # noqa: BLE001 - e.g. unpicklable result
                outcomes[cell.id] = CellOutcome(
                    cell_id=cell.id, error=traceback.format_exc())
                continue
            outcomes[outcome.cell_id] = outcome
    return broke
