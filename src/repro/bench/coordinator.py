"""The benchmark coordinator (paper §5.1, "TIER Mobility" paragraph).

Mirrors the paper's procedure: deploy the workload on a three-cluster
mesh, warm up (to populate caches and establish EWMA baselines), run the
scenario for its duration with an open-loop client, then collect every
request's latency and status and compute exact percentiles and success
rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.percentiles import Percentiles
from repro.analysis.stats import success_rate as _success_rate
from repro.autoscale.driver import SimAutoscaleSet
from repro.autoscale.spec import resolve_autoscale_policies
from repro.balancers.factory import make_balancer
from repro.core.config import L3Config
from repro.errors import ConfigError
from repro.faults.base import FaultInjector
from repro.mesh.fastdispatch import FastRequestEngine, VectorRequestEngine
from repro.mesh.mesh import ServiceMesh
from repro.mesh.network import WanLink
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.telemetry.query import PromMetricsSource
from repro.telemetry.scraper import Scraper
from repro.telemetry.timeseries import TimeSeriesStore
from repro.workloads.hotel import build_hotel_application
from repro.workloads.loadgen import OpenLoopLoadGenerator
from repro.workloads.scenarios import Scenario, build_scenario

# The logical service name TIER-like scenarios are deployed under.
SCENARIO_SERVICE = "api"

# Request-lifecycle engines for scenario benchmarks: "fast" drives each
# request as a pooled-callback state machine
# (:mod:`repro.mesh.fastdispatch`); "vector" is its numpy-chunked twin
# (banked RNG draws, chunked telemetry, inline tail hops — requires the
# [fleet] extra); "process" spawns one generator process per request
# (the original reference implementation). All three are event-order
# identical — same records, same digests.
ENGINE_NAMES = ("fast", "vector", "process")


@dataclass(frozen=True)
class ScenarioBenchConfig:
    """Environment knobs shared by all scenario benchmarks.

    Defaults model the paper's test environment (§5.1): three clusters,
    ~10 ms inter-cluster one-way delay, three replicas per cluster, the
    benchmark client in cluster-1, scraping every 5 s.
    """

    warmup_s: float = 30.0
    client_cluster: str = "cluster-1"
    replicas: int = 3
    replica_capacity: int = 64
    scrape_interval_s: float = 5.0
    wan_base_delay_s: float = 0.010
    propagation_delay_s: float = 0.5
    drain_s: float = 30.0
    # Client retries on failure (0 = the paper's no-retry benchmarks).
    max_retries: int = 0
    retry_backoff_s: float = 0.0
    # Resilience knobs (both off = the paper's evaluated configuration).
    # A per-attempt deadline is required to survive blackhole faults: a
    # dead-silent backend otherwise hangs each request forever.
    request_timeout_s: float | None = None
    # Optional consecutive-failure circuit breaker
    # (repro.mesh.ejection.OutlierEjectionConfig).
    outlier_ejection: object | None = None
    # Client arrival process: "uniform" (wrk2-style constant spacing, the
    # paper's setup) or "poisson" (exponential inter-arrival gaps).
    arrival: str = "uniform"

    def __post_init__(self):
        for name in ("warmup_s", "replica_capacity", "scrape_interval_s",
                     "drain_s"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be >= 0")
        if self.replicas < 1:
            raise ConfigError(f"replicas must be >= 1: {self.replicas}")
        if self.request_timeout_s is not None and self.request_timeout_s <= 0:
            raise ConfigError(
                f"request timeout must be positive: {self.request_timeout_s}")


@dataclass
class BenchmarkResult:
    """Everything one benchmark run produced.

    Attributes:
        scenario: scenario (or application) name.
        algorithm: balancer name.
        seed: master seed of the run.
        duration_s: measured period (excludes warm-up).
        records: every completed request record of the measured period.
        controller_weights: final TrafficSplit weights, if the algorithm
            is controller-based (introspection, as the paper's coordinator
            retrieves L3's internal state).
        fault_log: ``(sim_time, description)`` per applied/reverted fault,
            when the run injected any.
        tracer: the :class:`~repro.tracing.recorder.MeshTracer` the run
            recorded into, when one was passed — its recorder feeds the
            exporters and the critical-path report.
        events_processed: kernel events the run's simulator dispatched
            (warm-up and drain included) — the numerator of the
            events/sec perf baseline in ``benchmarks/bench_perf.py``.
        autoscale_events: merged ``(time, backend, delta,
            replicas_after)`` log of every replica admitted or retired,
            when the run autoscaled (times include warm-up).
        replica_seconds: per-backend cost integrals
            ∫(running + provisioning) dt over the whole run.
        weight_samples: ``(time, {backend: weight})`` TrafficSplit
            snapshots taken at autoscaler ticks — the raw series of the
            control-loop interaction study.
        final_replicas: per-backend replica counts at the end of the run.
    """

    scenario: str
    algorithm: str
    seed: int
    duration_s: float
    records: list
    controller_weights: dict = field(default_factory=dict)
    fault_log: list = field(default_factory=list)
    tracer: object | None = None
    events_processed: int = 0
    autoscale_events: list = field(default_factory=list)
    replica_seconds: dict = field(default_factory=dict)
    weight_samples: list = field(default_factory=list)
    final_replicas: dict = field(default_factory=dict)

    @property
    def total_replica_seconds(self) -> float:
        """Fleet-wide elasticity cost (0.0 when the run never autoscaled)."""
        return sum(self.replica_seconds.values())

    @property
    def request_count(self) -> int:
        return len(self.records)

    @property
    def success_rate(self) -> float:
        """Fraction of successful requests in the measured period."""
        return _success_rate(self.records)

    def latency_percentiles(self) -> Percentiles:
        """Percentile reader over the measured latencies (sorted once).

        The sort is cached on the result: reading a whole spectrum plus
        p50/p90/p99 costs one O(n log n) pass total.
        """
        if not self.records:
            raise ValueError("no records captured")
        cached = self.__dict__.get("_latency_percentiles")
        if cached is None or len(cached) != len(self.records):
            cached = Percentiles(r.latency_s for r in self.records)
            self.__dict__["_latency_percentiles"] = cached
        return cached

    def latency_percentile_ms(self, q: float) -> float:
        """Exact latency percentile over all measured requests, in ms."""
        return self.latency_percentiles().percentile(q) * 1000.0

    @property
    def p50_ms(self) -> float:
        return self.latency_percentile_ms(0.50)

    @property
    def p90_ms(self) -> float:
        return self.latency_percentile_ms(0.90)

    @property
    def p99_ms(self) -> float:
        return self.latency_percentile_ms(0.99)


def _build_scenario_mesh(scenario: Scenario, seed: int,
                         env: ScenarioBenchConfig):
    sim = Simulator()
    rng = RngRegistry(seed)
    mesh = ServiceMesh(
        sim, rng, clusters=scenario.clusters(),
        wan_link=WanLink(base_delay_s=env.wan_base_delay_s))
    # Fleet scenarios carry their own topology: per-cluster replica
    # counts, capacities, and a WAN link matrix replace the uniform
    # defaults above.
    topology = scenario.topology
    replicas: int | dict = env.replicas
    replica_capacity: int | dict = env.replica_capacity
    if topology is not None:
        replicas = topology.replicas
        replica_capacity = topology.capacities
        for (src, dst), link in topology.links.items():
            mesh.network.set_link(src, dst, link, symmetric=False)
    mesh.deploy_service(
        SCENARIO_SERVICE, profiles=scenario.cluster_profiles,
        replicas=replicas, replica_capacity=replica_capacity)
    return sim, rng, mesh


def _wire_telemetry(env: ScenarioBenchConfig):
    store = TimeSeriesStore()
    scraper = Scraper(store, interval_s=env.scrape_interval_s)
    return store, scraper


def run_scenario_benchmark(scenario: str | Scenario, algorithm: str,
                           duration_s: float = 600.0, seed: int = 1,
                           l3_config: L3Config | None = None,
                           env: ScenarioBenchConfig | None = None,
                           faults: list | None = None,
                           tracer=None,
                           engine: str = "fast",
                           autoscale=None,
                           ) -> BenchmarkResult:
    """Run one TIER-like scenario under one balancing algorithm.

    Args:
        scenario: a scenario name (see
            :data:`repro.workloads.scenarios.SCENARIO_NAMES`) or a
            prebuilt :class:`Scenario`.
        algorithm: balancer name (see
            :data:`repro.balancers.factory.BALANCER_NAMES`).
        duration_s: measured duration (the paper runs 10 minutes; shorter
            runs keep the same trace character).
        seed: master seed — one seed, one fully deterministic run.
        l3_config: L3 tunables (penalty sweeps etc.).
        env: environment knobs; defaults to the paper's setup.
        faults: extra :class:`~repro.faults.base.Fault` schedules, merged
            with ``scenario.faults``. Fault times count from the start of
            the measured period (warm-up is prepended automatically).
        tracer: optional :class:`~repro.tracing.recorder.MeshTracer`;
            when given, every request of the run (warm-up included) emits
            spans into it, and a controller-based algorithm additionally
            records its decision audit log, joinable to the data-plane
            spans via the ``decision_id`` attribute.
        engine: request-lifecycle engine, one of :data:`ENGINE_NAMES` —
            ``"fast"`` (pooled-callback state machines, the default) or
            ``"process"`` (one generator process per request). Both
            produce byte-identical results; ``"process"`` remains as the
            executable specification the fast path is checked against.
        autoscale: per-cluster elasticity — an
            :class:`~repro.autoscale.policy.AutoscalePolicy` (applied to
            every cluster), ``{cluster: policy}``, or a CLI-style spec
            string (:func:`~repro.autoscale.spec.parse_autoscale_spec`).
            ``None`` falls back to ``scenario.autoscale``; when that is
            also ``None`` the run is byte-identical to autoscale-free
            builds.
    """
    env = env or ScenarioBenchConfig()
    if engine not in ENGINE_NAMES:
        raise ConfigError(
            f"engine must be one of {ENGINE_NAMES}: {engine!r}")
    if isinstance(scenario, str):
        # Always build the canonical 10-minute trace (it is a fixed,
        # deterministic recording); a shorter benchmark simply measures a
        # prefix of it, a longer one wraps around.
        scenario = build_scenario(scenario)
    sim, rng, mesh = _build_scenario_mesh(scenario, seed, env)
    mesh.tracer = tracer
    store, scraper = _wire_telemetry(env)
    # The benchmark client (and its L3 instance) live in the client
    # cluster; metrics are queried from that cluster's vantage point.
    source = PromMetricsSource(store, scope=env.client_cluster)

    deployment = mesh.deployment(SCENARIO_SERVICE)
    balancer = make_balancer(
        algorithm, sim, SCENARIO_SERVICE, deployment.backend_names(),
        source, l3_config=l3_config,
        propagation_delay_s=env.propagation_delay_s,
        local_cluster=env.client_cluster)
    proxy = mesh.client_proxy(
        env.client_cluster, SCENARIO_SERVICE, balancer,
        max_retries=env.max_retries, retry_backoff_s=env.retry_backoff_s,
        request_timeout_s=env.request_timeout_s,
        outlier_ejection=env.outlier_ejection)
    mesh.register_all_telemetry(scraper)

    if tracer is not None:
        controller = getattr(balancer, "controller", None)
        if controller is not None:
            from repro.tracing.audit import DecisionAuditLog

            audit = DecisionAuditLog(tracer, prefix=algorithm)
            controller.audit = audit
            tracer.audit = audit

    all_faults = list(scenario.faults) + list(faults or [])
    injector = None
    if all_faults:
        controller = getattr(balancer, "controller", None)
        injector = FaultInjector(
            mesh, scraper=scraper,
            controllers=[controller] if controller is not None else [])
        injector.schedule_all(all_faults, offset_s=env.warmup_s)

    if autoscale is None:
        autoscale = scenario.autoscale
    autoscale_set = None
    if autoscale is not None:
        policies = resolve_autoscale_policies(
            autoscale, scenario.clusters())
        autoscale_set = SimAutoscaleSet(
            deployment, policies, source, scraper,
            controller=getattr(balancer, "controller", None))

    scrape_proc = sim.spawn(scraper.run(sim), name="scraper")
    balancer.start(sim)
    if autoscale_set is not None:
        autoscale_set.start(sim)

    records: list = []
    loadgen = OpenLoopLoadGenerator(
        proxy, scenario.rps, rng.stream("loadgen"), records,
        arrival=env.arrival)
    total = env.warmup_s + duration_s
    dispatcher = None
    if engine == "fast":
        dispatcher = FastRequestEngine(sim, proxy, records)
    elif engine == "vector":
        dispatcher = VectorRequestEngine(sim, proxy, records)
        dispatcher.attach_scraper(scraper)
    if dispatcher is not None:
        loadgen.start_fast(sim, total, dispatcher)
    else:
        sim.spawn(loadgen.run(sim, total), name="loadgen")

    sim.run(until=total)
    balancer.stop()
    if autoscale_set is not None:
        autoscale_set.stop(total)
    scrape_proc.interrupt()
    # Let in-flight requests finish so tail samples are not truncated.
    sim.run(until=total + env.drain_s)
    events_processed = sim.events_processed
    if engine == "vector":
        # Fold the final partial telemetry chunk (post-run readers) and
        # count the tail hops the engine ran inline instead of popping.
        dispatcher.finalize()
        events_processed += dispatcher.inlined_hops

    measured = [
        r for r in records
        if env.warmup_s <= r.intended_start_s < total
    ]
    weights = {}
    controller = getattr(balancer, "controller", None)
    if controller is not None:
        weights = dict(controller.last_weights)
    result = BenchmarkResult(
        scenario=scenario.name, algorithm=algorithm, seed=seed,
        duration_s=duration_s, records=measured,
        controller_weights=weights,
        fault_log=list(injector.log) if injector else [],
        tracer=tracer, events_processed=events_processed)
    if autoscale_set is not None:
        result.autoscale_events = autoscale_set.event_log()
        result.replica_seconds = autoscale_set.replica_seconds()
        result.weight_samples = list(autoscale_set.weight_samples)
        result.final_replicas = autoscale_set.final_replicas()
    return result


def run_callgraph_benchmark(build_application, app_name: str,
                            algorithm: str, rps: float = 200.0,
                            duration_s: float = 1200.0, seed: int = 1,
                            l3_config: L3Config | None = None,
                            env: ScenarioBenchConfig | None = None,
                            tracer=None,
                            ) -> BenchmarkResult:
    """Run any call-graph application under one balancing algorithm.

    Args:
        build_application: ``f(mesh, client_cluster, balancer_factory,
            rng) -> CallGraphApp`` (e.g.
            :func:`~repro.workloads.hotel.build_hotel_application` or
            :func:`~repro.workloads.social.build_social_application`).
        app_name: label recorded in the result.
        algorithm / rps / duration_s / seed / l3_config / env: as in
            :func:`run_scenario_benchmark`.
        tracer: optional :class:`~repro.tracing.recorder.MeshTracer`;
            every service-to-service hop of the call graph emits its own
            trace (hops are separate proxy dispatches).
    """
    env = env or ScenarioBenchConfig()
    sim = Simulator()
    rng = RngRegistry(seed)
    clusters = ["cluster-1", "cluster-2", "cluster-3"]
    mesh = ServiceMesh(
        sim, rng, clusters=clusters,
        wan_link=WanLink(base_delay_s=env.wan_base_delay_s),
        tracer=tracer)
    store, scraper = _wire_telemetry(env)

    def balancer_factory(service, backend_names, source_cluster):
        # One controller per (source cluster, destination service): each
        # cluster runs its own L3/C3 instance over its own TrafficSplit,
        # fed by metrics from its own proxies' vantage point.
        source = PromMetricsSource(store, scope=source_cluster)
        return make_balancer(
            algorithm, sim, service, backend_names, source,
            l3_config=l3_config,
            propagation_delay_s=env.propagation_delay_s,
            local_cluster=source_cluster)

    app = build_application(
        mesh, env.client_cluster, balancer_factory,
        rng.stream("callgraph-app"))
    app.prewire()
    mesh.register_all_telemetry(scraper)

    scrape_proc = sim.spawn(scraper.run(sim), name="scraper")
    app.start(sim)

    records: list = []
    loadgen = OpenLoopLoadGenerator(
        app, rps, rng.stream("loadgen"), records)
    total = env.warmup_s + duration_s
    sim.spawn(loadgen.run(sim, total), name="loadgen")

    sim.run(until=total)
    app.stop()
    scrape_proc.interrupt()
    sim.run(until=total + env.drain_s)

    measured = [
        r for r in records
        if env.warmup_s <= r.intended_start_s < total
    ]
    return BenchmarkResult(
        scenario=app_name, algorithm=algorithm, seed=seed,
        duration_s=duration_s, records=measured, tracer=tracer,
        events_processed=sim.events_processed)


def run_hotel_benchmark(algorithm: str, rps: float = 200.0,
                        duration_s: float = 1200.0, seed: int = 1,
                        l3_config: L3Config | None = None,
                        env: ScenarioBenchConfig | None = None,
                        ) -> BenchmarkResult:
    """Run the DeathStarBench hotel-reservation benchmark (Fig. 9).

    The paper generates a 100 %-success workload at 200 RPS for 20
    minutes against the cluster-local frontend; every internal hop is
    balanced by ``algorithm``.
    """
    return run_callgraph_benchmark(
        build_hotel_application, "hotel-reservation", algorithm,
        rps=rps, duration_s=duration_s, seed=seed, l3_config=l3_config,
        env=env)


def run_social_benchmark(algorithm: str, rps: float = 200.0,
                         duration_s: float = 600.0, seed: int = 1,
                         l3_config: L3Config | None = None,
                         env: ScenarioBenchConfig | None = None,
                         ) -> BenchmarkResult:
    """Run the social-network application (extension workload)."""
    from repro.workloads.social import build_social_application

    return run_callgraph_benchmark(
        build_social_application, "social-network", algorithm,
        rps=rps, duration_s=duration_s, seed=seed, l3_config=l3_config,
        env=env)
