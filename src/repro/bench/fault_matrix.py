"""Fault-matrix sweep: fault type × balancer, reporting recovery time.

The paper's resilience claim (§5.2.3, Figs. 11-12) is that L3 reroutes
around a failing cluster within one reconcile interval and recovers when
it heals. This harness generalises the claim into a matrix: every fault
kind from :mod:`repro.faults` is injected into a *steady* scenario (flat
latency, flat load — so any disturbance in the measured series is the
fault, not the trace), once per balancing algorithm, and three numbers
come out per cell:

* ``faulted_share_pct`` — share of during-fault traffic still sent to
  the faulted cluster (lower = faster rerouting),
* ``fault_p99_ms`` — client-perceived P99 during the fault,
* ``recovery_intervals`` — reconcile intervals after the fault clears
  until a 5-second bucket's P99 is back within 10 % of the pre-fault
  P99 (the paper's "recovers within one interval" metric).

Runs enable a client-side request deadline (`request_timeout_s`): the
matrix includes blackhole outages, which are unsurvivable without one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.percentiles import exact_percentile
from repro.analysis.stats import success_rate
from repro.balancers.factory import controller_balancer_names
from repro.bench.coordinator import ScenarioBenchConfig, run_scenario_benchmark
from repro.bench.parallel import Cell, run_cells
from repro.bench.results import format_table
from repro.faults import (
    ClusterOutage,
    ControllerPause,
    LinkDegradation,
    ReplicaCrash,
    ScrapeOutage,
)
from repro.mesh.cluster import backend_name
from repro.workloads.profiles import constant_backend_profile, constant_series
from repro.workloads.scenarios import CLUSTERS, Scenario

# The cluster every data-plane fault hits (never the client's cluster-1,
# so the client's local network path stays clean).
FAULT_CLUSTER = "cluster-2"

# Default matrix timing: fault hits one minute into the measured period,
# lasts 45 s (nine reconcile intervals — long enough for the controller
# to fully converge onto the remaining clusters), and the run continues
# well past the heal so recovery is observable.
DEFAULT_FAULT_START_S = 60.0
DEFAULT_FAULT_DURATION_S = 45.0

# A recovery bucket matches the controller's reconcile interval.
RECOVERY_BUCKET_S = 5.0
RECOVERY_TOLERANCE = 0.10

DEFAULT_ALGORITHMS = ("l3", "c3", "round-robin")

# Algorithms with a reconcile-loop controller; ControllerPause targets
# only these (pausing a controller that does not exist is meaningless).
# Derived from the balancer registry so new controller-based algorithms
# join the matrix without edits here.
CONTROLLER_ALGORITHMS = controller_balancer_names()


def steady_scenario(duration_s: float, rps: float = 150.0,
                    median_s: float = 0.040,
                    p99_s: float = 0.120) -> Scenario:
    """A flat scenario: identical constant profiles, constant load.

    Under it every balancer reaches a boring steady state, so the fault
    injection is the *only* disturbance in the measured series — which is
    what makes pre/during/post comparisons meaningful.
    """
    profiles = {
        cluster: constant_backend_profile(median_s, p99_s)
        for cluster in CLUSTERS
    }
    return Scenario(
        "steady", duration_s, profiles, constant_series(rps),
        "flat latency and load; disturbances come from injected faults")


def matrix_fault_cases(start_s: float = DEFAULT_FAULT_START_S,
                       duration_s: float = DEFAULT_FAULT_DURATION_S) -> dict:
    """The fault matrix rows: one representative schedule per fault kind."""
    return {
        "replica-crash": [
            ReplicaCrash("api", FAULT_CLUSTER, at_s=start_s,
                         duration_s=duration_s)],
        "cluster-outage": [
            ClusterOutage(FAULT_CLUSTER, at_s=start_s,
                          duration_s=duration_s)],
        "cluster-blackhole": [
            ClusterOutage(FAULT_CLUSTER, at_s=start_s,
                          duration_s=duration_s, mode="blackhole")],
        "link-degradation": [
            LinkDegradation("cluster-1", FAULT_CLUSTER, at_s=start_s,
                            duration_s=duration_s, multiplier=20.0,
                            extra_delay_s=0.200)],
        "scrape-outage": [
            ScrapeOutage(at_s=start_s, duration_s=duration_s)],
        "controller-pause": [
            ControllerPause(at_s=start_s, duration_s=duration_s)],
    }


@dataclass
class FaultCellResult:
    """One (fault, algorithm) cell of the matrix.

    ``faulted_share_pct`` averages over the *whole* fault window
    (including the controller's reaction time);
    ``shed_share_pct`` averages from 3 reconcile intervals into the fault
    to its end — the "has the balancer rerouted" number the acceptance
    criterion is about.
    """

    fault: str
    algorithm: str
    pre_p99_ms: float
    fault_p99_ms: float
    fault_success_pct: float
    faulted_share_pct: float
    shed_share_pct: float
    recovery_intervals: int | None
    result: object = field(repr=False, default=None)

    def metrics(self) -> dict:
        recovery = (float(self.recovery_intervals)
                    if self.recovery_intervals is not None else None)
        return {
            "pre_p99_ms": self.pre_p99_ms,
            "fault_p99_ms": self.fault_p99_ms,
            "fault_success_pct": self.fault_success_pct,
            "faulted_share_pct": self.faulted_share_pct,
            "shed_share_pct": self.shed_share_pct,
            "recovery_intervals": recovery,
        }


def _p99_ms(records) -> float:
    if not records:
        return float("nan")
    return exact_percentile([r.latency_s for r in records], 0.99) * 1000.0


def faulted_share(records, fault_start_s: float, fault_end_s: float,
                  cluster: str = FAULT_CLUSTER,
                  service: str = "api") -> float:
    """Fraction of during-fault requests routed to the faulted cluster."""
    target = backend_name(service, cluster)
    window = [r for r in records
              if fault_start_s <= r.intended_start_s < fault_end_s]
    if not window:
        return 0.0
    return sum(1 for r in window if r.backend == target) / len(window)


def recovery_intervals(records, fault_end_s: float, pre_fault_p99_s: float,
                       bucket_s: float = RECOVERY_BUCKET_S,
                       tolerance: float = RECOVERY_TOLERANCE) -> int | None:
    """Reconcile intervals after the fault until the tail is back to normal.

    Post-fault records are bucketed into reconcile-interval-sized windows;
    the answer is the 1-based index of the first bucket whose P99 is within
    ``tolerance`` of the pre-fault P99 (1 = recovered within one interval).
    ``None`` means the tail never recovered inside the measured period.
    """
    threshold = pre_fault_p99_s * (1.0 + tolerance)
    buckets: dict[int, list] = {}
    for r in records:
        if r.intended_start_s < fault_end_s:
            continue
        buckets.setdefault(
            int((r.intended_start_s - fault_end_s) // bucket_s), []).append(r)
    if not buckets:
        return None
    for index in range(max(buckets) + 1):
        bucket = buckets.get(index)
        if not bucket:
            continue
        if exact_percentile([r.latency_s for r in bucket], 0.99) <= threshold:
            return index + 1
    return None


def run_fault_cell(fault_name: str, faults: list, algorithm: str,
                   duration_s: float, seed: int,
                   env: ScenarioBenchConfig) -> FaultCellResult:
    """Run one (fault, algorithm) cell and extract its matrix metrics."""
    scenario = steady_scenario(duration_s)
    result = run_scenario_benchmark(
        scenario, algorithm, duration_s=duration_s, seed=seed, env=env,
        faults=faults)
    # Fault times are measured-period-relative; records carry absolute
    # simulation times — shift by the warm-up to compare them.
    start = min(f.at_s for f in faults) + env.warmup_s
    end = max(f.at_s + (f.duration_s or 0.0) for f in faults) + env.warmup_s
    pre = [r for r in result.records if r.intended_start_s < start]
    during = [r for r in result.records
              if start <= r.intended_start_s < end]
    pre_p99_s = (_p99_ms(pre) / 1000.0) if pre else float("nan")
    reacted = min(start + 3 * RECOVERY_BUCKET_S, end)
    return FaultCellResult(
        fault=fault_name,
        algorithm=algorithm,
        pre_p99_ms=_p99_ms(pre),
        fault_p99_ms=_p99_ms(during),
        fault_success_pct=success_rate(during) * 100.0 if during else 100.0,
        faulted_share_pct=faulted_share(result.records, start, end) * 100.0,
        shed_share_pct=faulted_share(result.records, reacted, end) * 100.0,
        recovery_intervals=recovery_intervals(
            result.records, end, pre_p99_s),
        result=result,
    )


def run_fault_matrix(algorithms=DEFAULT_ALGORITHMS,
                     duration_s: float = 180.0, seed: int = 1,
                     fault_start_s: float = DEFAULT_FAULT_START_S,
                     fault_duration_s: float = DEFAULT_FAULT_DURATION_S,
                     request_timeout_s: float = 1.0,
                     jobs: int | None = 1,
                     ) -> dict[str, dict[str, FaultCellResult]]:
    """Sweep every fault kind × every algorithm on the steady scenario.

    Returns ``{fault_name: {algorithm: FaultCellResult}}``. All runs share
    one deterministic seed, so cells differ only in their (fault,
    algorithm) pair. ``jobs`` shards the independent cells across worker
    processes (1 = serial, None = all CPUs); the matrix is identical for
    every value — cells are merged in sweep order, never completion order.
    """
    env = ScenarioBenchConfig(request_timeout_s=request_timeout_s)
    cells = []
    for fault_name, faults in matrix_fault_cases(
            fault_start_s, fault_duration_s).items():
        for algorithm in algorithms:
            if (fault_name == "controller-pause"
                    and algorithm not in CONTROLLER_ALGORITHMS):
                continue
            cells.append(Cell(
                id=f"{fault_name}/{algorithm}", fn=run_fault_cell,
                kwargs={"fault_name": fault_name, "faults": faults,
                        "algorithm": algorithm, "duration_s": duration_s,
                        "seed": seed, "env": env}))
    outcomes = run_cells(cells, jobs=jobs)
    matrix: dict[str, dict[str, FaultCellResult]] = {}
    for cell in cells:
        fault_name, algorithm = cell.id.split("/", 1)
        matrix.setdefault(fault_name, {})[algorithm] = (
            outcomes[cell.id].unwrap())
    return matrix


def render_fault_matrix(matrix: dict) -> str:
    """Render the matrix as one table per fault kind."""
    sections = []
    for fault_name, row in matrix.items():
        rows = {alg: cell.metrics() for alg, cell in row.items()}
        sections.append(format_table(
            f"fault matrix — {fault_name}", rows, baseline=None))
    return "\n\n".join(sections)
