"""Golden-digest fingerprinting of a benchmark run.

The perf work this repo does (kernel fast paths, zero-copy telemetry,
parallel sweeps) is only admissible if it is *behavior-preserving*: a
fixed-seed run must produce the same routing weights, the same reported
percentiles and a byte-identical trace export before and after any
optimization. :func:`golden_digest` collapses one run into a single
SHA-256 hex string over a canonical JSON serialization of everything the
coordinator reports, so a determinism test reduces to one string
comparison — and any future kernel change that shifts behavior by even
one event ordering fails loudly.
"""

from __future__ import annotations

import hashlib
import json

from repro.bench.coordinator import run_scenario_benchmark


def result_fingerprint(result) -> dict:
    """A canonical, JSON-serializable fingerprint of one benchmark run.

    Captures every request record (ids, timing, backend, outcome), the
    controller's final weights, and the headline percentiles. Floats pass
    through ``repr`` via ``json.dumps`` (shortest round-trip repr, stable
    across CPython versions), so the serialization is reproducible
    byte-for-byte.
    """
    fingerprint = {
        "scenario": result.scenario,
        "algorithm": result.algorithm,
        "seed": result.seed,
        "request_count": result.request_count,
        "weights": dict(sorted(result.controller_weights.items())),
        "records": [
            [r.request_id, r.backend, r.intended_start_s, r.start_s,
             r.end_s, r.success, r.attempts]
            for r in result.records
        ],
    }
    if result.records:
        fingerprint["percentiles_ms"] = {
            "p50": result.p50_ms, "p90": result.p90_ms, "p99": result.p99_ms}
    return fingerprint


def digest_result(result, trace_blob: bytes | None = None) -> str:
    """SHA-256 hex digest of one run's fingerprint (+ optional trace)."""
    blob = json.dumps(
        result_fingerprint(result), sort_keys=True,
        separators=(",", ":")).encode("utf-8")
    digest = hashlib.sha256(blob)
    if trace_blob is not None:
        digest.update(trace_blob)
    return digest.hexdigest()


def golden_digest(scenario: str = "scenario-1", algorithm: str = "l3",
                  duration_s: float = 30.0, seed: int = 1,
                  with_trace: bool = True) -> str:
    """Run one fixed-seed benchmark and return its behavior digest.

    With ``with_trace`` the run records full distributed traces and the
    digest additionally covers the byte-exact OTLP-JSON export — the
    strictest equality the tracing subsystem can express.
    """
    tracer = None
    if with_trace:
        from repro.tracing import MeshTracer, TracingConfig

        tracer = MeshTracer(TracingConfig(sample_rate=1.0))
    result = run_scenario_benchmark(
        scenario, algorithm, duration_s=duration_s, seed=seed, tracer=tracer)
    trace_blob = None
    if tracer is not None:
        from repro.tracing.export import to_otlp

        trace_blob = json.dumps(
            to_otlp(tracer.recorder), sort_keys=True,
            separators=(",", ":")).encode("utf-8")
    return digest_result(result, trace_blob)
