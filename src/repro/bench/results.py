"""Result aggregation and plain-text tables for the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.stats import relative_decrease


@dataclass
class ComparisonTable:
    """A paper-style comparison: one workload, several algorithms.

    Rows are (algorithm, metric dict); the canonical metrics are
    ``p99_ms``, ``p50_ms`` and ``success_rate``. Relative decreases are
    computed against the named baseline (the paper reports L3 vs.
    round-robin and vs. C3).
    """

    title: str
    baseline: str = "round-robin"
    rows: dict = field(default_factory=dict)

    def add(self, algorithm: str, **metrics) -> None:
        if algorithm in self.rows:
            raise ValueError(f"duplicate algorithm row: {algorithm}")
        self.rows[algorithm] = dict(metrics)

    def metric(self, algorithm: str, name: str) -> float:
        return self.rows[algorithm][name]

    def decrease_vs(self, algorithm: str, other: str,
                    metric: str = "p99_ms") -> float:
        """Fractional reduction of ``metric`` for ``algorithm`` vs ``other``."""
        return relative_decrease(
            self.rows[other][metric], self.rows[algorithm][metric])

    def render(self) -> str:
        return format_table(self.title, self.rows, baseline=self.baseline)


def format_table(title: str, rows: dict, baseline: str | None = None) -> str:
    """Render ``{algorithm: {metric: value}}`` as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)"
    metrics: list[str] = []
    for row in rows.values():
        for name in row:
            if name not in metrics:
                metrics.append(name)
    headers = ["algorithm"] + metrics
    if baseline and baseline in rows and "p99_ms" in rows[baseline]:
        headers.append(f"vs {baseline} p99")
    lines = [title, ""]
    table_rows = [headers]
    for algorithm, row in rows.items():
        cells = [algorithm]
        for name in metrics:
            value = row.get(name)
            cells.append("-" if value is None else _fmt(value))
        if baseline and baseline in rows and "p99_ms" in rows[baseline]:
            if algorithm == baseline or "p99_ms" not in row:
                cells.append("-")
            else:
                # Signed change: -26.0% means a 26 % lower P99.
                change = -relative_decrease(
                    rows[baseline]["p99_ms"], row["p99_ms"])
                cells.append(f"{change * 100:+.1f}%")
        table_rows.append(cells)
    widths = [
        max(len(row[i]) for row in table_rows)
        for i in range(len(headers))
    ]
    for i, row in enumerate(table_rows):
        line = "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        lines.append(line.rstrip())
        if i == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.1f}" if abs(value) >= 10 else f"{value:.3f}"
    return str(value)
