"""Deprecated location of the simple HPA autoscaler (moved).

The autoscaler grew into its own subsystem: :mod:`repro.autoscale`
carries the telemetry-driven elasticity co-simulation
(:class:`~repro.autoscale.controller.BackendAutoscaler`,
:class:`~repro.autoscale.policy.AutoscalePolicy`), and the original
minimal loop now lives in :mod:`repro.autoscale.hpa`. This module
re-exports it so pre-existing imports keep working; new code should
import from ``repro.autoscale``.
"""

from repro.autoscale.hpa import (  # noqa: F401 - re-exported for compat
    Autoscaler,
    AutoscalerConfig,
)

__all__ = ["Autoscaler", "AutoscalerConfig"]
